package ebrrq

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"ebrrq/internal/epoch"
	"ebrrq/internal/obs"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
)

// Sharded is a key-range-partitioned set: N independent Sets (each with its
// own RQ provider, update lock and EBR domain) linearized on one shared
// timestamp clock. Point operations touch exactly one shard; a range query
// picks a single timestamp from the shared clock and runs the paper's
// collect+announce+limbo protocol on every overlapping shard at that same
// timestamp, so the concatenation of the per-shard results — shards own
// disjoint, ordered key ranges — is a sorted, linearizable snapshot of the
// whole key space (DESIGN.md §9).
//
// Sharding trades bounded range-query fan-out for update scalability:
// updates on different shards share nothing but the clock word (which
// Lock/HTM updates only read), where a single Set funnels every update
// through one lock, one announcement table and one limbo machinery.
type Sharded struct {
	ds     DataStructure
	tech   Mode
	tq     Technique
	clock  *rqprov.SharedClock
	shards []*Set
	// starts[i] is the lowest key owned by shard i: shard i covers
	// [starts[i], starts[i+1]-1] and the last shard ends at keyMax.
	starts         []int64
	keyMin, keyMax int64
	met            *shardedMetrics
	mtids          atomic.Int32
}

// ShardedOptions tunes NewShardedWithOptions.
type ShardedOptions struct {
	// Technique selects the range-query algorithm family for every shard
	// (nil = EBR); see Options.Technique. All shards run one technique —
	// they linearize on one clock, and the cross-shard router relies on
	// the technique's pin contract uniformly.
	Technique Technique

	// Recorder receives every timestamped update across all shards
	// (validation harness support). Thread ids are offset per shard —
	// shard k reports tid + k*maxThreads — so the ids the recorder sees
	// are unique across the whole sharded set.
	Recorder rqprov.Recorder

	// Metrics turns on the observability layer. Each shard registers its
	// series under a shard="<k>" label (so shards never collide in the
	// shared registry), and the sharded layer adds aggregate series; see
	// shardedMetrics. Snapshot.Gauge/Hist sum and merge across label
	// sets, so whole-set views come free.
	Metrics *obs.Registry

	// KeyMin and KeyMax bound the key space partitioned across shards
	// (inclusive). Both zero selects the full [MinKey, MaxKey] range.
	// Operations on keys outside the range panic — such a key has no
	// owning shard, and storing it anywhere would silently exclude it
	// from cross-shard range queries.
	KeyMin, KeyMax int64

	// WaitBudget bounds how long each shard's range queries wait on an
	// unresolved concurrent update before resolving it conservatively;
	// 0 waits indefinitely (see Options.WaitBudget). A positive budget
	// keeps cross-shard queries live when one shard hosts a stalled
	// updater.
	WaitBudget int

	// Trace attaches one flight recorder to every shard: shard k's rings
	// are labeled "s<k>/t<id>", each shard's watchdog ring "s<k>/watchdog",
	// and the router records a cross-shard span (xrq_begin/xrq_end) on the
	// first overlapping shard's ring around every multi-shard range query.
	Trace *trace.Recorder

	// LimboSoftLimit / LimboHardLimit bound each shard's unreclaimed node
	// count independently (see Options.LimboSoftLimit): a stalled thread
	// only backpressures updates routed to the shard it is stalled on —
	// the other shards keep reclaiming and accepting writes.
	LimboSoftLimit int64
	LimboHardLimit int64

	// PressureWait is each shard's bounded wait at the hard limit before an
	// update is rejected with ErrMemoryPressure; see Options.PressureWait.
	PressureWait time.Duration

	// CombineUpdates enables each shard's aggregating update funnel (see
	// Options.CombineUpdates). Funnels are per shard — updates only combine
	// with updates routed to the same shard, so a batch's single window
	// stays on one provider's lock and clock word.
	CombineUpdates bool

	// CombineBatch caps each shard's combiner batch; see
	// Options.CombineBatch.
	CombineBatch int
}

// shardedMetrics holds the router-layer aggregate observability handles;
// per-shard detail lives in each shard's shard="<k>" labeled series.
type shardedMetrics struct {
	singleShard *obs.Counter   // ebrrq_rq_single_shard_total
	crossShard  *obs.Counter   // ebrrq_rq_cross_shard_total
	fanout      *obs.Histogram // ebrrq_rq_fanout_shards
}

// NewSharded creates a key-range-partitioned set with the given number of
// shards; maxThreads bounds the registered threads (each thread holds one
// handle per shard).
func NewSharded(d DataStructure, t Mode, maxThreads, shards int) (*Sharded, error) {
	return NewShardedWithOptions(d, t, maxThreads, shards, ShardedOptions{})
}

// NewShardedWithOptions is NewSharded with tuning options.
func NewShardedWithOptions(d DataStructure, t Mode, maxThreads, shards int, opt ShardedOptions) (*Sharded, error) {
	tq := opt.Technique
	if tq == nil {
		tq = EBR
	}
	switch t {
	case Unsafe, Lock, HTM, LockFree:
	default:
		return nil, fmt.Errorf("ebrrq: sharding requires a timestamp-based mode, not %v", t)
	}
	if !tq.Supports(d, t) {
		return nil, fmt.Errorf("ebrrq: the %v technique does not support %v in %v mode", tq, d, t)
	}
	if maxThreads <= 0 {
		return nil, fmt.Errorf("ebrrq: maxThreads must be positive")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("ebrrq: shards must be positive")
	}
	keyMin, keyMax := opt.KeyMin, opt.KeyMax
	if keyMin == 0 && keyMax == 0 {
		keyMin, keyMax = MinKey, MaxKey
	}
	if keyMin > keyMax {
		return nil, fmt.Errorf("ebrrq: KeyMin %d > KeyMax %d", keyMin, keyMax)
	}
	span := uint64(keyMax) - uint64(keyMin) + 1 // exact: keyMax >= keyMin
	if span != 0 && uint64(shards) > span {
		return nil, fmt.Errorf("ebrrq: %d shards over a %d-key range", shards, span)
	}
	s := &Sharded{
		ds: d, tech: t, tq: tq,
		clock:  rqprov.NewSharedClock(),
		shards: make([]*Set, shards),
		starts: make([]int64, shards),
		keyMin: keyMin, keyMax: keyMax,
	}
	// Uniform contiguous partition. All arithmetic is uint64 so the full
	// int64 key space (span near 2^64) never overflows; the first
	// span%shards shards absorb the remainder one key each.
	step, rem := span/uint64(shards), span%uint64(shards)
	cur := uint64(keyMin)
	for i := 0; i < shards; i++ {
		s.starts[i] = int64(cur)
		cur += step
		if uint64(i) < rem {
			cur++
		}
	}
	if opt.Metrics != nil {
		s.met = &shardedMetrics{
			singleShard: opt.Metrics.Counter("ebrrq_rq_single_shard_total",
				"range queries answered by one shard without a pinned timestamp"),
			crossShard: opt.Metrics.Counter("ebrrq_rq_cross_shard_total",
				"range queries spanning several shards at one pinned timestamp"),
			fanout: opt.Metrics.Histogram("ebrrq_rq_fanout_shards",
				"shards touched per cross-shard range query"),
		}
		opt.Metrics.GaugeFunc("ebrrq_shards", "shards in the sharded set",
			func() int64 { return int64(shards) })
	}
	for i := range s.shards {
		o := Options{
			Technique:      opt.Technique,
			Metrics:        opt.Metrics,
			Clock:          s.clock,
			WaitBudget:     opt.WaitBudget,
			LimboSoftLimit: opt.LimboSoftLimit,
			LimboHardLimit: opt.LimboHardLimit,
			PressureWait:   opt.PressureWait,
			CombineUpdates: opt.CombineUpdates,
			CombineBatch:   opt.CombineBatch,
		}
		if opt.Metrics != nil {
			o.MetricLabels = fmt.Sprintf(`shard="%d"`, i)
		}
		if opt.Trace != nil {
			o.Trace = opt.Trace
			o.TraceLabel = fmt.Sprintf("s%d/", i)
		}
		if opt.Recorder != nil {
			o.Recorder = offsetRecorder{r: opt.Recorder, off: i * maxThreads}
		}
		set, err := NewWithOptions(d, t, maxThreads, o)
		if err != nil {
			return nil, err
		}
		s.shards[i] = set
	}
	return s, nil
}

// offsetRecorder shifts a shard's thread ids into a range disjoint from
// every other shard's, so one Recorder (whose contract assumes a single
// writer per tid) can observe the whole sharded set.
type offsetRecorder struct {
	r   rqprov.Recorder
	off int
}

func (o offsetRecorder) RecordUpdate(tid int, ts uint64, inodes, dnodes []*epoch.Node) {
	o.r.RecordUpdate(tid+o.off, ts, inodes, dnodes)
}

// DataStructure returns the per-shard structure.
func (s *Sharded) DataStructure() DataStructure { return s.ds }

// Mode returns the per-shard EBR linearization mode.
func (s *Sharded) Mode() Mode { return s.tech }

// Technique returns the shards' range-query technique (EBR or Bundle).
func (s *Sharded) Technique() Technique { return s.tq }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard exposes shard i (for stats and tests).
func (s *Sharded) Shard(i int) *Set { return s.shards[i] }

// Clock returns the timestamp source all shards linearize on.
func (s *Sharded) Clock() rqprov.TimestampSource { return s.clock }

// KeyRange returns the inclusive key bounds partitioned across the shards.
func (s *Sharded) KeyRange() (min, max int64) { return s.keyMin, s.keyMax }

// ShardStart returns the lowest key owned by shard i (for tests).
func (s *Sharded) ShardStart(i int) int64 { return s.starts[i] }

// shardOf returns the index of the shard owning key; the key must be inside
// [keyMin, keyMax].
func (s *Sharded) shardOf(key int64) int {
	// First shard whose start exceeds key, minus one. starts[0] == keyMin
	// <= key, so the result is never -1.
	return sort.Search(len(s.starts), func(i int) bool { return s.starts[i] > key }) - 1
}

// shardEnd returns the highest key owned by shard i.
func (s *Sharded) shardEnd(i int) int64 {
	if i == len(s.starts)-1 {
		return s.keyMax
	}
	return s.starts[i+1] - 1
}

func (s *Sharded) checkKey(key int64) {
	if key < s.keyMin || key > s.keyMax {
		panic(fmt.Sprintf("ebrrq: key %d outside the sharded key range [%d, %d]",
			key, s.keyMin, s.keyMax))
	}
}

// Health returns an aggregate health check over every shard: critical (503)
// when any shard sits at its hard limbo limit, degraded when any shard has a
// stalled thread, an unacknowledged neutralization, or a breached soft
// limit. Per-shard detail is prefixed "shard <i>:".
func (s *Sharded) Health() obs.HealthCheck {
	return obs.HealthCheck{
		Name: "epoch",
		Check: func() error {
			for i, sh := range s.shards {
				if err := sh.Health().Check(); err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
			}
			return nil
		},
		Warn: func() error {
			for i, sh := range s.shards {
				if err := sh.Health().Warn(); err != nil {
					return fmt.Errorf("shard %d: %w", i, err)
				}
			}
			return nil
		},
	}
}

// StartWatchdogs attaches an epoch watchdog (see epoch.WatchdogConfig) to
// every shard's domain and returns a function stopping them all. Stall and
// recover callbacks fire per shard.
func (s *Sharded) StartWatchdogs(cfg epoch.WatchdogConfig) (stop func()) {
	wds := make([]*epoch.Watchdog, len(s.shards))
	for i, sh := range s.shards {
		wds[i] = sh.Domain().StartWatchdog(cfg)
	}
	return func() {
		for _, w := range wds {
			w.Stop()
		}
	}
}

// ShardedThread is a per-goroutine handle to a Sharded set: one shard
// handle per shard plus a reusable merge buffer. Handles must not be shared
// between goroutines.
type ShardedThread struct {
	set *Sharded
	ths []*Thread
	// lastTS is the linearization timestamp of the most recent range
	// query (the pinned timestamp for cross-shard queries).
	lastTS uint64
	mtid   int

	// result is the cross-shard merge buffer; resultHWM restores its
	// steady-state capacity after a drop, as in rqprov.Thread.
	result    []KV
	resultHWM int
}

// NewThread registers a goroutine with every shard, panicking when a shard
// is out of thread slots. Prefer TryNewThread where that is survivable.
func (s *Sharded) NewThread() *ShardedThread {
	t, err := s.TryNewThread()
	if err != nil {
		panic("ebrrq: " + err.Error())
	}
	return t
}

// TryNewThread registers a goroutine with every shard. Slots released by
// Close are reused. The returned handle must only be used by a single
// goroutine.
func (s *Sharded) TryNewThread() (*ShardedThread, error) {
	t := &ShardedThread{set: s, ths: make([]*Thread, len(s.shards)),
		mtid: int(s.mtids.Add(1)) - 1}
	for i, sh := range s.shards {
		th, err := sh.TryNewThread()
		if err != nil {
			for _, prev := range t.ths[:i] {
				prev.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		t.ths[i] = th
	}
	return t, nil
}

// Close releases the thread's slot on every shard. Idempotent; after Close
// the handle must not be used again.
func (t *ShardedThread) Close() {
	for _, th := range t.ths {
		th.Close()
	}
}

// ShardThread exposes the per-shard handle for shard i (validation harness
// support).
func (t *ShardedThread) ShardThread(i int) *Thread { return t.ths[i] }

// Insert adds key with the given value to the owning shard; it returns
// false (without overwriting) if key is already present. Panics if key is
// outside the sharded key range.
func (t *ShardedThread) Insert(key, value int64) bool {
	t.set.checkKey(key)
	return t.ths[t.set.shardOf(key)].Insert(key, value)
}

// Delete removes key from the owning shard, reporting whether it was
// present. Panics if key is outside the sharded key range.
func (t *ShardedThread) Delete(key int64) bool {
	t.set.checkKey(key)
	return t.ths[t.set.shardOf(key)].Delete(key)
}

// TryInsert is Insert with graceful degradation on the owning shard: it
// returns ErrMemoryPressure when that shard is at its hard limbo limit and
// ErrNeutralized when the shard's watchdog revoked this handle's thread.
// Other shards are unaffected either way. Panics (like Insert) if key is
// outside the sharded key range.
func (t *ShardedThread) TryInsert(key, value int64) (bool, error) {
	t.set.checkKey(key)
	return t.ths[t.set.shardOf(key)].TryInsert(key, value)
}

// TryDelete is Delete with graceful degradation; see TryInsert.
func (t *ShardedThread) TryDelete(key int64) (bool, error) {
	t.set.checkKey(key)
	return t.ths[t.set.shardOf(key)].TryDelete(key)
}

// Contains returns the value stored under key. Panics if key is outside the
// sharded key range.
func (t *ShardedThread) Contains(key int64) (int64, bool) {
	t.set.checkKey(key)
	return t.ths[t.set.shardOf(key)].Contains(key)
}

// RangeQuery returns all pairs with low <= key <= high, sorted by key; the
// bounds are clamped to the sharded key range. With every technique except
// Unsafe the result is linearizable: a query overlapping one shard runs
// that shard's ordinary protocol (updates on other shards cannot affect
// keys it owns), and a query overlapping several picks one timestamp from
// the shared clock, pins it on each overlapping shard's provider thread —
// which performs its shard's fence work at that timestamp before
// traversing — and concatenates the per-shard results, already sorted and
// disjoint by construction. The returned slice is valid until this
// thread's next range query.
func (t *ShardedThread) RangeQuery(low, high int64) []KV {
	s := t.set
	if low < s.keyMin {
		low = s.keyMin
	}
	if high > s.keyMax {
		high = s.keyMax
	}
	if low > high {
		t.lastTS = 0
		return nil
	}
	s1, s2 := s.shardOf(low), s.shardOf(high)
	if s1 == s2 {
		res := t.ths[s1].RangeQuery(low, high)
		t.lastTS = t.ths[s1].LastRQTimestamp()
		if m := s.met; m != nil {
			m.singleShard.Inc(t.mtid)
		}
		return res
	}
	// The cross-shard span lands on the first overlapping shard's ring: one
	// xrq_begin/xrq_end pair bracketing every pinned per-shard RQ, so the
	// analyzer can attribute the whole fan-out to a single span.
	tr := t.ths[s1].tr
	var xrqStart int64
	if tr != nil {
		xrqStart = trace.Now()
		tr.EmitAt(trace.EvCrossRQBegin, xrqStart, uint64(s2-s1+1), uint64(low))
	}
	var ts uint64
	if s.tech != Unsafe {
		// Pin every overlapping shard's epoch BEFORE taking the timestamp:
		// from the pin on, no shard reclaims limbo nodes, so every deletion
		// the query must observe (dtime >= ts, assigned after this point on
		// some shard we have yet to traverse) is still in that shard's limbo
		// bags when the sweep gets there. Without the pins a shard's epoch
		// keeps advancing while the query is busy in earlier shards, and
		// nodes deleted after ts age out of limbo before being swept —
		// observed as missing keys in the later shards of a cross-shard
		// query. Unpin via defer: a panic inside a shard's traversal aborts
		// that shard's provider state (clearing its own pin), and the defer
		// releases the rest.
		for i := s1; i <= s2; i++ {
			t.ths[i].impl.pinEpoch()
		}
		defer func() {
			for i := s1; i <= s2; i++ {
				t.ths[i].impl.unpinEpoch()
			}
		}()
		ts, _ = s.clock.AdvanceOrAdopt()
	}
	t.lastTS = ts
	if cap(t.result) < t.resultHWM {
		t.result = make([]KV, 0, t.resultHWM)
	}
	out := t.result[:0]
	for i := s1; i <= s2; i++ {
		lo, hi := low, high
		if i > s1 {
			lo = s.starts[i]
		}
		if i < s2 {
			hi = s.shardEnd(i)
		}
		th := t.ths[i]
		if ts != 0 {
			// Pinned immediately before the shard's query, so a panic
			// inside it (whose guard clears the shard's provider state,
			// pin included) leaves no stale pin on any shard.
			th.impl.pinTimestamp(ts)
		}
		out = append(out, th.RangeQuery(lo, hi)...)
	}
	t.result = out
	if len(out) > t.resultHWM {
		t.resultHWM = len(out)
	}
	if m := s.met; m != nil {
		m.crossShard.Inc(t.mtid)
		m.fanout.Observe(uint64(s2 - s1 + 1))
	}
	if tr != nil {
		now := trace.Now()
		tr.EmitAt(trace.EvCrossRQEnd, now, ts, uint64(now-xrqStart))
	}
	return out
}

// LastRQTimestamp returns the linearization timestamp of this thread's most
// recent range query: the pinned shared-clock timestamp for a cross-shard
// query, the owning shard's timestamp for a single-shard one (0 for Unsafe
// or an empty clamped range).
func (t *ShardedThread) LastRQTimestamp() uint64 { return t.lastTS }
