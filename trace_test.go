package ebrrq_test

import (
	"testing"

	"ebrrq"
	"ebrrq/internal/trace"
)

// countTypes tallies event types across every ring of a snapshot.
func countTypes(s *trace.Snapshot) map[trace.EventType]int {
	c := map[trace.EventType]int{}
	for _, rg := range s.Rings {
		for _, ev := range rg.Events {
			c[ev.Type]++
		}
	}
	return c
}

// TestSetTraceEndToEnd drives a traced Set through the full op mix and
// checks the flight recorder saw the whole lifecycle: op spans, a timestamp
// event and per-phase events for the range query, and retire events from the
// deletes.
func TestSetTraceEndToEnd(t *testing.T) {
	for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.LockFree} {
		t.Run(tech.String(), func(t *testing.T) {
			rec := trace.NewRecorder(trace.Config{EventsPerRing: 256})
			s, err := ebrrq.NewWithOptions(ebrrq.SkipList, tech, 2, ebrrq.Options{Trace: rec})
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			defer th.Close()
			for k := int64(0); k < 10; k++ {
				th.Insert(k, k*10)
			}
			th.Delete(3)
			th.Contains(4)
			if got := th.RangeQuery(0, 9); len(got) != 9 {
				t.Fatalf("range query returned %d keys, want 9", len(got))
			}

			snap := rec.Snapshot()
			// One per-thread ring plus the domain's always-on quarantine ring
			// (empty here: nothing was neutralized).
			labels := map[string]int{}
			for _, rg := range snap.Rings {
				labels[rg.Label] = len(rg.Events)
			}
			if len(labels) != 2 || labels["quarantine"] != 0 {
				t.Fatalf("rings = %+v, want t0 plus an empty quarantine ring", labels)
			}
			if _, ok := labels["t0"]; !ok {
				t.Fatalf("rings = %+v, want a t0 ring", labels)
			}
			c := countTypes(snap)
			// 10 inserts + 1 delete + 1 contains + 1 RQ, begin and end each.
			if c[trace.EvOpBegin] != 13 || c[trace.EvOpEnd] != 13 {
				t.Fatalf("op begin/end = %d/%d, want 13/13", c[trace.EvOpBegin], c[trace.EvOpEnd])
			}
			if c[trace.EvTSAdvance]+c[trace.EvTSAdopt] != 1 {
				t.Fatalf("timestamp events = %d advance + %d adopt, want 1 total",
					c[trace.EvTSAdvance], c[trace.EvTSAdopt])
			}
			for _, want := range []trace.EventType{trace.EvTraverse, trace.EvAnnScan, trace.EvLimboDone} {
				if c[want] != 1 {
					t.Fatalf("%v events = %d, want 1 (counts: %v)", want, c[want], c)
				}
			}
			if c[trace.EvRetire] != 1 {
				t.Fatalf("retire events = %d, want 1 (one delete)", c[trace.EvRetire])
			}

			// The analyzer must attribute all four phases from this dump.
			rep := trace.BuildReport(snap)
			for _, ph := range []string{"ts_wait", "traverse", "announce", "limbo"} {
				if rep.Phases[ph].Count != 1 {
					t.Fatalf("report phase %s = %+v, want count 1", ph, rep.Phases[ph])
				}
			}
			if rep.Ops["rq"].Count != 1 || rep.Ops["insert"].Count != 10 {
				t.Fatalf("report ops = %+v", rep.Ops)
			}
		})
	}
}

// TestShardedTraceCrossShard checks the router records one cross-shard span
// on the first overlapping shard's ring, with per-shard rings labeled by
// shard, pinned-timestamp events on every overlapping shard, and epoch
// pin/unpin brackets.
func TestShardedTraceCrossShard(t *testing.T) {
	rec := trace.NewRecorder(trace.Config{EventsPerRing: 256})
	s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.LockFree, 2, 4,
		ebrrq.ShardedOptions{Trace: rec, KeyMin: 0, KeyMax: 3999})
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread()
	defer th.Close()
	for k := int64(0); k < 4000; k += 100 {
		th.Insert(k, k)
	}
	if got := th.RangeQuery(0, 3999); len(got) != 40 {
		t.Fatalf("cross-shard RQ returned %d keys, want 40", len(got))
	}

	snap := rec.Snapshot()
	byLabel := map[string][]trace.Event{}
	for _, rg := range snap.Rings {
		byLabel[rg.Label] = rg.Events
	}
	// Each shard contributes a thread ring and its domain's (empty here)
	// quarantine ring.
	if len(byLabel) != 8 {
		t.Fatalf("rings = %d (%v), want a thread and a quarantine ring per shard", len(byLabel), byLabel)
	}
	for i := 0; i < 4; i++ {
		label := "s" + string(rune('0'+i)) + "/quarantine"
		if evs, ok := byLabel[label]; !ok || len(evs) != 0 {
			t.Fatalf("ring %s = %v, want present and empty", label, evs)
		}
	}
	count := func(label string, ty trace.EventType) int {
		n := 0
		for _, ev := range byLabel[label] {
			if ev.Type == ty {
				n++
			}
		}
		return n
	}
	// Span on the first shard's ring only, covering all 4 shards.
	if count("s0/t0", trace.EvCrossRQBegin) != 1 || count("s0/t0", trace.EvCrossRQEnd) != 1 {
		t.Fatalf("cross-shard span events missing on s0/t0: %v", byLabel["s0/t0"])
	}
	for _, ev := range byLabel["s0/t0"] {
		if ev.Type == trace.EvCrossRQBegin && ev.Arg1 != 4 {
			t.Fatalf("xrq_begin fanout = %d, want 4", ev.Arg1)
		}
	}
	for i, label := range []string{"s0/t0", "s1/t0", "s2/t0", "s3/t0"} {
		if n := count(label, trace.EvCrossRQBegin); i > 0 && n != 0 {
			t.Fatalf("shard ring %s has %d xrq_begin events, want 0", label, n)
		}
		if count(label, trace.EvTSPinned) != 1 {
			t.Fatalf("shard ring %s: ts_pinned = %d, want 1", label, count(label, trace.EvTSPinned))
		}
		if count(label, trace.EvEpochPin) != 1 || count(label, trace.EvEpochUnpin) != 1 {
			t.Fatalf("shard ring %s missing epoch pin/unpin bracket", label)
		}
	}
}
