// Quickstart: build a concurrent set with linearizable range queries,
// exercise it from several goroutines, and print a consistent snapshot of a
// key range while updates are in flight.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ebrrq"
)

func main() {
	// A skip list with the paper's lock-free range-query provider. The
	// third argument is the maximum number of goroutines that will touch
	// the set (each calls NewThread once).
	const workers = 4
	set, err := ebrrq.New(ebrrq.SkipList, ebrrq.LockFree, workers+1)
	if err != nil {
		log.Fatal(err)
	}

	// Seed some data.
	main0 := set.NewThread()
	for k := int64(0); k < 1000; k += 2 {
		main0.Insert(k, k*k)
	}

	// Hammer the set from concurrent updaters...
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := set.NewThread()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := r.Int63n(1000)
				if r.Intn(2) == 0 {
					th.Insert(k, k*k)
				} else {
					th.Delete(k)
				}
			}
		}(int64(w))
	}

	// ...while taking linearizable range queries. Each result is an
	// atomic snapshot of [100, 120] at the query's timestamp, no matter
	// how the updaters interleave.
	for i := 0; i < 5; i++ {
		res := main0.RangeQuery(100, 120)
		fmt.Printf("rq@ts=%d: %d keys:", main0.LastRQTimestamp(), len(res))
		for _, kv := range res {
			fmt.Printf(" %d", kv.Key)
		}
		fmt.Println()
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	if v, ok := main0.Contains(100); ok {
		fmt.Printf("Contains(100) = %d\n", v)
	}

	// The same API runs other range-query techniques. Options.Technique
	// selects bundled references — per-link timestamped version lists —
	// instead of the paper's EBR provider; the set's behavior and the
	// linearizability guarantee are identical, only the mechanism (and
	// its performance profile, see EXPERIMENTS.md) differs.
	bset, err := ebrrq.NewWithOptions(ebrrq.LazyList, ebrrq.Lock, 1,
		ebrrq.Options{Technique: ebrrq.Bundle})
	if err != nil {
		log.Fatal(err)
	}
	bth := bset.NewThread()
	for k := int64(0); k < 20; k++ {
		bth.Insert(k, k*3)
	}
	bres := bth.RangeQuery(5, 14)
	fmt.Printf("bundle technique rq@ts=%d: %d keys\n", bth.LastRQTimestamp(), len(bres))
	bth.Close()
	fmt.Println("done")
}
