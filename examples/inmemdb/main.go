// inmemdb: an order-book style in-memory index, the paper's motivating
// application (§1: database indexes where ~45% of transactions run range
// queries). Writers stream price updates into an ABTree index while reader
// goroutines continuously take linearizable "depth snapshots" of price
// bands — exactly the access pattern that breaks non-linearizable
// traversals.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ebrrq"
)

// Price levels are keys (in cents); values are resting quantity.
func main() {
	const (
		makers  = 3
		readers = 2
		mid     = 50_000 // 500.00
	)
	book, err := ebrrq.New(ebrrq.ABTree, ebrrq.LockFree, makers+readers+1)
	if err != nil {
		log.Fatal(err)
	}

	seed := book.NewThread()
	for p := int64(mid - 500); p <= mid+500; p += 5 {
		seed.Insert(p, rand.Int63n(900)+100)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Market makers add and remove price levels.
	for m := 0; m < makers; m++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			th := book.NewThread()
			r := rand.New(rand.NewSource(s))
			for !stop.Load() {
				p := mid - 500 + r.Int63n(1001)
				if r.Intn(2) == 0 {
					th.Insert(p, r.Int63n(900)+100)
				} else {
					th.Delete(p)
				}
			}
		}(int64(m))
	}

	// Readers snapshot the top of book: a small range query around mid.
	type depth struct {
		levels int
		qty    int64
	}
	results := make(chan depth, 64)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := book.NewThread()
			for !stop.Load() {
				band := th.RangeQuery(mid-50, mid+50)
				var q int64
				for _, lvl := range band {
					q += lvl.Value
				}
				select {
				case results <- depth{levels: len(band), qty: q}:
				default:
				}
			}
		}()
	}

	deadline := time.After(300 * time.Millisecond)
	snaps := 0
loop:
	for {
		select {
		case d := <-results:
			snaps++
			if snaps%1000 == 0 {
				fmt.Printf("snapshot #%d: %d levels, total qty %d in ±0.50 of mid\n",
					snaps, d.levels, d.qty)
			}
		case <-deadline:
			break loop
		}
	}
	stop.Store(true)
	wg.Wait()
	fmt.Printf("took %d consistent depth snapshots while the book churned\n", snaps)
}
