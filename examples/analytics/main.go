// analytics: a streaming metrics store. Ingest goroutines insert
// (timestamp-bucket, measurement) points into a Citrus tree while an
// aggregator periodically runs full-structure iterations (range queries
// over the whole key space) to compute sliding-window statistics — the
// "iteration" use case the Snap-collector was designed for, served here by
// the EBR technique at a fraction of the cost.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ebrrq"
)

func main() {
	const ingesters = 3
	store, err := ebrrq.New(ebrrq.Citrus, ebrrq.Lock, ingesters+2)
	if err != nil {
		log.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var clock atomic.Int64 // logical time bucket

	// Ingesters: each writes measurements keyed by (bucket, source).
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(src int64) {
			defer wg.Done()
			th := store.NewThread()
			r := rand.New(rand.NewSource(src))
			for !stop.Load() {
				bucket := clock.Load()
				key := bucket<<8 | src // composite key
				th.Insert(key, r.Int63n(1000))
				if r.Intn(10) == 0 {
					// Retention: drop a random old point.
					old := bucket - 16 - r.Int63n(16)
					if old >= 0 {
						th.Delete(old<<8 | src)
					}
				}
			}
		}(int64(g))
	}

	// Clock driver.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			time.Sleep(5 * time.Millisecond)
			clock.Add(1)
		}
	}()

	// Aggregator: consistent sliding-window scans.
	agg := store.NewThread()
	for i := 0; i < 10; i++ {
		time.Sleep(25 * time.Millisecond)
		hi := clock.Load()
		lo := hi - 8
		if lo < 0 {
			lo = 0
		}
		window := agg.RangeQuery(lo<<8, hi<<8|255)
		var sum int64
		for _, kv := range window {
			sum += kv.Value
		}
		mean := int64(0)
		if len(window) > 0 {
			mean = sum / int64(len(window))
		}
		fmt.Printf("window [%d,%d]: %d points, mean %d (linearized at ts %d)\n",
			lo, hi, len(window), mean, agg.LastRQTimestamp())
	}
	stop.Store(true)
	wg.Wait()

	total := agg.RangeQuery(0, int64(1)<<40)
	fmt.Printf("store holds %d points at shutdown\n", len(total))
}
