// validation: demonstrates the paper's timestamp-based correctness
// technique on a live workload. Because every range query is linearized at
// an explicit timestamp and every update records the timestamp at which it
// linearized, the exact expected answer of every query can be recomputed
// offline — a property the authors used to find once-in-a-thousand-runs
// bugs. This example runs a workload against the lock-free provider,
// validates thousands of range queries, and then shows the checker catching
// a deliberately corrupted result.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ebrrq"
	"ebrrq/internal/validate"
)

func main() {
	const updaters = 3
	checker := validate.NewChecker(updaters + 2)
	set, err := ebrrq.NewWithOptions(ebrrq.LFBST, ebrrq.LockFree, updaters+2,
		ebrrq.Options{Recorder: checker})
	if err != nil {
		log.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := set.NewThread()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := r.Int63n(256)
				if r.Intn(2) == 0 {
					th.Insert(k, r.Int63n(1<<20))
				} else {
					th.Delete(k)
				}
			}
		}(int64(w))
	}

	rqThread := set.NewThread()
	pid := rqThread.ID()
	r := rand.New(rand.NewSource(99))
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		lo := r.Int63n(200)
		res := rqThread.RangeQuery(lo, lo+55)
		checker.AddRQ(pid, rqThread.LastRQTimestamp(), lo, lo+55, res)
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("recorded %d update events and %d range queries\n",
		checker.Events(), checker.RQs())
	if err := checker.Check(); err != nil {
		log.Fatalf("validation FAILED: %v", err)
	}
	fmt.Println("all range queries returned exactly the keys present at their timestamps")

	// The same replay validation works for the bundle technique: bundled
	// sets record updates and linearize queries on the same shared clock,
	// so one checker covers any technique.
	bchk := validate.NewChecker(2)
	bset, err := ebrrq.NewWithOptions(ebrrq.SkipList, ebrrq.Lock, 2,
		ebrrq.Options{Technique: ebrrq.Bundle, Recorder: bchk})
	if err != nil {
		log.Fatal(err)
	}
	bth := bset.NewThread()
	for k := int64(0); k < 64; k++ {
		bth.Insert(k, k)
	}
	bres := bth.RangeQuery(10, 40)
	bchk.AddRQ(bth.ID(), bth.LastRQTimestamp(), 10, 40, bres)
	if err := bchk.Check(); err != nil {
		log.Fatalf("bundle validation FAILED: %v", err)
	}
	fmt.Printf("bundle technique: %d-key range query validated at ts=%d\n",
		len(bres), bth.LastRQTimestamp())

	// Now corrupt one result on purpose and watch the checker object.
	bad := validate.NewChecker(1)
	bad.RecordUpdate(0, 1, nil, nil)
	bad.AddRQ(0, 2, 0, 10, []ebrrq.KV{{Key: 5, Value: 1}})
	if err := bad.Check(); err != nil {
		fmt.Printf("deliberately corrupted history is rejected: %v\n", err)
	}
}
