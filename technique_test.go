package ebrrq_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/obs"
	"ebrrq/internal/validate"
)

// TestBundleSupportMatrix pins the Bundle technique's feasibility matrix:
// the two bundled list shapes under the timestamp-capable modes, nothing
// else.
func TestBundleSupportMatrix(t *testing.T) {
	allDS := []ebrrq.DataStructure{
		ebrrq.LFList, ebrrq.LazyList, ebrrq.SkipList, ebrrq.LFBST,
		ebrrq.Citrus, ebrrq.ABTree, ebrrq.BSlack,
	}
	allModes := []ebrrq.Mode{
		ebrrq.Unsafe, ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree, ebrrq.Snap, ebrrq.RLU,
	}
	for _, d := range allDS {
		for _, m := range allModes {
			want := (d == ebrrq.LazyList || d == ebrrq.SkipList) &&
				(m == ebrrq.Lock || m == ebrrq.HTM || m == ebrrq.LockFree)
			if got := ebrrq.Bundle.Supports(d, m); got != want {
				t.Errorf("Bundle.Supports(%v, %v) = %v, want %v", d, m, got, want)
			}
			if want {
				s, err := ebrrq.NewWithOptions(d, m, 2, ebrrq.Options{Technique: ebrrq.Bundle})
				if err != nil {
					t.Fatalf("NewWithOptions(%v, %v, Bundle): %v", d, m, err)
				}
				if s.Technique() != ebrrq.Bundle {
					t.Fatalf("Technique() = %v, want Bundle", s.Technique())
				}
				if s.Provider() != nil {
					t.Fatalf("Provider() must be nil for the Bundle technique")
				}
				if s.Domain() == nil || s.Clock() == nil {
					t.Fatal("Bundle set must expose its epoch domain and clock")
				}
			} else if _, err := ebrrq.NewWithOptions(d, m, 2, ebrrq.Options{Technique: ebrrq.Bundle}); err == nil {
				t.Errorf("NewWithOptions(%v, %v, Bundle) succeeded outside the matrix", d, m)
			}
		}
	}
}

// TestBundleRejectsCombine: the aggregating update funnel is an EBR-provider
// feature; selecting it with another technique must fail loudly.
func TestBundleRejectsCombine(t *testing.T) {
	_, err := ebrrq.NewWithOptions(ebrrq.LazyList, ebrrq.Lock, 2, ebrrq.Options{
		Technique:      ebrrq.Bundle,
		CombineUpdates: true,
	})
	if err == nil {
		t.Fatal("CombineUpdates with the Bundle technique must be rejected")
	}
}

// TestBundleQuickstart drives the basic op mix through the public API for
// every supported (structure, mode) Bundle pair, with metrics attached.
func TestBundleQuickstart(t *testing.T) {
	for _, d := range []ebrrq.DataStructure{ebrrq.LazyList, ebrrq.SkipList} {
		for _, m := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree} {
			t.Run(d.String()+"/"+m.String(), func(t *testing.T) {
				reg := obs.NewRegistry(2)
				s, err := ebrrq.NewWithOptions(d, m, 2, ebrrq.Options{
					Technique: ebrrq.Bundle,
					Metrics:   reg,
				})
				if err != nil {
					t.Fatal(err)
				}
				th := s.NewThread()
				defer th.Close()
				for k := int64(0); k < 100; k++ {
					if !th.Insert(k, k*2) {
						t.Fatalf("Insert(%d) failed", k)
					}
				}
				for k := int64(0); k < 100; k += 2 {
					if !th.Delete(k) {
						t.Fatalf("Delete(%d) failed", k)
					}
				}
				if v, ok := th.Contains(51); !ok || v != 102 {
					t.Fatalf("Contains(51) = (%d, %v), want (102, true)", v, ok)
				}
				res := th.RangeQuery(0, 99)
				if len(res) != 50 {
					t.Fatalf("RangeQuery returned %d keys, want 50", len(res))
				}
				for i, kv := range res {
					if kv.Key != int64(2*i+1) || kv.Value != kv.Key*2 {
						t.Fatalf("result[%d] = %+v, want key %d", i, kv, 2*i+1)
					}
				}
				if ts := th.LastRQTimestamp(); ts == 0 {
					t.Fatal("LastRQTimestamp() = 0 after a bundle range query")
				}
				snap := reg.Snapshot()
				if snap.Counter("ebrrq_bundle_entries_total") == 0 {
					t.Fatal("bundle entry counter never moved")
				}
				if hc := s.Health(); hc.Check != nil && hc.Check() != nil {
					t.Fatalf("healthy bundle set reports %v", hc.Check())
				}
			})
		}
	}
}

// TestBundleValidatedPublicAPI is a short timestamp-replay validated stress
// run through ebrrq.Set with the Bundle technique (the internal/dstest
// harness covers the structures directly; this covers the wrapper layer:
// guard, admit, metrics, trace plumbing).
func TestBundleValidatedPublicAPI(t *testing.T) {
	const (
		updaters = 3
		rqs      = 2
		keySpace = 256
	)
	n := updaters + rqs + 1
	checker := validate.NewChecker(n)
	s, err := ebrrq.NewWithOptions(ebrrq.SkipList, ebrrq.Lock, n, ebrrq.Options{
		Technique: ebrrq.Bundle,
		Recorder:  checker,
	})
	if err != nil {
		t.Fatal(err)
	}
	pre := s.NewThread()
	for k := int64(0); k < keySpace; k += 2 {
		pre.Insert(k, k)
	}
	pre.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := s.NewThread()
			defer th.Close()
			x := uint64(seed)*2654435761 + 1
			for !stop.Load() {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				k := int64(x % keySpace)
				if x&8 == 0 {
					th.Insert(k, int64(x>>32))
				} else {
					th.Delete(k)
				}
			}
		}(int64(w + 1))
	}
	for w := 0; w < rqs; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := s.NewThread()
			defer th.Close()
			x := uint64(seed)*2654435761 + 1
			for !stop.Load() {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				lo := int64(x % (keySpace - 64))
				res := th.RangeQuery(lo, lo+63)
				checker.AddRQ(th.ID(), th.LastRQTimestamp(), lo, lo+63, res)
			}
		}(int64(w + 100))
	}
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if checker.RQs() == 0 {
		t.Fatal("no range queries executed")
	}
	if err := checker.Check(); err != nil {
		t.Fatalf("validation failed after %d events / %d rqs: %v",
			checker.Events(), checker.RQs(), err)
	}
}
