// Command rqtrace analyzes flight-recorder dumps (internal/trace binary
// format) produced by /debug/trace, rqbench -trace-dump, or a chaos-harness
// stall dump. The default output is a human-readable per-phase latency
// report; -json emits the same report as JSON, and -chrome converts the
// dump to Chrome trace-event JSON for chrome://tracing or Perfetto
// (https://ui.perfetto.dev).
//
//	rqtrace dump.trace                 # text report
//	rqtrace -json dump.trace           # report as JSON
//	rqtrace -chrome out.json dump.trace
//	curl -s localhost:9090/debug/trace | rqtrace -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ebrrq/internal/trace"
)

func main() {
	var (
		asJSON = flag.Bool("json", false, "emit the analysis report as JSON instead of text")
		chrome = flag.String("chrome", "", "also write Chrome trace-event JSON (for Perfetto) to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rqtrace [-json] [-chrome out.json] <dump-file | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	snap, err := trace.ReadSnapshot(in)
	if err != nil {
		fatal(fmt.Errorf("parsing dump: %w", err))
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChromeTrace(f, snap); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (load in chrome://tracing or https://ui.perfetto.dev)\n", *chrome)
	}

	rep := trace.BuildReport(snap)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}
	rep.WriteText(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rqtrace:", err)
	os.Exit(2)
}
