// Command macrobench reproduces the paper's TPC-C macrobenchmark
// (Figure 9): the DBx-style database's indexes are replaced by each data
// structure × technique pair and the standard transaction mix is driven by
// all workers; the table reports committed transactions per microsecond.
//
// The paper runs 48 threads over 48 warehouses at full spec scale; -w,
// -workers and -scale shrink the run. As in the paper, the linked lists are
// omitted (linear-time indexes would take hours just to populate) and the
// Snap-collector is omitted from the table (the paper reports it was 1000x
// slower since every range query snapshots an entire index).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ebrrq"
	"ebrrq/internal/bench"
	"ebrrq/internal/obs"
	"ebrrq/internal/tpcc"
)

func main() {
	warehouses := flag.Int("w", 2, "warehouses (paper: 48)")
	workers := flag.Int("workers", 4, "worker threads (paper: 48)")
	scale := flag.Int("scale", 20, "population divisor (1 = full spec: 3000 customers/district, 100k items)")
	duration := flag.Duration("duration", time.Second, "measured run time")
	seed := flag.Int64("seed", 1, "random seed")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry(*workers + 4)
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("# metrics: http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
	}

	structures := []ebrrq.DataStructure{ebrrq.ABTree, ebrrq.LFBST, ebrrq.Citrus, ebrrq.SkipList}
	techniques := []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree, ebrrq.RLU, ebrrq.Unsafe}

	fmt.Printf("# TPC-C (Figure 9): %d warehouses, %d workers, scale 1/%d, %v per cell\n",
		*warehouses, *workers, *scale, *duration)
	fmt.Printf("# committed transactions per microsecond\n\n")

	header := bench.Row{Label: "structure"}
	for _, t := range techniques {
		header.Cells = append(header.Cells, t.String())
	}
	var rows []bench.Row
	for _, ds := range structures {
		row := bench.Row{Label: ds.String()}
		for _, tech := range techniques {
			if !ebrrq.Supported(ds, tech) {
				row.Cells = append(row.Cells, "-")
				continue
			}
			res, err := tpcc.RunBench(tpcc.Config{
				Warehouses: *warehouses,
				Scale:      *scale,
				DS:         ds,
				Tech:       tech,
				MaxThreads: *workers + 2,
				Seed:       *seed,
				Metrics:    reg,
			}, *workers, *duration)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s: %v\n", ds, tech, err)
				os.Exit(1)
			}
			row.Cells = append(row.Cells, fmt.Sprintf("%.4f", res.TxnsPerUs()))
		}
		rows = append(rows, row)
	}
	fmt.Print(bench.Table(header, rows))
}
