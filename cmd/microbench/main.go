// Command microbench reproduces the paper's microbenchmark experiments
// (Figures 5-8 and the limbo-list statistics of Experiment 1b) over every
// data structure × range-query technique pair.
//
// Usage:
//
//	microbench -exp all -threads 8 -scale 10 -duration 500ms
//
// -exp selects 1, 1b, 2, 3, 4, or all. -scale divides the paper's key
// ranges (ABTree 10^6; BSTs and skip list 10^5; lists 10^4) to fit small
// machines; -threads bounds the worker sweep (the paper used 48 hardware
// threads).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ebrrq/internal/bench"
	"ebrrq/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: 1, 1b, 2, 3, 4, latency, all")
	threads := flag.Int("threads", 8, "maximum worker threads (paper: 48)")
	scale := flag.Int64("scale", 10, "key-range divisor (1 = paper sizes)")
	duration := flag.Duration("duration", 500*time.Millisecond, "time per trial (paper: 3s)")
	trials := flag.Int("trials", 1, "trials per data point (paper: 5)")
	seed := flag.Int64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "also write machine-readable rows to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
	noMetrics := flag.Bool("no-metrics", false, "disable the observability layer (overhead A/B baseline)")
	flag.Parse()

	cfg := bench.ExpCfg{
		Threads:   *threads,
		Scale:     *scale,
		Duration:  *duration,
		Trials:    *trials,
		Seed:      *seed,
		Out:       os.Stdout,
		NoMetrics: *noMetrics,
	}
	if !*noMetrics {
		// One registry spans every trial: a live endpoint sees totals
		// accumulate while per-trial figures are taken as snapshot deltas.
		cfg.Registry = obs.NewRegistry(*threads + 8)
		if *metricsAddr != "" {
			srv, err := obs.Serve(*metricsAddr, cfg.Registry)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Printf("# metrics: http://%s/metrics (also /debug/vars, /debug/pprof)\n", srv.Addr())
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintln(f, "experiment,structure,technique,param,metric,value")
		cfg.CSV = f
	}
	switch *exp {
	case "1":
		cfg.Exp1()
	case "1b":
		cfg.Exp1b()
	case "2":
		cfg.Exp2()
	case "3":
		cfg.Exp3()
	case "4":
		cfg.Exp4()
	case "latency":
		cfg.ExpLatency()
	case "all":
		cfg.Exp1()
		fmt.Println()
		cfg.Exp1b()
		fmt.Println()
		cfg.Exp2()
		fmt.Println()
		cfg.Exp3()
		fmt.Println()
		cfg.Exp4()
		fmt.Println()
		cfg.ExpLatency()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if cfg.Registry != nil && *metricsAddr == "" {
		// Headless run: print the whole-run observability totals so the
		// data is still available without the HTTP endpoint.
		fmt.Printf("\n# Observability summary (all trials)\n%s", cfg.Registry.Snapshot())
	}
}
