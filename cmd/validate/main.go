// Command validate runs the paper's experimental correctness technique
// (§1, §5): concurrent workloads with range queries whose exact expected
// answers are recomputed offline from the update timestamps. Every data
// structure × linearizable technique pair is checked; the authors report
// this method caught bugs appearing once per thousand executions.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ebrrq"
	"ebrrq/internal/validate"
)

func main() {
	duration := flag.Duration("duration", 500*time.Millisecond, "run time per pair")
	updaters := flag.Int("updaters", 4, "update threads")
	rqThreads := flag.Int("rq", 2, "range-query threads")
	keys := flag.Int64("keys", 512, "key range")
	seed := flag.Int64("seed", time.Now().UnixNano(), "random seed")
	flag.Parse()

	structures := []ebrrq.DataStructure{ebrrq.LFList, ebrrq.LazyList, ebrrq.SkipList,
		ebrrq.LFBST, ebrrq.Citrus, ebrrq.ABTree}
	techniques := []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree}

	failed := 0
	for _, ds := range structures {
		for _, tech := range techniques {
			if err := run(ds, tech, *updaters, *rqThreads, *keys, *duration, *seed); err != nil {
				fmt.Printf("FAIL %-9s %-10s %v\n", ds, tech, err)
				failed++
			} else {
				fmt.Printf("ok   %-9s %-10s\n", ds, tech)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func run(ds ebrrq.DataStructure, tech ebrrq.Mode, updaters, rqThreads int, keys int64, d time.Duration, seed int64) error {
	n := updaters + rqThreads + 1
	checker := validate.NewChecker(n)
	set, err := ebrrq.NewWithOptions(ds, tech, n, ebrrq.Options{Recorder: checker})
	if err != nil {
		return err
	}
	pre := set.NewThread()
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < keys/2; {
		if pre.Insert(rng.Int63n(keys), rng.Int63()) {
			i++
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			th := set.NewThread()
			r := rand.New(rand.NewSource(s))
			for !stop.Load() {
				k := r.Int63n(keys)
				if r.Intn(2) == 0 {
					th.Insert(k, r.Int63())
				} else {
					th.Delete(k)
				}
			}
		}(seed + int64(w) + 1)
	}
	for w := 0; w < rqThreads; w++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			th := set.NewThread()
			r := rand.New(rand.NewSource(s))
			tid := th.ID()
			for !stop.Load() {
				width := int64(1) + r.Int63n(keys)
				lo := int64(0)
				if width < keys {
					lo = r.Int63n(keys - width)
				}
				res := th.RangeQuery(lo, lo+width-1)
				checker.AddRQ(tid, th.LastRQTimestamp(), lo, lo+width-1, res)
			}
		}(seed + 1000 + int64(w))
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	if err := checker.Check(); err != nil {
		return fmt.Errorf("%d events, %d rqs: %w", checker.Events(), checker.RQs(), err)
	}
	fmt.Printf("     %-9s %-10s validated %d range queries against %d update events\n",
		ds, tech, checker.RQs(), checker.Events())
	return nil
}
