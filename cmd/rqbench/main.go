// Command rqbench runs the mixed benchmark matrix (update-heavy and
// RQ-heavy points, solo and combined updates by default) across data
// structures, provider techniques and thread counts, writes the
// machine-readable BENCH_rq.json report, and — when given a committed
// baseline — fails if throughput regressed beyond the gate.
// `make bench-quick` and the CI bench-smoke job are thin wrappers
// around this command.
//
//	rqbench -out BENCH_rq.json                        # measure
//	rqbench -out BENCH_rq.json -baseline results/bench_rq_baseline.json
//	                                                  # measure + gate
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ebrrq"
	"ebrrq/internal/bench"
)

func main() {
	var (
		dsFlag    = flag.String("ds", "skiplist,lflist", "comma-separated structures: lflist,lazylist,skiplist,lfbst,citrus,abtree,bslack")
		techFlag  = flag.String("tech", "lock,lockfree", "comma-separated techniques: lock,htm,lockfree,unsafe")
		thrFlag   = flag.String("threads", "8", "comma-separated worker counts")
		shardFlag = flag.String("shards", "1", "comma-separated shard counts (1 = plain set)")
		rqPct     = flag.String("rq-pct", "0,10,50", "comma-separated range-query percentages (0 = pure updates)")
		combine   = flag.String("combine", "both", "update combining: off, on, or both (A/B per cell)")
		technique = flag.String("technique", "ebr", "range-query technique: ebr, bundle, or both (interleaved A/B per cell)")
		rqSize    = flag.Int64("rq-size", 64, "keys spanned per range query")
		scale     = flag.Int64("scale", 10, "key-range divisor (1 = paper sizes)")
		trials    = flag.Int("trials", 3, "trials per cell (results are merged)")
		duration  = flag.Duration("duration", 200*time.Millisecond, "duration per trial")
		seed      = flag.Int64("seed", 42, "base RNG seed")
		out       = flag.String("out", "BENCH_rq.json", "output report path ('-' for stdout)")
		baseline  = flag.String("baseline", "", "baseline BENCH_rq.json to gate against (missing file: gate skipped)")
		minWith   = flag.String("min-with", "", "earlier report to fold in, keeping per-cell throughput minima (baseline floors; missing file: skipped)")
		maxRegres = flag.Float64("max-regress", 0.20, "maximum allowed throughput regression vs baseline (fraction)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		noTrace   = flag.Bool("no-trace", false, "disable the flight recorder (loses the per-phase RQ splits)")
		traceDump = flag.String("trace-dump", "", "write the final trial's flight-recorder dump to this file (analyze with rqtrace)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := bench.RQBenchCfg{
		RQSize: *rqSize, Scale: *scale,
		Trials: *trials, Duration: *duration, Seed: *seed,
		Out:     os.Stderr,
		NoTrace: *noTrace,
	}
	if *traceDump != "" {
		if *noTrace {
			fatal(fmt.Errorf("-trace-dump requires tracing (drop -no-trace)"))
		}
		f, err := os.Create(*traceDump)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote flight-recorder dump %s (analyze: rqtrace %s)\n",
				*traceDump, *traceDump)
		}()
		cfg.TraceDump = f
	}
	var err error
	if cfg.DSs, err = parseDSs(*dsFlag); err != nil {
		fatal(err)
	}
	if cfg.Techs, err = parseTechs(*techFlag); err != nil {
		fatal(err)
	}
	if cfg.Threads, err = parseInts(*thrFlag); err != nil {
		fatal(err)
	}
	if cfg.Shards, err = parseInts(*shardFlag); err != nil {
		fatal(err)
	}
	if cfg.RQPcts, err = parsePcts(*rqPct); err != nil {
		fatal(err)
	}
	if cfg.Combine, err = parseCombine(*combine); err != nil {
		fatal(err)
	}
	if cfg.Techniques, err = parseTechniques(*technique); err != nil {
		fatal(err)
	}
	if *combine == "on" && !hasEBR(cfg.Techniques) {
		fatal(fmt.Errorf("-combine on requires the EBR technique: the aggregating update funnel is an EBR-provider feature and the bundle technique has no combined variant (use -technique ebr or both, or -combine off/both)"))
	}

	warnSingleProc()

	rep, err := bench.RunRQBench(cfg)
	if err != nil {
		fatal(err)
	}

	if *minWith != "" {
		if f, err := os.Open(*minWith); err == nil {
			prev, err := bench.ReadRQReport(f)
			f.Close()
			if err != nil {
				fatal(fmt.Errorf("parsing -min-with %s: %w", *minWith, err))
			}
			if msgs := bench.RQEnvMismatch(prev, rep); len(msgs) > 0 {
				fmt.Fprintf(os.Stderr, "-min-with %s is from a different host shape; skipped\n", *minWith)
			} else {
				rep = bench.MinRQReports(rep, prev)
				fmt.Fprintf(os.Stderr, "folded per-cell minima from %s\n", *minWith)
			}
		} else if !os.IsNotExist(err) {
			fatal(err)
		}
	}

	if *out == "-" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d points)\n", *out, len(rep.Points))
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "baseline %s not found; regression gate skipped\n", *baseline)
			return
		}
		if err != nil {
			fatal(err)
		}
		base, err := bench.ReadRQReport(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("parsing baseline %s: %w", *baseline, err))
		}
		if msgs := bench.RQEnvMismatch(base, rep); len(msgs) > 0 {
			fmt.Fprintln(os.Stderr, "########################################################")
			fmt.Fprintln(os.Stderr, "# WARNING: baseline was measured on a different host    #")
			fmt.Fprintln(os.Stderr, "# shape; throughput comparison would be meaningless.    #")
			fmt.Fprintln(os.Stderr, "# REGRESSION GATE SKIPPED.                              #")
			fmt.Fprintln(os.Stderr, "########################################################")
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, "  env mismatch -", m)
			}
			fmt.Fprintln(os.Stderr, "refresh the baseline on this host with `make rebaseline`")
			return
		}
		if msgs := bench.CompareRQReports(base, rep, *maxRegres); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintln(os.Stderr, "REGRESSION: "+m)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "regression gate passed (max allowed %.0f%%)\n", 100**maxRegres)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rqbench:", err)
	os.Exit(2)
}

func parseDSs(s string) ([]ebrrq.DataStructure, error) {
	var out []ebrrq.DataStructure
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "lflist":
			out = append(out, ebrrq.LFList)
		case "lazylist":
			out = append(out, ebrrq.LazyList)
		case "skiplist":
			out = append(out, ebrrq.SkipList)
		case "lfbst":
			out = append(out, ebrrq.LFBST)
		case "citrus":
			out = append(out, ebrrq.Citrus)
		case "abtree":
			out = append(out, ebrrq.ABTree)
		case "bslack":
			out = append(out, ebrrq.BSlack)
		case "":
		default:
			return nil, fmt.Errorf("unknown data structure %q", part)
		}
	}
	return out, nil
}

func parseTechs(s string) ([]ebrrq.Mode, error) {
	var out []ebrrq.Mode
	for _, part := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(part)) {
		case "lock":
			out = append(out, ebrrq.Lock)
		case "htm":
			out = append(out, ebrrq.HTM)
		case "lockfree", "lock-free":
			out = append(out, ebrrq.LockFree)
		case "unsafe":
			out = append(out, ebrrq.Unsafe)
		case "":
		default:
			return nil, fmt.Errorf("unknown technique %q", part)
		}
	}
	return out, nil
}

// parsePcts is parseInts minus the n > 0 requirement: rq-pct 0 is a
// legitimate (pure-update) benchmark point.
func parsePcts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 100 {
			return nil, fmt.Errorf("bad percentage %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseCombine(s string) ([]bool, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off":
		return []bool{false}, nil
	case "on":
		return []bool{true}, nil
	case "both", "":
		return []bool{false, true}, nil
	default:
		return nil, fmt.Errorf("bad -combine %q (want off, on or both)", s)
	}
}

func parseTechniques(s string) ([]ebrrq.Technique, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "ebr", "":
		return []ebrrq.Technique{ebrrq.EBR}, nil
	case "bundle":
		return []ebrrq.Technique{ebrrq.Bundle}, nil
	case "both":
		// EBR first, then bundle, inside each cell: the interleaving is the
		// point — both techniques of a cell see the same host conditions.
		return []ebrrq.Technique{ebrrq.EBR, ebrrq.Bundle}, nil
	default:
		return nil, fmt.Errorf("bad -technique %q (want ebr, bundle or both)", s)
	}
}

func hasEBR(tqs []ebrrq.Technique) bool {
	for _, tq := range tqs {
		if tq == ebrrq.EBR {
			return true
		}
	}
	return false
}

// warnSingleProc makes the dead-counter trap impossible to miss: with a
// single P there is no goroutine overlap, so every contention-path counter
// (ts_shared, fence_shared, the combine_* family) reads zero regardless of
// how the code would behave under load.
func warnSingleProc() {
	if runtime.GOMAXPROCS(0) > 1 {
		return
	}
	fmt.Fprintln(os.Stderr, "########################################################")
	fmt.Fprintln(os.Stderr, "# WARNING: GOMAXPROCS=1 — contention counters are dead. #")
	fmt.Fprintln(os.Stderr, "########################################################")
	fmt.Fprintln(os.Stderr, "  "+bench.SingleProcNote)
	fmt.Fprintln(os.Stderr, "  rerun with GOMAXPROCS>=2 to measure sharing/combining")
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
