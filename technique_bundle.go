package ebrrq

import (
	"ebrrq/internal/bundle"
	"ebrrq/internal/epoch"
	"ebrrq/internal/obs"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
)

// Bundle is the bundled-references Technique (Nelson-Slivon, Hassan and
// Palmieri; internal/bundle): every list link carries a timestamp-ordered
// version history, a range query dereferences per link the newest version
// below its timestamp, and version garbage is pruned against the oldest
// active query. Updates pay one or two bundle-entry prepends; range
// queries never scan announcements or limbo.
//
// Supported structures: LazyList and SkipList (the bundled structures of
// the original paper). The Mode dimension collapses for this technique —
// update synchronization is the structures' own fine-grained locking, so
// Lock, HTM and LockFree all select the same implementation (accepted for
// benchmark-matrix symmetry; Unsafe, Snap and RLU are EBR-family
// baselines and are rejected).
var Bundle Technique = bundleTechnique{}

type bundleTechnique struct{}

func (bundleTechnique) String() string { return "bundle" }

// Supports reports the bundled structures: the two list shapes, under any
// timestamp-capable mode name.
func (bundleTechnique) Supports(d DataStructure, m Mode) bool {
	if d != LazyList && d != SkipList {
		return false
	}
	return m == Lock || m == HTM || m == LockFree
}

func (bundleTechnique) newSet(d DataStructure, m Mode, maxThreads int, opt Options, reg *obs.Registry) (techSet, error) {
	prov := bundle.New(bundle.Config{
		MaxThreads:     maxThreads,
		Recorder:       opt.Recorder,
		Clock:          opt.Clock,
		Trace:          opt.Trace,
		TraceLabel:     opt.TraceLabel,
		LimboSoftLimit: opt.LimboSoftLimit,
		LimboHardLimit: opt.LimboHardLimit,
		PressureWait:   opt.PressureWait,
	})
	if reg != nil {
		prov.EnableMetrics(reg)
	}
	b := &bundleSet{prov: prov}
	switch d {
	case LazyList:
		b.list = bundle.NewList(prov)
	case SkipList:
		b.skip = bundle.NewSkipList(prov)
	}
	return b, nil
}

type bundleSet struct {
	prov *bundle.Provider
	list *bundle.List // exactly one of list/skip is non-nil
	skip *bundle.SkipList
}

func (b *bundleSet) newThread() (techThread, error) {
	bt, err := b.prov.TryRegister()
	if err != nil {
		return nil, err
	}
	return &bundleThread{set: b, bt: bt}, nil
}

func (b *bundleSet) provider() *rqprov.Provider    { return nil }
func (b *bundleSet) domain() *epoch.Domain         { return b.prov.Domain() }
func (b *bundleSet) clock() rqprov.TimestampSource { return b.prov.Clock() }
func (b *bundleSet) health() obs.HealthCheck       { return b.prov.Health() }
func (b *bundleSet) htmAborts() uint64             { return 0 }

// BundleProvider exposes the bundle provider to in-repo harnesses (chaos
// tests, the bench loop's GC hooks); nil when the set's technique is not
// Bundle.
func (s *Set) BundleProvider() *bundle.Provider {
	if b, ok := s.impl.(*bundleSet); ok {
		return b.prov
	}
	return nil
}

type bundleThread struct {
	set *bundleSet
	bt  *bundle.Thread
}

func (t *bundleThread) insert(key, value int64) bool {
	if l := t.set.list; l != nil {
		return l.Insert(t.bt, key, value)
	}
	return t.set.skip.Insert(t.bt, key, value)
}

func (t *bundleThread) remove(key int64) bool {
	if l := t.set.list; l != nil {
		return l.Delete(t.bt, key)
	}
	return t.set.skip.Delete(t.bt, key)
}

func (t *bundleThread) contains(key int64) (int64, bool) {
	if l := t.set.list; l != nil {
		return l.Contains(t.bt, key)
	}
	return t.set.skip.Contains(t.bt, key)
}

func (t *bundleThread) rangeQuery(low, high int64) []KV {
	if l := t.set.list; l != nil {
		return l.RangeQuery(t.bt, low, high)
	}
	return t.set.skip.RangeQuery(t.bt, low, high)
}

func (t *bundleThread) id() int                        { return t.bt.ID() }
func (t *bundleThread) close()                         { t.bt.Deregister() }
func (t *bundleThread) abort()                         { t.bt.Abort() }
func (t *bundleThread) admitUpdate() error             { return t.bt.AdmitUpdate() }
func (t *bundleThread) traceRing() *trace.Ring         { return t.bt.TraceRing() }
func (t *bundleThread) lastRQTS() uint64               { return t.bt.LastRQTS() }
func (t *bundleThread) pinEpoch()                      { t.bt.PinEpoch() }
func (t *bundleThread) unpinEpoch()                    { t.bt.UnpinEpoch() }
func (t *bundleThread) pinTimestamp(ts uint64)         { t.bt.PinTimestamp(ts) }
func (t *bundleThread) providerThread() *rqprov.Thread { return nil }
