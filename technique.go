package ebrrq

import (
	"fmt"

	"ebrrq/internal/ds/abtree"
	"ebrrq/internal/ds/citrus"
	"ebrrq/internal/ds/lazylist"
	"ebrrq/internal/ds/lfbst"
	"ebrrq/internal/ds/lflist"
	"ebrrq/internal/ds/rlucitrus"
	"ebrrq/internal/ds/rlulist"
	"ebrrq/internal/ds/skiplist"
	"ebrrq/internal/epoch"
	"ebrrq/internal/obs"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
)

// Technique selects the range-query algorithm family powering a Set: how
// threads register with the structure, how updates linearize against the
// shared timestamp, and how a range query reconstructs the set's state at
// its linearization timestamp. Two techniques are provided:
//
//   - EBR (the default): the paper's approach — range queries sweep the
//     announcements and epoch limbo lists to recover concurrently deleted
//     nodes. Cheap updates, RQ cost proportional to the churn.
//   - Bundle: bundled references (Nelson-Slivon et al., arXiv 2012.15438) —
//     every list link keeps a timestamp-ordered history ("bundle"), so a
//     range query dereferences, per link, the newest entry below its
//     timestamp and never looks at limbo at all. Heavier updates, RQ cost
//     independent of churn.
//
// The interface is sealed (the unexported constructor): techniques ship
// with the package, because each one must uphold the linearizability
// contract the validator checks — updates stamp itime/dtime with the exact
// clock value at which they linearize, range queries return precisely the
// keys whose update history puts them in the set below the query's
// timestamp, and thread lifecycle (close/abort) never strands epoch
// protection. Select one via Options.Technique / ShardedOptions.Technique.
type Technique interface {
	// String returns the technique's short name ("ebr", "bundle"), used in
	// bench reports and error messages.
	String() string
	// Supports reports whether the technique can drive the given structure
	// in the given mode (the technique feasibility matrix; see the package
	// Supported function for the EBR matrix).
	Supports(d DataStructure, m Mode) bool
	// newSet builds the technique's per-Set state. reg is the set's labeled
	// metric registry (nil when metrics are off). Sealed: only in-package
	// techniques can implement Technique.
	newSet(d DataStructure, m Mode, maxThreads int, opt Options, reg *obs.Registry) (techSet, error)
}

// EBR is the default Technique: the paper's epoch-based range-query
// provider (internal/rqprov) plus its baselines — Unsafe, Snap-collector
// and RLU are modes of this technique.
var EBR Technique = ebrTechnique{}

// techSet is the per-Set contract every technique implements: thread
// registration plus the health/reclamation surfaces the Set accessors and
// the shard router need. Accessors may return nil when the technique lacks
// the facility (RLU has no epoch domain, no clock and no provider).
type techSet interface {
	// newThread registers one goroutine, returning its per-thread handle.
	newThread() (techThread, error)
	// provider returns the underlying EBR provider, nil for every other
	// technique (the deprecated Set.Provider escape hatch).
	provider() *rqprov.Provider
	// domain returns the epoch reclamation domain backing the set's node
	// memory (watchdogs, limbo statistics), nil if there is none.
	domain() *epoch.Domain
	// clock returns the timestamp source updates and range queries
	// linearize on, nil for non-timestamp techniques.
	clock() rqprov.TimestampSource
	// health returns the technique's health check (obs.HealthCheck zero
	// value when the technique has nothing to report).
	health() obs.HealthCheck
	// htmAborts returns the cumulative emulated-HTM abort count.
	htmAborts() uint64
}

// techThread is the per-thread contract: the four set operations plus the
// lifecycle and cross-shard hooks the Thread wrappers and the shard router
// call. Implementations are single-goroutine like Thread itself.
type techThread interface {
	insert(key, value int64) bool
	remove(key int64) bool
	contains(key int64) (int64, bool)
	rangeQuery(low, high int64) []KV

	// id is the thread's registration index (-1 when the technique does
	// not number threads).
	id() int
	// close releases the thread's slot permanently (idempotent).
	close()
	// abort clears in-flight state after a panic unwound an operation;
	// the thread remains usable.
	abort()
	// admitUpdate runs the backpressure gate before an update; it returns
	// ErrMemoryPressure when the write must be shed.
	admitUpdate() error
	// traceRing returns the thread's flight-recorder ring (nil untraced).
	traceRing() *trace.Ring
	// lastRQTS returns the linearization timestamp of the thread's most
	// recent range query.
	lastRQTS() uint64
	// pinEpoch / unpinEpoch bracket a cross-shard range query: from the
	// pin on, the technique must retain every node (and every version)
	// a query at a timestamp taken after the pin may need.
	pinEpoch()
	unpinEpoch()
	// pinTimestamp forces the thread's next range query to linearize at
	// ts instead of taking its own timestamp (single-use).
	pinTimestamp(ts uint64)
	// providerThread returns the underlying EBR provider thread, nil for
	// every other technique (the deprecated Thread.ProviderThread hatch).
	providerThread() *rqprov.Thread
}

// ---------------------------------------------------------------------------
// EBR technique (the paper's provider + baselines)
// ---------------------------------------------------------------------------

type ebrTechnique struct{}

func (ebrTechnique) String() string { return "ebr" }

// Supports implements the feasibility matrix of the paper's artifact
// (Table 1): the Snap-collector needs logical deletion (lists only); RLU
// requires a ground-up redesign and is provided for LazyList and Citrus.
func (ebrTechnique) Supports(d DataStructure, m Mode) bool {
	switch m {
	case Unsafe, Lock, HTM, LockFree:
		return d >= LFList && d <= BSlack
	case Snap:
		return d == LFList || d == LazyList || d == SkipList
	case RLU:
		return d == LazyList || d == Citrus
	}
	return false
}

func (ebrTechnique) newSet(d DataStructure, m Mode, maxThreads int, opt Options, reg *obs.Registry) (techSet, error) {
	if m == RLU {
		switch d {
		case LazyList:
			return &rluSet{impl: rluListImpl{l: rlulist.New(maxThreads)}}, nil
		case Citrus:
			return &rluSet{impl: rluCitrusImpl{t: rlucitrus.New(maxThreads)}}, nil
		}
	}
	mode := rqprov.ModeUnsafe
	switch m {
	case Lock:
		mode = rqprov.ModeLock
	case HTM:
		mode = rqprov.ModeHTM
	case LockFree:
		mode = rqprov.ModeLockFree
	}
	// Limbo lists are dtime-sorted unless helpers may physically unlink
	// other threads' victims (Harris list); see the package docs of each
	// structure.
	limboSorted := d != LFList
	maxAnnounce := 0 // provider default
	if d == BSlack {
		// One B-slack compression deletes a whole sibling group.
		maxAnnounce = 2*maxThreads + 8
		if min := 2*16 + 8; maxAnnounce < min {
			maxAnnounce = min
		}
	}
	prov := rqprov.New(rqprov.Config{
		MaxThreads:     maxThreads,
		Mode:           mode,
		LimboSorted:    limboSorted,
		MaxAnnounce:    maxAnnounce,
		Recorder:       opt.Recorder,
		Clock:          opt.Clock,
		WaitBudget:     opt.WaitBudget,
		Trace:          opt.Trace,
		TraceLabel:     opt.TraceLabel,
		LimboSoftLimit: opt.LimboSoftLimit,
		LimboHardLimit: opt.LimboHardLimit,
		PressureWait:   opt.PressureWait,
		CombineUpdates: opt.CombineUpdates,
		CombineBatch:   opt.CombineBatch,
	})
	if reg != nil {
		prov.EnableMetrics(reg)
	}
	e := &ebrSet{prov: prov}
	switch d {
	case LFList:
		if m == Snap {
			e.impl = provImpl{s: lflist.NewSnap(prov)}
		} else {
			e.impl = provImpl{s: lflist.New(prov)}
		}
	case LazyList:
		if m == Snap {
			e.impl = provImpl{s: lazylist.NewSnap(prov)}
		} else {
			e.impl = provImpl{s: lazylist.New(prov)}
		}
	case SkipList:
		if m == Snap {
			e.impl = provImpl{s: skiplist.NewSnap(prov)}
		} else {
			e.impl = provImpl{s: skiplist.New(prov)}
		}
	case LFBST:
		e.impl = provImpl{s: lfbst.New(prov)}
	case Citrus:
		e.impl = provImpl{s: citrus.New(prov)}
	case ABTree:
		e.impl = provImpl{s: abtree.New(prov)}
	case BSlack:
		e.impl = provImpl{s: abtree.NewBSlack(prov)}
	default:
		return nil, fmt.Errorf("ebrrq: unknown data structure %v", d)
	}
	return e, nil
}

type ebrSet struct {
	prov *rqprov.Provider
	impl setImpl
}

func (e *ebrSet) newThread() (techThread, error) {
	pt, err := e.prov.TryRegister()
	if err != nil {
		return nil, err
	}
	return &ebrThread{impl: e.impl.newThread(pt), pt: pt}, nil
}

func (e *ebrSet) provider() *rqprov.Provider    { return e.prov }
func (e *ebrSet) domain() *epoch.Domain         { return e.prov.Domain() }
func (e *ebrSet) clock() rqprov.TimestampSource { return e.prov.Clock() }
func (e *ebrSet) health() obs.HealthCheck       { return e.prov.Health() }
func (e *ebrSet) htmAborts() uint64             { return e.prov.HTMAborts() }

type ebrThread struct {
	impl threadImpl
	pt   *rqprov.Thread
}

func (t *ebrThread) insert(key, value int64) bool     { return t.impl.insert(key, value) }
func (t *ebrThread) remove(key int64) bool            { return t.impl.remove(key) }
func (t *ebrThread) contains(key int64) (int64, bool) { return t.impl.contains(key) }
func (t *ebrThread) rangeQuery(low, high int64) []KV  { return t.impl.rangeQuery(low, high) }

func (t *ebrThread) id() int                        { return t.pt.ID() }
func (t *ebrThread) close()                         { t.pt.Deregister() }
func (t *ebrThread) abort()                         { t.pt.Abort() }
func (t *ebrThread) admitUpdate() error             { return t.pt.AdmitUpdate() }
func (t *ebrThread) traceRing() *trace.Ring         { return t.pt.TraceRing() }
func (t *ebrThread) lastRQTS() uint64               { return t.pt.LastRQTS() }
func (t *ebrThread) pinEpoch()                      { t.pt.PinEpoch() }
func (t *ebrThread) unpinEpoch()                    { t.pt.UnpinEpoch() }
func (t *ebrThread) pinTimestamp(ts uint64)         { t.pt.PinTimestamp(ts) }
func (t *ebrThread) providerThread() *rqprov.Thread { return t.pt }

// ---------------------------------------------------------------------------
// RLU baseline (no provider, no epoch domain, no clock)
// ---------------------------------------------------------------------------

type rluSet struct {
	impl setImpl
}

func (r *rluSet) newThread() (techThread, error) {
	return &rluThread{impl: r.impl.newThread(nil)}, nil
}

func (r *rluSet) provider() *rqprov.Provider    { return nil }
func (r *rluSet) domain() *epoch.Domain         { return nil }
func (r *rluSet) clock() rqprov.TimestampSource { return nil }
func (r *rluSet) health() obs.HealthCheck       { return obs.HealthCheck{} }
func (r *rluSet) htmAborts() uint64             { return 0 }

type rluThread struct {
	impl threadImpl
}

func (t *rluThread) insert(key, value int64) bool     { return t.impl.insert(key, value) }
func (t *rluThread) remove(key int64) bool            { return t.impl.remove(key) }
func (t *rluThread) contains(key int64) (int64, bool) { return t.impl.contains(key) }
func (t *rluThread) rangeQuery(low, high int64) []KV  { return t.impl.rangeQuery(low, high) }

func (t *rluThread) id() int                        { return -1 }
func (t *rluThread) close()                         {}
func (t *rluThread) abort()                         {}
func (t *rluThread) admitUpdate() error             { return nil }
func (t *rluThread) traceRing() *trace.Ring         { return nil }
func (t *rluThread) lastRQTS() uint64               { return 0 }
func (t *rluThread) pinEpoch()                      {}
func (t *rluThread) unpinEpoch()                    {}
func (t *rluThread) pinTimestamp(uint64)            {}
func (t *rluThread) providerThread() *rqprov.Thread { return nil }
