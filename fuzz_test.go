package ebrrq_test

import (
	"errors"
	"testing"

	"ebrrq"
	"ebrrq/internal/epoch"
)

// FuzzSetAgainstModel decodes a byte string into an operation sequence and
// checks every structure × technique pair against a reference map. Run
// with `go test -fuzz FuzzSetAgainstModel` to explore; without -fuzz the
// seed corpus doubles as a regression test.
func FuzzSetAgainstModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x11, 0x92, 0x11, 0x25, 0x8f, 0x11})
	f.Add([]byte("insert-delete-range-fuzzing"))
	f.Add([]byte{255, 254, 253, 0, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1})

	type pair struct {
		d ebrrq.DataStructure
		t ebrrq.Mode
	}
	var ps []pair
	for _, d := range []ebrrq.DataStructure{ebrrq.LFList, ebrrq.LazyList,
		ebrrq.SkipList, ebrrq.LFBST, ebrrq.Citrus, ebrrq.ABTree} {
		for _, t := range []ebrrq.Mode{ebrrq.Lock, ebrrq.LockFree, ebrrq.Snap, ebrrq.RLU} {
			if ebrrq.Supported(d, t) {
				ps = append(ps, pair{d, t})
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		for _, p := range ps {
			s, err := ebrrq.New(p.d, p.t, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			model := map[int64]int64{}
			for i := 0; i+1 < len(data); i += 2 {
				op := data[i] % 4
				k := int64(data[i+1] % 32)
				switch op {
				case 0:
					v := int64(data[i]) * 7
					_, have := model[k]
					got := th.Insert(k, v)
					if got == have {
						t.Fatalf("%v/%v op %d: Insert(%d)=%v have=%v", p.d, p.t, i, k, got, have)
					}
					if !have {
						model[k] = v
					}
				case 1:
					_, have := model[k]
					if got := th.Delete(k); got != have {
						t.Fatalf("%v/%v op %d: Delete(%d)=%v have=%v", p.d, p.t, i, k, got, have)
					}
					delete(model, k)
				case 2:
					wantV, want := model[k]
					gotV, got := th.Contains(k)
					if got != want || (want && gotV != wantV) {
						t.Fatalf("%v/%v op %d: Contains(%d)", p.d, p.t, i, k)
					}
				default:
					hi := k + int64(data[i]%16)
					res := th.RangeQuery(k, hi)
					want := 0
					for mk := range model {
						if k <= mk && mk <= hi {
							want++
						}
					}
					if len(res) != want {
						t.Fatalf("%v/%v op %d: RQ(%d,%d)=%d want %d", p.d, p.t, i, k, hi, len(res), want)
					}
					for j, kv := range res {
						if kv.Value != model[kv.Key] {
							t.Fatalf("%v/%v op %d: RQ value mismatch at %d", p.d, p.t, i, kv.Key)
						}
						if j > 0 && res[j-1].Key >= kv.Key {
							t.Fatalf("%v/%v op %d: RQ unsorted", p.d, p.t, i)
						}
					}
				}
			}
		}
	})
}

// FuzzEpochStallResume drives the epoch domain's stall / neutralize / resume
// protocol from a byte string: one worker retires garbage while a victim
// thread stalls mid-operation, gets neutralized (possibly), and resumes. The
// fuzzer checks the memory-accounting invariants after every step — the
// bounded footprint is exactly limbo plus quarantine, and the quarantine is
// empty whenever no neutralization is unacknowledged — and that a full drain
// at the end frees every retired node (no leak, no double free).
func FuzzEpochStallResume(f *testing.F) {
	f.Add([]byte{0, 1, 3, 0, 4, 2, 0, 5})
	f.Add([]byte{1, 3, 0, 0, 0, 0, 4, 1, 2, 1, 3, 2})
	f.Add([]byte("stall-neutralize-resume"))
	f.Add([]byte{3, 3, 3, 1, 1, 1, 0, 0, 0, 2, 2, 2, 4, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := epoch.NewDomain(3)
		freed := 0
		d.SetFreeFunc(func(tid int, n *epoch.Node) { freed++ })
		d.SetLimboLimits(4, 16)
		worker := d.Register()
		victim := d.Register()
		retired := 0
		victimStalled := false

		// startVictim runs op, converting the neutralization abort into the
		// documented recovery: deregister, adopt the freed slot.
		victimDo := func(op func()) {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if err, ok := r.(error); !ok || !errors.Is(err, epoch.ErrNeutralized) {
					panic(r)
				}
				victim.Deregister()
				victim = d.Register()
				victimStalled = false
			}()
			op()
		}

		check := func(step int) {
			if got, want := d.BoundedNodes(), d.LimboNodes()+d.QuarantinedNodes(); got != want {
				t.Fatalf("step %d: BoundedNodes=%d, limbo+quarantine=%d", step, got, want)
			}
			if d.UnackedNeutralizations() == 0 && d.QuarantinedNodes() != 0 {
				t.Fatalf("step %d: quarantine holds %d nodes with no unacked neutralization",
					step, d.QuarantinedNodes())
			}
			if d.LimboNodes() == 0 && d.LimboBytes() != 0 {
				t.Fatalf("step %d: limbo bytes %d with zero nodes", step, d.LimboBytes())
			}
		}

		for i, b := range data {
			switch b % 6 {
			case 0: // worker churns: one op retiring one node
				n := &epoch.Node{}
				n.InitKey(int64(i), int64(b))
				worker.StartOp()
				worker.Retire(n)
				worker.EndOp()
				retired++
			case 1: // victim stalls mid-operation
				if !victimStalled {
					victimDo(func() {
						victim.StartOp()
						victimStalled = true
					})
				}
			case 2: // victim resumes; EndOp acknowledges without panicking
				if victimStalled {
					victim.EndOp()
					victimStalled = false
				}
			case 3: // the watchdog's last rung
				d.Neutralize(victim.ID())
			case 4: // the watchdog's first two rungs
				d.ForceAdvance(3)
				d.ForceSweep()
			case 5: // a backpressured thread's self-service drain
				if !victimStalled {
					victimDo(func() { victim.ReclaimStale() })
				}
				worker.ReclaimStale()
			}
			check(i)
		}

		// Drain everything: resume the victim, retire both threads, and let a
		// fresh thread advance the epoch until all garbage is reclaimed.
		if victimStalled {
			victimDo(func() { victim.EndOp() })
		}
		victimDo(func() { victim.Deregister() })
		worker.Deregister()
		fresh := d.Register()
		for i := 0; i < 20*32; i++ {
			fresh.StartOp()
			fresh.EndOp()
		}
		check(len(data))
		if d.LimboSize() != 0 || d.QuarantinedNodes() != 0 {
			t.Fatalf("after drain: limbo=%d quarantine=%d", d.LimboSize(), d.QuarantinedNodes())
		}
		if freed != retired {
			t.Fatalf("freed %d of %d retired nodes", freed, retired)
		}
	})
}
