package ebrrq_test

import (
	"testing"

	"ebrrq"
)

// FuzzSetAgainstModel decodes a byte string into an operation sequence and
// checks every structure × technique pair against a reference map. Run
// with `go test -fuzz FuzzSetAgainstModel` to explore; without -fuzz the
// seed corpus doubles as a regression test.
func FuzzSetAgainstModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x11, 0x92, 0x11, 0x25, 0x8f, 0x11})
	f.Add([]byte("insert-delete-range-fuzzing"))
	f.Add([]byte{255, 254, 253, 0, 0, 0, 128, 64, 32, 16, 8, 4, 2, 1})

	type pair struct {
		d ebrrq.DataStructure
		t ebrrq.Technique
	}
	var ps []pair
	for _, d := range []ebrrq.DataStructure{ebrrq.LFList, ebrrq.LazyList,
		ebrrq.SkipList, ebrrq.LFBST, ebrrq.Citrus, ebrrq.ABTree} {
		for _, t := range []ebrrq.Technique{ebrrq.Lock, ebrrq.LockFree, ebrrq.Snap, ebrrq.RLU} {
			if ebrrq.Supported(d, t) {
				ps = append(ps, pair{d, t})
			}
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		for _, p := range ps {
			s, err := ebrrq.New(p.d, p.t, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			model := map[int64]int64{}
			for i := 0; i+1 < len(data); i += 2 {
				op := data[i] % 4
				k := int64(data[i+1] % 32)
				switch op {
				case 0:
					v := int64(data[i]) * 7
					_, have := model[k]
					got := th.Insert(k, v)
					if got == have {
						t.Fatalf("%v/%v op %d: Insert(%d)=%v have=%v", p.d, p.t, i, k, got, have)
					}
					if !have {
						model[k] = v
					}
				case 1:
					_, have := model[k]
					if got := th.Delete(k); got != have {
						t.Fatalf("%v/%v op %d: Delete(%d)=%v have=%v", p.d, p.t, i, k, got, have)
					}
					delete(model, k)
				case 2:
					wantV, want := model[k]
					gotV, got := th.Contains(k)
					if got != want || (want && gotV != wantV) {
						t.Fatalf("%v/%v op %d: Contains(%d)", p.d, p.t, i, k)
					}
				default:
					hi := k + int64(data[i]%16)
					res := th.RangeQuery(k, hi)
					want := 0
					for mk := range model {
						if k <= mk && mk <= hi {
							want++
						}
					}
					if len(res) != want {
						t.Fatalf("%v/%v op %d: RQ(%d,%d)=%d want %d", p.d, p.t, i, k, hi, len(res), want)
					}
					for j, kv := range res {
						if kv.Value != model[kv.Key] {
							t.Fatalf("%v/%v op %d: RQ value mismatch at %d", p.d, p.t, i, kv.Key)
						}
						if j > 0 && res[j-1].Key >= kv.Key {
							t.Fatalf("%v/%v op %d: RQ unsorted", p.d, p.t, i)
						}
					}
				}
			}
		}
	})
}
