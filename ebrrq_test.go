package ebrrq_test

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/obs"
)

var allStructures = []ebrrq.DataStructure{
	ebrrq.LFList, ebrrq.LazyList, ebrrq.SkipList,
	ebrrq.LFBST, ebrrq.Citrus, ebrrq.ABTree, ebrrq.BSlack,
}

var allTechniques = []ebrrq.Mode{
	ebrrq.Unsafe, ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree, ebrrq.Snap, ebrrq.RLU,
}

func TestSupportMatrix(t *testing.T) {
	// Paper artifact Table 1.
	wantSnap := map[ebrrq.DataStructure]bool{
		ebrrq.LFList: true, ebrrq.LazyList: true, ebrrq.SkipList: true,
	}
	wantRLU := map[ebrrq.DataStructure]bool{
		ebrrq.LazyList: true, ebrrq.Citrus: true,
	}
	for _, d := range allStructures {
		for _, tech := range allTechniques {
			got := ebrrq.Supported(d, tech)
			want := true
			switch tech {
			case ebrrq.Snap:
				want = wantSnap[d]
			case ebrrq.RLU:
				want = wantRLU[d]
			}
			if got != want {
				t.Errorf("Supported(%v,%v) = %v, want %v", d, tech, got, want)
			}
			_, err := ebrrq.New(d, tech, 2)
			if (err == nil) != want {
				t.Errorf("New(%v,%v) err=%v, want ok=%v", d, tech, err, want)
			}
		}
	}
}

func TestQuickstartAllPairs(t *testing.T) {
	for _, d := range allStructures {
		for _, tech := range allTechniques {
			if !ebrrq.Supported(d, tech) {
				continue
			}
			t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
				s, err := ebrrq.New(d, tech, 2)
				if err != nil {
					t.Fatal(err)
				}
				th := s.NewThread()
				for i := int64(0); i < 100; i++ {
					if !th.Insert(i*2, i) {
						t.Fatalf("insert %d failed", i*2)
					}
				}
				if th.Insert(10, 1) {
					t.Fatal("duplicate insert succeeded")
				}
				if v, ok := th.Contains(42); !ok || v != 21 {
					t.Fatalf("Contains(42) = %d,%v", v, ok)
				}
				res := th.RangeQuery(10, 30)
				if len(res) != 11 || res[0].Key != 10 || res[10].Key != 30 {
					t.Fatalf("RangeQuery(10,30): %v", res)
				}
				for i := int64(0); i < 100; i += 4 {
					if !th.Delete(i * 2) {
						t.Fatalf("delete %d failed", i*2)
					}
				}
				res = th.RangeQuery(ebrrq.MinKey, ebrrq.MaxKey)
				if len(res) != 75 {
					t.Fatalf("full RQ len %d, want 75", len(res))
				}
			})
		}
	}
}

// TestMetricsEndToEnd runs a metrics-instrumented set through every layer
// the ISSUE requires and checks that the registry saw the traffic and that
// the Prometheus encoding carries the headline series.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry(4)
	s, err := ebrrq.NewWithOptions(ebrrq.SkipList, ebrrq.LockFree, 4,
		ebrrq.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := s.NewThread()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := r.Int63n(128)
				switch r.Intn(3) {
				case 0:
					th.Insert(k, k)
				case 1:
					th.Delete(k)
				default:
					th.Contains(k)
				}
			}
		}(int64(w))
	}
	rq := s.NewThread()
	nrq := 0
	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		rq.RangeQuery(20, 100)
		nrq++
	}
	stop.Store(true)
	wg.Wait()

	snap := reg.Snapshot()
	if got := snap.Counter("ebrrq_rq_total"); got != uint64(nrq) {
		t.Errorf("ebrrq_rq_total = %d, want %d", got, nrq)
	}
	if snap.Counter("ebrrq_ops_total") == 0 {
		t.Error("ebrrq_ops_total stayed zero")
	}
	if snap.Counter("ebrrq_epoch_retires_total") == 0 {
		t.Error("ebrrq_epoch_retires_total stayed zero")
	}
	if h, ok := snap.Hist("ebrrq_rq_latency_ns"); !ok || h.Count != uint64(nrq) {
		t.Errorf("ebrrq_rq_latency_ns count = %d (ok=%v), want %d", h.Count, ok, nrq)
	}

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	for _, series := range []string{
		"ebrrq_limbo_visited_total",
		"ebrrq_rq_latency_ns_bucket",
		"ebrrq_htm_aborts_total",
	} {
		if !strings.Contains(prom, series) {
			t.Errorf("prometheus output missing %s", series)
		}
	}
}

// TestMetricsDisabledNoRegistry checks the default (metrics off) path still
// works and allocates no registry machinery.
func TestMetricsDisabledNoRegistry(t *testing.T) {
	s, err := ebrrq.New(ebrrq.SkipList, ebrrq.Lock, 2)
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread()
	th.Insert(1, 1)
	th.RangeQuery(0, 10)
	if v, ok := th.Contains(1); !ok || v != 1 {
		t.Fatalf("Contains(1) = %d,%v", v, ok)
	}
}

// TestConcurrentSmokeAllPairs exercises every supported pair briefly under
// concurrency through the public API.
// TestCombineConcurrentSmoke hammers combined updates through the public
// API on the structures the CI race step targets: an update-heavy mix (more
// runnable updaters than typical cores, periodic range queries) with
// CombineUpdates on, checking RQ results stay sorted and that throughput
// metrics still flow. Run under -race this exercises the funnel's
// publish/claim/consume handoffs across goroutines.
func TestCombineConcurrentSmoke(t *testing.T) {
	for _, d := range []ebrrq.DataStructure{ebrrq.LFList, ebrrq.SkipList} {
		for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree} {
			t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
				s, err := ebrrq.NewWithOptions(d, tech, 6,
					ebrrq.Options{CombineUpdates: true, CombineBatch: 4})
				if err != nil {
					t.Fatal(err)
				}
				var stop atomic.Bool
				var wg sync.WaitGroup
				for w := 0; w < 5; w++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						th := s.NewThread()
						defer th.Close()
						r := rand.New(rand.NewSource(seed))
						for i := 0; !stop.Load(); i++ {
							k := r.Int63n(256)
							if r.Intn(2) == 0 {
								th.Insert(k, k)
							} else {
								th.Delete(k)
							}
							if i%64 == 0 {
								res := th.RangeQuery(50, 150)
								for j := 1; j < len(res); j++ {
									if res[j-1].Key >= res[j].Key {
										t.Error("unsorted result")
										return
									}
								}
							}
						}
					}(int64(w))
				}
				time.Sleep(150 * time.Millisecond)
				stop.Store(true)
				wg.Wait()
			})
		}
	}
}

func TestConcurrentSmokeAllPairs(t *testing.T) {
	for _, d := range allStructures {
		for _, tech := range allTechniques {
			if !ebrrq.Supported(d, tech) {
				continue
			}
			t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
				s, err := ebrrq.New(d, tech, 5)
				if err != nil {
					t.Fatal(err)
				}
				var stop atomic.Bool
				var wg sync.WaitGroup
				for w := 0; w < 3; w++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						th := s.NewThread()
						r := rand.New(rand.NewSource(seed))
						for !stop.Load() {
							k := r.Int63n(256)
							switch r.Intn(3) {
							case 0:
								th.Insert(k, k)
							case 1:
								th.Delete(k)
							default:
								th.Contains(k)
							}
						}
					}(int64(w))
				}
				rq := s.NewThread()
				deadline := time.Now().Add(120 * time.Millisecond)
				for time.Now().Before(deadline) {
					res := rq.RangeQuery(50, 150)
					for i := 1; i < len(res); i++ {
						if res[i-1].Key >= res[i].Key {
							t.Fatal("unsorted result")
						}
					}
				}
				stop.Store(true)
				wg.Wait()
			})
		}
	}
}
