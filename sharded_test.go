package ebrrq_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ebrrq"
	"ebrrq/internal/obs"
)

// TestShardedPartition checks the key-range partition: contiguous, disjoint,
// covering, and with the remainder spread over the first shards.
func TestShardedPartition(t *testing.T) {
	s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.LockFree, 2, 4,
		ebrrq.ShardedOptions{KeyMin: 0, KeyMax: 9})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 3, 6, 8} // 10 keys over 4 shards: widths 3,3,2,2
	for i, w := range want {
		if got := s.ShardStart(i); got != w {
			t.Errorf("ShardStart(%d) = %d, want %d", i, got, w)
		}
	}
	if min, max := s.KeyRange(); min != 0 || max != 9 {
		t.Errorf("KeyRange() = [%d, %d], want [0, 9]", min, max)
	}

	// The full-int64 default range must not overflow the partition math.
	full, err := ebrrq.NewSharded(ebrrq.SkipList, ebrrq.LockFree, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := full.ShardStart(0); got != ebrrq.MinKey {
		t.Errorf("full-range ShardStart(0) = %d, want MinKey %d", got, ebrrq.MinKey)
	}
	prev := full.ShardStart(0)
	for i := 1; i < 4; i++ {
		if cur := full.ShardStart(i); cur <= prev {
			t.Errorf("full-range starts not increasing: ShardStart(%d)=%d <= %d", i, cur, prev)
		} else {
			prev = cur
		}
	}
}

func TestShardedRejects(t *testing.T) {
	if _, err := ebrrq.NewSharded(ebrrq.LazyList, ebrrq.RLU, 2, 2); err == nil {
		t.Error("RLU sharded: want error")
	}
	if _, err := ebrrq.NewSharded(ebrrq.LFList, ebrrq.Snap, 2, 2); err == nil {
		t.Error("Snap sharded: want error")
	}
	if _, err := ebrrq.NewSharded(ebrrq.SkipList, ebrrq.LockFree, 2, 0); err == nil {
		t.Error("0 shards: want error")
	}
	if _, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.Lock, 2, 8,
		ebrrq.ShardedOptions{KeyMin: 1, KeyMax: 4}); err == nil {
		t.Error("more shards than keys: want error")
	}

	s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.Lock, 2, 2,
		ebrrq.ShardedOptions{KeyMin: 10, KeyMax: 20})
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread()
	defer th.Close()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Insert: want panic")
		}
	}()
	th.Insert(9, 9)
}

// TestShardedSequential model-checks every technique/structure pair against
// a reference map, mixing point ops with range queries that land inside one
// shard, across two, and across all shards.
func TestShardedSequential(t *testing.T) {
	techs := []ebrrq.Mode{ebrrq.Unsafe, ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree}
	for _, tech := range techs {
		t.Run(tech.String(), func(t *testing.T) {
			const keyMax = 1000
			s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, tech, 2, 4,
				ebrrq.ShardedOptions{KeyMin: 0, KeyMax: keyMax})
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			defer th.Close()
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				k := rng.Int63n(keyMax + 1)
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					_, inModel := model[k]
					if th.Insert(k, k*2) == inModel {
						t.Fatalf("Insert(%d) disagreed with model", k)
					}
					model[k] = k * 2
				case 4, 5, 6:
					_, inModel := model[k]
					if th.Delete(k) != inModel {
						t.Fatalf("Delete(%d) disagreed with model", k)
					}
					delete(model, k)
				case 7:
					v, ok := th.Contains(k)
					mv, mok := model[k]
					if ok != mok || (ok && v != mv) {
						t.Fatalf("Contains(%d) = (%d, %v), model (%d, %v)", k, v, ok, mv, mok)
					}
				default:
					lo := rng.Int63n(keyMax + 1)
					hi := lo + rng.Int63n(keyMax+1-lo)
					res := th.RangeQuery(lo, hi)
					var want int
					for mk := range model {
						if lo <= mk && mk <= hi {
							want++
						}
					}
					if len(res) != want {
						t.Fatalf("RangeQuery(%d, %d) returned %d keys, model has %d",
							lo, hi, len(res), want)
					}
					for j, kv := range res {
						if j > 0 && res[j-1].Key >= kv.Key {
							t.Fatalf("RangeQuery(%d, %d) unsorted at %d", lo, hi, j)
						}
						if mv, ok := model[kv.Key]; !ok || mv != kv.Value {
							t.Fatalf("RangeQuery(%d, %d): key %d value %d, model (%d, %v)",
								lo, hi, kv.Key, kv.Value, mv, ok)
						}
					}
				}
			}
		})
	}
}

// TestShardedMetrics checks the per-shard labeling (no collisions in the
// shared registry), the aggregate counters and the fast-path accounting.
func TestShardedMetrics(t *testing.T) {
	reg := obs.NewRegistry(4)
	s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.LockFree, 2, 2,
		ebrrq.ShardedOptions{KeyMin: 0, KeyMax: 99, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread()
	defer th.Close()
	for k := int64(0); k < 100; k += 10 {
		th.Insert(k, k)
	}
	if got := th.RangeQuery(0, 20); len(got) != 3 { // inside shard 0 ([0,49])
		t.Fatalf("single-shard RQ returned %d keys, want 3", len(got))
	}
	if got := th.RangeQuery(0, 99); len(got) != 10 {
		t.Fatalf("cross-shard RQ returned %d keys, want 10", len(got))
	}
	snap := reg.Snapshot()
	if got := snap.Counter("ebrrq_rq_single_shard_total"); got != 1 {
		t.Errorf("single_shard_total = %d, want 1", got)
	}
	if got := snap.Counter("ebrrq_rq_cross_shard_total"); got != 1 {
		t.Errorf("cross_shard_total = %d, want 1", got)
	}
	// The cross-shard query ran both shards at one pinned timestamp.
	if got := snap.Counter("ebrrq_rq_ts_pinned"); got != 2 {
		t.Errorf("ts_pinned = %d, want 2", got)
	}
	if got := snap.Gauge("ebrrq_shards"); got != 2 {
		t.Errorf("ebrrq_shards = %d, want 2", got)
	}
	// Per-shard series must be distinct: two shards, two labeled
	// ebrrq_global_timestamp series, both backed by the one shared clock.
	var tsSeries int
	for _, g := range snap.Gauges {
		if g.Name == "ebrrq_global_timestamp" {
			tsSeries++
			if !strings.Contains(g.Labels, `shard="`) {
				t.Errorf("ebrrq_global_timestamp series missing shard label: %q", g.Labels)
			}
		}
	}
	if tsSeries != 2 {
		t.Errorf("ebrrq_global_timestamp series = %d, want 2", tsSeries)
	}
	var b strings.Builder
	if err := snap.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `ebrrq_ops_total{shard="0",op="insert"}`) {
		t.Errorf("prom exposition missing sharded ops series:\n%s", b.String())
	}
}

// TestShardedSharedClock checks that every shard linearizes on one clock:
// a cross-shard RQ's timestamp is visible as each shard provider's
// timestamp, and single-shard queries on different shards keep advancing
// the same counter.
func TestShardedSharedClock(t *testing.T) {
	s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.Lock, 2, 2,
		ebrrq.ShardedOptions{KeyMin: 0, KeyMax: 99})
	if err != nil {
		t.Fatal(err)
	}
	th := s.NewThread()
	defer th.Close()
	th.RangeQuery(0, 99) // cross-shard: advances the clock once
	ts := th.LastRQTimestamp()
	if ts < 2 {
		t.Fatalf("cross-shard RQ timestamp = %d, want >= 2", ts)
	}
	for i := 0; i < s.Shards(); i++ {
		if got := s.Shard(i).Clock().Load(); got != ts {
			t.Errorf("shard %d clock timestamp = %d, want shared %d", i, got, ts)
		}
	}
	th.RangeQuery(0, 10) // single-shard on shard 0
	if got := th.LastRQTimestamp(); got != ts+1 {
		t.Errorf("single-shard RQ after cross-shard: ts = %d, want %d", got, ts+1)
	}
	th.RangeQuery(60, 99) // single-shard on shard 1: same clock
	if got := th.LastRQTimestamp(); got != ts+2 {
		t.Errorf("single-shard RQ on other shard: ts = %d, want %d", got, ts+2)
	}
}

// TestShardedConcurrentSmoke hammers a sharded set from several goroutines
// under all techniques; run with -race this is the quick cross-shard data
// race check (full linearizability validation lives in internal/dstest).
func TestShardedConcurrentSmoke(t *testing.T) {
	for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree} {
		t.Run(tech.String(), func(t *testing.T) {
			const nt, keyMax = 4, 400
			s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, tech, nt, 4,
				ebrrq.ShardedOptions{KeyMin: 0, KeyMax: keyMax})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < nt; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := s.NewThread()
					defer th.Close()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 3000; i++ {
						k := rng.Int63n(keyMax + 1)
						switch rng.Intn(4) {
						case 0:
							th.Insert(k, k)
						case 1:
							th.Delete(k)
						case 2:
							th.Contains(k)
						default:
							lo := rng.Int63n(keyMax + 1)
							res := th.RangeQuery(lo, lo+100)
							for j := 1; j < len(res); j++ {
								if res[j-1].Key >= res[j].Key {
									t.Errorf("unsorted RQ result")
									return
								}
							}
						}
					}
				}(int64(g) * 977)
			}
			wg.Wait()
		})
	}
}
