module ebrrq

go 1.22
