# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all ci build vet test race bench bench-quick rebaseline chaos chaos-mem validate micro macro examples trace-demo clean

all: build vet test

# ci mirrors .github/workflows/ci.yml: full build/vet/test plus a short-mode
# race pass (the full race suite is the separate `race` target).
ci: build vet test
	$(GO) test -race -short ./... -count=1 -timeout 900s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1 -timeout 900s

race:
	$(GO) test -race ./... -count=1 -timeout 1800s

# chaos builds with failpoints compiled in and runs the fault-injection
# suite: the chaos matrices plus the fault/epoch/provider robustness tests.
chaos:
	$(GO) build -tags failpoints ./...
	$(GO) test -race -tags failpoints -count=1 -timeout 1800s \
		-run 'Chaos|Fault|Stall|Watchdog|Deregister|TryRegister|Abort|Panic|Bundle' \
		./internal/fault/ ./internal/epoch/ ./internal/rqprov/ \
		./internal/ds/skiplist/ ./internal/dstest/ .

# chaos-mem is the bounded-memory acceptance proof: one updater permanently
# stalled mid-update while the rest hammer the structure through the
# backpressure gate. Asserts limbo + quarantine never exceed the hard limit,
# the watchdog neutralizes the staller, and quarantined nodes are reclaimed
# only after resume + acknowledgment. Runs the full matrix under the race
# detector; the canonical lflist/lock-free combination gets the long window.
chaos-mem:
	$(GO) build -tags failpoints ./...
	$(GO) test -race -tags failpoints -count=1 -timeout 1800s \
		-run 'TestChaosMemBound' ./internal/dstest/

bench:
	$(GO) test -bench=. -benchmem ./... -timeout 1800s

# bench-quick runs the mixed-workload matrix (update-heavy rq0/rq10 and
# RQ-heavy rq50 points, solo and combined cells), writes the
# machine-readable BENCH_rq.json report, and gates against the committed
# baseline (>20% best-of-trials throughput regression fails). 5 trials at
# 300ms: the gate compares best single trials, corrected for uniform host
# drift, and only on solo cells — combined-funnel cells are A/B
# instrumentation with scheduler-regime variance no estimator can tame
# (see bench.CompareRQReports). On top of that the gate retries in a fresh
# process (up to 3 attempts): individual cells flip between scheduler
# regimes worth 25-40% that persist for a whole process, so a flip
# re-rolls on retry while a real code regression fails all three.
# The baseline is host-specific: refresh it with `make rebaseline` when
# the reference hardware changes.
# The matrix includes the lazylist (the second bundled structure) and runs
# both range-query techniques interleaved; bundle cells gate only once the
# committed baseline has been refreshed to contain them (unmatched cells
# are skipped by the gate, so adding the dimension is not a flag day).
bench-quick:
	@for i in 1 2 3; do \
		$(GO) run ./cmd/rqbench -ds skiplist,lflist,lazylist -technique both \
			-trials 5 -duration 300ms -out BENCH_rq.json \
			-baseline results/bench_rq_baseline.json && exit 0; \
		echo "bench-quick: attempt $$i regressed"; \
	done; echo "bench-quick: regression reproduced in 3/3 attempts"; exit 1

# rebaseline measures the matrix twice and keeps the per-cell throughput
# minimum (see bench.MinRQReports): the committed baseline is a
# conservative floor, so a cell captured in its fast scheduler regime
# cannot gate every later slow-regime run.
rebaseline:
	$(GO) run ./cmd/rqbench -ds skiplist,lflist,lazylist -technique both \
		-trials 5 -duration 300ms -out results/bench_rq_baseline.json
	$(GO) run ./cmd/rqbench -ds skiplist,lflist,lazylist -technique both \
		-trials 5 -duration 300ms -out results/bench_rq_baseline.json \
		-min-with results/bench_rq_baseline.json

validate:
	$(GO) run ./cmd/validate

micro:
	$(GO) run ./cmd/microbench -exp all -threads 8 -scale 10 -duration 400ms

macro:
	$(GO) run ./cmd/macrobench -w 2 -workers 4 -scale 20 -duration 1s

# trace-demo records a short traced benchmark run, then renders the flight
# recorder's per-phase report with the analyzer. Add `-chrome trace.json` to
# the rqtrace line for a Perfetto-loadable timeline.
trace-demo:
	$(GO) run ./cmd/rqbench -ds skiplist -tech lockfree -threads 4 \
		-trials 1 -duration 200ms -out /tmp/ebrrq_demo.json \
		-trace-dump /tmp/ebrrq_demo.trace
	$(GO) run ./cmd/rqtrace /tmp/ebrrq_demo.trace

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/inmemdb
	$(GO) run ./examples/analytics
	$(GO) run ./examples/validation

clean:
	$(GO) clean -testcache
