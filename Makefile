# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all ci build vet test race bench bench-quick rebaseline chaos chaos-mem validate micro macro examples trace-demo clean

all: build vet test

# ci mirrors .github/workflows/ci.yml: full build/vet/test plus a short-mode
# race pass (the full race suite is the separate `race` target).
ci: build vet test
	$(GO) test -race -short ./... -count=1 -timeout 900s

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... -count=1 -timeout 900s

race:
	$(GO) test -race ./... -count=1 -timeout 1800s

# chaos builds with failpoints compiled in and runs the fault-injection
# suite: the chaos matrices plus the fault/epoch/provider robustness tests.
chaos:
	$(GO) build -tags failpoints ./...
	$(GO) test -race -tags failpoints -count=1 -timeout 1800s \
		-run 'Chaos|Fault|Stall|Watchdog|Deregister|TryRegister|Abort|Panic' \
		./internal/fault/ ./internal/epoch/ ./internal/rqprov/ \
		./internal/ds/skiplist/ ./internal/dstest/ .

# chaos-mem is the bounded-memory acceptance proof: one updater permanently
# stalled mid-update while the rest hammer the structure through the
# backpressure gate. Asserts limbo + quarantine never exceed the hard limit,
# the watchdog neutralizes the staller, and quarantined nodes are reclaimed
# only after resume + acknowledgment. Runs the full matrix under the race
# detector; the canonical lflist/lock-free combination gets the long window.
chaos-mem:
	$(GO) build -tags failpoints ./...
	$(GO) test -race -tags failpoints -count=1 -timeout 1800s \
		-run 'TestChaosMemBound' ./internal/dstest/

bench:
	$(GO) test -bench=. -benchmem ./... -timeout 1800s

# bench-quick runs the RQ-heavy mixed workload on a fixed small matrix,
# writes the machine-readable BENCH_rq.json report, and gates against the
# committed baseline (>20% throughput regression fails). The baseline is
# host-specific: refresh it with `make rebaseline` when the reference
# hardware changes.
bench-quick:
	$(GO) run ./cmd/rqbench -out BENCH_rq.json \
		-baseline results/bench_rq_baseline.json

rebaseline:
	$(GO) run ./cmd/rqbench -out results/bench_rq_baseline.json

validate:
	$(GO) run ./cmd/validate

micro:
	$(GO) run ./cmd/microbench -exp all -threads 8 -scale 10 -duration 400ms

macro:
	$(GO) run ./cmd/macrobench -w 2 -workers 4 -scale 20 -duration 1s

# trace-demo records a short traced benchmark run, then renders the flight
# recorder's per-phase report with the analyzer. Add `-chrome trace.json` to
# the rqtrace line for a Perfetto-loadable timeline.
trace-demo:
	$(GO) run ./cmd/rqbench -ds skiplist -tech lockfree -threads 4 \
		-trials 1 -duration 200ms -out /tmp/ebrrq_demo.json \
		-trace-dump /tmp/ebrrq_demo.trace
	$(GO) run ./cmd/rqtrace /tmp/ebrrq_demo.trace

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/inmemdb
	$(GO) run ./examples/analytics
	$(GO) run ./examples/validation

clean:
	$(GO) clean -testcache
