// Package ebrrq is a Go implementation of "Harnessing Epoch-based
// Reclamation for Efficient Range Queries" (Arbel-Raviv and Brown,
// PPoPP 2018): a general technique for adding linearizable range queries to
// concurrent ordered sets by exploiting the limbo lists of epoch-based
// memory reclamation.
//
// The package bundles six concurrent set implementations (two linked lists,
// a skip list, two binary search trees and a relaxed (a,b)-tree), three RQ
// provider algorithms from the paper (lock-based, emulated-HTM, lock-free),
// and three baselines (a non-linearizable traversal, the Petrank-Timnat
// Snap-collector, and Read-Log-Update). Pick a structure and a technique:
//
//	set, err := ebrrq.New(ebrrq.SkipList, ebrrq.LockFree, 8)
//	th := set.NewThread()      // one per goroutine
//	th.Insert(10, 100)
//	kvs := th.RangeQuery(0, 50) // linearizable
//
// Keys are int64 in [ebrrq.MinKey, ebrrq.MaxKey]; values are int64.
package ebrrq

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"ebrrq/internal/ds/rlucitrus"
	"ebrrq/internal/ds/rlulist"
	"ebrrq/internal/epoch"
	"ebrrq/internal/obs"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
)

// KV is a key-value pair returned by range queries.
type KV = epoch.KV

// ErrMemoryPressure is returned by TryInsert/TryDelete (and raised as a
// panic by Insert/Delete) when the set's EBR domain sits at its configured
// hard limbo limit: admitting the update would grow unreclaimed memory past
// the bound, so the write is shed instead. See Options.LimboHardLimit.
var ErrMemoryPressure = rqprov.ErrMemoryPressure

// ErrNeutralized is returned by TryInsert/TryDelete (and raised as a panic
// by the other operations) on a thread the epoch watchdog neutralized after
// a prolonged stall: the handle's epoch protection has been revoked. Close
// the thread and register a fresh one with TryNewThread.
var ErrNeutralized = epoch.ErrNeutralized

// MinKey and MaxKey bound the usable key space (values outside are reserved
// for sentinels).
const (
	MinKey = int64(math.MinInt64 + 1)
	MaxKey = int64(math.MaxInt64 - 3)
)

// DataStructure selects the underlying concurrent set (paper Figure 4).
type DataStructure int

const (
	// LFList is the Harris-Michael lock-free linked list.
	LFList DataStructure = iota
	// LazyList is the lazy list (per-node locks, logical deletion).
	LazyList
	// SkipList is the optimistic lazy skip list.
	SkipList
	// LFBST is the Natarajan-Mittal lock-free external BST.
	LFBST
	// Citrus is the internal BST with fine-grained locks and RCU.
	Citrus
	// ABTree is the leaf-oriented relaxed (a,b)-tree with group updates.
	ABTree
	// BSlack is the relaxed B-slack tree (§6 of the paper): an (a,b)-tree
	// whose underflow rebalancing repacks entire sibling groups in one
	// group update, bounding slack for space efficiency.
	BSlack
)

// String returns the structure's display name from the paper.
func (d DataStructure) String() string {
	switch d {
	case LFList:
		return "LFList"
	case LazyList:
		return "LazyList"
	case SkipList:
		return "SkipList"
	case LFBST:
		return "LFBST"
	case Citrus:
		return "Citrus"
	case ABTree:
		return "ABTree"
	case BSlack:
		return "BSlack"
	}
	return "?"
}

// Mode selects the EBR range-query linearization mode (the paper's
// "technique" axis for the epoch-based provider).
type Mode int

const (
	// Unsafe is the non-linearizable single-traversal baseline.
	Unsafe Mode = iota
	// Lock is the paper's lock-based RQ provider (§4.3).
	Lock
	// HTM is the paper's HTM-based provider (§4.4), emulated in software.
	HTM
	// LockFree is the paper's DCSS-based lock-free provider (§4.5).
	LockFree
	// Snap is the Petrank-Timnat Snap-collector baseline (lists only).
	Snap
	// RLU is the Read-Log-Update baseline (LazyList and Citrus only).
	RLU
)

// String returns the technique's display name from the paper's figures.
func (t Mode) String() string {
	switch t {
	case Unsafe:
		return "Unsafe"
	case Lock:
		return "Lock"
	case HTM:
		return "HTM"
	case LockFree:
		return "Lock-free"
	case Snap:
		return "Snap-collector"
	case RLU:
		return "RLU"
	}
	return "?"
}

// Supported reports whether the (structure, mode) pair exists for the
// default EBR technique — the feasibility matrix of the paper's artifact
// (Table 1). For other techniques use Technique.Supports.
func Supported(d DataStructure, t Mode) bool {
	return EBR.Supports(d, t)
}

// Set is a concurrent ordered map[int64]int64 with range queries.
type Set struct {
	ds    DataStructure
	mode  Mode
	tq    Technique
	impl  techSet
	met   *setMetrics  // nil unless Options.Metrics was set
	mtids atomic.Int32 // metric shard ids (covers RLU, which has no provider tid)
}

// Thread is a per-goroutine handle to a Set. Handles must not be shared
// between goroutines.
type Thread struct {
	set   *Set
	impl  techThread
	pt    *rqprov.Thread // EBR provider thread; nil for other techniques
	tr    *trace.Ring    // flight-recorder ring (nil when untraced)
	mtid  int            // metric shard id
	opSeq uint64         // operations issued; drives latency sampling
}

type setImpl interface {
	newThread(pt *rqprov.Thread) threadImpl
}

type threadImpl interface {
	insert(key, value int64) bool
	remove(key int64) bool
	contains(key int64) (int64, bool)
	rangeQuery(low, high int64) []KV
}

// Options tunes construction.
type Options struct {
	// Technique selects the range-query algorithm family (nil — the
	// default — is EBR, the paper's provider). See the Technique docs for
	// the available techniques and their trade-offs. The technique must
	// support the requested (structure, mode) pair: Bundle covers LazyList
	// and SkipList under the timestamp-based modes.
	Technique Technique

	// Recorder, if non-nil, receives every timestamped update (validation
	// harness support). Ignored by Snap and RLU.
	Recorder rqprov.Recorder

	// Metrics, if non-nil, turns on the observability layer: per-op-class
	// counts and latency histograms at this layer, plus provider and EBR
	// instrumentation, all registered with the given registry (see
	// internal/obs). When nil — the default — no instrumentation runs and
	// the hot paths are identical to a build without the layer.
	Metrics *obs.Registry

	// MetricLabels, when non-empty, is a Prometheus label list (e.g.
	// `shard="3"`) stamped on every metric this set registers, so several
	// sets can share one registry without their series colliding. The
	// sharded constructor labels each shard this way.
	MetricLabels string

	// Clock is the timestamp source the set's RQ provider linearizes on.
	// Nil gives the set a private clock (the default, single-structure
	// setup); the sharded constructor passes one shared clock to every
	// shard. Ignored by Snap and RLU, which have no provider.
	Clock rqprov.TimestampSource

	// WaitBudget, when positive, bounds how long a range query waits on an
	// unresolved concurrent update before resolving it conservatively; 0
	// (the default) waits indefinitely. See rqprov.Config.WaitBudget.
	// Ignored by Snap and RLU.
	WaitBudget int

	// Trace, if non-nil, attaches the flight recorder (DESIGN.md §10):
	// every thread records op begin/end spans plus the provider's and EBR
	// layer's lifecycle events into per-thread rings, readable at any time
	// via Trace.Snapshot (or /debug/trace when served). Nil — the default —
	// keeps the zero-cost disabled path. Ignored by Snap-less baselines
	// without a provider (RLU).
	Trace *trace.Recorder

	// TraceLabel prefixes this set's trace ring labels (e.g. "s3/") so
	// several sets — the shards of a Sharded — can share one recorder.
	TraceLabel string

	// LimboSoftLimit / LimboHardLimit bound the set's unreclaimed node
	// count (limbo plus neutralization quarantine; 0, the default, disables
	// a limit). Past the soft limit an attached epoch watchdog escalates
	// (forced advances → orphan sweeps → neutralization, if enabled); at the
	// hard limit Insert/Delete are rejected with ErrMemoryPressure until
	// reclamation drains below it. Contains and RangeQuery are never
	// backpressured. Ignored by Snap and RLU, which have no provider.
	LimboSoftLimit int64
	LimboHardLimit int64

	// PressureWait, when positive, makes a backpressured update wait up to
	// this long for limbo to drain below the hard limit before giving up
	// with ErrMemoryPressure. 0 fails fast.
	PressureWait time.Duration

	// CombineUpdates enables the aggregating update funnel (DESIGN.md §12):
	// concurrent Insert/Delete calls publish their linearizing CAS into a
	// per-thread cell and one of them — the combiner — applies up to
	// CombineBatch of them inside a single shared-clock window, amortizing
	// the update lock handoff (Lock/HTM) and the timestamp validation
	// (LockFree) over the whole batch. Pays off on update-heavy mixes with
	// more runnable updaters than cores; adds a publication/wait handshake
	// per update otherwise. Ignored by Unsafe, Snap and RLU.
	CombineUpdates bool

	// CombineBatch caps how many pending updates one combiner drains per
	// window. 0 (with CombineUpdates set) defaults to maxThreads.
	CombineBatch int
}

// opClass indexes the set-layer per-operation metrics.
const (
	opInsert = iota
	opDelete
	opContains
	opRQ
	numOpClasses
)

// latSampleEvery is the per-thread sampling period for point-op latency
// histograms: timing every insert/delete/contains would double their cost
// (two clock reads per op), so one in 16 is measured. Counts stay exact;
// range queries, being far rarer and heavier, are always timed.
const latSampleEvery = 16

var opNames = [numOpClasses]string{"insert", "delete", "contains", "rq"}

// setMetrics holds the set-layer observability handles.
type setMetrics struct {
	ops   [numOpClasses]*obs.Counter   // ebrrq_ops_total{op=...}
	lat   [numOpClasses]*obs.Histogram // ebrrq_op_latency_ns_<op> (sampled)
	rqLat *obs.Histogram               // ebrrq_rq_latency_ns (every RQ)
}

func newSetMetrics(reg *obs.Registry) *setMetrics {
	m := &setMetrics{}
	for op, name := range opNames {
		m.ops[op] = reg.CounterL("ebrrq_ops_total", `op="`+name+`"`,
			"operations completed by class")
		if op != opRQ {
			m.lat[op] = reg.Histogram("ebrrq_op_latency_ns_"+name,
				"sampled (1/"+fmt.Sprint(latSampleEvery)+") "+name+" latency in nanoseconds")
		}
	}
	m.rqLat = reg.Histogram("ebrrq_rq_latency_ns", "range-query latency in nanoseconds")
	return m
}

// New creates a set using the given structure, technique and maximum thread
// count.
func New(d DataStructure, t Mode, maxThreads int) (*Set, error) {
	return NewWithOptions(d, t, maxThreads, Options{})
}

// NewWithOptions is New with tuning options.
func NewWithOptions(d DataStructure, t Mode, maxThreads int, opt Options) (*Set, error) {
	tq := opt.Technique
	if tq == nil {
		tq = EBR
	}
	if !tq.Supports(d, t) {
		return nil, fmt.Errorf("ebrrq: the %v technique does not support %v in %v mode", tq, d, t)
	}
	if maxThreads <= 0 {
		return nil, fmt.Errorf("ebrrq: maxThreads must be positive")
	}
	if opt.CombineUpdates && tq != EBR {
		// The aggregating funnel batches updates into one EBR provider
		// clock window; other techniques linearize updates themselves.
		return nil, fmt.Errorf("ebrrq: CombineUpdates is an EBR-provider feature (technique %v selected)", tq)
	}
	s := &Set{ds: d, mode: t, tq: tq}
	reg := opt.Metrics
	if reg != nil {
		reg = reg.WithLabels(opt.MetricLabels)
		s.met = newSetMetrics(reg)
	}
	impl, err := tq.newSet(d, t, maxThreads, opt, reg)
	if err != nil {
		return nil, err
	}
	s.impl = impl
	return s, nil
}

// DataStructure returns the set's structure.
func (s *Set) DataStructure() DataStructure { return s.ds }

// Mode returns the set's EBR linearization mode.
func (s *Set) Mode() Mode { return s.mode }

// Technique returns the set's range-query technique (EBR or Bundle).
func (s *Set) Technique() Technique { return s.tq }

// Provider exposes the underlying EBR RQ provider.
//
// Deprecated: Provider is an EBR-only escape hatch kept for compatibility;
// it returns nil for every other technique (Bundle) and for RLU sets. Use
// the technique-neutral accessors instead: Health, Domain, Clock,
// LimboSize, UnreclaimedNodes, UnreclaimedBytes, HTMAborts.
func (s *Set) Provider() *rqprov.Provider { return s.impl.provider() }

// Health returns the set's health check: critical when updates are being
// rejected at the hard limbo limit, degraded when the escalation ladder is
// working (stalls, unacknowledged neutralizations, breached soft limit).
// The zero HealthCheck (nil Check/Warn) is returned by techniques with
// nothing to report (RLU).
func (s *Set) Health() obs.HealthCheck { return s.impl.health() }

// Domain returns the epoch reclamation domain backing the set's node
// memory — attach watchdogs or read limbo statistics through it. Nil for
// techniques without one (RLU).
func (s *Set) Domain() *epoch.Domain { return s.impl.domain() }

// Clock returns the timestamp source the set's updates and range queries
// linearize on (nil for non-timestamp techniques: RLU, and EBR in Snap
// mode still has a clock but does not use it).
func (s *Set) Clock() rqprov.TimestampSource { return s.impl.clock() }

// LimboSize returns the number of nodes awaiting epoch reclamation (0 when
// the technique has no epoch domain).
func (s *Set) LimboSize() int {
	d := s.impl.domain()
	if d == nil {
		return 0
	}
	return d.LimboSize()
}

// UnreclaimedNodes returns the count bounded by the limbo limits: limbo
// plus neutralization quarantine (0 without an epoch domain).
func (s *Set) UnreclaimedNodes() int64 {
	d := s.impl.domain()
	if d == nil {
		return 0
	}
	return d.BoundedNodes()
}

// UnreclaimedBytes approximates the bytes held by unreclaimed nodes (0
// without an epoch domain).
func (s *Set) UnreclaimedBytes() int64 {
	d := s.impl.domain()
	if d == nil {
		return 0
	}
	return d.LimboBytes() + d.QuarantinedBytes()
}

// HTMAborts returns the cumulative emulated-HTM abort count (0 unless the
// set runs the EBR technique in HTM mode).
func (s *Set) HTMAborts() uint64 { return s.impl.htmAborts() }

// NewThread registers a goroutine with the set, panicking when every thread
// slot is held by a live thread. Prefer TryNewThread where running out of
// slots is survivable.
func (s *Set) NewThread() *Thread {
	t, err := s.TryNewThread()
	if err != nil {
		panic("ebrrq: " + err.Error())
	}
	return t
}

// TryNewThread registers a goroutine with the set. Slots released by
// Thread.Close are reused, so the thread count bounds concurrency, not the
// set's lifetime total. RLU sets have no slot recovery; for them
// TryNewThread is NewThread. The returned Thread must only be used by a
// single goroutine.
func (s *Set) TryNewThread() (*Thread, error) {
	tt, err := s.impl.newThread()
	if err != nil {
		return nil, err
	}
	return &Thread{set: s, impl: tt, pt: tt.providerThread(),
		tr: tt.traceRing(), mtid: int(s.mtids.Add(1)) - 1}, nil
}

// Close releases the thread's slot for reuse by a future NewThread or
// TryNewThread. Any in-flight provider state is cleared, so a thread being
// closed by a supervisor after its goroutine panicked stops pinning the
// epoch (its abandoned limbo nodes are reclaimed by the orphan sweep once
// they age out). Idempotent; a no-op for RLU sets. After Close the handle
// must not be used again.
func (t *Thread) Close() { t.impl.close() }

// ID returns the thread's registration index within its set (-1 when the
// technique does not number threads, e.g. RLU). Stable for the lifetime of
// the handle; reused after Close.
func (t *Thread) ID() int { return t.impl.id() }

// guard is deferred by every public operation: a panic that unwinds
// data-structure code mid-operation (a bug, or fault injection in the chaos
// suite) would otherwise leave this thread announced in an old epoch —
// blocking reclamation domain-wide — and possibly holding a deletion
// announcement that wedges every future range query. Abort clears both, then
// the panic continues to the caller, who may keep using the thread.
func (t *Thread) guard() {
	if r := recover(); r != nil {
		t.impl.abort()
		panic(r)
	}
}

// admitUpdate runs the provider's backpressure gate before an update enters
// the structure (and before it announces an epoch — a waiting update must
// not pin the reclamation it waits for). It panics with ErrMemoryPressure
// when the write must be shed; TryInsert/TryDelete convert that into an
// error return.
func (t *Thread) admitUpdate() {
	if err := t.impl.admitUpdate(); err != nil {
		panic(err)
	}
}

// opStart begins set-layer accounting for one point operation and reports
// whether this operation's latency is sampled.
func (t *Thread) opStart() (time.Time, bool) {
	t.opSeq++
	if t.opSeq%latSampleEvery == 0 {
		return time.Now(), true
	}
	return time.Time{}, false
}

// opDone completes set-layer accounting for one point operation.
func (t *Thread) opDone(op int, t0 time.Time, sampled bool) {
	m := t.set.met
	m.ops[op].Inc(t.mtid)
	if sampled {
		m.lat[op].Observe(uint64(time.Since(t0)))
	}
}

// Insert adds key with the given value; it returns false (without
// overwriting) if key is already present.
func (t *Thread) Insert(key, value int64) bool {
	defer t.guard()
	t.admitUpdate()
	t.tr.OpBegin(trace.OpInsert, uint64(key))
	if t.set.met == nil {
		ok := t.impl.insert(key, value)
		t.tr.OpEnd(trace.OpInsert)
		return ok
	}
	t0, sampled := t.opStart()
	ok := t.impl.insert(key, value)
	t.opDone(opInsert, t0, sampled)
	t.tr.OpEnd(trace.OpInsert)
	return ok
}

// Delete removes key, reporting whether it was present.
func (t *Thread) Delete(key int64) bool {
	defer t.guard()
	t.admitUpdate()
	t.tr.OpBegin(trace.OpDelete, uint64(key))
	if t.set.met == nil {
		ok := t.impl.remove(key)
		t.tr.OpEnd(trace.OpDelete)
		return ok
	}
	t0, sampled := t.opStart()
	ok := t.impl.remove(key)
	t.opDone(opDelete, t0, sampled)
	t.tr.OpEnd(trace.OpDelete)
	return ok
}

// TryInsert is Insert with graceful degradation: instead of panicking it
// returns ErrMemoryPressure when the update is shed at the hard limbo limit
// and ErrNeutralized when the watchdog revoked this thread's epoch
// protection (Close the handle and TryNewThread a fresh one). Any other
// panic propagates unchanged.
func (t *Thread) TryInsert(key, value int64) (ok bool, err error) {
	defer degradeErr(&err)
	return t.Insert(key, value), nil
}

// TryDelete is Delete with graceful degradation; see TryInsert.
func (t *Thread) TryDelete(key int64) (ok bool, err error) {
	defer degradeErr(&err)
	return t.Delete(key), nil
}

// degradeErr converts the two survivable degradation panics into error
// returns and lets everything else propagate.
func degradeErr(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, isErr := r.(error); isErr &&
		(errors.Is(e, ErrMemoryPressure) || errors.Is(e, ErrNeutralized)) {
		*err = e
		return
	}
	panic(r)
}

// Contains returns the value stored under key.
func (t *Thread) Contains(key int64) (int64, bool) {
	defer t.guard()
	t.tr.OpBegin(trace.OpContains, uint64(key))
	if t.set.met == nil {
		v, ok := t.impl.contains(key)
		t.tr.OpEnd(trace.OpContains)
		return v, ok
	}
	t0, sampled := t.opStart()
	v, ok := t.impl.contains(key)
	t.opDone(opContains, t0, sampled)
	t.tr.OpEnd(trace.OpContains)
	return v, ok
}

// RangeQuery returns all pairs with low <= key <= high, sorted by key. With
// every technique except Unsafe the result is linearizable. The returned
// slice is valid until this thread's next range query.
func (t *Thread) RangeQuery(low, high int64) []KV {
	defer t.guard()
	t.tr.OpBegin(trace.OpRQ, uint64(low))
	m := t.set.met
	if m == nil {
		res := t.impl.rangeQuery(low, high)
		t.tr.OpEnd(trace.OpRQ)
		return res
	}
	t0 := time.Now()
	res := t.impl.rangeQuery(low, high)
	m.ops[opRQ].Inc(t.mtid)
	m.rqLat.Observe(uint64(time.Since(t0)))
	t.tr.OpEnd(trace.OpRQ)
	return res
}

// LastRQTimestamp returns the linearization timestamp of this thread's most
// recent range query (timestamp-based techniques only; 0 otherwise).
func (t *Thread) LastRQTimestamp() uint64 { return t.impl.lastRQTS() }

// LimboVisitedLast returns how many limbo-list nodes this thread's most
// recent range query visited (provider-based techniques only).
func (t *Thread) LimboVisitedLast() uint64 {
	if t.pt == nil {
		return 0
	}
	return t.pt.LimboVisitedLast()
}

// BagsSkippedTotal returns how many limbo bags this thread's range queries
// have skipped entirely via the max-dtime bag fence (provider-based
// techniques only); BagsSweptTotal counts the bags actually walked. The
// ratio shows how much of the sweep the fence elides (DESIGN.md §8).
func (t *Thread) BagsSkippedTotal() uint64 {
	if t.pt == nil {
		return 0
	}
	return t.pt.BagsSkippedTotal()
}

// BagsSweptTotal returns how many limbo bags this thread's range queries
// have walked (provider-based techniques only).
func (t *Thread) BagsSweptTotal() uint64 {
	if t.pt == nil {
		return 0
	}
	return t.pt.BagsSweptTotal()
}

// ProviderThread exposes the underlying EBR provider thread handle.
//
// Deprecated: ProviderThread is an EBR-only escape hatch kept for
// compatibility; it returns nil for every other technique (Bundle) and for
// RLU. Use the technique-neutral Thread accessors instead (ID,
// LastRQTimestamp, LimboVisitedLast, BagsSkippedTotal, BagsSweptTotal).
func (t *Thread) ProviderThread() *rqprov.Thread { return t.impl.providerThread() }

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

// provSet is the method set shared by all provider-based structures.
type provSet interface {
	Insert(t *rqprov.Thread, key, value int64) bool
	Delete(t *rqprov.Thread, key int64) bool
	Contains(t *rqprov.Thread, key int64) (int64, bool)
	RangeQuery(t *rqprov.Thread, low, high int64) []KV
}

type provImpl struct{ s provSet }

func (p provImpl) newThread(pt *rqprov.Thread) threadImpl {
	return &provThread{s: p.s, t: pt}
}

type provThread struct {
	s provSet
	t *rqprov.Thread
}

func (p *provThread) insert(key, value int64) bool     { return p.s.Insert(p.t, key, value) }
func (p *provThread) remove(key int64) bool            { return p.s.Delete(p.t, key) }
func (p *provThread) contains(key int64) (int64, bool) { return p.s.Contains(p.t, key) }
func (p *provThread) rangeQuery(low, high int64) []KV  { return p.s.RangeQuery(p.t, low, high) }

type rluListImpl struct{ l *rlulist.List }

func (r rluListImpl) newThread(*rqprov.Thread) threadImpl {
	return rluListThread{t: r.l.Register()}
}

type rluListThread struct{ t *rlulist.Thread }

func (r rluListThread) insert(key, value int64) bool     { return r.t.Insert(key, value) }
func (r rluListThread) remove(key int64) bool            { return r.t.Delete(key) }
func (r rluListThread) contains(key int64) (int64, bool) { return r.t.Contains(key) }
func (r rluListThread) rangeQuery(low, high int64) []KV  { return r.t.RangeQuery(low, high) }

type rluCitrusImpl struct{ t *rlucitrus.Tree }

func (r rluCitrusImpl) newThread(*rqprov.Thread) threadImpl {
	return rluCitrusThread{t: r.t.Register()}
}

type rluCitrusThread struct{ t *rlucitrus.Thread }

func (r rluCitrusThread) insert(key, value int64) bool     { return r.t.Insert(key, value) }
func (r rluCitrusThread) remove(key int64) bool            { return r.t.Delete(key) }
func (r rluCitrusThread) contains(key int64) (int64, bool) { return r.t.Contains(key) }
func (r rluCitrusThread) rangeQuery(low, high int64) []KV  { return r.t.RangeQuery(low, high) }
