package rqprov

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/trace"
)

// Aggregating update funnel (DESIGN.md §12).
//
// Every update still pays its own linearizing CAS, but the surrounding
// shared-clock window — the shared lock acquisition (Lock/HTM) or the DCSS
// timestamp validation (lock-free) — serializes concurrent updaters on the
// same cache lines. The funnel amortizes that window: each updater publishes
// its op into a per-thread announcement cell, one thread becomes the
// combiner by acquiring combineLock, drains up to CombineBatch pending ops,
// takes a single window (one shared lock hold / one TS read) and applies the
// whole batch inside it, then hands each waiter its result.
//
// The protocol is a per-thread status cell, not a queue: publication is one
// atomic store, claiming is one CAS, and the combiner finds followers by
// scanning the registered-thread array it already owns for announcement
// sweeps. Statuses move Free → Pending → Claimed → Done (or Neutralized),
// and back to Free when the owner consumes the result. All op fields are
// plain writes ordered by the status atomics: owners write the request
// fields before storing Pending, the combiner writes the result fields
// before storing Done.
//
// Composition with the rest of the provider:
//
//   - Backpressure: AdmitUpdate runs at the set layer before StartOp, so a
//     backpressured op never reaches the funnel.
//   - Neutralization: UpdateCAS's pre-linearization CheckNeutralized runs
//     before publication, and the combiner re-checks each owner's poison
//     flag inside the window (mirroring the solo in-lock re-check) — a
//     poisoned op is released with Neutralized instead of being applied.
//   - Combiner crash: a combiner that panics mid-batch releases every
//     claimed-but-unapplied follower with Neutralized on its way out
//     (deferred, before the lock drops), so followers surface
//     epoch.ErrNeutralized rather than hanging on a lost op. Claimed ops are
//     only ever applied before their status publishes, so a crash never
//     loses or duplicates a linearized op — and if the combiner's own op
//     (always first in the batch) linearized before the crash, the epilogue
//     still publishes its timestamps and validator record, preserving the
//     solo invariant that nothing can intervene between an op's CAS and its
//     finishUpdate.
//   - Bounded waiting: followers spin with the provider's SpinBudget and
//     then yield; past the grace window a still-Pending op withdraws itself
//     (one CAS) and falls back to the solo path, so a wedged combiner
//     cannot wedge the funnel.
//   - Deletion announcements: the combiner raises each op's announcement
//     inside the window, immediately before that op's CAS — the
//     announce-before-unlink ordering is per-op program order, not
//     per-thread, so range queries' recovery proof is unchanged. Announcing
//     at publication instead would pin every funnel-parked op's announcement
//     at dtime == 0 for its whole residence, and concurrent range queries'
//     announcement sweeps would spin-wait on all of them.
//   - Bag fences: the owner retires its dnodes in finishUpdate after
//     publishing dtime = the batch timestamp, so epoch.Retire raises the
//     limbo-bag maxDTime fence to the batch's single dtime with no extra
//     machinery.

// Funnel statuses, stored in combineOp.status.
const (
	// combFree: the cell is idle (owner may publish).
	combFree uint32 = iota
	// combPending: the owner published an op and is waiting; a combiner may
	// claim it, or the owner may withdraw it (both by CAS, so the two races
	// resolve atomically).
	combPending
	// combClaimed: a combiner owns the op; the owner must wait for a
	// terminal status (withdrawal is no longer possible).
	combClaimed
	// combDone: the combiner applied the op; ok/ts carry the result.
	combDone
	// combNeutralized: the op was not applied — the owner was poisoned, or
	// the combiner crashed mid-batch. The owner panics ErrNeutralized,
	// exactly as the solo path's in-window poison check does.
	combNeutralized
)

// combineYieldBudget bounds the scheduler yields a pending follower grants
// the combiner (past SpinBudget) before withdrawing and going solo. Yields,
// not spins, for the same reason as adoptYieldBudget: on oversubscribed
// hosts the combiner needs the processor to finish its window.
const combineYieldBudget = 64

// combineOp is a thread's funnel cell. Request fields are owner-written
// before status stores Pending; result fields are combiner-written before
// status stores Done.
type combineOp struct {
	slot   *dcss.Slot
	old    unsafe.Pointer
	new    unsafe.Pointer
	inodes []*epoch.Node
	dnodes []*epoch.Node
	retire bool

	ok bool
	ts uint64

	status atomic.Uint32
}

// clear drops the cell's node references so a parked thread doesn't keep
// retired nodes (and their limbo chains) live between updates.
func (op *combineOp) clear() {
	op.slot, op.old, op.new = nil, nil, nil
	op.inodes, op.dnodes = nil, nil
	op.retire = false
}

// combinedUpdateCAS is the funnel front end, called by UpdateCAS after the
// pre-linearization poison check (announcements are deferred to the window;
// see applyBatch). It publishes the op, then
// loops: consume a terminal status, become the combiner if the lock is
// free, or — once the grace budget is gone and the op is still unclaimed —
// withdraw and fall back to the solo path.
func (t *Thread) combinedUpdateCAS(slot *dcss.Slot, old, new unsafe.Pointer, inodes, dnodes []*epoch.Node, retireDeleted bool) bool {
	p := t.prov
	op := &t.comb
	op.slot, op.old, op.new = slot, old, new
	op.inodes, op.dnodes = inodes, dnodes
	op.retire = retireDeleted
	var t0 int64
	if t.traced {
		t0 = trace.Now()
	}
	op.status.Store(combPending)
	fault.Inject("rqprov.combine.published")
	if p.combineYield {
		// Oversubscribed host: yield once between publishing and contending
		// for the combiner role, so other runnable updaters get to publish
		// first and whoever claims the lock drains a real batch instead of k
		// combiners each draining one op. Gated on oversubscription because
		// when GOMAXPROCS <= NumCPU the overlap is physical, and the yield
		// would hand the publisher's quantum to unrelated goroutines (see
		// Provider.combineYield).
		runtime.Gosched()
	}
	grace := p.combineSpin + combineYieldBudget
	for i := 0; ; i++ {
		st := op.status.Load()
		if st == combDone || st == combNeutralized {
			break
		}
		if st == combPending {
			if p.combineLock.CompareAndSwap(0, 1) {
				t.runCombiner()
				continue
			}
			if i > grace {
				if op.status.CompareAndSwap(combPending, combFree) {
					// Withdrawn before any combiner claimed it: the op never
					// entered a window, so the solo path runs it from scratch
					// — which means raising the deletion announcement the
					// combined path deferred to the combiner.
					op.clear()
					p.met.combFallbacks.Inc(t.id)
					t.announceAll(dnodes)
					fault.Inject("rqprov.update.announced")
					return t.soloUpdateCAS(slot, old, new, inodes, dnodes, retireDeleted)
				}
				continue // a combiner won the withdraw race; wait it out
			}
		}
		if i >= p.combineSpin {
			runtime.Gosched()
		}
	}
	st := op.status.Load()
	ok, ts := op.ok, op.ts
	op.clear()
	op.status.Store(combFree)
	if t.traced && t.tr != nil {
		now := trace.Now()
		t.tr.EmitAt(trace.EvCombineWait, now, ts, uint64(now-t0))
	}
	if st == combNeutralized {
		panic(epoch.ErrNeutralized)
	}
	if ok {
		t.finishUpdate(true, ts, inodes, dnodes, retireDeleted)
	} else {
		t.finishUpdate(false, 0, nil, dnodes, false)
	}
	if p.mode == ModeLockFree {
		t.desc.Store(nil) // installed by the combiner; cleared by the owner
	}
	return ok
}

// runCombiner drains the funnel while holding p.combineLock: claim this
// thread's op, claim up to CombineBatch-1 other pending ops, apply the
// batch in one shared-clock window, and publish each result. The deferred
// epilogue runs on panic too: claimed-but-unapplied followers are released
// with Neutralized before the lock drops, and the panic keeps unwinding
// through the combiner's own op (its set layer recovers it like any solo
// update panic).
func (t *Thread) runCombiner() {
	p := t.prov
	if !t.comb.status.CompareAndSwap(combPending, combClaimed) {
		// A previous combiner finished our op between our status load and
		// the lock acquisition; nothing to drain on its behalf.
		p.combineLock.Store(0)
		return
	}
	if cap(t.combBatch) < p.combineBatch {
		t.combBatch = make([]*Thread, 0, p.combineBatch)
	}
	t.combBatch = append(t.combBatch[:0], t)
	nthreads := int(p.registered.Load())
	for i := 0; i < nthreads && len(t.combBatch) < p.combineBatch; i++ {
		u := p.threads[i].Load()
		if u == nil || u == t {
			continue
		}
		if u.comb.status.Load() == combPending &&
			u.comb.status.CompareAndSwap(combPending, combClaimed) {
			t.combBatch = append(t.combBatch, u)
		}
	}
	size := uint64(len(t.combBatch))
	var t0 int64
	if t.tr != nil {
		t0 = trace.Now()
		t.tr.EmitAt(trace.EvCombineBegin, t0, size, 0)
	}
	done := false
	defer func() {
		if !done {
			// Panicked mid-batch: release every claimed-but-unapplied
			// follower. Application always precedes status publication, so
			// anything still Claimed was never applied — Neutralized is
			// truthful, and no linearized op is lost.
			for _, u := range t.combBatch {
				if u != t && u.comb.status.Load() == combClaimed {
					u.comb.status.Store(combNeutralized)
				}
			}
			// The combiner's own op goes first in the batch, so it may have
			// linearized before the crash point. The solo path has no panic
			// source between the CAS and finishUpdate, and the funnel must
			// keep that invariant: a linearized op's timestamps and validator
			// record still publish even as the panic unwinds. (applyBatch's
			// own defer already released the shared window, so this runs
			// outside it, exactly like solo.)
			op := &t.comb
			if op.status.Load() == combDone && op.ok {
				t.finishUpdate(true, op.ts, op.inodes, op.dnodes, op.retire)
				if p.mode == ModeLockFree {
					t.desc.Store(nil)
				}
			}
			op.clear()
			op.status.Store(combFree)
		}
		clear(t.combBatch)
		t.combBatch = t.combBatch[:0]
		p.combineLock.Store(0)
	}()
	t.applyBatch(t.combBatch)
	done = true
	p.met.combBatches.Inc(t.id)
	p.met.combOps.Add(t.id, size)
	p.met.combBatchSize.Observe(size)
	if t.tr != nil {
		now := trace.Now()
		t.tr.EmitAt(trace.EvCombineEnd, now, size, uint64(now-t0))
	}
}

// applyBatch applies every claimed op inside one shared-clock window and
// publishes each op's terminal status. The per-op poison re-check mirrors
// the solo path's in-window check: a poisoned owner's op is released with
// Neutralized instead of linearizing against nodes it no longer protects.
func (t *Thread) applyBatch(batch []*Thread) {
	p := t.prov
	switch p.mode {
	case ModeLock:
		p.lock.AcquireShared()
		defer p.lock.ReleaseShared() // deferred: a panic mid-batch must not wedge RQ drains
		ts := p.ts.Load()
		for _, u := range batch {
			fault.Inject("rqprov.combine.op")
			op := &u.comb
			if u.ep.Poisoned() {
				op.status.Store(combNeutralized)
				continue
			}
			// Announce on the owner's behalf, just before the CAS: the
			// announce-before-unlink ordering range queries rely on is a
			// property of the op's program order, not of which thread runs
			// it, and raising it this late keeps the announcement's
			// unresolved window to one batch tail instead of the op's whole
			// funnel residence.
			u.announceAll(op.dnodes)
			op.ok = op.slot.CAS(op.old, op.new)
			op.ts = ts
			op.status.Store(combDone)
		}

	case ModeHTM:
		p.dist.AcquireShared(t.id)
		defer p.dist.ReleaseShared(t.id)
		ts := p.ts.Load()
		for _, u := range batch {
			fault.Inject("rqprov.combine.op")
			op := &u.comb
			if u.ep.Poisoned() {
				op.status.Store(combNeutralized)
				continue
			}
			u.announceAll(op.dnodes) // see ModeLock: late announce, same ordering
			op.ok = op.slot.CAS(op.old, op.new)
			op.ts = ts
			op.status.Store(combDone)
		}

	case ModeLockFree:
		// One TS read serves the whole batch; DCSS re-validates it at every
		// linearizing CAS, so an op that sees FailedA1 (a range query moved
		// TS mid-batch) re-reads and retries — later ops in the same batch
		// may legally linearize at the newer timestamp.
		ts := p.ts.Load()
		for _, u := range batch {
			fault.Inject("rqprov.combine.op")
			op := &u.comb
			u.announceAll(op.dnodes) // see ModeLock: late announce, same ordering
			applied := false
			for !applied {
				if u.ep.Poisoned() {
					break
				}
				d := &dcss.Descriptor{
					A1: p.ts, Exp1: ts,
					S: op.slot, Old: op.old, New: op.new,
					INodes: op.inodes, DNodes: op.dnodes,
				}
				// Install into the owner's announcement slot so range
				// queries help it and learn timestamps from its payload;
				// the owner clears it after consuming the result.
				u.desc.Store(d)
				switch d.Exec() {
				case dcss.Succeeded:
					op.ok, op.ts = true, ts
					applied = true
				case dcss.FailedValue:
					op.ok = false
					applied = true
				default: // FailedA1: TS moved; refresh for the rest of the batch
					ts = p.ts.Load()
					p.met.dcssRetries.Inc(u.id)
					if t.tr != nil {
						t.tr.Emit(trace.EvDCSSRetry, ts, 0)
					}
				}
			}
			if applied {
				op.status.Store(combDone)
			} else {
				// Neutralized after the announcement went up: the owner's
				// finishUpdate never runs, so retract it here (Abort also
				// clears announcements, but only once the owner's panic
				// reaches the set layer).
				u.unannounceAll(len(op.dnodes))
				op.status.Store(combNeutralized)
			}
		}

	default:
		panic("rqprov: combining with unknown mode")
	}
}
