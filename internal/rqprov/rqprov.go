// Package rqprov implements the RQ Provider abstract data type of
// Arbel-Raviv and Brown, "Harnessing Epoch-based Reclamation for Efficient
// Range Queries" (PPoPP '18), §4.
//
// A provider adds linearizable range queries to any concurrent set that
// (1) has a traversal satisfying the COLLECT property and (2) linearizes
// every key-set change at a single write or CAS. All processes share one
// provider; range queries use it to collect the keys they return, and
// updates route their linearizing CAS through it so the provider can record
// insertion/deletion timestamps.
//
// The ADT operations are TraversalStart(low, high), Visit(node),
// TraversalEnd(), UpdateWrite(...) and UpdateCAS(...). Four implementations
// are selected by Mode:
//
//   - ModeLock: the lock-based provider of §4.3 (global fetch-and-add r/w
//     lock protecting the timestamp).
//   - ModeHTM: the HTM-based provider of §4.4, emulated with a distributed
//     reader-indicator lock (see package rwlock for the substitution
//     rationale — Go exposes no TSX intrinsics).
//   - ModeLockFree: the lock-free provider of §4.5 built on DCSS; range
//     queries never wait for itime/dtime, they help the announced DCSS and
//     learn timestamps from its descriptor payload.
//   - ModeUnsafe: the paper's non-linearizable baseline that simply
//     traverses the structure once and returns the keys it sees.
//
// A range query is linearized at its increment of the global timestamp TS.
// Each node records itime/dtime — the value of TS at the exact moment the
// update that inserted/deleted it linearized — so a query with timestamp ts
// returns exactly the keys of nodes with itime < ts && (dtime = ⊥ || dtime
// >= ts). Nodes missed by the traversal because of concurrent deletion are
// recovered from per-thread deletion announcements and from the EBR limbo
// lists (package epoch).
package rqprov

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/obs"
	"ebrrq/internal/rwlock"
	"ebrrq/internal/trace"
)

// Mode selects one of the provider implementations.
type Mode int

const (
	// ModeUnsafe is the non-linearizable single-traversal baseline.
	ModeUnsafe Mode = iota
	// ModeLock is the lock-based provider (§4.3).
	ModeLock
	// ModeHTM is the HTM-based provider (§4.4), emulated in software.
	ModeHTM
	// ModeLockFree is the DCSS-based lock-free provider (§4.5).
	ModeLockFree
)

// String returns the mode's display name as used in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeUnsafe:
		return "Unsafe"
	case ModeLock:
		return "Lock"
	case ModeHTM:
		return "HTM"
	case ModeLockFree:
		return "Lock-free"
	}
	return "?"
}

// Config configures a Provider.
type Config struct {
	// MaxThreads is the maximum number of registered threads.
	MaxThreads int
	// Mode selects the provider implementation.
	Mode Mode
	// MaxAnnounce is the per-thread deletion-announcement capacity: the
	// largest number of nodes a single update may delete. Group updates
	// ((a,b)-tree rebalancing) delete several nodes at once. Default 16.
	MaxAnnounce int
	// LimboSorted declares that each per-thread limbo list is sorted in
	// descending dtime order, enabling the early-exit optimization of
	// §4.3. It holds when nodes are always retired by the thread whose
	// update deleted them (lazy list, skip list, Citrus, (a,b)-tree) but
	// not when helpers may physically unlink other threads' victims
	// (Harris list, external BST).
	LimboSorted bool
	// Recorder, if non-nil, observes every successful timestamped update;
	// used by the validation harness. Must be safe for concurrent use.
	Recorder Recorder
	// SpinBudget is how many iterations a timestamp wait spins before
	// escalating to yielding the processor (and counting the escalation).
	// 0 selects the default of 128; negative means escalate immediately.
	SpinBudget int
	// WaitBudget, when positive, bounds the total iterations a timestamp
	// wait may take before giving up with a conservative answer: an
	// unresolved itime excludes the node (treated as inserted after the
	// query), an unresolved dtime includes it (treated as deleted after).
	// Both answers match what offline validation replays, because the
	// Recorder only observes updates whose timestamps were published — they
	// diverge only if the stalled updater later wakes and publishes. The
	// default 0 waits forever (always linearizable); enable a budget when
	// surviving a wedged updater matters more than that corner.
	WaitBudget int
	// Clock is the timestamp source the provider linearizes on. Nil gives
	// the provider a private clock (the classic single-structure setup);
	// pass one SharedClock to several providers to linearize them on one
	// clock (sharding, DESIGN.md §9). An injected clock is never reset —
	// providers may join it at any point in its history.
	Clock TimestampSource
	// Trace, if non-nil, attaches the flight recorder (DESIGN.md §10): each
	// registered thread gets a per-slot event ring, range queries record
	// per-phase timings, and the epoch domain's watchdog records stall
	// edges. Nil keeps the zero-cost disabled path.
	Trace *trace.Recorder
	// TraceLabel prefixes this provider's ring labels (e.g. "s3/" for shard
	// 3) so several providers can share one recorder.
	TraceLabel string
	// LimboSoftLimit / LimboHardLimit bound the EBR domain's unreclaimed
	// node count (limbo plus quarantine; 0 disables a limit). Crossing the
	// soft limit arms the watchdog's escalation ladder (forced advances →
	// orphan sweeps → neutralization, when a watchdog with Neutralize is
	// attached); at the hard limit AdmitUpdate rejects updates with
	// ErrMemoryPressure until reclamation catches up. Range queries and
	// lookups are never backpressured — they add nothing to limbo.
	LimboSoftLimit int64
	LimboHardLimit int64
	// PressureWait, when positive, makes AdmitUpdate wait up to this long
	// for the limbo count to fall below the hard limit before giving up
	// with ErrMemoryPressure. 0 fails fast.
	PressureWait time.Duration
	// CombineUpdates enables the aggregating update funnel (DESIGN.md §12):
	// concurrent updaters publish their linearizing CAS into a per-thread
	// cell and one combiner applies up to CombineBatch of them inside a
	// single shared-clock window, amortizing the lock handoff (Lock/HTM)
	// and the timestamp validation (lock-free) over the batch. Followers
	// wait under SpinBudget plus a bounded yield grace and fall back to the
	// solo path, so a stalled combiner cannot wedge the funnel. No effect
	// in ModeUnsafe.
	CombineUpdates bool
	// CombineBatch caps how many pending ops one combiner drains per
	// window. 0 (with CombineUpdates set) defaults to MaxThreads — every
	// concurrent updater can ride one window.
	CombineBatch int
}

// Recorder observes timestamped updates for offline validation.
type Recorder interface {
	// RecordUpdate is called after an update linearizes with timestamp ts,
	// inserting inodes and deleting dnodes. Called on the updater's
	// goroutine after the timestamps have been published.
	RecordUpdate(tid int, ts uint64, inodes, dnodes []*epoch.Node)
}

// Provider is a shared RQ provider plus the EBR domain it harnesses.
type Provider struct {
	mode  Mode
	clock TimestampSource
	// ts caches clock.Word() so the hot paths — timestamp reads, the
	// advance CAS, DCSS validation — cost a pointer load, not an interface
	// dispatch. With the default private clock this is exactly the old
	// per-provider timestamp word.
	ts *atomic.Uint64

	// tsFenced (Lock/HTM modes) is the largest published *fence*: a drain
	// of the update lock loads TS inside its exclusive section and publishes
	// the value here, certifying that every update with a smaller timestamp
	// has finished its linearizing CAS (updates that entered the lock before
	// the drain completed with it; updates after it read TS >= the fence).
	// A range query that loses the advance race adopts a fenced timestamp
	// newer than its TS read instead of acquiring the exclusive lock itself,
	// and a winner whose timestamp a concurrent drain already fenced skips
	// its own drain — one drain serves every advance that preceded its TS
	// read (see DESIGN.md §8).
	tsFenced atomic.Uint64

	// drainers counts range queries currently inside drainAndFence, so a
	// winner can tell "wait for the in-flight drain" apart from "no drain
	// coming; do it myself".
	drainers atomic.Int32

	lock rwlock.FetchAddRW // ModeLock
	dist *rwlock.DistRW    // ModeHTM

	dom          *epoch.Domain
	threads      []atomic.Pointer[Thread]
	registered   atomic.Int32
	maxAnnounce  int
	limboSorted  bool
	recorder     Recorder
	spinBudget   int
	waitBudget   int
	pressureWait time.Duration
	met          provMetrics

	// Aggregating update funnel (combine.go). combineBatch is the maximum
	// ops one combiner drains per window; 0 disables combining. combineLock
	// elects the combiner: whoever CASes it 0→1 drains the funnel.
	// combineSpin is the follower spin budget before yielding: SpinBudget
	// normally, 0 when GOMAXPROCS exceeds the core count — spinning only
	// makes sense when the combiner can run on another core, and on an
	// oversubscribed host a spinning follower burns the very quantum the
	// combiner needs. combineYield (same condition) makes publishers yield
	// once between publishing and contending for the combiner role: when
	// goroutines outnumber processors, publish-overlap has to be
	// manufactured by letting other runnable updaters publish first, or
	// every batch is a batch of one. When GOMAXPROCS <= NumCPU the overlap
	// is physical and the yield would only donate the publisher's quantum
	// to unrelated goroutines (a range query mid-sweep can hold it for a
	// full preemption slice).
	combineBatch int
	combineSpin  int
	combineYield bool
	combineLock  atomic.Uint32

	// Flight recorder (nil when untraced). rings caches one ring per thread
	// slot so crash/revive churn (chaos tests) reuses rings instead of
	// exhausting the recorder's MaxRings budget; guarded by mu.
	trace      *trace.Recorder
	traceLabel string
	rings      []*trace.Ring

	mu      sync.Mutex // guards freeIDs and the register/deregister pairing
	freeIDs []int
}

// ErrTooManyThreads is returned by TryRegister when every slot is held by a
// live thread.
var ErrTooManyThreads = errors.New("rqprov: too many threads registered")

// ErrMemoryPressure is returned by AdmitUpdate when the domain's unreclaimed
// node count sits at the hard limbo limit (and, with PressureWait, stayed
// there for the whole wait): admitting the update would grow limbo past the
// configured memory bound. Retry later, or shed the write.
var ErrMemoryPressure = errors.New("rqprov: update rejected, limbo at hard memory limit")

// provMetrics holds the provider-layer observability handles. All fields
// are nil-safe no-ops until EnableMetrics wires them, so the default path
// pays one branch per (rare) event.
type provMetrics struct {
	rqs          *obs.Counter   // ebrrq_rq_total
	limboVisited *obs.Counter   // ebrrq_limbo_visited_total
	limboPerRQ   *obs.Histogram // ebrrq_limbo_visited_per_rq
	annScans     *obs.Counter   // ebrrq_announce_scans_total
	dcssRetries  *obs.Counter   // ebrrq_dcss_retries_total
	awaitISpins  *obs.Counter   // ebrrq_await_itime_spins_total
	awaitDSpins  *obs.Counter   // ebrrq_await_dtime_spins_total
	poolHits     *obs.Counter   // ebrrq_pool_hits_total
	poolMisses   *obs.Counter   // ebrrq_pool_misses_total

	// backpressured counts updates AdmitUpdate rejected (after any
	// PressureWait) because limbo sat at the hard memory limit.
	backpressured *obs.Counter // ebrrq_updates_backpressured_total

	// Aggregating-funnel family: combBatches counts combiner windows,
	// combOps the updates applied inside them (combOps/combBatches is the
	// realized amortization factor), combFallbacks the followers that
	// exhausted their wait grace and went solo, combBatchSize the batch-size
	// distribution.
	combBatches   *obs.Counter   // ebrrq_combine_batches_total
	combOps       *obs.Counter   // ebrrq_combine_ops_total
	combFallbacks *obs.Counter   // ebrrq_combine_solo_fallbacks_total
	combBatchSize *obs.Histogram // ebrrq_combine_batch_size

	// RQ hot-path scaling family: tsShared counts range queries that
	// adopted a concurrently installed timestamp, tsAdvanced those that won
	// the advance CAS; bagsSkipped/bagsSwept count limbo bags elided by the
	// max-dtime fence vs. actually walked.
	tsShared    *obs.Counter // ebrrq_rq_ts_shared
	tsAdvanced  *obs.Counter // ebrrq_rq_ts_advanced
	tsPinned    *obs.Counter // ebrrq_rq_ts_pinned
	fenceShared *obs.Counter // ebrrq_rq_fence_shared
	bagsSkipped *obs.Counter // ebrrq_rq_bags_skipped
	bagsSwept   *obs.Counter // ebrrq_rq_bags_swept

	// Per-phase RQ time attribution, only fed while the flight recorder is
	// attached (the clock reads ride on the recorder's event stamps).
	// Distinct names, not a label: Snapshot.Counter sums across label sets.
	phTSWait   *obs.Counter // ebrrq_rq_ts_wait_ns_total
	phTraverse *obs.Counter // ebrrq_rq_traverse_ns_total
	phAnnounce *obs.Counter // ebrrq_rq_announce_ns_total
	phLimbo    *obs.Counter // ebrrq_rq_limbo_ns_total

	// Timestamp-wait escalation family: escalations count waits that
	// exhausted SpinBudget and began yielding; fallbacks count waits that
	// exhausted WaitBudget and resolved conservatively.
	escI *obs.Counter // ebrrq_await_escalations_total{kind="itime"}
	escD *obs.Counter // ebrrq_await_escalations_total{kind="dtime"}
	escA *obs.Counter // ebrrq_await_escalations_total{kind="announce"}
	fbI  *obs.Counter // ebrrq_await_fallbacks_total{kind="itime"}
	fbD  *obs.Counter // ebrrq_await_fallbacks_total{kind="dtime"}
	fbA  *obs.Counter // ebrrq_await_fallbacks_total{kind="announce"}
}

// EnableMetrics registers the provider's metrics (and those of its EBR
// domain and lock substrate) with reg and turns instrumentation on. Metric
// families are get-or-create, so providers created back to back (benchmark
// trials) accumulate into the same registry; call before the provider is
// shared between goroutines.
func (p *Provider) EnableMetrics(reg *obs.Registry) {
	p.met = provMetrics{
		rqs:          reg.Counter("ebrrq_rq_total", "range queries completed"),
		limboVisited: reg.Counter("ebrrq_limbo_visited_total", "limbo-list nodes visited by range queries"),
		limboPerRQ:   reg.Histogram("ebrrq_limbo_visited_per_rq", "limbo-list nodes visited per range query"),
		annScans:     reg.Counter("ebrrq_announce_scans_total", "deletion-announcement slots examined by range queries"),
		dcssRetries:  reg.Counter("ebrrq_dcss_retries_total", "DCSS retries after a timestamp change (lock-free provider)"),
		awaitISpins:  reg.Counter("ebrrq_await_itime_spins_total", "spin iterations waiting for insertion timestamps"),
		awaitDSpins:  reg.Counter("ebrrq_await_dtime_spins_total", "spin iterations waiting for deletion timestamps"),
		poolHits:     reg.Counter("ebrrq_pool_hits_total", "node allocations served from a free pool"),
		poolMisses:   reg.Counter("ebrrq_pool_misses_total", "node allocations that went to the heap"),
		tsShared:     reg.Counter("ebrrq_rq_ts_shared", "range queries that adopted a concurrently installed timestamp"),
		tsAdvanced:   reg.Counter("ebrrq_rq_ts_advanced", "range queries that advanced the global timestamp themselves"),
		tsPinned:     reg.Counter("ebrrq_rq_ts_pinned", "per-shard traversals that ran at a router-pinned timestamp"),
		fenceShared:  reg.Counter("ebrrq_rq_fence_shared", "timestamp advances whose update-lock drain was satisfied by a concurrent drain"),
		bagsSkipped:  reg.Counter("ebrrq_rq_bags_skipped", "limbo bags skipped entirely by the max-dtime fence"),
		bagsSwept:    reg.Counter("ebrrq_rq_bags_swept", "limbo bags walked by range-query sweeps"),
		phTSWait:     reg.Counter("ebrrq_rq_ts_wait_ns_total", "ns range queries spent acquiring/fencing their timestamp (flight recorder attached)"),
		phTraverse:   reg.Counter("ebrrq_rq_traverse_ns_total", "ns range queries spent traversing the structure (flight recorder attached)"),
		phAnnounce:   reg.Counter("ebrrq_rq_announce_ns_total", "ns range queries spent on the announcement sweep (flight recorder attached)"),
		phLimbo:      reg.Counter("ebrrq_rq_limbo_ns_total", "ns range queries spent on the limbo sweep (flight recorder attached)"),
		backpressured: reg.Counter("ebrrq_updates_backpressured_total",
			"updates rejected with ErrMemoryPressure at the hard limbo limit"),
	}
	// The combine family is registered in every configuration (like the HTM
	// abort series) so exposition is stable; it only moves when
	// CombineUpdates is enabled.
	p.met.combBatches = reg.Counter("ebrrq_combine_batches_total",
		"combiner windows: one shared-clock window amortized over a batch of updates")
	p.met.combOps = reg.Counter("ebrrq_combine_ops_total",
		"updates applied inside combiner windows")
	p.met.combFallbacks = reg.Counter("ebrrq_combine_solo_fallbacks_total",
		"updates that exhausted the funnel wait grace and fell back to the solo path")
	p.met.combBatchSize = reg.Histogram("ebrrq_combine_batch_size",
		"updates drained per combiner window")
	const escHelp = "timestamp waits that exhausted the spin budget and began yielding"
	const fbHelp = "timestamp waits that exhausted the wait budget and resolved conservatively"
	p.met.escI = reg.CounterL("ebrrq_await_escalations_total", `kind="itime"`, escHelp)
	p.met.escD = reg.CounterL("ebrrq_await_escalations_total", `kind="dtime"`, escHelp)
	p.met.escA = reg.CounterL("ebrrq_await_escalations_total", `kind="announce"`, escHelp)
	p.met.fbI = reg.CounterL("ebrrq_await_fallbacks_total", `kind="itime"`, fbHelp)
	p.met.fbD = reg.CounterL("ebrrq_await_fallbacks_total", `kind="dtime"`, fbHelp)
	p.met.fbA = reg.CounterL("ebrrq_await_fallbacks_total", `kind="announce"`, fbHelp)
	// The HTM abort series exists in every mode so exposition is stable;
	// only the emulated-HTM lock feeds it. The emulation has a single
	// abort cause: the fallback lock was held.
	aborts := reg.CounterL("ebrrq_htm_aborts_total", `cause="lock_held"`,
		"emulated-HTM transaction aborts by cause")
	if p.dist != nil {
		p.dist.AbortCounter = aborts
	}
	p.dom.SetMetrics(epoch.Metrics{
		Advances:  reg.Counter("ebrrq_epoch_advances_total", "global epoch advances"),
		Retires:   reg.Counter("ebrrq_epoch_retires_total", "nodes retired into limbo"),
		Rotations: reg.Counter("ebrrq_epoch_rotations_total", "limbo-bag rotations"),
		Reclaimed: reg.Counter("ebrrq_epoch_reclaimed_total", "nodes handed to the free function"),
		Neutralizations: reg.Counter("ebrrq_epoch_neutralizations_total",
			"stalled threads neutralized by the watchdog escalation ladder"),
		Quarantined: reg.Counter("ebrrq_epoch_quarantined_total",
			"reclaimable nodes diverted to quarantine while a neutralization was unacknowledged"),
		ForcedAdvances: reg.Counter("ebrrq_epoch_forced_advances_total",
			"epoch advances forced by the watchdog under limbo pressure"),
		ForcedSweeps: reg.Counter("ebrrq_epoch_forced_sweeps_total",
			"nodes reclaimed by watchdog-forced orphan sweeps"),
	})
	reg.GaugeFunc("ebrrq_limbo_len", "nodes currently in limbo across all threads",
		func() int64 { return int64(p.dom.LimboSize()) })
	reg.GaugeFunc("ebrrq_limbo_bytes", "approximate heap bytes held in limbo",
		func() int64 { return p.dom.LimboBytes() })
	reg.GaugeFunc("ebrrq_quarantined_nodes", "nodes held in the neutralization quarantine",
		func() int64 { return p.dom.QuarantinedNodes() })
	reg.GaugeFunc("ebrrq_quarantined_bytes", "approximate heap bytes held in the neutralization quarantine",
		func() int64 { return p.dom.QuarantinedBytes() })
	reg.GaugeFunc("ebrrq_unacked_neutralizations", "neutralized threads that have not yet acknowledged",
		func() int64 { return int64(p.dom.UnackedNeutralizations()) })
	reg.GaugeFunc("ebrrq_global_timestamp", "current range-query timestamp TS",
		func() int64 { return int64(p.ts.Load()) })
	reg.GaugeFunc("ebrrq_epoch_stalled_threads", "threads currently stalled mid-operation (watchdog view when attached)",
		func() int64 { return int64(len(p.dom.StalledThreads())) })
	reg.GaugeFunc("ebrrq_epoch_max_lag", "largest epoch lag across active threads",
		func() int64 { return int64(p.dom.MaxLag()) })
}

// Health returns a health check for obs.Serve's /healthz endpoint.
//
// Critical (503): the domain sits at its hard limbo limit — updates are
// being rejected with ErrMemoryPressure.
//
// Degraded (200 + "degraded" body): a thread is stalled mid-operation, a
// neutralization is awaiting acknowledgement, or the soft limbo limit is
// breached — the system still serves every operation, but the escalation
// ladder is working. Attach an epoch watchdog to the provider's domain for
// duration-based stall detection; without one the warn level only reports
// the (conservative) lag-based view.
func (p *Provider) Health() obs.HealthCheck {
	return obs.HealthCheck{
		Name: "epoch",
		Check: func() error {
			if p.dom.OverHardLimit() {
				_, hard := p.dom.LimboLimits()
				return fmt.Errorf("limbo at hard memory limit (%d unreclaimed nodes, limit %d): updates rejected",
					p.dom.BoundedNodes(), hard)
			}
			return nil
		},
		Warn: func() error {
			var probs []string
			if stalls := p.dom.StalledThreads(); len(stalls) > 0 {
				probs = append(probs, fmt.Sprintf("%d thread(s) stalled mid-operation, max epoch lag %d",
					len(stalls), p.dom.MaxLag()))
			}
			if ua := p.dom.UnackedNeutralizations(); ua > 0 {
				probs = append(probs, fmt.Sprintf("%d neutralization(s) unacknowledged, %d nodes quarantined",
					ua, p.dom.QuarantinedNodes()))
			}
			if p.dom.OverSoftLimit() {
				soft, _ := p.dom.LimboLimits()
				probs = append(probs, fmt.Sprintf("limbo over soft limit (%d unreclaimed nodes, limit %d)",
					p.dom.BoundedNodes(), soft))
			}
			if len(probs) > 0 {
				return errors.New(strings.Join(probs, "; "))
			}
			return nil
		},
	}
}

// New creates a provider (and its EBR domain) from cfg.
func New(cfg Config) *Provider {
	if cfg.MaxThreads <= 0 {
		panic("rqprov: MaxThreads must be positive")
	}
	if cfg.MaxAnnounce <= 0 {
		// Default: large enough for the biggest group update any of the
		// bundled structures performs — the external BST can splice a
		// chain of up to one pending deletion per thread (two nodes
		// each) in a single CAS.
		cfg.MaxAnnounce = 2*cfg.MaxThreads + 8
		if cfg.MaxAnnounce < 16 {
			cfg.MaxAnnounce = 16
		}
	}
	if cfg.SpinBudget == 0 {
		cfg.SpinBudget = 128
	} else if cfg.SpinBudget < 0 {
		cfg.SpinBudget = 0
	}
	if cfg.Clock == nil {
		cfg.Clock = NewSharedClock() // private clock, TS starts at 1 (0 is ⊥)
	}
	p := &Provider{
		mode:         cfg.Mode,
		clock:        cfg.Clock,
		ts:           cfg.Clock.Word(),
		dom:          epoch.NewDomain(cfg.MaxThreads),
		threads:      make([]atomic.Pointer[Thread], cfg.MaxThreads),
		maxAnnounce:  cfg.MaxAnnounce,
		limboSorted:  cfg.LimboSorted,
		recorder:     cfg.Recorder,
		spinBudget:   cfg.SpinBudget,
		waitBudget:   cfg.WaitBudget,
		pressureWait: cfg.PressureWait,
		trace:        cfg.Trace,
		traceLabel:   cfg.TraceLabel,
	}
	if cfg.CombineUpdates {
		if cfg.CombineBatch <= 0 {
			cfg.CombineBatch = cfg.MaxThreads
		}
		p.combineBatch = cfg.CombineBatch
		p.combineSpin = cfg.SpinBudget
		if runtime.GOMAXPROCS(0) > runtime.NumCPU() {
			p.combineSpin = 0
			p.combineYield = true
		}
	}
	p.dom.SetLimboLimits(cfg.LimboSoftLimit, cfg.LimboHardLimit)
	if cfg.Trace != nil {
		p.rings = make([]*trace.Ring, cfg.MaxThreads)
		p.dom.SetTrace(cfg.Trace, cfg.TraceLabel)
	}
	p.tsFenced.Store(1)
	if cfg.Mode == ModeHTM {
		p.dist = rwlock.NewDistRW(cfg.MaxThreads)
	}
	return p
}

// Mode returns the provider's mode.
func (p *Provider) Mode() Mode { return p.mode }

// MaxThreads returns the provider's registration capacity.
func (p *Provider) MaxThreads() int { return len(p.threads) }

// MaxAnnounce returns the per-thread deletion-announcement capacity (the
// largest dnodes slice an update may pass to UpdateCAS).
func (p *Provider) MaxAnnounce() int { return p.maxAnnounce }

// Domain returns the provider's EBR domain (for configuring reclamation).
func (p *Provider) Domain() *epoch.Domain { return p.dom }

// CombineBatch returns the configured combiner batch cap (0 when the
// aggregating update funnel is disabled).
func (p *Provider) CombineBatch() int { return p.combineBatch }

// Timestamp returns the current global timestamp (for tests and stats).
func (p *Provider) Timestamp() uint64 { return p.ts.Load() }

// Clock returns the timestamp source the provider linearizes on. The shard
// router uses it to pick one timestamp for a cross-shard range query.
func (p *Provider) Clock() TimestampSource { return p.clock }

// HTMAborts returns the emulated-HTM abort count (ModeHTM only).
func (p *Provider) HTMAborts() uint64 {
	if p.dist == nil {
		return 0
	}
	return p.dist.Aborts.Load()
}

// Register allocates a provider thread handle, panicking when the provider
// is full. It is a thin wrapper around TryRegister kept for existing
// callers; new code should prefer TryRegister. Each goroutine operating on
// the data structure must register exactly once and use its own handle.
func (p *Provider) Register() *Thread {
	t, err := p.TryRegister()
	if err != nil {
		panic("rqprov: too many threads registered")
	}
	return t
}

// TryRegister allocates a provider thread handle, reusing slots released by
// Deregister before extending the high-water mark. Safe for concurrent use;
// returns ErrTooManyThreads when every slot is held by a live thread.
func (p *Provider) TryRegister() (*Thread, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fresh := true
	var id int
	if n := len(p.freeIDs); n > 0 {
		id = p.freeIDs[n-1]
		p.freeIDs = p.freeIDs[:n-1]
		fresh = false
	} else {
		id = int(p.registered.Load())
		if id >= len(p.threads) {
			return nil, ErrTooManyThreads
		}
	}
	// The provider's free list moves in lockstep with the epoch domain's:
	// Deregister pushes onto both under p.mu, so popping here yields the
	// matching epoch slot.
	ep, err := p.dom.TryRegister()
	if err != nil {
		if !fresh {
			p.freeIDs = append(p.freeIDs, id)
		}
		return nil, err
	}
	if ep.ID() != id {
		panic("rqprov: thread id mismatch with epoch domain")
	}
	t := &Thread{
		prov:     p,
		ep:       ep,
		id:       id,
		announce: make([]atomic.Pointer[epoch.Node], p.maxAnnounce),
	}
	if p.trace != nil {
		if p.rings[id] == nil {
			p.rings[id] = p.trace.Ring(fmt.Sprintf("%st%d", p.traceLabel, id))
		}
		t.tr = p.rings[id]
		t.traced = true
		ep.SetTrace(t.tr)
	}
	p.threads[id].Store(t)
	if fresh {
		p.registered.Store(int32(id + 1))
	}
	return t, nil
}

// Thread is a per-goroutine provider handle. It embeds the EBR thread: data
// structure operations are bracketed by StartOp/EndOp.
type Thread struct {
	prov *Provider
	ep   *epoch.Thread
	id   int
	dead atomic.Bool

	// announce holds pointers to nodes this thread is about to delete
	// (single-writer, multi-reader), per §4.3. annCount over-approximates
	// the number of occupied slots: it is raised before any slot is filled
	// and cleared only after every slot is nil again, so a range query that
	// reads zero may skip the thread's slots entirely — an announcement it
	// misses that way was published after the query's scan, meaning the
	// deletion linearizes after the traversal finished and the traversal
	// itself saw the node.
	annCount atomic.Int32
	announce []atomic.Pointer[epoch.Node]

	// desc is the announced DCSS descriptor of the thread's in-flight
	// update (ModeLockFree), carrying the timestamp payload for helpers.
	// With combining enabled the combiner installs it on the owner's
	// behalf; the owner clears it after consuming the batch result.
	desc atomic.Pointer[dcss.Descriptor]

	// comb is this thread's funnel cell (combine.go); combBatch is the
	// combiner-side scratch of claimed threads, reused across batches.
	comb      combineOp
	combBatch []*Thread

	// Range-query state (private to the owner).
	ts        uint64
	low, high int64
	result    []epoch.KV
	rqActive  bool

	// pinnedTS, when nonzero, is the linearization timestamp the next
	// TraversalStart must use instead of choosing one from the clock. The
	// shard router picks one timestamp from the shared clock and pins it
	// on every overlapping shard's thread so the whole cross-shard range
	// query linearizes at a single instant. Timestamps picked from a clock
	// are always >= 2 (clocks start at 1 and queries advance first), so 0
	// is a safe "no pin" sentinel. Single-use: consumed by TraversalStart,
	// cleared by Abort and Deregister.
	pinnedTS uint64

	lastUpdateTS uint64

	// Stats.
	limboVisitedLast  uint64
	limboVisitedTotal uint64
	rqCount           uint64
	bagsSkippedTotal  uint64
	bagsSweptTotal    uint64
	annScratch        []annRef

	// High-water marks of the reusable buffers: if a buffer was dropped
	// (Abort after a panic mid-append, say), the next range query restores
	// its observed steady-state capacity in one allocation instead of
	// re-growing through the append doubling schedule.
	resultHWM int
	annHWM    int

	// Flight recorder. traced is set when the provider carries a recorder —
	// phase timing runs even if tr is nil (ring budget exhausted) so the
	// phase counters stay truthful. tr is owner-written, owner-read.
	tr          *trace.Ring
	traced      bool
	phTravStart int64 // trace.Now() when the traversal phase began
}

type annRef struct {
	node *epoch.Node
	slot *atomic.Pointer[epoch.Node]
}

// ID returns the thread's registration index.
func (t *Thread) ID() int { return t.id }

// Provider returns the owning provider.
func (t *Thread) Provider() *Provider { return t.prov }

// Epoch returns the underlying EBR thread handle.
func (t *Thread) Epoch() *epoch.Thread { return t.ep }

// TraceRing returns the thread's flight-recorder ring (nil when untraced or
// past the recorder's ring budget). The set layer stamps op begin/end events
// on it so per-op spans and provider-phase events land in one ring.
func (t *Thread) TraceRing() *trace.Ring { return t.tr }

// StartOp begins a data-structure operation (EBR announcement).
func (t *Thread) StartOp() { t.ep.StartOp() }

// EndOp ends the current data-structure operation.
func (t *Thread) EndOp() { t.ep.EndOp() }

// PinEpoch enters an EBR critical section that tolerates nested
// StartOp/EndOp pairs; UnpinEpoch (or Abort/Deregister) leaves it. The shard
// router pins every overlapping shard before acquiring a cross-shard range
// query's timestamp, so each shard retains — for the whole multi-shard
// traversal — every limbo node the query may need (see epoch.Thread.Pin).
func (t *Thread) PinEpoch() { t.ep.Pin() }

// UnpinEpoch leaves a PinEpoch critical section. Idempotent.
func (t *Thread) UnpinEpoch() { t.ep.Unpin() }

// Abort clears the thread's provider-visible state — the announced DCSS
// descriptor, the deletion announcements, any range-query in progress — and
// force-ends its EBR operation. Panic-recovery wrappers call it after a
// panic unwound data-structure code mid-operation; the thread remains
// registered and usable. Clearing the announcements is a withdrawal: a
// concurrent range query that was waiting on one re-reads dtime and decides
// from whatever the aborted update actually published.
func (t *Thread) Abort() {
	t.settleFunnel()
	t.desc.Store(nil)
	t.unannounceAll(len(t.announce))
	t.rqActive = false
	t.pinnedTS = 0
	t.ep.AbortOp()
}

// settleFunnel withdraws or drains this thread's combining-funnel cell so
// Abort (panic recovery) and Deregister never leave a pending op behind for
// a later combiner to claim against recycled thread state. A Pending op is
// withdrawn by CAS; a Claimed op waits out the in-flight combiner window
// (bounded: the combiner publishes every claimed op's terminal status on its
// way out, panic included). A Done result found here is dropped without the
// owner-side publication — the same "died between CAS and publication"
// shape the conservative timestamp waits already tolerate for solo updates.
func (t *Thread) settleFunnel() {
	op := &t.comb
	for {
		switch op.status.Load() {
		case combFree:
			return
		case combPending:
			if op.status.CompareAndSwap(combPending, combFree) {
				op.clear()
				return
			}
		case combClaimed:
			runtime.Gosched()
		default: // combDone, combNeutralized
			op.clear()
			op.status.Store(combFree)
			return
		}
	}
}

// Deregister permanently releases the thread's slot: in-flight state is
// aborted as in Abort, the EBR slot quiesces (so a thread that died
// mid-operation stops pinning the global epoch and its limbo bags age out
// via the orphan sweep), and the slot id becomes reusable by a future
// TryRegister. Idempotent. Must be called by the owner goroutine or, after
// the owner died, by exactly one recovering goroutine.
func (t *Thread) Deregister() {
	if !t.dead.CompareAndSwap(false, true) {
		return
	}
	t.settleFunnel()
	t.desc.Store(nil)
	t.unannounceAll(len(t.announce))
	t.rqActive = false
	t.pinnedTS = 0
	p := t.prov
	p.mu.Lock()
	t.ep.Deregister() // pushes the epoch slot; pair it with ours under p.mu
	p.freeIDs = append(p.freeIDs, t.id)
	p.mu.Unlock()
}

// LastUpdateTS returns the timestamp of this thread's most recent successful
// timestamped update (validation support).
func (t *Thread) LastUpdateTS() uint64 { return t.lastUpdateTS }

// LastRQTS returns the linearization timestamp of the most recent range
// query performed by this thread.
func (t *Thread) LastRQTS() uint64 { return t.ts }

// LimboVisitedLast returns how many limbo-list nodes the most recent range
// query visited (Experiment 1b statistic).
func (t *Thread) LimboVisitedLast() uint64 { return t.limboVisitedLast }

// LimboVisitedTotal returns the cumulative limbo-list nodes visited by this
// thread's range queries.
func (t *Thread) LimboVisitedTotal() uint64 { return t.limboVisitedTotal }

// RQCount returns the number of range queries this thread has completed.
func (t *Thread) RQCount() uint64 { return t.rqCount }

// BagsSkippedTotal returns how many limbo bags this thread's range queries
// skipped entirely via the max-dtime fence.
func (t *Thread) BagsSkippedTotal() uint64 { return t.bagsSkippedTotal }

// BagsSweptTotal returns how many limbo bags this thread's range queries
// actually walked.
func (t *Thread) BagsSweptTotal() uint64 { return t.bagsSweptTotal }

// ---------------------------------------------------------------------------
// Update path
// ---------------------------------------------------------------------------

// AdmitUpdate is the backpressure gate: call it before starting an update
// operation (Insert/Delete — not lookups or range queries, which add nothing
// to limbo). It returns ErrMemoryPressure while the domain's unreclaimed
// node count sits at the hard limbo limit; with Config.PressureWait it first
// waits — yielding, off any epoch announcement — up to that long for
// reclamation (or the watchdog's escalation ladder) to drain below the
// limit. Call BEFORE StartOp: a waiting thread must not pin the epoch, or it
// would hold back the very reclamation it is waiting for.
func (t *Thread) AdmitUpdate() error {
	d := t.prov.dom
	if !d.OverHardLimit() {
		return nil
	}
	// Self-service drain before rejecting: most of the limbo typically sits in
	// the bags of the very updaters being refused admission, and only the
	// owner may empty those — a rejected thread never reaches the StartOp
	// rotation, so without this the domain would pin at the hard limit even
	// after the watchdog unwedged the epoch.
	if t.ep.ReclaimStale() > 0 && !d.OverHardLimit() {
		return nil
	}
	if wait := t.prov.pressureWait; wait > 0 {
		deadline := time.Now().Add(wait)
		for {
			runtime.Gosched()
			t.ep.ReclaimStale()
			if !d.OverHardLimit() {
				return nil
			}
			if time.Now().After(deadline) {
				break
			}
		}
	}
	t.prov.met.backpressured.Inc(t.id)
	if t.tr != nil {
		_, hard := d.LimboLimits()
		t.tr.Emit(trace.EvBackpressure, uint64(d.BoundedNodes()), uint64(hard))
	}
	return ErrMemoryPressure
}

func (t *Thread) announceAll(dnodes []*epoch.Node) {
	if len(dnodes) > len(t.announce) {
		panic("rqprov: update deletes more nodes than MaxAnnounce")
	}
	if len(dnodes) == 0 {
		return
	}
	t.annCount.Store(int32(len(dnodes))) // count before slots: see annCount
	for i, d := range dnodes {
		t.announce[i].Store(d)
	}
}

func (t *Thread) unannounceAll(n int) {
	for i := 0; i < n; i++ {
		t.announce[i].Store(nil)
	}
	t.annCount.Store(0) // slots before count: see annCount
}

// UpdateCAS replaces the write/CAS at which an update that changes the key
// set linearizes (§4.1). slot must be read by all parties via dcss.Slot
// methods. inodes (dnodes) are the nodes inserted (deleted) by the update.
// If retireDeleted is true, successfully deleted nodes are retired to the
// EBR limbo list immediately (structures that physically delete at the
// linearization point); structures with separate logical deletion pass
// false and later call PhysicalDelete.
//
// On success the provider publishes itime on inodes and dtime on dnodes with
// the exact value TS held when the CAS took effect.
func (t *Thread) UpdateCAS(slot *dcss.Slot, old, new unsafe.Pointer, inodes, dnodes []*epoch.Node, retireDeleted bool) bool {
	p := t.prov
	if p.mode != ModeUnsafe {
		// Pre-linearization poison checkpoint: a thread that resumed after
		// being neutralized lost its epoch protection, so the nodes its
		// traversal found (old/new) can no longer be trusted — the update
		// must abort before it can linearize against them. Running the check
		// here keeps poisoned (and, at the set layer, backpressured) ops out
		// of the combining funnel: an op is rejected before it can enter a
		// batch.
		t.ep.CheckNeutralized()
		if p.combineBatch > 0 {
			// The combined path defers the deletion announcement to the
			// combiner, which raises it inside the window immediately before
			// the op's CAS. Announcing here — before publication — would leave
			// the announcement unresolved (dtime == 0) for the op's entire
			// funnel residence, and every concurrent range query's
			// announcement sweep would spin on it.
			return t.combinedUpdateCAS(slot, old, new, inodes, dnodes, retireDeleted)
		}
		t.announceAll(dnodes)
		fault.Inject("rqprov.update.announced")
	}
	return t.soloUpdateCAS(slot, old, new, inodes, dnodes, retireDeleted)
}

// soloUpdateCAS is the uncombined update path: each updater takes its own
// shared-clock window. It is both the default (combining disabled) and the
// fallback a follower runs after withdrawing from the funnel on budget
// exhaustion.
func (t *Thread) soloUpdateCAS(slot *dcss.Slot, old, new unsafe.Pointer, inodes, dnodes []*epoch.Node, retireDeleted bool) bool {
	p := t.prov
	switch p.mode {
	case ModeUnsafe:
		if !slot.CAS(old, new) {
			return false
		}
		if retireDeleted {
			for _, d := range dnodes {
				t.ep.Retire(d)
			}
		}
		return true

	case ModeLock:
		p.lock.AcquireShared()
		// In-section re-check: a thread that stalled at any point before the
		// lock and was neutralized while stalled must not linearize on
		// resume — its retires would land in bags below every concurrent
		// query's visibility floor. Release before panicking, or RQ drains
		// would wedge on our shared hold. (A poison landing between this
		// load and the CAS is the residual window DESIGN.md §11 documents.)
		if t.ep.Poisoned() {
			p.lock.ReleaseShared()
			panic(epoch.ErrNeutralized)
		}
		ts := p.ts.Load()
		ok := slot.CAS(old, new)
		p.lock.ReleaseShared()
		t.finishUpdate(ok, ts, inodes, dnodes, retireDeleted)
		return ok

	case ModeHTM:
		// Software emulation of: XBEGIN; abort if L exclusively held;
		// read TS; CAS; XEND. AcquireShared touches only this thread's
		// slot and validates the writer bit, retrying on "abort".
		p.dist.AcquireShared(t.id)
		if t.ep.Poisoned() { // same contract as the ModeLock re-check
			p.dist.ReleaseShared(t.id)
			panic(epoch.ErrNeutralized)
		}
		ts := p.ts.Load()
		ok := slot.CAS(old, new)
		p.dist.ReleaseShared(t.id)
		t.finishUpdate(ok, ts, inodes, dnodes, retireDeleted)
		return ok

	case ModeLockFree:
		for {
			t.ep.CheckNeutralized() // re-check per retry: TS waits can spin long
			ts := p.ts.Load()
			d := &dcss.Descriptor{
				A1: p.ts, Exp1: ts,
				S: slot, Old: old, New: new,
				INodes: inodes, DNodes: dnodes,
			}
			t.desc.Store(d)
			fault.Inject("rqprov.update.desc")
			st := d.Exec()
			if st == dcss.Succeeded {
				t.finishUpdate(true, ts, inodes, dnodes, retireDeleted)
				t.desc.Store(nil)
				return true
			}
			if st == dcss.FailedValue {
				t.finishUpdate(false, 0, nil, dnodes, false)
				t.desc.Store(nil)
				return false
			}
			// FailedA1: TS changed under us; retry with a fresh read.
			p.met.dcssRetries.Inc(t.id)
			if t.tr != nil {
				t.tr.Emit(trace.EvDCSSRetry, ts, 0)
			}
		}
	}
	panic("rqprov: unknown mode")
}

// finishUpdate publishes timestamps, retires deleted nodes and clears the
// announcements after a (possibly failed) linearizing CAS.
func (t *Thread) finishUpdate(ok bool, ts uint64, inodes, dnodes []*epoch.Node, retireDeleted bool) {
	if ok {
		for _, n := range inodes {
			n.SetITime(ts)
		}
		for _, d := range dnodes {
			d.SetDTime(ts)
		}
		t.lastUpdateTS = ts
		// Record before Retire: Retire is a poison checkpoint, and if it
		// aborts the thread (residual neutralization window) the validator
		// must already know about the linearized update. Retire stays before
		// unannounceAll — the announcement covers the nodes until they are
		// findable in limbo.
		if r := t.prov.recorder; r != nil {
			r.RecordUpdate(t.id, ts, inodes, dnodes)
		}
		if retireDeleted {
			for _, d := range dnodes {
				t.ep.Retire(d)
			}
		}
	}
	t.unannounceAll(len(dnodes))
	fault.Inject("rqprov.update.finished")
}

// UpdateWrite replaces a linearizing *write* (as opposed to CAS): the new
// value is installed unconditionally. Used by lock-based structures whose
// linearization point is a store performed under a lock.
func (t *Thread) UpdateWrite(slot *dcss.Slot, new unsafe.Pointer, inodes, dnodes []*epoch.Node, retireDeleted bool) {
	for {
		old := slot.Load()
		if t.UpdateCAS(slot, old, new, inodes, dnodes, retireDeleted) {
			return
		}
	}
}

// PhysicalDelete supports structures with separate logical deletion (§4.3,
// "Supporting logical deletion"): the caller announces the nodes it is about
// to physically unlink, performs the unlink (which must not change the key
// set — the nodes are already logically deleted and carry dtime), retires
// the nodes it unlinked, and removes the announcements. unlink reports
// whether this thread performed the removal.
func (t *Thread) PhysicalDelete(dnodes []*epoch.Node, unlink func() bool) bool {
	if t.prov.mode == ModeUnsafe {
		ok := unlink()
		if ok {
			for _, d := range dnodes {
				t.ep.Retire(d)
			}
		}
		return ok
	}
	t.ep.CheckNeutralized() // same pre-linearization contract as UpdateCAS
	t.announceAll(dnodes)
	fault.Inject("rqprov.physdel.announced")
	ok := unlink()
	if ok {
		for _, d := range dnodes {
			t.ep.Retire(d)
		}
	}
	t.unannounceAll(len(dnodes))
	return ok
}

// Retire forwards to the EBR thread (for removals outside the update path).
func (t *Thread) Retire(n *epoch.Node) { t.ep.Retire(n) }

// PoolHit records a node allocation served from a per-thread free pool.
// Data structures call it from their alloc paths; a no-op until the
// provider's metrics are enabled.
func (t *Thread) PoolHit() { t.prov.met.poolHits.Inc(t.id) }

// PoolMiss records a node allocation that fell through to the heap.
func (t *Thread) PoolMiss() { t.prov.met.poolMisses.Inc(t.id) }

// ---------------------------------------------------------------------------
// Range-query path
// ---------------------------------------------------------------------------

// TraversalStart begins a range query over [low, high] and linearizes it.
//
// Timestamp sharing (DESIGN.md §8): instead of unconditionally incrementing
// TS — which serializes every range query on one cache line, and in Lock/HTM
// modes additionally on the exclusive update lock — the query reads TS = v
// and attempts a single CAS to v+1. The winner advances; every loser adopts
// the timestamp another query just installed rather than retrying, so N
// concurrent queries collapse into ~1 increment and legally share one
// linearization timestamp (no update can be ordered between them: an update
// that read TS < w finished its linearizing CAS before TS was fenced at w,
// and one that read TS >= w is excluded by the itime/dtime >= ts checks).
//
// In Lock/HTM modes a drain of the update lock (acquire+release exclusive,
// waiting out every update critical section in flight) certifies a fence:
// the TS value read inside the drained section is published in tsFenced,
// and every update with a smaller timestamp has completed its linearizing
// CAS. Drains combine — a winner whose advance preceded an in-flight
// drain's TS read is fenced by that drain and skips the exclusive lock,
// and adopters wait for any fence newer than their read — so N concurrent
// queries cost ~1 increment and ~1 drain. In lock-free mode DCSS already
// guarantees an update's CAS took effect while TS held its timestamp, so
// adopters simply re-read TS.
// A cross-shard range query instead *pins* its timestamp (PinTimestamp):
// the shard router performs one advance-or-adopt on the clock shared by
// every shard and hands the result to each overlapping shard's thread, so
// the per-mode work below reduces to the fence step — ensureFenced drains
// this provider's update lock (Lock/HTM), and lock-free mode needs nothing
// beyond the pin because DCSS validated the shared word (DESIGN.md §9).
func (t *Thread) TraversalStart(low, high int64) {
	if t.prov.mode != ModeUnsafe {
		// Pre-linearization poison checkpoint, mirroring UpdateCAS: a range
		// query resumed after neutralization must not acquire (or advance)
		// a timestamp — its epoch protection is gone and its traversal could
		// observe quarantined state it has no right to linearize against.
		t.ep.CheckNeutralized()
	}
	t.low, t.high = low, high
	if cap(t.result) < t.resultHWM {
		t.result = make([]epoch.KV, 0, t.resultHWM)
	}
	t.result = t.result[:0]
	t.rqActive = true
	p := t.prov
	var t0 int64
	if t.traced {
		t0 = trace.Now()
	}
	var ev trace.EventType // which timestamp event the switch decided on
	switch p.mode {
	case ModeUnsafe:
		t.ts = 0
		t.pinnedTS = 0
	case ModeLock, ModeHTM:
		if pin := t.pinnedTS; pin != 0 {
			t.pinnedTS = 0
			p.ensureFenced(t.id, pin)
			t.ts = pin
			p.met.tsPinned.Inc(t.id)
			ev = trace.EvTSPinned
			break
		}
		v := p.ts.Load()
		fault.Inject("rqprov.rq.tsadvance")
		if p.ts.CompareAndSwap(v, v+1) {
			p.ensureFenced(t.id, v+1)
			t.ts = v + 1
			p.met.tsAdvanced.Inc(t.id)
			ev = trace.EvTSAdvance
		} else {
			t.ts = p.adoptFenced(t.id, v)
			p.met.tsShared.Inc(t.id)
			ev = trace.EvTSAdopt
		}
	case ModeLockFree:
		if pin := t.pinnedTS; pin != 0 {
			t.pinnedTS = 0
			t.ts = pin
			p.met.tsPinned.Inc(t.id)
			ev = trace.EvTSPinned
			break
		}
		v := p.ts.Load()
		fault.Inject("rqprov.rq.tsadvance")
		if p.ts.CompareAndSwap(v, v+1) {
			t.ts = v + 1
			p.met.tsAdvanced.Inc(t.id)
			ev = trace.EvTSAdvance
		} else {
			// The CAS failed because another query installed v+1 (only
			// range queries write TS): adopt the newer value. Every update
			// with a timestamp below it linearized while TS held that
			// timestamp (DCSS validates TS at the linearizing CAS), hence
			// before this load — so it is visible to our traversal.
			t.ts = p.ts.Load()
			p.met.tsShared.Inc(t.id)
			ev = trace.EvTSAdopt
		}
	}
	if t.traced {
		now := trace.Now()
		t.phTravStart = now
		if ev != trace.EvNone {
			wait := uint64(now - t0)
			t.tr.EmitAt(ev, now, t.ts, wait)
			p.met.phTSWait.Add(t.id, wait)
		}
	}
	fault.Inject("rqprov.rq.started")
}

// PinTimestamp sets the linearization timestamp of this thread's next
// TraversalStart. ts must have been obtained from the provider's clock
// (Clock().AdvanceOrAdopt()) during the current query attempt — the shard
// router calls that once and pins the result on every overlapping shard.
// TraversalStart still performs the mode's fence work at ts, so every
// update below ts on this provider is visible to the traversal. The pin is
// single-use and cleared by Abort/Deregister; ts must be nonzero.
func (t *Thread) PinTimestamp(ts uint64) {
	if ts == 0 {
		panic("rqprov: PinTimestamp(0)")
	}
	t.pinnedTS = ts
}

// drainUpdates waits out every update critical section that began before the
// exclusive acquisition succeeds (Lock/HTM modes) and returns the TS value
// read while the lock was held. The returned value is a valid fence: updates
// that entered the lock before the drain completed with it, and updates that
// enter after the release read TS at or above the returned value.
func (p *Provider) drainUpdates() uint64 {
	if p.mode == ModeHTM {
		p.dist.AcquireExclusive()
		f := p.ts.Load()
		p.dist.ReleaseExclusive()
		return f
	}
	p.lock.AcquireExclusive()
	f := p.ts.Load()
	p.lock.ReleaseExclusive()
	return f
}

// drainAndFence performs one drain and publishes the fence it certifies.
func (p *Provider) drainAndFence() uint64 {
	p.drainers.Add(1)
	f := p.drainUpdates()
	maxStore(&p.tsFenced, f)
	p.drainers.Add(-1)
	return f
}

// ensureFenced makes the winner's freshly installed timestamp `need` fenced:
// every update with a smaller timestamp must have completed before the range
// query starts traversing. The fast path discovers that a concurrent drain
// already certified `need` (its in-lock TS read happened after our advance)
// and skips the exclusive lock entirely; otherwise the winner waits out an
// in-flight drain for a bounded number of yields before draining itself.
func (p *Provider) ensureFenced(tid int, need uint64) {
	if p.tsFenced.Load() >= need {
		p.met.fenceShared.Inc(tid)
		return
	}
	spin := p.spinBudget
	for i := 0; p.drainers.Load() > 0 && i <= spin+adoptYieldBudget; i++ {
		if p.tsFenced.Load() >= need {
			p.met.fenceShared.Inc(tid)
			return
		}
		if i >= spin {
			runtime.Gosched()
		}
	}
	if p.tsFenced.Load() >= need {
		p.met.fenceShared.Inc(tid)
		return
	}
	p.drainAndFence()
}

// adoptFenced returns the timestamp a losing range query adopts: the first
// fenced timestamp newer than v, its failed TS read. The common case is a
// short wait for the concurrent winner to finish its drain; if the winner
// stalls past the spin budget (and a grace period of yields), the adopter
// performs its own drain on whatever TS now holds, so a descheduled winner
// cannot wedge every other range query.
func (p *Provider) adoptFenced(tid int, v uint64) uint64 {
	spin := p.spinBudget
	for i := 0; i <= spin+adoptYieldBudget; i++ {
		if f := p.tsFenced.Load(); f > v {
			return f
		}
		if i >= spin {
			runtime.Gosched()
		}
	}
	// The winner is wedged between its CAS and its fence publication: drain
	// privately. The drain's in-lock TS read is > v (our CAS failed, so TS
	// is at least v+1), and it certifies every smaller timestamp.
	return p.drainAndFence()
}

// adoptYieldBudget bounds how many scheduler yields an adopter grants the
// winning range query to publish its fenced timestamp before draining
// privately. Yields, not spins: on oversubscribed hosts the winner needs the
// processor to finish its drain.
const adoptYieldBudget = 64

// maxStore raises *a to v if v is larger (monotone max; concurrent-safe).
func maxStore(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if cur >= v || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Visit is invoked by the data structure's traversal for every node it
// visits whose key range may intersect [low, high]; for structures without
// logical deletion.
func (t *Thread) Visit(n *epoch.Node) {
	t.VisitMaybeMarked(n, false)
}

// VisitMaybeMarked is Visit for structures with logical deletion: marked
// reports whether the node was observed logically deleted at visit time.
func (t *Thread) VisitMaybeMarked(n *epoch.Node, marked bool) {
	if t.prov.mode == ModeUnsafe {
		if !marked {
			t.addKeys(n)
		}
		return
	}
	itime := t.awaitITime(n)
	if itime >= t.ts {
		return // inserted after the RQ
	}
	if marked {
		// Logically deleted: determine whether before or after the RQ.
		dtime := t.awaitDTime(n)
		if dtime < t.ts {
			return
		}
	}
	t.addKeys(n)
}

// TraversalEnd completes the range query: it sweeps other threads' deletion
// announcements, then the EBR limbo lists, to recover keys whose nodes were
// deleted during the query and missed by the traversal; it returns the
// sorted, deduplicated result. The announcement sweep must precede the limbo
// sweep (§4.3): updaters announce before deleting and retire after, so a
// node deleted during the RQ is found in the structure, the announcements,
// or the limbo lists.
func (t *Thread) TraversalEnd() []epoch.KV {
	if !t.rqActive {
		panic("rqprov: TraversalEnd without TraversalStart")
	}
	t.rqActive = false
	// Phase clock: the traverse phase ran from the end of TraversalStart to
	// here; the announce and limbo phases are measured below as this
	// function moves through them.
	var phMark int64
	if t.traced {
		phMark = trace.Now()
		trav := uint64(phMark - t.phTravStart)
		t.tr.EmitAt(trace.EvTraverse, phMark, uint64(len(t.result)), trav)
		t.prov.met.phTraverse.Add(t.id, trav)
	}
	if t.prov.mode == ModeUnsafe {
		return t.finishResult()
	}

	// Collect pointers to all announcement slots first, then process.
	if cap(t.annScratch) < t.annHWM {
		t.annScratch = make([]annRef, 0, t.annHWM)
	}
	t.annScratch = t.annScratch[:0]
	p := t.prov
	nthreads := int(p.registered.Load())
	scanned := uint64(0)
	for i := 0; i < nthreads; i++ {
		u := p.threads[i].Load()
		if u == nil || u == t {
			continue
		}
		// One-load fast path past threads with no announcement up: a store
		// this skip races with was published after our scan, so its deletion
		// linearizes after our traversal ended (which therefore saw the
		// node). Slots are still scanned in full when the count is nonzero —
		// it is an over-approximation, never an index.
		if u.annCount.Load() == 0 {
			continue
		}
		scanned += uint64(len(u.announce))
		for s := range u.announce {
			slot := &u.announce[s]
			if n := slot.Load(); n != nil {
				t.annScratch = append(t.annScratch, annRef{node: n, slot: slot})
			}
		}
	}
	p.met.annScans.Add(t.id, scanned)
	fault.Inject("rqprov.rq.annsweep")
	for _, ar := range t.annScratch {
		t.tryAddFromAnnouncement(ar.node, ar.slot)
	}
	if len(t.annScratch) > t.annHWM {
		t.annHWM = len(t.annScratch)
	}
	// Drop the node references before truncating: a stale annRef beyond the
	// slice length would otherwise keep a recycled node (and its limbo
	// chain) live across range queries.
	clear(t.annScratch)
	t.annScratch = t.annScratch[:0]
	if t.traced {
		now := trace.Now()
		d := uint64(now - phMark)
		t.tr.EmitAt(trace.EvAnnScan, now, scanned, d)
		t.prov.met.phAnnounce.Add(t.id, d)
		phMark = now
	}

	fault.Inject("rqprov.rq.limbosweep")
	visited, skipped, swept := t.sweepLimbo(p.ts.Load())
	t.limboVisitedLast = visited
	t.limboVisitedTotal += visited
	t.bagsSkippedTotal += skipped
	t.bagsSweptTotal += swept
	t.rqCount++
	p.met.rqs.Inc(t.id)
	p.met.limboVisited.Add(t.id, visited)
	p.met.limboPerRQ.Observe(visited)
	p.met.bagsSkipped.Add(t.id, skipped)
	p.met.bagsSwept.Add(t.id, swept)
	if t.traced {
		now := trace.Now()
		d := uint64(now - phMark)
		t.tr.EmitAt(trace.EvLimboDone, now, visited, d)
		p.met.phLimbo.Add(t.id, d)
	}
	return t.finishResult()
}

// sweepLimbo recovers deleted-but-relevant keys from the EBR limbo bags:
// every node with itime < ts and dtime >= ts must enter the result even
// though the traversal may have missed it. Two prunings keep this sweep off
// the O(total limbo) path:
//
//   - Bag fence: a bag whose maxDTime fence is below the query timestamp
//     contains only nodes deleted before the query linearized — already
//     handled by the traversal — and is skipped without touching a node.
//     This covers the unsorted (!limboSorted) case, which previously always
//     full-scanned.
//   - Early exit (Optimization 1, §4.3): within a dtime-sorted bag, the
//     first node below the query timestamp ends the walk.
//
// Nodes with dtime > endTS (deleted after the sweep began) were either
// inserted after the RQ or already visited by the traversal (Optimization
// 2, §4.3) and are filtered without the await machinery.
func (t *Thread) sweepLimbo(endTS uint64) (visited, skipped, swept uint64) {
	sorted := t.prov.limboSorted
	it := t.ep.LimboBags()
	for head, fence, ok := it.Next(); ok; head, fence, ok = it.Next() {
		if fence < t.ts {
			skipped++
			continue
		}
		swept++
		bagStart := visited
		for n := head; n != nil; n = n.LimboNext() {
			visited++
			dtime := n.DTime()
			if dtime != 0 && dtime < t.ts {
				if sorted {
					break
				}
				continue
			}
			if dtime != 0 && dtime > endTS {
				continue
			}
			t.tryAddFromLimbo(n)
		}
		if t.tr != nil {
			t.tr.Emit(trace.EvLimboBag, visited-bagStart, fence)
		}
	}
	if t.tr != nil && skipped > 0 {
		t.tr.Emit(trace.EvLimboSkip, skipped, 0)
	}
	return visited, skipped, swept
}

func (t *Thread) tryAddFromLimbo(n *epoch.Node) {
	if n.Routing() {
		return // router nodes hold no set keys
	}
	itime := t.awaitITime(n)
	if itime >= t.ts {
		return
	}
	dtime := t.awaitDTime(n) // node is in limbo: it was deleted
	if dtime < t.ts {
		return
	}
	t.addKeys(n)
}

// tryAddFromAnnouncement implements lines 48–57 of Figure 3: the announced
// node may or may not end up deleted, so wait until either dtime is set or
// the announcement is withdrawn, then decide.
func (t *Thread) tryAddFromAnnouncement(n *epoch.Node, slot *atomic.Pointer[epoch.Node]) {
	if n.Routing() {
		return // router nodes hold no set keys
	}
	itime := t.awaitITime(n)
	if itime >= t.ts {
		return
	}
	var dtime uint64
	wb := t.prov.waitBudget
	for i := 0; ; i++ {
		dtime = n.DTime()
		if dtime != 0 || slot.Load() != n {
			break
		}
		if wb > 0 && i >= wb {
			// The announcer is wedged between announcing and deciding.
			// Include the node conservatively: if it is never deleted the
			// traversal also saw it and finishResult deduplicates.
			t.prov.met.fbA.Inc(t.id)
			dtime = ^uint64(0)
			break
		}
		t.helpOrYield(n, i)
	}
	if dtime == 0 {
		// The announcement was withdrawn. If the announcer deleted the
		// node, it set dtime before withdrawing; reread.
		dtime = n.DTime()
	}
	if dtime == 0 {
		// The announcer did not delete the node. If another process
		// deleted it, it appears in that process's announcements or in a
		// limbo list; if nobody did, the traversal already visited it.
		return
	}
	if dtime < t.ts {
		return
	}
	t.addKeys(n)
}

// awaitITime returns the node's insertion timestamp, waiting (lock/HTM
// modes) or helping the announced DCSS operations (lock-free mode) until it
// is available. Waits escalate through the provider's budgets: past
// SpinBudget iterations the waiter starts yielding the processor; past a
// positive WaitBudget it gives up and returns the maximum timestamp, which
// every caller reads as "inserted after the range query" — the conservative
// answer when the inserting thread is wedged before publication.
func (t *Thread) awaitITime(n *epoch.Node) uint64 {
	if ts := n.ITime(); ts != 0 {
		return ts
	}
	p := t.prov
	for i := 0; ; i++ {
		p.met.awaitISpins.Inc(t.id)
		if ts := n.ITime(); ts != 0 {
			return ts
		}
		if ts, ok := t.timeFromDescriptors(n, true); ok {
			n.SetITime(ts) // idempotent: helpers store the same value
			return ts
		}
		if ts := n.ITime(); ts != 0 {
			return ts
		}
		if p.waitBudget > 0 && i >= p.waitBudget {
			p.met.fbI.Inc(t.id)
			return ^uint64(0)
		}
		if i >= p.spinBudget {
			if i == p.spinBudget {
				p.met.escI.Inc(t.id)
			}
			runtime.Gosched()
		}
	}
}

// awaitDTime returns the node's deletion timestamp, for nodes known to have
// been (or to be being) deleted. Budgets escalate as in awaitITime; here the
// maximum-timestamp fallback reads as "deleted after the range query", so a
// wedged deleter's victim stays in the result.
func (t *Thread) awaitDTime(n *epoch.Node) uint64 {
	if ts := n.DTime(); ts != 0 {
		return ts
	}
	p := t.prov
	for i := 0; ; i++ {
		p.met.awaitDSpins.Inc(t.id)
		if ts := n.DTime(); ts != 0 {
			return ts
		}
		if ts, ok := t.timeFromDescriptors(n, false); ok {
			n.SetDTime(ts)
			return ts
		}
		if ts := n.DTime(); ts != 0 {
			return ts
		}
		if p.waitBudget > 0 && i >= p.waitBudget {
			p.met.fbD.Inc(t.id)
			return ^uint64(0)
		}
		if i >= p.spinBudget {
			if i == p.spinBudget {
				p.met.escD.Inc(t.id)
			}
			runtime.Gosched()
		}
	}
}

// helpOrYield makes progress while waiting on an announced node: in
// lock-free mode it helps the in-flight DCSS operations and publishes the
// deletion timestamp it derives (idempotent — every helper stores the same
// value); otherwise it yields once past the spin budget.
func (t *Thread) helpOrYield(n *epoch.Node, i int) {
	p := t.prov
	if p.mode == ModeLockFree {
		if ts, ok := t.timeFromDescriptors(n, false); ok {
			n.SetDTime(ts)
			return
		}
	}
	if i >= p.spinBudget {
		if i == p.spinBudget {
			p.met.escA.Inc(t.id)
		}
		runtime.Gosched()
	}
}

// timeFromDescriptors scans the announced DCSS descriptors (lock-free mode)
// for a successful operation that inserted (wantInsert) or deleted the node,
// helping undecided operations, and returns its timestamp.
func (t *Thread) timeFromDescriptors(n *epoch.Node, wantInsert bool) (uint64, bool) {
	if t.prov.mode != ModeLockFree {
		return 0, false
	}
	p := t.prov
	nthreads := int(p.registered.Load())
	for i := 0; i < nthreads; i++ {
		u := p.threads[i].Load()
		if u == nil {
			continue
		}
		d := u.desc.Load()
		if d == nil {
			continue
		}
		nodes := d.DNodes
		if wantInsert {
			nodes = d.INodes
		}
		match := false
		for _, x := range nodes {
			if x == n {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		if d.Help() == dcss.Succeeded {
			return d.Exp1, true
		}
	}
	return 0, false
}

// addKeys appends the node's keys lying in [low, high] to the result.
func (t *Thread) addKeys(n *epoch.Node) {
	if n.IsMulti() {
		for _, kv := range n.Multi() {
			if t.low <= kv.Key && kv.Key <= t.high {
				t.result = append(t.result, kv)
			}
		}
		return
	}
	k := n.Key()
	if t.low <= k && k <= t.high {
		t.result = append(t.result, epoch.KV{Key: k, Value: n.Value()})
	}
}

// finishResult sorts the collected keys and removes duplicates (the same key
// can legitimately be found both in the structure and in a limbo list, or —
// in Citrus — at two nodes during a successor swap). The concrete-typed
// slices.SortFunc keeps this allocation-free, unlike sort.Slice, whose
// interface conversion and reflect-based swapper allocate on every call —
// on the hot path of every range query.
func (t *Thread) finishResult() []epoch.KV {
	r := t.result
	if len(r) > t.resultHWM {
		t.resultHWM = len(r)
	}
	// Ordered traversals (lists, skip list) append in key order and the
	// recovery sweeps usually add nothing, so most results arrive sorted:
	// one O(n) scan beats re-proving it to the sort.
	if !slices.IsSortedFunc(r, compareKV) {
		slices.SortFunc(r, compareKV)
	}
	out := r[:0]
	for i := range r {
		if i == 0 || r[i].Key != r[i-1].Key {
			out = append(out, r[i])
		}
	}
	t.result = out
	return out
}

// compareKV orders key-value pairs by key (package-level so finishResult's
// sort call carries no closure allocation).
func compareKV(a, b epoch.KV) int {
	switch {
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	}
	return 0
}
