package rqprov

import (
	"fmt"
	"math"
	"testing"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/obs"
)

// steadyProvider builds a provider in mid-flight condition: a populated
// "structure" (visited nodes with published itimes), a limbo population with
// published dtimes spread around the current timestamp, and metrics enabled
// — the configuration every production range query runs in.
func steadyProvider(mode Mode) (*Thread, []*epoch.Node) {
	p := New(Config{MaxThreads: 2, Mode: mode, LimboSorted: true})
	p.EnableMetrics(obs.NewRegistry(2))
	th := p.Register()

	live := make([]*epoch.Node, 192)
	for i := range live {
		live[i] = newNode(int64(i), int64(i)*10)
		live[i].SetITime(1)
	}
	// Delete 64 further keys through the real update path so their dtimes
	// and retirement follow the production protocol.
	slots := make([]dcss.Slot, 64)
	for i := range slots {
		n := newNode(int64(1000+i), 0)
		th.StartOp()
		th.UpdateCAS(&slots[i], nil, unsafe.Pointer(n), []*epoch.Node{n}, nil, false)
		th.EndOp()
		th.StartOp()
		th.UpdateCAS(&slots[i], unsafe.Pointer(n), nil, nil, []*epoch.Node{n}, true)
		th.EndOp()
	}
	return th, live
}

// steadyRQ is one complete range query over the steady state.
func steadyRQ(th *Thread, live []*epoch.Node) []epoch.KV {
	th.StartOp()
	th.TraversalStart(0, math.MaxInt64)
	for _, n := range live {
		th.Visit(n)
	}
	r := th.TraversalEnd()
	th.EndOp()
	return r
}

// TestRQSteadyStateZeroAlloc proves the zero-allocation result pipeline:
// after the first queries establish the buffers' high-water marks, a
// complete range query — TraversalStart, every Visit, the announcement and
// limbo sweeps, finishResult's sort+dedup — performs zero heap allocations
// in every provider mode.
func TestRQSteadyStateZeroAlloc(t *testing.T) {
	for _, mode := range []Mode{ModeUnsafe, ModeLock, ModeHTM, ModeLockFree} {
		t.Run(mode.String(), func(t *testing.T) {
			th, live := steadyProvider(mode)
			for i := 0; i < 3; i++ { // establish high-water marks
				steadyRQ(th, live)
			}
			if allocs := testing.AllocsPerRun(200, func() {
				steadyRQ(th, live)
			}); allocs != 0 {
				t.Fatalf("steady-state range query allocates %.1f objects/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkRQSteadyState measures the full provider-side range-query path
// (structure visits included) with -benchmem reporting 0 B/op, 0 allocs/op.
func BenchmarkRQSteadyState(b *testing.B) {
	for _, mode := range []Mode{ModeLock, ModeLockFree} {
		b.Run(mode.String(), func(b *testing.B) {
			th, live := steadyProvider(mode)
			for i := 0; i < 3; i++ {
				steadyRQ(th, live)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				steadyRQ(th, live)
			}
		})
	}
}

// BenchmarkFinishResult isolates the sort+dedup tail of TraversalEnd on a
// worst-case (reverse-ordered, duplicate-bearing) result buffer.
func BenchmarkFinishResult(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := New(Config{MaxThreads: 1, Mode: ModeLockFree})
			th := p.Register()
			tmpl := make([]epoch.KV, n)
			for i := range tmpl {
				tmpl[i] = epoch.KV{Key: int64((n - i) / 2), Value: int64(i)}
			}
			th.result = append(th.result[:0], tmpl...)
			th.finishResult() // establish capacity
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.result = append(th.result[:0], tmpl...)
				th.finishResult()
			}
		})
	}
}
