package rqprov

import (
	"errors"
	"sync"
	"testing"
	"time"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/obs"
)

// TestTryRegisterSlotReuse: registration capacity is no longer a one-way
// ratchet — a full provider refuses politely, and Deregister releases the
// slot (in lockstep with the epoch domain, or TryRegister would panic on the
// id mismatch).
func TestTryRegisterSlotReuse(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLockFree})
	a := p.Register()
	b, err := p.TryRegister()
	if err != nil {
		t.Fatalf("second TryRegister: %v", err)
	}
	if _, err := p.TryRegister(); !errors.Is(err, ErrTooManyThreads) {
		t.Fatalf("full provider returned %v, want ErrTooManyThreads", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Register on a full provider did not panic")
			}
		}()
		p.Register()
	}()

	a.Deregister()
	a.Deregister() // idempotent
	c, err := p.TryRegister()
	if err != nil {
		t.Fatalf("TryRegister after Deregister: %v", err)
	}
	if c.ID() != a.ID() {
		t.Fatalf("reused slot id = %d, want %d", c.ID(), a.ID())
	}
	// The adopted slot is fully operational: run an update and a range
	// query through it.
	n := &epoch.Node{}
	n.InitKey(7, 70)
	c.StartOp()
	var slot dcss.Slot
	if !c.UpdateCAS(&slot, nil, unsafe.Pointer(n), []*epoch.Node{n}, nil, false) {
		t.Fatal("update through the adopted slot failed")
	}
	c.EndOp()
	b.StartOp()
	b.TraversalStart(0, 100)
	b.Visit(n)
	got := b.TraversalEnd()
	b.EndOp()
	if len(got) != 1 || got[0].Key != 7 {
		t.Fatalf("RQ after slot reuse = %v, want [7]", got)
	}
}

// TestDeregisterMidUpdateUnblocksRQ: an updater that wedges after announcing
// a deletion blocks range queries (they wait for the announced node's
// dtime); Deregister withdraws the announcement, so the query completes and
// decides from what the dead updater actually published — here, nothing.
func TestDeregisterMidUpdateUnblocksRQ(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLock})
	up := p.Register()
	rq := p.Register()

	victim := &epoch.Node{}
	victim.InitKey(5, 50)
	victim.SetITime(1)
	// Simulate the wedge: announced, but the linearizing CAS never ran.
	up.StartOp()
	up.announceAll([]*epoch.Node{victim})

	done := make(chan []epoch.KV, 1)
	go func() {
		rq.StartOp()
		rq.TraversalStart(0, 100)
		out := rq.TraversalEnd() // traversal saw nothing; sweeps announcements
		rq.EndOp()
		done <- out
	}()
	up.Deregister()
	out := <-done
	if len(out) != 0 {
		t.Fatalf("RQ returned %v; the announced node was never deleted and the traversal did not see it", out)
	}
}

// TestWaitBudgetFallbacks: with a positive WaitBudget a range query survives
// an updater wedged before timestamp publication, resolving the wait
// conservatively — unpublished itime excludes the node, unpublished dtime
// includes it — and counts both the escalation and the fallback.
func TestWaitBudgetFallbacks(t *testing.T) {
	p := New(Config{MaxThreads: 1, Mode: ModeLock, SpinBudget: 16, WaitBudget: 64})
	reg := obs.NewRegistry(p.MaxThreads())
	p.EnableMetrics(reg)
	th := p.Register()

	inserted := &epoch.Node{}
	inserted.InitKey(1, 10) // itime still ⊥: inserter wedged pre-publication
	deleted := &epoch.Node{}
	deleted.InitKey(2, 20)
	deleted.SetITime(1) // deleter wedged: marked, dtime still ⊥

	th.StartOp()
	th.TraversalStart(0, 100)
	th.Visit(inserted)                  // would hang forever without WaitBudget
	th.VisitMaybeMarked(deleted, true)  // likewise
	got := th.TraversalEnd()
	th.EndOp()
	if len(got) != 1 || got[0].Key != 2 {
		t.Fatalf("RQ = %v, want [2] (unpublished itime excluded, unpublished dtime included)", got)
	}
	s := reg.Snapshot()
	if n := s.Counter("ebrrq_await_fallbacks_total"); n != 2 {
		t.Fatalf("fallbacks = %d, want 2 (one itime, one dtime)", n)
	}
	if n := s.Counter("ebrrq_await_escalations_total"); n < 2 {
		t.Fatalf("escalations = %d, want >= 2 (budgets: spin 16 < wait 64)", n)
	}
}

// TestAbortRestoresThread: Abort after a simulated mid-operation panic
// leaves the thread quiescent, announcement-free, and reusable.
func TestAbortRestoresThread(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLockFree})
	th := p.Register()
	rq := p.Register()

	n := &epoch.Node{}
	n.InitKey(3, 30)
	n.SetITime(1)
	th.StartOp()
	th.announceAll([]*epoch.Node{n})
	th.TraversalStart(0, 100) // also abandon an RQ mid-flight
	th.Abort()
	th.Abort() // safe to repeat

	// The announcement is withdrawn: another thread's RQ must not wait on it.
	rq.StartOp()
	rq.TraversalStart(0, 100)
	if out := rq.TraversalEnd(); len(out) != 0 {
		t.Fatalf("RQ after Abort = %v, want empty", out)
	}
	rq.EndOp()

	// The aborted thread is reusable.
	th.StartOp()
	var slot dcss.Slot
	if !th.UpdateCAS(&slot, nil, unsafe.Pointer(n), []*epoch.Node{n}, nil, false) {
		t.Fatal("update after Abort failed")
	}
	th.EndOp()
}

// TestConcurrentRegisterDeregisterChurn hammers provider slot churn from
// more goroutines than slots, with real updates flowing through the reused
// slots; the race detector guards the interlocks.
func TestConcurrentRegisterDeregisterChurn(t *testing.T) {
	const slots, workers, rounds = 3, 6, 100
	p := New(Config{MaxThreads: slots, Mode: ModeLockFree})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; {
				th, err := p.TryRegister()
				if errors.Is(err, ErrTooManyThreads) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				n := &epoch.Node{}
				n.InitKey(int64(r), 0)
				th.StartOp()
				var slot dcss.Slot
				th.UpdateCAS(&slot, nil, unsafe.Pointer(n), []*epoch.Node{n}, nil, false)
				th.TraversalStart(0, 10)
				th.TraversalEnd()
				th.EndOp()
				th.Deregister()
				r++
			}
		}()
	}
	wg.Wait()
}

// TestHealth: the provider's health check degrades (warn level) exactly
// while a thread is stalled (per the domain's stall view), recovers with it,
// and never trips the critical level — stalls alone don't reject traffic.
func TestHealth(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLockFree})
	hc := p.Health()
	if hc.Name != "epoch" {
		t.Fatalf("health check name = %q", hc.Name)
	}
	if err := hc.Check(); err != nil {
		t.Fatalf("idle provider unhealthy: %v", err)
	}
	if err := hc.Warn(); err != nil {
		t.Fatalf("idle provider degraded: %v", err)
	}
	worker := p.Register()
	staller := p.Register()
	staller.StartOp()
	for i := 0; i < 256; i++ {
		worker.StartOp()
		worker.EndOp()
	}
	// Lag-based fallback view: a single staller shows lag 1, below the
	// conservative threshold, so health stays green without a watchdog...
	if err := hc.Warn(); err != nil {
		t.Fatalf("lag-1 staller tripped the watchdog-free check: %v", err)
	}
	// ...and an attached watchdog supplies the duration-based view.
	w := p.Domain().StartWatchdog(epoch.WatchdogConfig{
		Interval:   time.Millisecond,
		StallAfter: 5 * time.Millisecond,
	})
	defer w.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for hc.Warn() == nil {
		if time.Now().After(deadline) {
			t.Fatal("health check never degraded for a stalled thread")
		}
		time.Sleep(time.Millisecond)
	}
	// A stall is degradation, not an outage: the critical level stays green.
	if err := hc.Check(); err != nil {
		t.Fatalf("stall tripped the critical level: %v", err)
	}
	staller.EndOp()
	for hc.Warn() != nil {
		if time.Now().After(deadline) {
			t.Fatal("health check never recovered after the stall ended")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHealthMemoryPressure: the hard limbo limit is the critical level — the
// check fails while BoundedNodes sits at the limit and recovers when it
// drains; the soft limit only degrades.
func TestHealthMemoryPressure(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLockFree, LimboSoftLimit: 4, LimboHardLimit: 8})
	hc := p.Health()
	th := p.Register()
	spare := p.Register()

	retire := func(n int) {
		for i := 0; i < n; i++ {
			nd := &epoch.Node{}
			nd.InitKey(int64(i), 0)
			th.StartOp()
			th.Epoch().Retire(nd)
			th.EndOp()
		}
	}
	retire(4)
	if err := hc.Check(); err != nil {
		t.Fatalf("soft limit tripped the critical level: %v", err)
	}
	if err := hc.Warn(); err == nil {
		t.Fatal("soft-limit breach did not degrade the health check")
	}
	retire(4)
	if err := hc.Check(); err == nil {
		t.Fatal("hard-limit breach did not fail the health check")
	}
	// Drain: with every thread quiescent, epoch advances rotate the bags out.
	for i := 0; i < 20*32; i++ {
		th.StartOp()
		th.EndOp()
		spare.StartOp()
		spare.EndOp()
	}
	if err := hc.Check(); err != nil {
		t.Fatalf("health check never recovered after limbo drained: %v", err)
	}
	if err := hc.Warn(); err != nil {
		t.Fatalf("warn level never recovered after limbo drained: %v", err)
	}
}
