package rqprov

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
)

// TestSweepDifferential is the sweep-equivalence check for the bag-fence
// optimization: after a randomized concurrent history of inserts, deletes
// and range queries, the fenced sweep (sweepLimbo: whole bags skipped when
// maxDTime < ts, early exit inside sorted bags) and a reference full
// O(limbo) scan with neither pruning must recover exactly the same key set
// for every query timestamp. Both limbo disciplines are covered: sorted
// (nodes retired by their deleter at the linearizing CAS, so each list is in
// descending dtime order) and unsorted (retirement deferred and shuffled,
// as when Harris-list helpers unlink other threads' victims).
func TestSweepDifferential(t *testing.T) {
	for _, sorted := range []bool{true, false} {
		for _, mode := range []Mode{ModeLock, ModeLockFree} {
			name := fmt.Sprintf("%s/sorted=%v", mode, sorted)
			t.Run(name, func(t *testing.T) { runSweepDifferential(t, mode, sorted) })
		}
	}
}

func runSweepDifferential(t *testing.T, mode Mode, sorted bool) {
	const workers = 4
	const keysPerWorker = 150
	p := New(Config{MaxThreads: workers + 1, Mode: mode, LimboSorted: sorted})

	// Concurrent phase: each worker inserts its keys, deletes a random
	// subset, and — in the unsorted scenario — retires the victims in
	// shuffled order, decoupling limbo position from dtime. A dedicated
	// range-query thread keeps the timestamp moving so dtimes spread over
	// many values.
	stop := make(chan struct{})
	rqDone := make(chan struct{})
	rqth := p.Register()
	go func() {
		defer close(rqDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			rqth.StartOp()
			rqth.TraversalStart(0, 1<<30)
			rqth.TraversalEnd()
			rqth.EndOp()
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			th := p.Register()
			slots := make([]dcss.Slot, keysPerWorker)
			var victims []*epoch.Node
			for i := 0; i < keysPerWorker; i++ {
				key := int64(w*keysPerWorker + i)
				n := newNode(key, key*10)
				th.StartOp()
				if !th.UpdateCAS(&slots[i], nil, unsafe.Pointer(n),
					[]*epoch.Node{n}, nil, false) {
					t.Error("staged insert failed")
				}
				th.EndOp()
				if rng.Intn(100) < 70 { // delete most keys back out
					th.StartOp()
					ok := th.UpdateCAS(&slots[i], unsafe.Pointer(n), nil,
						nil, []*epoch.Node{n}, sorted)
					th.EndOp()
					if !ok {
						t.Error("staged delete failed")
					} else if !sorted {
						victims = append(victims, n)
					}
				}
			}
			rng.Shuffle(len(victims), func(i, j int) {
				victims[i], victims[j] = victims[j], victims[i]
			})
			for _, n := range victims {
				th.StartOp()
				th.Retire(n)
				th.EndOp()
			}
		}(w)
	}
	// Let the workers finish first so every dtime is published and the
	// limbo population is frozen for the differential phase.
	wg.Wait()
	close(stop)
	<-rqDone

	if p.dom.LimboSize() == 0 {
		t.Fatal("history left no nodes in limbo; differential is vacuous")
	}

	// Differential phase (single-threaded, frozen limbo): for a spread of
	// query timestamps, the fenced sweep and the unpruned reference scan
	// must produce identical key sets.
	maxTS := p.ts.Load()
	tss := []uint64{2, maxTS / 4, maxTS / 2, maxTS - 1, maxTS}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		tss = append(tss, 2+uint64(rng.Int63n(int64(maxTS))))
	}
	for _, ts := range tss {
		if ts < 2 {
			ts = 2
		}
		got := fencedSweepKeys(rqth, ts)
		want := referenceSweepKeys(rqth, ts)
		if !equalInt64s(got, want) {
			t.Fatalf("ts=%d (maxTS %d): fenced sweep %v != reference %v",
				ts, maxTS, got, want)
		}
	}
}

// fencedSweepKeys runs the production sweep at query timestamp ts.
func fencedSweepKeys(rq *Thread, ts uint64) []int64 {
	rq.StartOp()
	defer rq.EndOp()
	rq.low, rq.high = 0, 1<<30
	rq.ts = ts
	rq.result = rq.result[:0]
	rq.sweepLimbo(rq.prov.ts.Load())
	return sortedKeys(rq.result)
}

// referenceSweepKeys is the pre-optimization semantics: visit every node of
// every limbo bag (no fence skip, no sorted early-exit) and apply the RQ
// inclusion rule directly.
func referenceSweepKeys(rq *Thread, ts uint64) []int64 {
	rq.StartOp()
	defer rq.EndOp()
	rq.low, rq.high = 0, 1<<30
	rq.ts = ts
	rq.result = rq.result[:0]
	rq.ep.ForEachLimboList(func(head *epoch.Node) {
		for n := head; n != nil; n = n.LimboNext() {
			if n.Routing() {
				continue
			}
			itime := n.ITime()
			dtime := n.DTime()
			if itime == 0 || itime >= ts {
				continue // inserted at/after the query
			}
			if dtime != 0 && dtime < ts {
				continue // deleted before the query
			}
			rq.addKeys(n)
		}
	})
	return sortedKeys(rq.result)
}

func sortedKeys(kvs []epoch.KV) []int64 {
	keys := make([]int64, 0, len(kvs))
	for _, kv := range kvs {
		keys = append(keys, kv.Key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// The fenced sweep may legitimately find a key via two bags only if the
	// same node were retired twice (it cannot be); dedup anyway so the
	// comparison is strictly about membership.
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || k != out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
