package rqprov

import "sync/atomic"

// TimestampSource is the injectable global-timestamp seam: the single word
// every range query linearizes on and every update reads (Lock/HTM) or
// validates (lock-free DCSS) at its linearizing CAS. A provider created with
// Config.Clock shares that source; providers that share one source linearize
// their updates and range queries on one clock, which is what lets a sharded
// set run the paper's collect+announce+limbo protocol per shard at a single
// shared timestamp (DESIGN.md §9).
//
// Providers cache Word() at construction and run the hot paths (timestamp
// reads, the advance-if-not-advanced CAS, DCSS validation) directly against
// the cached word, so injecting a clock adds no interface dispatch to the
// single-shard path. The interface methods exist for the shard router and
// for tests.
//
// Fence state is deliberately NOT part of the source: fences certify that a
// provider's own update critical sections below a timestamp have completed,
// and those critical sections are per-provider (each shard has its own
// update lock). A cross-shard range query therefore picks one timestamp from
// the shared source and then performs each overlapping provider's fence work
// at that timestamp (see Thread.PinTimestamp).
type TimestampSource interface {
	// Load returns the current timestamp.
	Load() uint64
	// AdvanceOrAdopt runs the advance-if-not-advanced protocol of
	// DESIGN.md §8: read TS = v, attempt one CAS v→v+1. It returns the
	// linearization timestamp — v+1 when this caller won the CAS, the
	// newer value another advancer installed when it lost — and whether
	// it won. Only range queries advance the clock, so a lost CAS always
	// means a concurrent query installed a timestamp this caller may
	// legally share.
	AdvanceOrAdopt() (ts uint64, advanced bool)
	// Word exposes the underlying timestamp word. Lock-free providers
	// hand it to DCSS descriptors (the linearizing CAS validates the
	// timestamp didn't move); providers cache it for the hot paths.
	// The word must never be reset: timestamps are monotone and 0 is
	// reserved for ⊥ in itime/dtime.
	Word() *atomic.Uint64
}

// SharedClock is the process-shared TimestampSource: one cache-line-padded
// timestamp word. Pass the same instance to several providers (via
// Config.Clock) to linearize them on one clock. The zero value is NOT
// usable — timestamps start at 1 (0 is ⊥); use NewSharedClock.
type SharedClock struct {
	_ [64]byte // pad: the word is the hottest line in the system
	w atomic.Uint64
	_ [56]byte
}

// NewSharedClock returns a clock initialized to 1 (timestamp 0 is reserved
// for ⊥ in itime/dtime, so the first range query linearizes at 2).
func NewSharedClock() *SharedClock {
	c := &SharedClock{}
	c.w.Store(1)
	return c
}

// Load returns the current timestamp.
func (c *SharedClock) Load() uint64 { return c.w.Load() }

// AdvanceOrAdopt implements TimestampSource.
func (c *SharedClock) AdvanceOrAdopt() (uint64, bool) {
	v := c.w.Load()
	if c.w.CompareAndSwap(v, v+1) {
		return v + 1, true
	}
	return c.w.Load(), false
}

// Word implements TimestampSource.
func (c *SharedClock) Word() *atomic.Uint64 { return &c.w }
