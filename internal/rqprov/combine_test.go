package rqprov

import (
	"sync"
	"testing"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/obs"
)

// combineModes are the modes with a shared-clock window to amortize.
// ModeUnsafe has no window and bypasses the funnel entirely.
var combineModes = []Mode{ModeLock, ModeHTM, ModeLockFree}

// TestFaultCombineBatchWindow forces a full k-op batch deterministically:
// k-1 followers publish their ops and then block inside the
// rqprov.combine.published failpoint (published but unable to withdraw or
// become combiners), so the main thread's update must claim all of them and
// apply the whole batch in one window. Every op must succeed, every insert
// must carry the same linearization timestamp, and the combine counters
// must record exactly one batch of k ops with no solo fallbacks.
func TestFaultCombineBatchWindow(t *testing.T) {
	if !fault.Enabled {
		t.Skip("combining fault test requires -tags failpoints")
	}
	const k = 4
	for _, mode := range combineModes {
		t.Run(mode.String(), func(t *testing.T) {
			defer fault.Reset()
			reg := obs.NewRegistry(k)
			p := New(Config{MaxThreads: k, Mode: mode, CombineUpdates: true})
			p.EnableMetrics(reg)

			// Followers park inside the failpoint after publishing: their
			// ops sit Pending, claimable, but the owning goroutines cannot
			// spin, withdraw, or race for the combiner lock.
			gate := make(chan struct{})
			var published sync.WaitGroup
			published.Add(k - 1)
			fault.Arm("rqprov.combine.published", fault.Hook(func(string) {
				published.Done()
				<-gate
			}).Times(k-1))

			slots := make([]dcss.Slot, k)
			nodes := make([]*epoch.Node, k)
			oks := make([]bool, k)
			var wg sync.WaitGroup
			for g := 1; g < k; g++ {
				nodes[g] = newNode(int64(g), int64(g)*10)
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := p.Register()
					defer th.Deregister()
					th.StartOp()
					oks[g] = th.UpdateCAS(&slots[g], nil,
						unsafe.Pointer(nodes[g]), []*epoch.Node{nodes[g]}, nil, false)
					th.EndOp()
				}(g)
			}
			published.Wait()

			// All k-1 follower ops are Pending; this update finds the
			// combiner lock free on its first loop iteration and must drain
			// them all into its own window.
			main := p.Register()
			main.StartOp()
			nodes[0] = newNode(0, 100)
			oks[0] = main.UpdateCAS(&slots[0], nil,
				unsafe.Pointer(nodes[0]), []*epoch.Node{nodes[0]}, nil, false)
			main.EndOp()
			close(gate)
			wg.Wait()
			main.Deregister()

			for g := 0; g < k; g++ {
				if !oks[g] {
					t.Fatalf("op %d failed", g)
				}
				if got := slots[g].Load(); got != unsafe.Pointer(nodes[g]) {
					t.Fatalf("slot %d = %p, want %p", g, got, nodes[g])
				}
				if nodes[g].ITime() != nodes[0].ITime() {
					t.Fatalf("op %d itime %d != op 0 itime %d: batch took more than one window",
						g, nodes[g].ITime(), nodes[0].ITime())
				}
			}
			if nodes[0].ITime() == 0 {
				t.Fatal("batch inserts not stamped")
			}
			snap := reg.Snapshot()
			if got := snap.Counter("ebrrq_combine_batches_total"); got != 1 {
				t.Fatalf("combine_batches = %d, want 1", got)
			}
			if got := snap.Counter("ebrrq_combine_ops_total"); got != k {
				t.Fatalf("combine_ops = %d, want %d", got, k)
			}
			if got := snap.Counter("ebrrq_combine_solo_fallbacks_total"); got != 0 {
				t.Fatalf("combine_solo_fallbacks = %d, want 0", got)
			}
		})
	}
}

// TestFaultCombineLeaderPanicReleasesFollowers crashes the combiner
// mid-batch — after its own op applied, before any follower's CAS — and
// checks the crash contract: every follower is released with
// epoch.ErrNeutralized (no waiter hangs on a lost op), no follower slot is
// touched (an unapplied op is never half-applied), the leader's own op
// linearized exactly once, and after the fault is disarmed every follower
// can rerun its op successfully on the same provider.
func TestFaultCombineLeaderPanicReleasesFollowers(t *testing.T) {
	if !fault.Enabled {
		t.Skip("combining fault test requires -tags failpoints")
	}
	const k = 4
	for _, mode := range combineModes {
		t.Run(mode.String(), func(t *testing.T) {
			defer fault.Reset()
			reg := obs.NewRegistry(k)
			p := New(Config{MaxThreads: k, Mode: mode, CombineUpdates: true})
			p.EnableMetrics(reg)

			gate := make(chan struct{})
			var published sync.WaitGroup
			published.Add(k - 1)
			fault.Arm("rqprov.combine.published", fault.Hook(func(string) {
				published.Done()
				<-gate
			}).Times(k-1))
			// First hit is the leader's own op (skipped: it applies); the
			// second hit fires before the first follower's CAS.
			fault.Arm("rqprov.combine.op", fault.Panic("leader crash").After(1).Once())

			slots := make([]dcss.Slot, k)
			nodes := make([]*epoch.Node, k)
			threads := make([]*Thread, k)
			recovered := make([]any, k)
			var wg sync.WaitGroup
			for g := 1; g < k; g++ {
				nodes[g] = newNode(int64(g), int64(g)*10)
				threads[g] = p.Register()
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					defer func() { recovered[g] = recover() }()
					th := threads[g]
					th.StartOp()
					th.UpdateCAS(&slots[g], nil,
						unsafe.Pointer(nodes[g]), []*epoch.Node{nodes[g]}, nil, false)
					th.EndOp()
				}(g)
			}
			published.Wait()

			main := p.Register()
			nodes[0] = newNode(0, 100)
			var leaderPanic any
			func() {
				defer func() { leaderPanic = recover() }()
				main.StartOp()
				main.UpdateCAS(&slots[0], nil,
					unsafe.Pointer(nodes[0]), []*epoch.Node{nodes[0]}, nil, false)
				main.EndOp()
			}()
			close(gate)
			wg.Wait()

			if _, ok := leaderPanic.(fault.PanicError); !ok {
				t.Fatalf("leader panic = %v, want fault.PanicError", leaderPanic)
			}
			// The leader's op ran before the crash point: linearized exactly
			// once, visible in the slot, and — crash notwithstanding — its
			// timestamp still published (the epilogue finishes a linearized
			// own-op on the way out).
			if got := slots[0].Load(); got != unsafe.Pointer(nodes[0]) {
				t.Fatalf("leader slot = %p, want %p", got, nodes[0])
			}
			if nodes[0].ITime() == 0 {
				t.Fatal("leader's linearized op lost its itime in the crash")
			}
			snap := reg.Snapshot()
			if got := snap.Counter("ebrrq_combine_batches_total"); got != 0 {
				t.Fatalf("combine_batches = %d, want 0 (batch crashed)", got)
			}
			for g := 1; g < k; g++ {
				if recovered[g] != epoch.ErrNeutralized {
					t.Fatalf("follower %d recovered %v, want ErrNeutralized", g, recovered[g])
				}
				if got := slots[g].Load(); got != nil {
					t.Fatalf("follower %d slot = %p, want untouched", g, got)
				}
			}

			// The funnel must be reusable: disarm the crash, recover each
			// follower the way the set layer does (Abort settles the cell),
			// and rerun the same ops to completion.
			fault.Reset()
			main.Abort()
			main.Deregister()
			for g := 1; g < k; g++ {
				th := threads[g]
				th.Abort()
				th.StartOp()
				if !th.UpdateCAS(&slots[g], nil,
					unsafe.Pointer(nodes[g]), []*epoch.Node{nodes[g]}, nil, false) {
					t.Fatalf("follower %d rerun failed", g)
				}
				th.EndOp()
				th.Deregister()
				if got := slots[g].Load(); got != unsafe.Pointer(nodes[g]) {
					t.Fatalf("follower %d rerun slot = %p, want %p", g, got, nodes[g])
				}
			}
		})
	}
}

// TestCombineFallbackOnWedgedCombiner simulates a combiner stalled inside
// its window (the lock held, no progress) and checks the bounded-wait
// discipline: a pending follower exhausts its spin + yield grace, withdraws
// its op with one CAS, and completes solo — counted as a fallback, not a
// batch. Once the lock frees, the next update combines again (a batch of
// one). Needs no failpoints, so it also runs in the plain test suite.
func TestCombineFallbackOnWedgedCombiner(t *testing.T) {
	for _, mode := range combineModes {
		t.Run(mode.String(), func(t *testing.T) {
			reg := obs.NewRegistry(1)
			// Small spin budget so the grace window (SpinBudget +
			// combineYieldBudget iterations) expires quickly.
			p := New(Config{MaxThreads: 1, Mode: mode, CombineUpdates: true, SpinBudget: 4})
			p.EnableMetrics(reg)
			th := p.Register()
			defer th.Deregister()

			p.combineLock.Store(1) // wedged combiner: lock held, nothing drains

			var slot dcss.Slot
			n := newNode(1, 10)
			th.StartOp()
			ok := th.UpdateCAS(&slot, nil, unsafe.Pointer(n), []*epoch.Node{n}, nil, false)
			th.EndOp()
			if !ok || slot.Load() != unsafe.Pointer(n) {
				t.Fatal("withdrawn op did not complete solo")
			}
			if n.ITime() == 0 {
				t.Fatal("solo fallback did not stamp itime")
			}
			snap := reg.Snapshot()
			if got := snap.Counter("ebrrq_combine_solo_fallbacks_total"); got != 1 {
				t.Fatalf("combine_solo_fallbacks = %d, want 1", got)
			}
			if got := snap.Counter("ebrrq_combine_batches_total"); got != 0 {
				t.Fatalf("combine_batches = %d, want 0", got)
			}

			p.combineLock.Store(0) // combiner recovers; funnel usable again
			del := n
			th.StartOp()
			if !th.UpdateCAS(&slot, unsafe.Pointer(del), nil, nil, []*epoch.Node{del}, true) {
				t.Fatal("post-recovery delete failed")
			}
			th.EndOp()
			snap = reg.Snapshot()
			if got := snap.Counter("ebrrq_combine_batches_total"); got != 1 {
				t.Fatalf("combine_batches = %d, want 1 (batch of one)", got)
			}
			if got := snap.Counter("ebrrq_combine_ops_total"); got != 1 {
				t.Fatalf("combine_ops = %d, want 1", got)
			}
		})
	}
}

// TestCombineBatchDefault checks the CombineBatch default (MaxThreads) and
// the explicit override, plus that combining is fully disabled when the
// option is off.
func TestCombineBatchDefault(t *testing.T) {
	p := New(Config{MaxThreads: 6, Mode: ModeLock, CombineUpdates: true})
	if got := p.CombineBatch(); got != 6 {
		t.Fatalf("default CombineBatch = %d, want MaxThreads (6)", got)
	}
	p = New(Config{MaxThreads: 6, Mode: ModeLock, CombineUpdates: true, CombineBatch: 3})
	if got := p.CombineBatch(); got != 3 {
		t.Fatalf("CombineBatch = %d, want 3", got)
	}
	p = New(Config{MaxThreads: 6, Mode: ModeLock})
	if got := p.CombineBatch(); got != 0 {
		t.Fatalf("CombineBatch = %d with combining off, want 0", got)
	}
}
