package rqprov

import (
	"testing"
	"time"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
)

// TestHelpingDerivesITimeFromStalledUpdate reproduces §4.5's wait-free
// TryAdd: a range query encounters a node whose inserting thread has
// performed its DCSS but is stalled before publishing itime. The query
// must derive the timestamp from the announced descriptor (helping)
// instead of waiting for the stalled thread.
func TestHelpingDerivesITimeFromStalledUpdate(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLockFree})
	up := p.Register()
	rq := p.Register()

	n := newNode(5, 50)
	var slot dcss.Slot

	// Manually stage what UpdateCAS does, stopping right after the DCSS
	// succeeds (simulating a thread preempted before finishUpdate).
	up.StartOp()
	ts := p.ts.Load()
	d := &dcss.Descriptor{A1: p.ts, Exp1: ts, S: &slot,
		Old: nil, New: unsafe.Pointer(n), INodes: []*epoch.Node{n}}
	up.desc.Store(d)
	if d.Exec() != dcss.Succeeded {
		t.Fatal("staged DCSS failed")
	}
	// itime is NOT set; the descriptor remains announced — exactly the
	// stalled-updater window.

	rq.StartOp()
	rq.TraversalStart(0, 100)
	done := make(chan []epoch.KV)
	go func() {
		rq.Visit(n)
		done <- rq.TraversalEnd()
	}()
	select {
	case res := <-done:
		if len(res) != 1 || res[0].Key != 5 {
			t.Fatalf("res = %v", res)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("RQ blocked on a stalled updater: helping failed")
	}
	if n.ITime() != ts {
		t.Fatalf("helper published itime %d, want %d", n.ITime(), ts)
	}
	rq.EndOp()

	// The stalled thread eventually resumes; its bookkeeping must not
	// corrupt anything (idempotent stamp).
	up.finishUpdate(true, ts, []*epoch.Node{n}, nil, false)
	up.desc.Store(nil)
	up.EndOp()
	if n.ITime() != ts {
		t.Fatal("resumed updater corrupted itime")
	}
}

// TestHelpingDerivesDTimeFromStalledDelete is the deletion-side twin.
func TestHelpingDerivesDTimeFromStalledDelete(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLockFree})
	up := p.Register()
	rq := p.Register()

	n := newNode(7, 70)
	n.SetITime(1)
	var slot dcss.Slot
	slot.Store(unsafe.Pointer(n))

	rq.StartOp()
	rq.TraversalStart(0, 100) // ts = 2

	up.StartOp()
	ts := p.ts.Load() // 2
	d := &dcss.Descriptor{A1: p.ts, Exp1: ts, S: &slot,
		Old: unsafe.Pointer(n), New: nil, DNodes: []*epoch.Node{n}}
	up.annCount.Store(1)    // what announceAll does: count before slot
	up.announce[0].Store(n) // announced for deletion
	up.desc.Store(d)
	if d.Exec() != dcss.Succeeded {
		t.Fatal("staged DCSS failed")
	}
	// Stalled: dtime unset, node gone from the structure, not retired.

	done := make(chan []epoch.KV)
	go func() { done <- rq.TraversalEnd() }()
	select {
	case res := <-done:
		// Deleted at ts=2, RQ at ts=2: dtime >= ts ⇒ key must be present.
		if len(res) != 1 || res[0].Key != 7 {
			t.Fatalf("res = %v", res)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("RQ blocked on a stalled deleter: helping failed")
	}
	rq.EndOp()

	up.finishUpdate(true, ts, nil, []*epoch.Node{n}, true)
	up.desc.Store(nil)
	up.EndOp()
}
