package rqprov

import (
	"runtime"
	"sync"
	"testing"

	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/obs"
)

// TestFaultTimestampSharingAdopts forces the timestamp-sharing race
// deterministically: a hook at the advance window (between a range query's
// TS read and its CAS) runs a complete second range query, so the outer
// query's CAS must fail and it must adopt the winner's timestamp instead of
// retrying. Both queries must return the full key set, the adopter's
// timestamp must not precede the winner's, and the ts_shared/ts_advanced
// counters must account for exactly one of each.
func TestFaultTimestampSharingAdopts(t *testing.T) {
	if !fault.Enabled {
		t.Skip("timestamp-sharing fault test requires -tags failpoints")
	}
	for _, mode := range []Mode{ModeLock, ModeHTM, ModeLockFree} {
		t.Run(mode.String(), func(t *testing.T) {
			defer fault.Reset()
			reg := obs.NewRegistry(2)
			p := New(Config{MaxThreads: 2, Mode: mode})
			p.EnableMetrics(reg)
			outer := p.Register()
			inner := p.Register()

			// Two keys inserted before either query begins.
			n5 := newNode(5, 50)
			n5.SetITime(1)
			n7 := newNode(7, 70)
			n7.SetITime(1)

			var innerRes []epoch.KV
			var innerTS uint64
			// Once(): the inner query hits the same failpoint; the spent
			// action ignores it, so the hook does not recurse.
			fault.Arm("rqprov.rq.tsadvance", fault.Hook(func(string) {
				inner.StartOp()
				inner.TraversalStart(0, 100)
				inner.Visit(n5)
				inner.Visit(n7)
				innerRes = inner.TraversalEnd()
				innerTS = inner.LastRQTS()
				inner.EndOp()
			}).Once())

			outer.StartOp()
			outer.TraversalStart(0, 100)
			outer.Visit(n5)
			outer.Visit(n7)
			res := outer.TraversalEnd()
			outer.EndOp()

			if len(innerRes) != 2 {
				t.Fatalf("winner result = %v, want both keys", innerRes)
			}
			if len(res) != 2 || res[0].Key != 5 || res[1].Key != 7 {
				t.Fatalf("adopter result = %v, want [5 7]", res)
			}
			if outer.LastRQTS() < innerTS {
				t.Fatalf("adopter ts %d precedes winner ts %d",
					outer.LastRQTS(), innerTS)
			}
			snap := reg.Snapshot()
			if got := snap.Counter("ebrrq_rq_ts_shared"); got != 1 {
				t.Fatalf("ts_shared = %d, want 1", got)
			}
			if got := snap.Counter("ebrrq_rq_ts_advanced"); got != 1 {
				t.Fatalf("ts_advanced = %d, want 1", got)
			}
		})
	}
}

// TestTimestampSharingAccounting hammers TraversalStart from many goroutines
// and checks the advance/adopt bookkeeping: every range query either won its
// CAS or adopted, and the global timestamp moved by exactly the number of
// wins. Genuine adoption needs a preemption inside the two-instruction
// advance window, so on a single-CPU host ts_shared may legitimately stay
// zero — the deterministic fault test above covers that path; this test pins
// the accounting invariant wherever it runs.
func TestTimestampSharingAccounting(t *testing.T) {
	const goroutines = 8
	const rqsEach = 2000
	for _, mode := range []Mode{ModeLock, ModeHTM, ModeLockFree} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := obs.NewRegistry(goroutines)
			p := New(Config{MaxThreads: goroutines, Mode: mode})
			p.EnableMetrics(reg)
			before := p.Timestamp()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					th := p.Register()
					defer th.Deregister()
					for i := 0; i < rqsEach; i++ {
						th.StartOp()
						th.TraversalStart(0, 10)
						th.TraversalEnd()
						th.EndOp()
						if i%64 == 0 {
							runtime.Gosched()
						}
					}
				}()
			}
			wg.Wait()
			snap := reg.Snapshot()
			shared := snap.Counter("ebrrq_rq_ts_shared")
			advanced := snap.Counter("ebrrq_rq_ts_advanced")
			if shared+advanced != goroutines*rqsEach {
				t.Fatalf("shared %d + advanced %d != %d range queries",
					shared, advanced, goroutines*rqsEach)
			}
			if delta := p.Timestamp() - before; delta != advanced {
				t.Fatalf("TS moved by %d but ts_advanced = %d", delta, advanced)
			}
			if f := p.tsFenced.Load(); mode != ModeLockFree && f > p.Timestamp() {
				t.Fatalf("fence %d ran ahead of TS %d", f, p.Timestamp())
			}
		})
	}
}

// TestFaultTimestampSharingConcurrent proves sharing under genuinely
// concurrent range queries: a barrier at the advance window (between the TS
// load and the CAS) holds every query until all of them have read the same
// timestamp, then releases them into their CASes together. Exactly one must
// win and advance; every other query must adopt — deterministically, even
// on a single-CPU host where natural preemption inside the two-instruction
// window is vanishingly rare.
func TestFaultTimestampSharingConcurrent(t *testing.T) {
	if !fault.Enabled {
		t.Skip("timestamp-sharing fault test requires -tags failpoints")
	}
	const queries = 4
	for _, mode := range []Mode{ModeLock, ModeHTM, ModeLockFree} {
		t.Run(mode.String(), func(t *testing.T) {
			defer fault.Reset()
			reg := obs.NewRegistry(queries)
			p := New(Config{MaxThreads: queries, Mode: mode})
			p.EnableMetrics(reg)

			// All queries scan the same pre-inserted pair of keys.
			n5 := newNode(5, 50)
			n5.SetITime(1)
			n7 := newNode(7, 70)
			n7.SetITime(1)

			var barrier sync.WaitGroup
			barrier.Add(queries)
			fault.Reset()
			fault.Arm("rqprov.rq.tsadvance", fault.Hook(func(string) {
				barrier.Done()
				barrier.Wait() // every query has loaded TS; release the CASes
			}).Times(queries))

			tss := make([]uint64, queries)
			results := make([][]epoch.KV, queries)
			var wg sync.WaitGroup
			for g := 0; g < queries; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					th := p.Register()
					defer th.Deregister()
					th.StartOp()
					th.TraversalStart(0, 100)
					th.Visit(n5)
					th.Visit(n7)
					results[g] = th.TraversalEnd()
					tss[g] = th.LastRQTS()
					th.EndOp()
				}(g)
			}
			wg.Wait()

			snap := reg.Snapshot()
			if got := snap.Counter("ebrrq_rq_ts_advanced"); got != 1 {
				t.Fatalf("ts_advanced = %d, want exactly 1 CAS winner", got)
			}
			if got := snap.Counter("ebrrq_rq_ts_shared"); got != queries-1 {
				t.Fatalf("ts_shared = %d, want %d adopters", got, queries-1)
			}
			// Everyone linearized at the winner's timestamp and saw both keys.
			for g := 0; g < queries; g++ {
				if tss[g] != tss[0] {
					t.Fatalf("query %d ts %d != query 0 ts %d (timestamps = %v)",
						g, tss[g], tss[0], tss)
				}
				if len(results[g]) != 2 {
					t.Fatalf("query %d result = %v, want both keys", g, results[g])
				}
			}
		})
	}
}
