package rqprov

import (
	"sync"
	"testing"
	"time"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
)

func newNode(key, value int64) *epoch.Node {
	n := &epoch.Node{}
	n.InitKey(key, value)
	return n
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{ModeUnsafe: "Unsafe", ModeLock: "Lock",
		ModeHTM: "HTM", ModeLockFree: "Lock-free"}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%v", m)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	p := New(Config{MaxThreads: 4, Mode: ModeLock})
	if p.MaxThreads() != 4 {
		t.Fatal("MaxThreads")
	}
	if p.MaxAnnounce() != 16 {
		t.Fatalf("MaxAnnounce default = %d", p.MaxAnnounce())
	}
	big := New(Config{MaxThreads: 32, Mode: ModeLock})
	if big.MaxAnnounce() != 2*32+8 {
		t.Fatalf("MaxAnnounce for 32 threads = %d", big.MaxAnnounce())
	}
	if p.Timestamp() != 1 {
		t.Fatal("TS must start at 1 (0 is ⊥)")
	}
}

// TestUpdateCASStampsTimes checks that every mode records the exact TS at
// linearization on inserted and deleted nodes, and retires when asked.
func TestUpdateCASStampsTimes(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeHTM, ModeLockFree} {
		t.Run(mode.String(), func(t *testing.T) {
			p := New(Config{MaxThreads: 2, Mode: mode})
			th := p.Register()
			th.StartOp()
			var slot dcss.Slot
			ins := newNode(1, 10)
			if !th.UpdateCAS(&slot, nil, unsafe.Pointer(ins), []*epoch.Node{ins}, nil, false) {
				t.Fatal("insert CAS failed")
			}
			if ins.ITime() != 1 {
				t.Fatalf("itime = %d, want 1", ins.ITime())
			}
			th.EndOp()

			// An RQ bumps TS; subsequent updates must see the new value.
			rq := p.Register()
			rq.StartOp()
			rq.TraversalStart(0, 100)
			if rq.LastRQTS() != 2 {
				t.Fatalf("rq ts = %d", rq.LastRQTS())
			}
			rq.Visit(ins)
			res := rq.TraversalEnd()
			if len(res) != 1 || res[0].Key != 1 {
				t.Fatalf("res = %v", res)
			}
			rq.EndOp()

			th.StartOp()
			del := ins
			if !th.UpdateCAS(&slot, unsafe.Pointer(del), nil, nil, []*epoch.Node{del}, true) {
				t.Fatal("delete CAS failed")
			}
			if del.DTime() != 2 {
				t.Fatalf("dtime = %d, want 2", del.DTime())
			}
			if th.LastUpdateTS() != 2 {
				t.Fatalf("LastUpdateTS = %d", th.LastUpdateTS())
			}
			th.EndOp()
		})
	}
}

// TestUpdateCASFailureLeavesNoTrace: a failed CAS must not stamp times.
func TestUpdateCASFailureLeavesNoTrace(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeHTM, ModeLockFree} {
		p := New(Config{MaxThreads: 1, Mode: mode})
		th := p.Register()
		th.StartOp()
		var slot dcss.Slot
		other := newNode(9, 9)
		slot.Store(unsafe.Pointer(other))
		n := newNode(1, 1)
		if th.UpdateCAS(&slot, nil, unsafe.Pointer(n), []*epoch.Node{n}, nil, false) {
			t.Fatal("CAS should have failed")
		}
		if n.ITime() != 0 {
			t.Fatalf("%v: failed CAS stamped itime", mode)
		}
		th.EndOp()
	}
}

// TestVisitFiltering: nodes inserted after the RQ or deleted before it are
// excluded; marked nodes deleted after it are included.
func TestVisitFiltering(t *testing.T) {
	p := New(Config{MaxThreads: 1, Mode: ModeLock})
	th := p.Register()
	th.StartOp()
	th.TraversalStart(0, 100)
	ts := th.LastRQTS()

	before := newNode(1, 1)
	before.SetITime(ts - 1)
	after := newNode(2, 2)
	after.SetITime(ts + 1)
	delBefore := newNode(3, 3)
	delBefore.SetITime(ts - 1)
	delBefore.SetDTime(ts - 1)
	delAfter := newNode(4, 4)
	delAfter.SetITime(ts - 1)
	delAfter.SetDTime(ts + 1)
	outOfRange := newNode(500, 5)
	outOfRange.SetITime(ts - 1)

	th.Visit(before)
	th.Visit(after)
	th.VisitMaybeMarked(delBefore, true)
	th.VisitMaybeMarked(delAfter, true)
	th.Visit(outOfRange)
	res := th.TraversalEnd()
	th.EndOp()

	if len(res) != 2 || res[0].Key != 1 || res[1].Key != 4 {
		t.Fatalf("res = %v, want keys [1 4]", res)
	}
}

// TestLimboRecovery: a node deleted and retired between TraversalStart and
// TraversalEnd is recovered from the limbo lists even though the traversal
// never visited it.
func TestLimboRecovery(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLock, LimboSorted: true})
	rq := p.Register()
	up := p.Register()

	rq.StartOp()
	rq.TraversalStart(0, 100)
	ts := rq.LastRQTS()

	// Concurrent deleter: delete node (itime < ts) during the RQ.
	up.StartOp()
	victim := newNode(7, 70)
	victim.SetITime(ts - 1)
	var slot dcss.Slot
	slot.Store(unsafe.Pointer(victim))
	if !up.UpdateCAS(&slot, unsafe.Pointer(victim), nil, nil, []*epoch.Node{victim}, true) {
		t.Fatal("delete failed")
	}
	up.EndOp()

	// Traversal missed the node entirely; the sweep must find it.
	res := rq.TraversalEnd()
	rq.EndOp()
	if len(res) != 1 || res[0].Key != 7 || res[0].Value != 70 {
		t.Fatalf("res = %v, want [{7 70}]", res)
	}
}

// TestLimboSkipsOldAndRouting: nodes deleted before the RQ and router nodes
// in limbo must not appear.
func TestLimboSkipsOldAndRouting(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLock, LimboSorted: false})
	rq := p.Register()
	up := p.Register()

	up.StartOp()
	old := newNode(5, 50)
	old.SetITime(1)
	var s1 dcss.Slot
	s1.Store(unsafe.Pointer(old))
	up.UpdateCAS(&s1, unsafe.Pointer(old), nil, nil, []*epoch.Node{old}, true) // dtime=1
	up.EndOp()

	rq.StartOp()
	rq.TraversalStart(0, 100) // ts=2 > dtime: old was deleted before

	up.StartOp()
	router := &epoch.Node{}
	router.InitRouting(42)
	var s2 dcss.Slot
	s2.Store(unsafe.Pointer(router))
	up.UpdateCAS(&s2, unsafe.Pointer(router), nil, nil, []*epoch.Node{router}, true)
	up.EndOp()

	res := rq.TraversalEnd()
	rq.EndOp()
	if len(res) != 0 {
		t.Fatalf("res = %v, want empty", res)
	}
}

// TestAnnouncementRecovery: the RQ finds a node that has been announced for
// deletion and physically removed, but not yet retired, via the
// announcement array — the paper's subtle case.
func TestAnnouncementRecovery(t *testing.T) {
	p := New(Config{MaxThreads: 2, Mode: ModeLock})
	rq := p.Register()
	up := p.Register()

	victim := newNode(3, 30)
	victim.SetITime(1)
	var slot dcss.Slot
	slot.Store(unsafe.Pointer(victim))

	rq.StartOp()
	rq.TraversalStart(0, 100)

	// Run the deletion in a goroutine that stalls inside PhysicalDelete's
	// unlink, after announcing, so the RQ overlaps the announce window.
	unlinkStarted := make(chan struct{})
	finish := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		up.StartOp()
		defer up.EndOp()
		// Logical deletion path: mark via UpdateCAS (sets dtime)...
		var mark dcss.Slot
		sentinel := newNode(0, 0)
		if !up.UpdateCAS(&mark, nil, unsafe.Pointer(sentinel), nil, []*epoch.Node{victim}, false) {
			t.Error("mark failed")
		}
		// ...then physically delete with announcement, stalling mid-way.
		up.PhysicalDelete([]*epoch.Node{victim}, func() bool {
			close(unlinkStarted)
			<-finish
			return slot.CAS(unsafe.Pointer(victim), nil)
		})
	}()

	<-unlinkStarted
	// The node is announced and dtime is already set (marking precedes
	// physical deletion); the sweep must pick it up from announcements.
	resCh := make(chan []epoch.KV)
	go func() { resCh <- rq.TraversalEnd() }()
	var res []epoch.KV
	select {
	case res = <-resCh:
	case <-time.After(5 * time.Second):
		t.Fatal("TraversalEnd stuck on announcement")
	}
	close(finish)
	<-done
	rq.EndOp()
	if len(res) != 1 || res[0].Key != 3 {
		t.Fatalf("res = %v, want key 3", res)
	}
}

// TestUpdateWrite drives the write variant.
func TestUpdateWrite(t *testing.T) {
	for _, mode := range []Mode{ModeLock, ModeHTM, ModeLockFree} {
		p := New(Config{MaxThreads: 1, Mode: mode})
		th := p.Register()
		th.StartOp()
		var slot dcss.Slot
		n := newNode(1, 1)
		th.UpdateWrite(&slot, unsafe.Pointer(n), []*epoch.Node{n}, nil, false)
		if slot.Load() != unsafe.Pointer(n) || n.ITime() == 0 {
			t.Fatalf("%v: UpdateWrite did not install/stamp", mode)
		}
		th.EndOp()
	}
}

// TestRecorderSeesGroupUpdates verifies the Recorder hook receives inodes
// and dnodes with the linearization timestamp.
type capturingRecorder struct {
	mu  sync.Mutex
	got []uint64
}

func (c *capturingRecorder) RecordUpdate(tid int, ts uint64, inodes, dnodes []*epoch.Node) {
	c.mu.Lock()
	c.got = append(c.got, ts, uint64(len(inodes)), uint64(len(dnodes)))
	c.mu.Unlock()
}

func TestRecorderSeesGroupUpdates(t *testing.T) {
	rec := &capturingRecorder{}
	p := New(Config{MaxThreads: 1, Mode: ModeLockFree, Recorder: rec})
	th := p.Register()
	th.StartOp()
	var slot dcss.Slot
	a, b, c := newNode(1, 1), newNode(2, 2), newNode(3, 3)
	slot.Store(unsafe.Pointer(a))
	if !th.UpdateCAS(&slot, unsafe.Pointer(a), unsafe.Pointer(b),
		[]*epoch.Node{b, c}, []*epoch.Node{a}, true) {
		t.Fatal("CAS failed")
	}
	th.EndOp()
	if len(rec.got) != 3 || rec.got[0] != 1 || rec.got[1] != 2 || rec.got[2] != 1 {
		t.Fatalf("recorder got %v", rec.got)
	}
}

// TestUnsafeModeSkipsMachinery: Unsafe updates must not stamp times and
// Unsafe RQs must not sweep.
func TestUnsafeModeSkipsMachinery(t *testing.T) {
	p := New(Config{MaxThreads: 1, Mode: ModeUnsafe})
	th := p.Register()
	th.StartOp()
	var slot dcss.Slot
	n := newNode(1, 1)
	if !th.UpdateCAS(&slot, nil, unsafe.Pointer(n), []*epoch.Node{n}, nil, false) {
		t.Fatal("CAS failed")
	}
	if n.ITime() != 0 {
		t.Fatal("Unsafe mode stamped itime")
	}
	th.TraversalStart(0, 10)
	th.Visit(n)
	res := th.TraversalEnd()
	if len(res) != 1 {
		t.Fatalf("res = %v", res)
	}
	th.EndOp()
}

// TestAnnounceOverflowPanics documents the MaxAnnounce contract.
func TestAnnounceOverflowPanics(t *testing.T) {
	p := New(Config{MaxThreads: 1, Mode: ModeLock, MaxAnnounce: 2})
	th := p.Register()
	th.StartOp()
	defer th.EndOp()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var slot dcss.Slot
	dn := []*epoch.Node{newNode(1, 1), newNode(2, 2), newNode(3, 3)}
	th.UpdateCAS(&slot, nil, nil, nil, dn, false)
}

// TestResultSortedDeduped exercises finishResult.
func TestResultSortedDeduped(t *testing.T) {
	p := New(Config{MaxThreads: 1, Mode: ModeLock})
	th := p.Register()
	th.StartOp()
	th.TraversalStart(0, 100)
	ts := th.LastRQTS()
	for _, k := range []int64{5, 3, 5, 9, 3} {
		n := newNode(k, k*10)
		n.SetITime(ts - 1)
		th.Visit(n)
	}
	res := th.TraversalEnd()
	th.EndOp()
	if len(res) != 3 || res[0].Key != 3 || res[1].Key != 5 || res[2].Key != 9 {
		t.Fatalf("res = %v", res)
	}
}
