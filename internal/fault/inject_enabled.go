//go:build failpoints

package fault

// Enabled reports whether this binary was built with the `failpoints` tag.
const Enabled = true

// Inject evaluates the named failpoint. While no site is armed this is a
// single atomic load, so an instrumented test binary runs at full speed
// outside the chaos suite.
func Inject(name string) {
	if armed.Load() == 0 {
		return
	}
	fire(name)
}
