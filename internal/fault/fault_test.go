package fault

import (
	"testing"
	"time"
)

// TestRegistryBookkeeping exercises Arm/Disarm/Reset through the internal
// fire path so it runs in both builds (Inject compiles to a no-op without
// the failpoints tag; fire is the common implementation behind it).
func TestRegistryBookkeeping(t *testing.T) {
	defer Reset()
	Reset()

	ran := 0
	Arm("bk.site", Hook(func(site string) {
		if site != "bk.site" {
			t.Fatalf("hook got site %q", site)
		}
		ran++
	}))
	fire("bk.site")
	fire("bk.site")
	if ran != 2 || Hits("bk.site") != 2 || Fired("bk.site") != 2 {
		t.Fatalf("ran=%d hits=%d fired=%d, want 2/2/2", ran, Hits("bk.site"), Fired("bk.site"))
	}

	Disarm("bk.site")
	fire("bk.site")
	if ran != 2 || Hits("bk.site") != 2 {
		t.Fatalf("disarmed site still fired (ran=%d hits=%d)", ran, Hits("bk.site"))
	}

	fire("bk.never-armed") // must not panic or create state
	if Hits("bk.never-armed") != 0 {
		t.Fatal("unarmed site recorded hits")
	}

	Reset()
	if Hits("bk.site") != 0 {
		t.Fatal("Reset kept hit counts")
	}
}

func TestAfterAndTimes(t *testing.T) {
	defer Reset()
	ran := 0
	Arm("at.site", Hook(func(string) { ran++ }).After(2).Times(3))
	for i := 0; i < 10; i++ {
		fire("at.site")
	}
	if ran != 3 {
		t.Fatalf("After(2).Times(3): fired %d times, want 3", ran)
	}
	if Hits("at.site") != 10 {
		t.Fatalf("hits=%d, want 10 (skipped and spent hits still count)", Hits("at.site"))
	}
	if Fired("at.site") != 3 {
		t.Fatalf("Fired=%d, want 3", Fired("at.site"))
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	Arm("p.site", Panic("boom").Once())
	func() {
		defer func() {
			r := recover()
			pe, ok := r.(PanicError)
			if !ok || pe.Site != "p.site" || pe.Msg != "boom" {
				t.Fatalf("recovered %#v, want PanicError{p.site, boom}", r)
			}
		}()
		fire("p.site")
		t.Fatal("Panic action did not panic")
	}()
	fire("p.site") // spent: must not panic again
}

func TestStallBlocksUntilReleased(t *testing.T) {
	defer Reset()
	act, release := Stall()
	Arm("s.site", act)

	done := make(chan struct{})
	go func() {
		fire("s.site")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("stalled goroutine ran through the gate")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not unblock the stalled goroutine")
	}
	release() // idempotent

	// The gate stays open: later hits pass immediately.
	fire("s.site")
}

func TestInjectMatchesBuildTag(t *testing.T) {
	defer Reset()
	ran := 0
	Arm("b.site", Hook(func(string) { ran++ }))
	Inject("b.site")
	if Enabled && ran != 1 {
		t.Fatalf("failpoints build: Inject did not fire (ran=%d)", ran)
	}
	if !Enabled && ran != 0 {
		t.Fatalf("production build: Inject fired (ran=%d)", ran)
	}
}
