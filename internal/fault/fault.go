// Package fault is a deterministic fault-injection framework for the
// concurrency-critical windows of the EBR range-query stack. Code under test
// marks interesting interleaving points with named failpoints:
//
//	fault.Inject("rqprov.update.announced")
//
// and tests arm per-site actions — delay, stall-until-released, panic, or an
// arbitrary hook — through the package registry:
//
//	fault.Arm("rqprov.update.announced", fault.Panic("die").After(10).Times(1))
//
// Arming is gated twice. At build time, Inject compiles to an empty function
// unless the `failpoints` build tag is set (fault.Enabled reports which build
// this is), so production binaries pay nothing — not even a branch. At run
// time (failpoints builds only), Inject is a single atomic load while no site
// is armed, so an instrumented test binary runs at full speed outside the
// chaos suite.
//
// The stalled-thread scenarios this package exists to create are the classic
// EBR failure mode described by DEBRA+ (Brown, PODC '15): one thread
// preempted or crashed inside an operation pins the global epoch and limbo
// lists grow without bound. The chaos harness (internal/dstest) arms
// failpoints in exactly those windows and asserts the stack degrades and
// recovers as designed.
package fault

import (
	"sync"
	"sync/atomic"
	"time"
)

// Action describes what an armed failpoint does when hit. Actions are values:
// the With*/After/Times modifiers return copies, so a prototype can be armed
// at several sites.
type Action struct {
	kind  kind
	dur   time.Duration
	msg   string
	fn    func(site string)
	gate  chan struct{}
	skip  int // skip the first `skip` hits
	times int // fire at most `times` hits (0 = unlimited)
}

type kind int

const (
	kindDelay kind = iota
	kindPanic
	kindHook
	kindStall
)

// Delay returns an action that sleeps for d at the failpoint ("stall-for-N").
func Delay(d time.Duration) Action { return Action{kind: kindDelay, dur: d} }

// Panic returns an action that panics with PanicError{Site, Msg}. The panic
// unwinds the hitting goroutine exactly as a programming error would; the
// chaos harness recovers it at the worker's top level.
func Panic(msg string) Action { return Action{kind: kindPanic, msg: msg} }

// Hook returns an action that runs fn(site) at the failpoint. fn may block;
// it runs on the hitting goroutine.
func Hook(fn func(site string)) Action { return Action{kind: kindHook, fn: fn} }

// Stall returns an action that blocks the hitting goroutine until release is
// called (idempotently — release may be called once regardless of how many
// goroutines are blocked; it opens the gate for all of them, forever).
func Stall() (Action, func()) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	return Action{kind: kindStall, gate: gate}, release
}

// After returns a copy of the action that ignores the first n hits.
func (a Action) After(n int) Action { a.skip = n; return a }

// Times returns a copy of the action that fires at most n times (later hits
// are counted but otherwise ignored).
func (a Action) Times(n int) Action { a.times = n; return a }

// Once is Times(1).
func (a Action) Once() Action { return a.Times(1) }

// PanicError is the value a Panic action panics with.
type PanicError struct {
	Site string
	Msg  string
}

func (e PanicError) Error() string { return "fault: injected panic at " + e.Site + ": " + e.Msg }

// site is the armed state of one failpoint.
type site struct {
	hits  atomic.Uint64 // all hits while armed (skipped, spent and fired)
	fired atomic.Uint64 // hits on which the action actually ran
	mu    sync.Mutex
	act   Action
	seen  int
	shot  int
	live  bool
}

var (
	armed atomic.Int32 // number of currently armed sites: Inject's fast path
	sites sync.Map     // string -> *site
)

// Arm installs (or replaces) the action at the named failpoint.
func Arm(name string, a Action) {
	v, loaded := sites.LoadOrStore(name, &site{})
	s := v.(*site)
	s.mu.Lock()
	if !s.live {
		s.live = true
		armed.Add(1)
	}
	s.act = a
	s.seen = 0
	s.shot = 0
	s.mu.Unlock()
	_ = loaded
}

// Disarm removes the action at the named failpoint. Hit counts are kept.
func Disarm(name string) {
	v, ok := sites.Load(name)
	if !ok {
		return
	}
	s := v.(*site)
	s.mu.Lock()
	if s.live {
		s.live = false
		armed.Add(-1)
	}
	s.mu.Unlock()
}

// Reset disarms every failpoint and forgets all hit counts.
func Reset() {
	sites.Range(func(k, v any) bool {
		s := v.(*site)
		s.mu.Lock()
		if s.live {
			s.live = false
			armed.Add(-1)
		}
		s.mu.Unlock()
		sites.Delete(k)
		return true
	})
}

// Hits returns how many times the named failpoint was reached while armed.
func Hits(name string) uint64 {
	if v, ok := sites.Load(name); ok {
		return v.(*site).hits.Load()
	}
	return 0
}

// Fired returns how many times the named failpoint's action actually ran.
func Fired(name string) uint64 {
	if v, ok := sites.Load(name); ok {
		return v.(*site).fired.Load()
	}
	return 0
}

// fire evaluates the failpoint; called by Inject (failpoints builds) once the
// armed fast path says at least one site is live.
func fire(name string) {
	v, ok := sites.Load(name)
	if !ok {
		return
	}
	s := v.(*site)
	s.mu.Lock()
	if !s.live {
		s.mu.Unlock()
		return
	}
	s.hits.Add(1)
	s.seen++
	if s.seen <= s.act.skip || (s.act.times > 0 && s.shot >= s.act.times) {
		s.mu.Unlock()
		return
	}
	s.shot++
	a := s.act
	s.mu.Unlock()
	s.fired.Add(1)

	// Run the action outside the site lock so a blocked goroutine never
	// prevents other goroutines from evaluating (or tests from disarming)
	// the same site.
	switch a.kind {
	case kindDelay:
		time.Sleep(a.dur)
	case kindPanic:
		panic(PanicError{Site: name, Msg: a.msg})
	case kindHook:
		a.fn(name)
	case kindStall:
		<-a.gate
	}
}
