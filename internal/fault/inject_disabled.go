//go:build !failpoints

package fault

// Enabled reports whether this binary was built with the `failpoints` tag.
const Enabled = false

// Inject is the production no-op: the constant-false guard lets the compiler
// delete the call entirely, so instrumented hot paths cost nothing.
func Inject(name string) {}
