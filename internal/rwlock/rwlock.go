// Package rwlock provides the two reader-writer locks used by the range
// query providers:
//
//   - FetchAddRW: the paper's "simplistic single-word fetch-and-add r/w-lock"
//     protecting the global timestamp in the lock-based provider. Updates
//     acquire it in shared mode; range queries acquire it in exclusive mode.
//
//   - DistRW: a distributed reader-indicator lock that emulates the paper's
//     HTM fast path. A hardware transaction in the HTM provider reads the
//     lock word (aborting if exclusively held), reads TS, performs the update
//     CAS and commits — its only effect on shared state is the update CAS
//     itself, so concurrent updates do not contend on the lock word. DistRW
//     reproduces that behaviour in software: shared entry touches only the
//     caller's own padded slot and validates the exclusive bit (retrying on
//     "abort"), while exclusive entry sets the bit and waits for all slots to
//     drain. Go exposes no TSX intrinsics, so this is the documented
//     substitution for the HTM provider.
package rwlock

import (
	"runtime"
	"sync/atomic"

	"ebrrq/internal/obs"
)

// spinThenYield spins briefly and then yields the processor; on the
// oversubscribed single-CPU machines these experiments run on, yielding
// quickly is essential for progress.
func spinThenYield(i int) {
	if i < 16 {
		return
	}
	runtime.Gosched()
}

const writerBit = uint64(1) << 62

// FetchAddRW is a reader-preference reader/writer lock built from a single
// word manipulated with fetch-and-add, as described in §5 of the paper.
type FetchAddRW struct {
	state atomic.Uint64
}

// AcquireShared acquires the lock in shared mode. Multiple threads may hold
// shared mode simultaneously.
func (l *FetchAddRW) AcquireShared() {
	for i := 0; ; i++ {
		v := l.state.Add(1)
		if v&writerBit == 0 {
			return
		}
		// A writer holds or is acquiring the lock; back off.
		l.state.Add(^uint64(0)) // -1
		for j := 0; l.state.Load()&writerBit != 0; j++ {
			spinThenYield(j)
		}
		spinThenYield(i)
	}
}

// ReleaseShared releases a shared-mode acquisition.
func (l *FetchAddRW) ReleaseShared() {
	l.state.Add(^uint64(0)) // -1
}

// AcquireExclusive acquires the lock in exclusive mode, excluding all shared
// and exclusive holders.
func (l *FetchAddRW) AcquireExclusive() {
	for i := 0; ; i++ {
		if l.state.CompareAndSwap(0, writerBit) {
			return
		}
		spinThenYield(i)
	}
}

// ReleaseExclusive releases an exclusive-mode acquisition.
func (l *FetchAddRW) ReleaseExclusive() {
	l.state.Store(0)
}

// ExclusiveHeld reports whether the lock is currently held in exclusive mode
// (used by the HTM provider's transaction validation).
func (l *FetchAddRW) ExclusiveHeld() bool {
	return l.state.Load()&writerBit != 0
}

// cacheLine padding avoids false sharing between per-thread reader slots.
type paddedFlag struct {
	v atomic.Uint32
	_ [60]byte
}

// DistRW is the distributed reader-indicator lock emulating the HTM fast
// path. Shared acquisitions are indexed by thread id.
type DistRW struct {
	writer atomic.Uint32
	slots  []paddedFlag

	// Aborts counts shared-mode "transaction aborts" (entries that observed
	// the exclusive bit and retried), mirroring HTM abort statistics.
	Aborts atomic.Uint64

	// AbortCounter, when non-nil, additionally receives every abort with
	// the aborting thread's id (wired by the provider's observability
	// layer). The abort cause in this emulation is always "lock held":
	// a writer owned or was acquiring the lock during the transaction.
	AbortCounter *obs.Counter
}

// NewDistRW creates a distributed r/w lock for up to maxThreads threads.
func NewDistRW(maxThreads int) *DistRW {
	return &DistRW{slots: make([]paddedFlag, maxThreads)}
}

// AcquireShared enters shared mode for thread tid. It is the software
// analogue of beginning a hardware transaction that subscribes to the lock.
func (l *DistRW) AcquireShared(tid int) {
	s := &l.slots[tid].v
	for i := 0; ; i++ {
		s.Store(1)
		if l.writer.Load() == 0 {
			return
		}
		// "Abort": a writer is active or arriving.
		s.Store(0)
		l.Aborts.Add(1)
		l.AbortCounter.Inc(tid)
		for j := 0; l.writer.Load() != 0; j++ {
			spinThenYield(j)
		}
		spinThenYield(i)
	}
}

// ReleaseShared exits shared mode for thread tid.
func (l *DistRW) ReleaseShared(tid int) {
	l.slots[tid].v.Store(0)
}

// AcquireExclusive enters exclusive mode: it sets the writer flag and waits
// for every reader slot to drain.
func (l *DistRW) AcquireExclusive() {
	for i := 0; !l.writer.CompareAndSwap(0, 1); i++ {
		spinThenYield(i)
	}
	for i := range l.slots {
		for j := 0; l.slots[i].v.Load() != 0; j++ {
			spinThenYield(j)
		}
	}
}

// ReleaseExclusive exits exclusive mode.
func (l *DistRW) ReleaseExclusive() {
	l.writer.Store(0)
}

// ExclusiveHeld reports whether the writer flag is set.
func (l *DistRW) ExclusiveHeld() bool { return l.writer.Load() != 0 }
