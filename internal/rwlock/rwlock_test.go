package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// exerciseRW checks mutual exclusion invariants for any reader/writer lock.
func exerciseRW(t *testing.T, acqS func(tid int), relS func(tid int), acqX, relX func()) {
	t.Helper()
	var readers, writers atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if (i+tid)%7 == 0 {
					acqX()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						violations.Add(1)
					}
					writers.Add(-1)
					relX()
				} else {
					acqS(tid)
					readers.Add(1)
					if writers.Load() != 0 {
						violations.Add(1)
					}
					readers.Add(-1)
					relS(tid)
				}
			}
		}(w)
	}
	time.Sleep(250 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

func TestFetchAddRWExclusion(t *testing.T) {
	var l FetchAddRW
	exerciseRW(t,
		func(int) { l.AcquireShared() }, func(int) { l.ReleaseShared() },
		l.AcquireExclusive, l.ReleaseExclusive)
}

func TestDistRWExclusion(t *testing.T) {
	l := NewDistRW(8)
	exerciseRW(t, l.AcquireShared, l.ReleaseShared, l.AcquireExclusive, l.ReleaseExclusive)
}

func TestSharedConcurrency(t *testing.T) {
	var l FetchAddRW
	l.AcquireShared()
	done := make(chan bool, 1)
	go func() {
		l.AcquireShared() // must not block
		l.ReleaseShared()
		done <- true
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shared acquisition blocked by another shared holder")
	}
	l.ReleaseShared()
}

func TestExclusiveHeld(t *testing.T) {
	var l FetchAddRW
	if l.ExclusiveHeld() {
		t.Fatal("fresh lock reports exclusive")
	}
	l.AcquireExclusive()
	if !l.ExclusiveHeld() {
		t.Fatal("exclusive not reported")
	}
	l.ReleaseExclusive()

	d := NewDistRW(2)
	if d.ExclusiveHeld() {
		t.Fatal("fresh DistRW reports exclusive")
	}
	d.AcquireExclusive()
	if !d.ExclusiveHeld() {
		t.Fatal("DistRW exclusive not reported")
	}
	d.ReleaseExclusive()
}

func TestDistRWAbortAccounting(t *testing.T) {
	l := NewDistRW(2)
	l.AcquireExclusive()
	done := make(chan struct{})
	go func() {
		l.AcquireShared(0) // will abort at least once
		l.ReleaseShared(0)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	l.ReleaseExclusive()
	<-done
	if l.Aborts.Load() == 0 {
		t.Fatal("expected at least one emulated-HTM abort")
	}
}
