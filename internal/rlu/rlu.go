// Package rlu implements Read-Log-Update (Matveev, Shavit, Felber, Marlier;
// SOSP '15), the synchronization baseline the PPoPP '18 paper compares
// against. RLU gives readers a consistent snapshot of all objects (so range
// queries are trivially linearizable at the read-section start), at the
// cost of an RLUSync in every writer's commit: the writer waits for all
// concurrent read-side sections before writing its log back.
//
// Design notes (mirroring the original, adapted to Go):
//
//   - Every shared object is a *Node[T] whose mutable state lives in Body.
//     Writers never mutate an original in place: TryLock installs a copy,
//     the writer mutates the copy, and commit (WriterUnlock) writes the
//     copy back after synchronizing.
//   - Readers dereference through Deref: if an object has a copy whose
//     owner committed with write-clock ≤ the reader's local clock, the
//     reader *steals* the copy; otherwise it reads the original.
//   - Synchronize skips threads that are themselves committing: a
//     committing thread performs no further snapshot reads, and write sets
//     are disjoint (TryLock conflicts force aborts), so skipping cannot
//     expose a torn snapshot — this breaks the commit/commit deadlock.
//
// The deferred-sync variant of the paper (which batches RLUSync calls) is
// deliberately not used: as the PPoPP '18 paper notes, it is not
// linearizable.
package rlu

import (
	"math"
	"runtime"
	"sync/atomic"
)

const inactiveWClock = uint64(math.MaxUint64)

// Node wraps a shared object with the RLU header. Body holds all mutable
// state; pointer fields inside Body must point to original Nodes (use Orig
// when copying pointers out of a locked copy).
type Node[T any] struct {
	copy   atomic.Pointer[Node[T]]
	copyOf *Node[T] // non-nil iff this node is a copy
	owner  *Thread[T]
	Body   T
}

// NewNode allocates an original node with the given body.
func NewNode[T any](body T) *Node[T] {
	return &Node[T]{Body: body}
}

// Orig returns the original object for n (n itself if it is not a copy).
func Orig[T any](n *Node[T]) *Node[T] {
	if n == nil || n.copyOf == nil {
		return n
	}
	return n.copyOf
}

// Domain is an RLU clock domain over nodes with body type T.
type Domain[T any] struct {
	gClock  atomic.Uint64
	threads []atomic.Pointer[Thread[T]]
	nreg    atomic.Int32
}

// NewDomain creates a domain for up to maxThreads threads.
func NewDomain[T any](maxThreads int) *Domain[T] {
	d := &Domain[T]{threads: make([]atomic.Pointer[Thread[T]], maxThreads)}
	d.gClock.Store(1)
	return d
}

// Register allocates a thread context.
func (d *Domain[T]) Register() *Thread[T] {
	id := int(d.nreg.Add(1)) - 1
	if id >= len(d.threads) {
		panic("rlu: too many threads")
	}
	t := &Thread[T]{dom: d, id: id}
	t.wClock.Store(inactiveWClock)
	d.threads[id].Store(t)
	return t
}

// Thread is a per-goroutine RLU context.
type Thread[T any] struct {
	dom    *Domain[T]
	id     int
	runCnt atomic.Uint64 // odd = inside a section
	lClock atomic.Uint64
	wClock atomic.Uint64 // inactiveWClock when not committing
	log    []*Node[T]    // originals locked by this thread
	_      [32]byte
}

// ReaderLock enters a read-side (or writer) section.
func (t *Thread[T]) ReaderLock() {
	t.runCnt.Add(1) // odd: active
	t.lClock.Store(t.dom.gClock.Load())
}

// ReaderUnlock leaves the section. If the thread locked any objects it
// commits them: advance the clock, synchronize, write back, release.
func (t *Thread[T]) ReaderUnlock() {
	if len(t.log) != 0 {
		t.commit()
	}
	t.runCnt.Add(1) // even: quiescent
}

// Abort discards all locked copies and leaves the section; the caller
// retries its operation.
func (t *Thread[T]) Abort() {
	for _, obj := range t.log {
		obj.copy.Store(nil)
	}
	t.log = t.log[:0]
	t.runCnt.Add(1)
}

// InSectionClock returns the thread's snapshot clock (for tests).
func (t *Thread[T]) InSectionClock() uint64 { return t.lClock.Load() }

// Deref resolves an object reference inside a section, returning the copy
// when RLU's protocol dictates (own locks; committed copies within the
// snapshot) and the original otherwise.
func (t *Thread[T]) Deref(obj *Node[T]) *Node[T] {
	if obj == nil {
		return nil
	}
	if obj.copyOf != nil {
		return obj // already a copy (the caller owns it)
	}
	c := obj.copy.Load()
	if c == nil {
		return obj
	}
	if c.owner == t {
		return c
	}
	if c.owner.wClock.Load() <= t.lClock.Load() {
		return c // steal: committed within our snapshot
	}
	return obj
}

// TryLock acquires obj for writing and returns the mutable copy. A false
// return means a conflicting writer holds the object: the caller must
// Abort and retry.
func (t *Thread[T]) TryLock(obj *Node[T]) (*Node[T], bool) {
	obj = Orig(obj)
	if c := obj.copy.Load(); c != nil {
		if c.owner == t {
			return c, true
		}
		return nil, false
	}
	nc := &Node[T]{copyOf: obj, owner: t, Body: obj.Body}
	if obj.copy.CompareAndSwap(nil, nc) {
		t.log = append(t.log, obj)
		return nc, true
	}
	return nil, false
}

// commit implements rlu_commit: publish the write clock, advance the global
// clock, wait for concurrent readers (RLUSync), write the log back and
// release the locks.
func (t *Thread[T]) commit() {
	wc := t.dom.gClock.Load() + 1
	t.wClock.Store(wc)
	t.dom.gClock.Add(1)
	t.synchronize(wc)
	for _, obj := range t.log {
		c := obj.copy.Load()
		obj.Body = c.Body // write back
	}
	for _, obj := range t.log {
		obj.copy.Store(nil)
	}
	t.log = t.log[:0]
	t.wClock.Store(inactiveWClock)
}

// synchronize waits for every thread whose active section began before wc
// (and which is not itself committing — see package comment).
func (t *Thread[T]) synchronize(wc uint64) {
	d := t.dom
	n := int(d.nreg.Load())
	for i := 0; i < n; i++ {
		u := d.threads[i].Load()
		if u == nil || u == t {
			continue
		}
		snap := u.runCnt.Load()
		if snap%2 == 0 {
			continue // quiescent
		}
		for j := 0; ; j++ {
			if u.runCnt.Load() != snap {
				break // started a new section (or quiesced)
			}
			if u.lClock.Load() >= wc {
				break // snapshot already includes this commit
			}
			if u.wClock.Load() != inactiveWClock {
				break // committing: performs no further snapshot reads
			}
			if j > 8 {
				runtime.Gosched()
			}
		}
	}
}
