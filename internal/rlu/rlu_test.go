package rlu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type payload struct {
	a, b int64
}

func TestTryLockConflict(t *testing.T) {
	d := NewDomain[payload](2)
	t1, t2 := d.Register(), d.Register()
	obj := NewNode(payload{1, 1})
	t1.ReaderLock()
	c1, ok := t1.TryLock(obj)
	if !ok {
		t.Fatal("first TryLock failed")
	}
	if _, ok = t1.TryLock(obj); !ok {
		t.Fatal("re-lock by owner failed")
	}
	t2.ReaderLock()
	if _, ok := t2.TryLock(obj); ok {
		t.Fatal("conflicting TryLock succeeded")
	}
	t2.Abort()
	c1.Body.a = 42
	t1.ReaderUnlock() // commit
	if obj.Body.a != 42 {
		t.Fatal("write-back missing")
	}
}

func TestAbortDiscards(t *testing.T) {
	d := NewDomain[payload](1)
	t1 := d.Register()
	obj := NewNode(payload{1, 1})
	t1.ReaderLock()
	c, _ := t1.TryLock(obj)
	c.Body.a = 99
	t1.Abort()
	if obj.Body.a != 1 {
		t.Fatal("abort leaked a write")
	}
	if obj.copy.Load() != nil {
		t.Fatal("abort left the object locked")
	}
}

func TestDerefOwnCopy(t *testing.T) {
	d := NewDomain[payload](1)
	t1 := d.Register()
	obj := NewNode(payload{1, 1})
	t1.ReaderLock()
	c, _ := t1.TryLock(obj)
	c.Body.a = 7
	if got := t1.Deref(obj); got != c {
		t.Fatal("owner must deref to its own copy")
	}
	t1.ReaderUnlock()
}

// TestSnapshotIsolation: a reader whose section started before a commit
// must keep seeing the old value; a reader starting after sees the new one.
func TestSnapshotIsolation(t *testing.T) {
	d := NewDomain[payload](3)
	writer, early, late := d.Register(), d.Register(), d.Register()
	obj := NewNode(payload{1, 0})

	early.ReaderLock()
	if v := early.Deref(obj).Body.a; v != 1 {
		t.Fatalf("early reader sees %d", v)
	}

	committed := make(chan struct{})
	go func() {
		writer.ReaderLock()
		c, ok := writer.TryLock(obj)
		if !ok {
			t.Error("writer TryLock failed")
		}
		c.Body.a = 2
		writer.ReaderUnlock() // commit: blocks until early's section ends
		close(committed)
	}()

	// The commit must wait for the early reader.
	select {
	case <-committed:
		t.Fatal("commit did not wait for prior reader")
	case <-time.After(100 * time.Millisecond):
	}
	// While waiting, the copy is visible but NOT stealable by early
	// (wClock > early's lClock), so early still reads the original.
	if v := early.Deref(obj).Body.a; v != 1 {
		t.Fatalf("early reader's snapshot broken: saw %d", v)
	}
	early.ReaderUnlock()
	select {
	case <-committed:
	case <-time.After(2 * time.Second):
		t.Fatal("commit stuck after reader finished")
	}

	late.ReaderLock()
	if v := late.Deref(obj).Body.a; v != 2 {
		t.Fatalf("late reader sees %d, want 2", v)
	}
	late.ReaderUnlock()
}

// TestStealCommittedCopy: a reader that starts while a commit is writing
// back must steal the copy rather than read a half-written original.
func TestStealCommittedCopy(t *testing.T) {
	d := NewDomain[payload](2)
	writer, reader := d.Register(), d.Register()
	obj := NewNode(payload{1, 1})
	writer.ReaderLock()
	c, _ := writer.TryLock(obj)
	c.Body = payload{2, 2}
	// Simulate mid-commit: publish the write clock and advance the global
	// clock, but don't write back yet.
	wc := d.gClock.Load() + 1
	writer.wClock.Store(wc)
	d.gClock.Add(1)

	reader.ReaderLock()
	got := reader.Deref(obj)
	if got != c {
		t.Fatal("reader did not steal the committed copy")
	}
	reader.ReaderUnlock()

	// Finish the commit manually.
	obj.Body = c.Body
	obj.copy.Store(nil)
	writer.wClock.Store(inactiveWClock)
	writer.log = writer.log[:0]
	writer.runCnt.Add(1)
}

// TestConcurrentCommitsNoDeadlock: many writers committing concurrently on
// disjoint objects must not deadlock in synchronize.
func TestConcurrentCommitsNoDeadlock(t *testing.T) {
	const n = 6
	d := NewDomain[payload](n)
	objs := make([]*Node[payload], n)
	for i := range objs {
		objs[i] = NewNode(payload{0, 0})
	}
	var wg sync.WaitGroup
	var total atomic.Int64
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := d.Register()
			for i := 0; i < 500; i++ {
				th.ReaderLock()
				c, ok := th.TryLock(objs[id])
				if !ok {
					th.Abort()
					continue
				}
				c.Body.a++
				th.ReaderUnlock()
				total.Add(1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock in concurrent commits")
	}
	var sum int64
	for _, o := range objs {
		sum += o.Body.a
	}
	if sum != total.Load() {
		t.Fatalf("lost updates: sum %d, committed %d", sum, total.Load())
	}
}
