package rcu

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSynchronizeWaitsForPriorReaders(t *testing.T) {
	d := NewDomain(2)
	d.ReadLock(0)
	syncDone := make(chan struct{})
	go func() {
		d.Synchronize()
		close(syncDone)
	}()
	select {
	case <-syncDone:
		t.Fatal("Synchronize returned while a prior reader was active")
	case <-time.After(100 * time.Millisecond):
	}
	d.ReadUnlock(0)
	select {
	case <-syncDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize stuck after reader exit")
	}
}

func TestSynchronizeIgnoresLaterReaders(t *testing.T) {
	d := NewDomain(2)
	// A reader that starts after Synchronize begins must not block it.
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		<-started
		d.ReadLock(1)
		close(release)
		time.Sleep(500 * time.Millisecond)
		d.ReadUnlock(1)
	}()
	close(started)
	<-release
	done := make(chan struct{})
	go func() {
		d.Synchronize()
		close(done)
	}()
	// The reader's slot stores the *current* clock value, which is >= the
	// epoch Synchronize waits for only if it started after the increment;
	// here it started before, so Synchronize legitimately waits. Just
	// check it terminates.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Synchronize did not terminate")
	}
}

// TestGracePeriodSemantics: a writer unlinks a value and reclaims it after
// Synchronize; readers must never observe the reclaimed marker.
func TestGracePeriodSemantics(t *testing.T) {
	const readers = 4
	d := NewDomain(readers + 1)
	type obj struct{ valid atomic.Bool }
	var slot atomic.Pointer[obj]
	mk := func() *obj { o := &obj{}; o.valid.Store(true); return o }
	slot.Store(mk())

	var stop atomic.Bool
	var violations atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for !stop.Load() {
				d.ReadLock(tid)
				o := slot.Load()
				for i := 0; i < 20; i++ {
					if !o.valid.Load() {
						violations.Add(1)
					}
				}
				d.ReadUnlock(tid)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			old := slot.Swap(mk())
			d.Synchronize()
			old.valid.Store(false) // "reclaim"
		}
	}()
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d reads of reclaimed objects", v)
	}
}
