// Package rcu implements a userspace read-copy-update domain in the style
// of epoch-counter URCU, as required by the Citrus tree (Arbel and Attiya,
// PODC '14). Readers bracket traversals with ReadLock/ReadUnlock; writers
// call Synchronize to wait for every reader whose critical section began
// before the call.
package rcu

import (
	"runtime"
	"sync/atomic"
)

type slot struct {
	v atomic.Uint64
	_ [56]byte
}

// Domain is an RCU domain for a fixed set of thread ids.
type Domain struct {
	clock atomic.Uint64
	slots []slot
}

// NewDomain creates a domain supporting thread ids in [0, maxThreads).
func NewDomain(maxThreads int) *Domain {
	d := &Domain{slots: make([]slot, maxThreads)}
	d.clock.Store(1)
	return d
}

// ReadLock enters a read-side critical section for thread tid. Critical
// sections must not nest.
func (d *Domain) ReadLock(tid int) {
	d.slots[tid].v.Store(d.clock.Load())
}

// ReadUnlock leaves the read-side critical section.
func (d *Domain) ReadUnlock(tid int) {
	d.slots[tid].v.Store(0)
}

// Synchronize blocks until every read-side critical section that was in
// progress when Synchronize was called has completed.
func (d *Domain) Synchronize() {
	epoch := d.clock.Add(1)
	for i := range d.slots {
		s := &d.slots[i].v
		for j := 0; ; j++ {
			v := s.Load()
			if v == 0 || v >= epoch {
				break
			}
			if j > 8 {
				runtime.Gosched()
			}
		}
	}
}
