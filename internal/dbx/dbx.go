// Package dbx is a small in-memory database substrate in the spirit of
// DBx1000 (Yu et al., VLDB '14), which the paper's macrobenchmark modifies:
// its hash indexes are replaced with the ordered sets of this repository so
// TPC-C transactions can issue true range queries (the original DBx did not
// support them — see §5 of the paper).
//
// dbx provides three things: a concurrent append-only row store with stable
// row ids (Store), ordered secondary indexes backed by any data structure ×
// RQ technique pair (Index), and composite-key packing helpers. Transaction
// logic lives in package tpcc.
package dbx

import (
	"fmt"
	"sync/atomic"

	"ebrrq"
)

const (
	chunkBits = 12
	chunkSize = 1 << chunkBits // rows per chunk
	maxChunks = 1 << 16        // per thread
)

// Store is a concurrent append-only row store. Each thread appends to its
// own chunked segment (no synchronization on the write path beyond one
// atomic publish per row); any thread may read any row by id.
type Store[T any] struct {
	segs []seg[T]
}

type seg[T any] struct {
	chunks []atomic.Pointer[[chunkSize]T]
	next   int // owner-only
	_      [48]byte
}

// NewStore creates a store for up to maxThreads appending threads.
func NewStore[T any](maxThreads int) *Store[T] {
	s := &Store[T]{segs: make([]seg[T], maxThreads)}
	for i := range s.segs {
		s.segs[i].chunks = make([]atomic.Pointer[[chunkSize]T], maxChunks)
	}
	return s
}

// Append inserts a row from thread tid and returns its RowID.
func (s *Store[T]) Append(tid int, row T) int64 {
	sg := &s.segs[tid]
	ci, off := sg.next>>chunkBits, sg.next&(chunkSize-1)
	if ci >= maxChunks {
		panic("dbx: store segment full")
	}
	ch := sg.chunks[ci].Load()
	if ch == nil {
		ch = new([chunkSize]T)
		sg.chunks[ci].Store(ch)
	}
	ch[off] = row
	sg.next++
	return int64(tid)<<40 | int64(sg.next-1)
}

// Get returns a pointer to the row with the given id. The row's fields are
// shared; mutable fields must be atomics or protected by the caller.
func (s *Store[T]) Get(id int64) *T {
	tid := int(id >> 40)
	n := int(id & (1<<40 - 1))
	ch := s.segs[tid].chunks[n>>chunkBits].Load()
	return &ch[n&(chunkSize-1)]
}

// Rows returns the number of rows appended by all threads (quiescent use).
func (s *Store[T]) Rows() int {
	total := 0
	for i := range s.segs {
		total += s.segs[i].next
	}
	return total
}

// Index is an ordered index mapping packed int64 keys to row ids, backed by
// a pluggable structure × technique pair.
type Index struct {
	Name string
	set  *ebrrq.Set
}

// NewIndex creates an index.
func NewIndex(name string, ds ebrrq.DataStructure, tech ebrrq.Mode, maxThreads int) (*Index, error) {
	return NewIndexWithOptions(name, ds, tech, maxThreads, ebrrq.Options{})
}

// NewIndexWithOptions is NewIndex with set construction options (e.g. an
// observability registry shared by every index of a database).
func NewIndexWithOptions(name string, ds ebrrq.DataStructure, tech ebrrq.Mode, maxThreads int, opt ebrrq.Options) (*Index, error) {
	set, err := ebrrq.NewWithOptions(ds, tech, maxThreads, opt)
	if err != nil {
		return nil, fmt.Errorf("dbx: index %s: %w", name, err)
	}
	return &Index{Name: name, set: set}, nil
}

// Handle is a per-thread accessor to an index.
type Handle struct {
	idx *Index
	th  *ebrrq.Thread
}

// NewHandle registers the calling thread with the index.
func (ix *Index) NewHandle() *Handle {
	return &Handle{idx: ix, th: ix.set.NewThread()}
}

// Insert maps key to rowID; false if the key exists.
func (h *Handle) Insert(key, rowID int64) bool { return h.th.Insert(key, rowID) }

// Delete unmaps key; false if absent.
func (h *Handle) Delete(key int64) bool { return h.th.Delete(key) }

// Get returns the rowID under key.
func (h *Handle) Get(key int64) (int64, bool) { return h.th.Contains(key) }

// Range returns all (key, rowID) pairs with low <= key <= high. The slice
// is valid until the handle's next range query.
func (h *Handle) Range(low, high int64) []ebrrq.KV { return h.th.RangeQuery(low, high) }

// Key packs composite key fields into one int64: each field i consumes
// widths[i] bits, most-significant field first. Panics if a field
// overflows its width (during development; packing is on hot paths).
func Key(fields []int64, widths []int) int64 {
	var k int64
	for i, f := range fields {
		w := widths[i]
		if f < 0 || f >= 1<<w {
			panic(fmt.Sprintf("dbx: key field %d value %d overflows %d bits", i, f, w))
		}
		k = k<<w | f
	}
	return k
}
