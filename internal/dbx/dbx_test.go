package dbx

import (
	"sync"
	"testing"
	"testing/quick"

	"ebrrq"
)

func TestStoreAppendGet(t *testing.T) {
	s := NewStore[int64](2)
	var ids []int64
	for i := int64(0); i < 10_000; i++ {
		ids = append(ids, s.Append(0, i*3))
	}
	for i, id := range ids {
		if got := *s.Get(id); got != int64(i)*3 {
			t.Fatalf("row %d = %d", i, got)
		}
	}
	if s.Rows() != 10_000 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	// Second thread's segment is independent.
	id := s.Append(1, 999)
	if *s.Get(id) != 999 {
		t.Fatal("cross-segment get")
	}
}

func TestStoreConcurrentReadDuringAppend(t *testing.T) {
	s := NewStore[int64](4)
	var wg sync.WaitGroup
	ids := make([][]int64, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := int64(0); i < 20_000; i++ {
				id := s.Append(tid, int64(tid)*1_000_000+i)
				ids[tid] = append(ids[tid], id)
				// Read back a row written earlier by this thread.
				if i > 0 {
					_ = *s.Get(ids[tid][i/2])
				}
			}
		}(w)
	}
	wg.Wait()
	for tid := range ids {
		for i, id := range ids[tid] {
			if got := *s.Get(id); got != int64(tid)*1_000_000+int64(i) {
				t.Fatalf("thread %d row %d = %d", tid, i, got)
			}
		}
	}
}

func TestKeyPackingOrder(t *testing.T) {
	// Packed keys must preserve lexicographic field order.
	w := []int{10, 4, 24}
	less := func(a, b []int64) bool {
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	}
	f := func(a1, a2, b1, b2, c1, c2 uint16) bool {
		x := []int64{int64(a1) % 1024, int64(b1) % 16, int64(c1)}
		y := []int64{int64(a2) % 1024, int64(b2) % 16, int64(c2)}
		kx, ky := Key(x, w), Key(y, w)
		switch {
		case less(x, y):
			return kx < ky
		case less(y, x):
			return kx > ky
		default:
			return kx == ky
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Key([]int64{16}, []int{4})
}

func TestIndexRoundtrip(t *testing.T) {
	ix, err := NewIndex("test", ebrrq.ABTree, ebrrq.LockFree, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := ix.NewHandle()
	for i := int64(0); i < 500; i++ {
		if !h.Insert(i*2, i) {
			t.Fatalf("insert %d", i)
		}
	}
	if v, ok := h.Get(100); !ok || v != 50 {
		t.Fatalf("Get(100) = %d,%v", v, ok)
	}
	r := h.Range(10, 20)
	if len(r) != 6 {
		t.Fatalf("Range(10,20) len %d", len(r))
	}
	if !h.Delete(100) || h.Delete(100) {
		t.Fatal("delete semantics")
	}
}

func TestIndexUnsupportedPair(t *testing.T) {
	if _, err := NewIndex("bad", ebrrq.ABTree, ebrrq.Snap, 2); err == nil {
		t.Fatal("expected error")
	}
}
