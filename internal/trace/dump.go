package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary dump format (little-endian, version 1):
//
//	magic   "EBRQTRC1"                     8 bytes
//	wall    unix nanoseconds              u64
//	mono    Now() at snapshot             u64
//	refused rings refused past MaxRings   u64
//	nrings                                u32
//	  per ring: labelLen u16, label bytes, nevents u32,
//	    per event: seq u64, time u64, type u8, arg1 u64, arg2 u64
//	nslow                                 u32
//	  per slow op: labelLen u16, label, kind u64, dur u64, end u64,
//	    nevents u32, events as above
//
// The format is append-only versioned via the magic's trailing digit.

const dumpMagic = "EBRQTRC1"

// Sanity caps for the reader: a corrupt header must not drive allocation.
const (
	maxDumpRings      = 1 << 20
	maxDumpEvents     = 1 << 24
	maxDumpSlowOps    = 1 << 20
	maxDumpLabelBytes = 1 << 12
)

// WriteTo serializes the snapshot in the binary dump format.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	wr := &leWriter{w: cw}
	wr.bytes([]byte(dumpMagic))
	wr.u64(uint64(s.Wall.UnixNano()))
	wr.u64(uint64(s.Mono))
	wr.u64(s.RefusedRings)
	wr.u32(uint32(len(s.Rings)))
	for _, rg := range s.Rings {
		wr.label(rg.Label)
		wr.events(rg.Events)
	}
	wr.u32(uint32(len(s.SlowOps)))
	for _, op := range s.SlowOps {
		wr.label(op.Label)
		wr.u64(op.Kind)
		wr.u64(uint64(op.Dur))
		wr.u64(uint64(op.End))
		wr.events(op.Events)
	}
	if wr.err != nil {
		return cw.n, wr.err
	}
	err := bw.Flush()
	return cw.n, err
}

// ReadSnapshot parses a binary dump produced by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	rd := &leReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(dumpMagic))
	if _, err := io.ReadFull(rd.r, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != dumpMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", magic, dumpMagic)
	}
	s := &Snapshot{}
	s.Wall = time.Unix(0, int64(rd.u64()))
	s.Mono = int64(rd.u64())
	s.RefusedRings = rd.u64()
	nr := rd.count(maxDumpRings, "rings")
	for i := 0; i < nr && rd.err == nil; i++ {
		rg := RingSnap{Label: rd.label()}
		rg.Events = rd.events()
		s.Rings = append(s.Rings, rg)
	}
	ns := rd.count(maxDumpSlowOps, "slow ops")
	for i := 0; i < ns && rd.err == nil; i++ {
		op := SlowOp{Label: rd.label()}
		op.Kind = rd.u64()
		op.Dur = time.Duration(rd.u64())
		op.End = int64(rd.u64())
		op.Events = rd.events()
		s.SlowOps = append(s.SlowOps, op)
	}
	if rd.err != nil {
		return nil, fmt.Errorf("trace: corrupt dump: %w", rd.err)
	}
	return s, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type leWriter struct {
	w   io.Writer
	buf [8]byte
	err error
}

func (w *leWriter) bytes(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

func (w *leWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.bytes(w.buf[:8])
}

func (w *leWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.bytes(w.buf[:4])
}

func (w *leWriter) u16(v uint16) {
	binary.LittleEndian.PutUint16(w.buf[:2], v)
	w.bytes(w.buf[:2])
}

func (w *leWriter) label(s string) {
	w.u16(uint16(len(s)))
	w.bytes([]byte(s))
}

func (w *leWriter) events(evs []Event) {
	w.u32(uint32(len(evs)))
	for _, e := range evs {
		w.u64(e.Seq)
		w.u64(uint64(e.Time))
		w.bytes([]byte{byte(e.Type)})
		w.u64(e.Arg1)
		w.u64(e.Arg2)
	}
}

type leReader struct {
	r   *bufio.Reader
	buf [8]byte
	err error
}

func (r *leReader) read(n int) []byte {
	if r.err != nil {
		return r.buf[:n]
	}
	_, r.err = io.ReadFull(r.r, r.buf[:n])
	return r.buf[:n]
}

func (r *leReader) u64() uint64 { return binary.LittleEndian.Uint64(r.read(8)) }
func (r *leReader) u32() uint32 { return binary.LittleEndian.Uint32(r.read(4)) }
func (r *leReader) u16() uint16 { return binary.LittleEndian.Uint16(r.read(2)) }

func (r *leReader) count(max int, what string) int {
	n := int(r.u32())
	if r.err == nil && n > max {
		r.err = fmt.Errorf("%s count %d exceeds cap %d", what, n, max)
	}
	if r.err != nil {
		return 0
	}
	return n
}

func (r *leReader) label() string {
	n := int(r.u16())
	if r.err == nil && n > maxDumpLabelBytes {
		r.err = errors.New("label too long")
	}
	if r.err != nil {
		return ""
	}
	p := make([]byte, n)
	_, r.err = io.ReadFull(r.r, p)
	return string(p)
}

func (r *leReader) events() []Event {
	n := r.count(maxDumpEvents, "events")
	if n == 0 {
		return nil
	}
	evs := make([]Event, 0, min(n, 1<<16))
	for i := 0; i < n && r.err == nil; i++ {
		var e Event
		e.Seq = r.u64()
		e.Time = int64(r.u64())
		e.Type = EventType(r.read(1)[0])
		e.Arg1 = r.u64()
		e.Arg2 = r.u64()
		evs = append(evs, e)
	}
	return evs
}
