package trace

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestRingWraparound fills a tiny ring far past capacity and checks the
// snapshot holds exactly the newest capacity-many events, contiguous in
// sequence, with monotone timestamps.
func TestRingWraparound(t *testing.T) {
	rec := NewRecorder(Config{EventsPerRing: 8, SlowOp: -1})
	rg := rec.Ring("t0")
	const total = 100
	for i := uint64(1); i <= total; i++ {
		rg.Emit(EvRetire, i, i*2)
	}
	s := rec.Snapshot()
	if len(s.Rings) != 1 || s.Rings[0].Label != "t0" {
		t.Fatalf("rings = %+v, want one ring t0", s.Rings)
	}
	evs := s.Rings[0].Events
	if len(evs) != 8 {
		t.Fatalf("got %d events after wraparound, want 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(total - 7 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d seq = %d, want %d (newest 8 contiguous)", i, ev.Seq, wantSeq)
		}
		if ev.Type != EvRetire || ev.Arg1 != wantSeq || ev.Arg2 != wantSeq*2 {
			t.Fatalf("event %d = %+v, want retire(%d, %d)", i, ev, wantSeq, wantSeq*2)
		}
		if i > 0 && ev.Time < evs[i-1].Time {
			t.Fatalf("timestamps not monotone: %d after %d", ev.Time, evs[i-1].Time)
		}
	}
}

// TestRingConcurrentReaders hammers several writer rings while snapshot
// readers spin; under -race this proves the seqlock protocol is clean, and
// the assertions prove every decoded event is internally consistent (arg2
// always 3×arg1 — a torn read would break the relation).
func TestRingConcurrentReaders(t *testing.T) {
	rec := NewRecorder(Config{EventsPerRing: 16, SlowOp: -1})
	const writers = 4
	const eventsEach = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wi := 0; wi < writers; wi++ {
		rg := rec.Ring("w")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= eventsEach; i++ {
				rg.Emit(EvRetire, i, i*3)
			}
		}()
	}
	var readerWG sync.WaitGroup
	for ri := 0; ri < 2; ri++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := rec.Snapshot()
				for _, rg := range s.Rings {
					for _, ev := range rg.Events {
						if ev.Arg2 != ev.Arg1*3 {
							t.Errorf("torn event: %+v", ev)
							return
						}
						if ev.Arg1 != ev.Seq {
							t.Errorf("seq/arg mismatch: %+v", ev)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	s := rec.Snapshot()
	for _, rg := range s.Rings {
		if len(rg.Events) != 16 {
			t.Fatalf("final ring has %d events, want full 16", len(rg.Events))
		}
		if last := rg.Events[len(rg.Events)-1]; last.Seq != eventsEach {
			t.Fatalf("final seq = %d, want %d", last.Seq, eventsEach)
		}
	}
}

// TestSlowOpCapture proves tail capture: an op above the threshold has its
// events retained even after the ring is overwritten, while fast ops don't.
func TestSlowOpCapture(t *testing.T) {
	rec := NewRecorder(Config{EventsPerRing: 8, SlowOp: 5 * time.Millisecond, SlowOpCap: 2})
	rg := rec.Ring("t0")

	// Fast op: no capture.
	rg.OpBegin(OpInsert, 42)
	rg.OpEnd(OpInsert)
	if s := rec.Snapshot(); len(s.SlowOps) != 0 {
		t.Fatalf("fast op captured: %+v", s.SlowOps)
	}

	// Slow op with an interior phase event.
	rg.OpBegin(OpRQ, 10)
	rg.Emit(EvTraverse, 7, 100)
	time.Sleep(6 * time.Millisecond)
	rg.OpEnd(OpRQ)
	if d := rg.LastOpDur(); d < 5*time.Millisecond {
		t.Fatalf("LastOpDur = %v, want >= 5ms", d)
	}

	// Overwrite the ring completely.
	for i := 0; i < 32; i++ {
		rg.Emit(EvRetire, uint64(i), 0)
	}
	s := rec.Snapshot()
	if len(s.SlowOps) != 1 {
		t.Fatalf("slow ops = %d, want 1", len(s.SlowOps))
	}
	op := s.SlowOps[0]
	if op.Kind != OpRQ || op.Label != "t0" || op.Dur < 5*time.Millisecond {
		t.Fatalf("slow op = %+v", op)
	}
	// Begin, traverse, end — all three retained despite the overwrite.
	if len(op.Events) != 3 || op.Events[0].Type != EvOpBegin ||
		op.Events[1].Type != EvTraverse || op.Events[2].Type != EvOpEnd {
		t.Fatalf("slow op events = %+v, want [op_begin traverse op_end]", op.Events)
	}
}

// TestDumpRoundTrip serializes a live snapshot and parses it back.
func TestDumpRoundTrip(t *testing.T) {
	rec := NewRecorder(Config{EventsPerRing: 8, SlowOp: time.Nanosecond})
	a := rec.Ring("s0/t0")
	b := rec.Ring("watchdog")
	a.OpBegin(OpRQ, 5)
	a.Emit(EvTSAdvance, 2, 120)
	a.OpEnd(OpRQ)
	b.Emit(EvStall, 3, uint64(70*time.Millisecond))

	s := rec.Snapshot()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.Mono != s.Mono || got.Wall.UnixNano() != s.Wall.UnixNano() {
		t.Fatalf("clock anchors differ: got (%d,%d) want (%d,%d)",
			got.Mono, got.Wall.UnixNano(), s.Mono, s.Wall.UnixNano())
	}
	if len(got.Rings) != 2 || got.Rings[0].Label != "s0/t0" || got.Rings[1].Label != "watchdog" {
		t.Fatalf("rings = %+v", got.Rings)
	}
	if len(got.Rings[0].Events) != len(s.Rings[0].Events) {
		t.Fatalf("ring 0 events: got %d want %d", len(got.Rings[0].Events), len(s.Rings[0].Events))
	}
	for i, ev := range got.Rings[0].Events {
		if ev != s.Rings[0].Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, ev, s.Rings[0].Events[i])
		}
	}
	if len(got.SlowOps) != 1 || got.SlowOps[0].Kind != OpRQ ||
		len(got.SlowOps[0].Events) != len(s.SlowOps[0].Events) {
		t.Fatalf("slow ops = %+v, want %+v", got.SlowOps, s.SlowOps)
	}
	if _, err := ReadSnapshot(bytes.NewBufferString("NOTATRACE")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestNilSafety: every entry point must be inert on nil receivers — this is
// the zero-cost disabled path the hot code relies on.
func TestNilSafety(t *testing.T) {
	var rec *Recorder
	rg := rec.Ring("x")
	if rg != nil {
		t.Fatal("nil recorder returned a ring")
	}
	rg.Emit(EvRetire, 1, 2)
	rg.OpBegin(OpInsert, 1)
	rg.OpEnd(OpInsert)
	if rg.Label() != "" || rg.LastOpDur() != 0 {
		t.Fatal("nil ring not inert")
	}
	s := rec.Snapshot()
	if len(s.Rings) != 0 || s.Mono == 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// TestMaxRings: past the cap, Ring degrades to nil and the refusal is
// counted so dumps can flag partial traces.
func TestMaxRings(t *testing.T) {
	rec := NewRecorder(Config{MaxRings: 2, EventsPerRing: 8})
	if rec.Ring("a") == nil || rec.Ring("b") == nil {
		t.Fatal("rings under cap refused")
	}
	if rec.Ring("c") != nil {
		t.Fatal("ring past cap allocated")
	}
	if s := rec.Snapshot(); s.RefusedRings != 1 {
		t.Fatalf("refused = %d, want 1", s.RefusedRings)
	}
}
