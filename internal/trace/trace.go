// Package trace is the flight recorder: an always-on, lock-free log of
// compact binary events covering the full lifecycle of every operation —
// op begin/end, timestamp advance vs adopt, epoch pin, announce scans,
// per-bag limbo sweeps, DCSS retries, epoch advances, retire/rotate/reclaim,
// and watchdog stall edges (DESIGN.md §10).
//
// Each provider thread slot owns one fixed-size Ring and is the Ring's only
// writer; readers (snapshot, /debug/trace, stall dumps) may run at any time
// without stopping the writers. A slot is four atomic uint64 words; the
// writer invalidates the meta word, stores the payload, then publishes the
// meta word (seq<<8|type) last, so a reader that observes the same non-zero
// meta before and after loading the payload has a consistent event and
// discards anything torn by a concurrent overwrite. The whole protocol is
// plain sync/atomic — no mutexes on the write path, race-detector clean.
//
// Time is a single process-wide monotonic clock (Now, nanoseconds since the
// package's load time), so events from different rings order globally by
// timestamp and per-ring by sequence number. A nil *Recorder and a nil *Ring
// are both inert: every method is a nil-check away from a no-op, which is
// the zero-cost disabled path.
package trace

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventType identifies what a ring slot records. The numeric values are part
// of the dump format (dump.go) — append new types, never renumber.
type EventType uint8

const (
	// EvNone marks an empty or invalidated slot; never appears in snapshots.
	EvNone EventType = iota
	// EvOpBegin: arg1 = op kind (OpInsert..OpRQ), arg2 = key (or RQ low).
	EvOpBegin
	// EvOpEnd: arg1 = op kind, arg2 = duration ns since the matching begin.
	EvOpEnd
	// EvTSAdvance: a range query won the timestamp CAS. arg1 = ts,
	// arg2 = ns spent acquiring the timestamp (the ts_wait phase).
	EvTSAdvance
	// EvTSAdopt: a range query lost the CAS and adopted the winner's
	// timestamp. arg1 = ts, arg2 = ts_wait ns (includes fence adoption).
	EvTSAdopt
	// EvTSPinned: a cross-shard range query ran this shard's fence work at
	// a router-chosen timestamp. arg1 = ts, arg2 = ts_wait ns.
	EvTSPinned
	// EvAnnScan: announcement-array sweep at TraversalEnd. arg1 = slots
	// scanned, arg2 = announce-phase ns (scan + candidate processing).
	EvAnnScan
	// EvLimboBag: one limbo bag actually walked (not fence-skipped).
	// arg1 = nodes visited in the bag, arg2 = the bag's maxDTime fence.
	EvLimboBag
	// EvLimboSkip: bags skipped by the maxDTime fence this sweep.
	// arg1 = bags skipped, arg2 = 0.
	EvLimboSkip
	// EvLimboDone: limbo sweep finished. arg1 = nodes visited total,
	// arg2 = limbo-phase ns.
	EvLimboDone
	// EvTraverse: structure traversal finished (before the sweeps).
	// arg1 = result length so far, arg2 = traverse-phase ns.
	EvTraverse
	// EvDCSSRetry: lock-free update restarted because the timestamp moved
	// under its DCSS. arg1 = the timestamp observed, arg2 = 0.
	EvDCSSRetry
	// EvEpochAdvance: this thread's CAS moved the global epoch.
	// arg1 = new epoch, arg2 = 0.
	EvEpochAdvance
	// EvEpochPin: cross-shard RQ pinned this shard's epoch. arg1 = epoch.
	EvEpochPin
	// EvEpochUnpin: the pin was released. arg1 = epoch at release.
	EvEpochUnpin
	// EvRetire: a node entered the current limbo bag. arg1 = dtime
	// (^0 if unset), arg2 = bag epoch.
	EvRetire
	// EvRotate: limbo bags rotated at StartOp. arg1 = epoch rotated into,
	// arg2 = nodes reclaimed from the recycled bag.
	EvRotate
	// EvReclaim: an orphan/adopted chain was freed. arg1 = nodes freed,
	// arg2 = source thread slot id.
	EvReclaim
	// EvStall: watchdog flagged a thread as stalled. arg1 = thread slot id,
	// arg2 = ns the thread has been stuck.
	EvStall
	// EvStallRecover: every previously flagged thread moved again.
	EvStallRecover
	// EvCrossRQBegin: sharded router started a cross-shard range query.
	// arg1 = number of shards spanned, arg2 = low key (two's complement).
	EvCrossRQBegin
	// EvCrossRQEnd: cross-shard range query finished. arg1 = shared
	// timestamp used, arg2 = duration ns.
	EvCrossRQEnd
	// EvLimboPressure: limbo crossed the soft limit (watchdog view).
	// arg1 = limbo+quarantine node count, arg2 = the soft limit.
	EvLimboPressure
	// EvForceAdvance: the watchdog forced global-epoch advance attempts to
	// drain limbo. arg1 = epochs advanced, arg2 = limbo nodes before.
	EvForceAdvance
	// EvForceSweep: the watchdog forced an orphan-bag sweep. arg1 = nodes
	// reclaimed by the sweep, arg2 = limbo nodes before.
	EvForceSweep
	// EvNeutralize: the watchdog poisoned a stalled thread's announcement so
	// it no longer pins the epoch. arg1 = thread slot id, arg2 = ns the
	// thread had been stuck.
	EvNeutralize
	// EvNeutralizeAck: a neutralized thread observed the poison at an op
	// boundary and acknowledged. arg1 = thread slot id, arg2 = 0.
	EvNeutralizeAck
	// EvQuarantine: a reclaimable limbo chain was diverted to the quarantine
	// list because a neutralization is unacknowledged. arg1 = nodes
	// quarantined, arg2 = source thread slot id.
	EvQuarantine
	// EvQuarantineDrain: the quarantine list was released to the free
	// function after the last outstanding acknowledgement. arg1 = nodes
	// freed, arg2 = bytes freed.
	EvQuarantineDrain
	// EvBackpressure: an update was rejected (or delayed past its bounded
	// wait) because limbo+quarantine reached the hard limit. arg1 = limbo
	// node count observed, arg2 = the hard limit.
	EvBackpressure
	// EvCombineBegin: a thread became the update combiner and claimed a
	// batch. arg1 = batch size, arg2 = 0.
	EvCombineBegin
	// EvCombineEnd: the combiner applied its batch inside one shared-clock
	// window. arg1 = batch size, arg2 = window ns.
	EvCombineEnd
	// EvCombineWait: a funnel participant (combiner included) got its
	// result back. arg1 = the batch timestamp, arg2 = ns from publication
	// to consumption.
	EvCombineWait
	// EvBundleEnter: a bundle-technique range query began its as-of-ts
	// traversal. arg1 = ts, arg2 = low key.
	EvBundleEnter
	// EvBundleGC: a bundle garbage-collection pass finished. arg1 = the
	// reclamation floor (min active timestamp), arg2 = entries pruned.
	EvBundleGC
)

// Op kinds carried in EvOpBegin/EvOpEnd arg1.
const (
	OpInsert uint64 = iota + 1
	OpDelete
	OpContains
	OpRQ
)

// OpName returns the display name for an op kind.
func OpName(kind uint64) string {
	switch kind {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpContains:
		return "contains"
	case OpRQ:
		return "rq"
	default:
		return "op?"
	}
}

var typeNames = map[EventType]string{
	EvOpBegin: "op_begin", EvOpEnd: "op_end",
	EvTSAdvance: "ts_advance", EvTSAdopt: "ts_adopt", EvTSPinned: "ts_pinned",
	EvAnnScan: "ann_scan", EvLimboBag: "limbo_bag", EvLimboSkip: "limbo_skip",
	EvLimboDone: "limbo_done", EvTraverse: "traverse",
	EvDCSSRetry: "dcss_retry", EvEpochAdvance: "epoch_advance",
	EvEpochPin: "epoch_pin", EvEpochUnpin: "epoch_unpin",
	EvRetire: "retire", EvRotate: "rotate", EvReclaim: "reclaim",
	EvStall: "stall", EvStallRecover: "stall_recover",
	EvCrossRQBegin: "xrq_begin", EvCrossRQEnd: "xrq_end",
	EvLimboPressure: "limbo_pressure", EvForceAdvance: "force_advance",
	EvForceSweep: "force_sweep", EvNeutralize: "neutralize",
	EvNeutralizeAck: "neutralize_ack", EvQuarantine: "quarantine",
	EvQuarantineDrain: "quarantine_drain", EvBackpressure: "backpressure",
	EvCombineBegin: "combine_begin", EvCombineEnd: "combine_end",
	EvCombineWait: "combine_wait",
	EvBundleEnter: "bundle_enter", EvBundleGC: "bundle_gc",
}

// String returns the event type's snake_case name.
func (t EventType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "ev?"
}

// epoch0 anchors the process-wide monotonic clock. time.Since on a
// monotonic-bearing time.Time is a pure monotonic-clock delta.
var epoch0 = time.Now()

// Now returns nanoseconds of monotonic time since process trace start. All
// events across all rings share this clock.
func Now() int64 { return int64(time.Since(epoch0)) }

// Config sizes a Recorder. The zero value gives usable defaults.
type Config struct {
	// EventsPerRing is each ring's capacity, rounded up to a power of two.
	// Default 2048 (64 KiB per thread at 32 B/event).
	EventsPerRing int
	// MaxRings caps how many rings the recorder hands out; past the cap
	// Ring returns nil (callers degrade to untraced). Guards chaos tests
	// that register thousands of short-lived threads. Default 512.
	MaxRings int
	// SlowOp is the tail-capture threshold: an op whose begin→end span
	// meets or exceeds it has its events copied to a retained slow-op log
	// before the ring overwrites them. 0 means the 10ms default; negative
	// disables tail capture.
	SlowOp time.Duration
	// SlowOpCap bounds the retained slow-op log (oldest evicted first).
	// Default 64.
	SlowOpCap int
}

func (c Config) withDefaults() Config {
	if c.EventsPerRing <= 0 {
		c.EventsPerRing = 2048
	}
	n := 1
	for n < c.EventsPerRing {
		n <<= 1
	}
	c.EventsPerRing = n
	if c.MaxRings <= 0 {
		c.MaxRings = 512
	}
	if c.SlowOp == 0 {
		c.SlowOp = 10 * time.Millisecond
	}
	if c.SlowOpCap <= 0 {
		c.SlowOpCap = 64
	}
	return c
}

// Recorder owns the rings and the retained slow-op log. All methods are safe
// on a nil receiver (the disabled path).
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	rings    []*Ring
	slow     []SlowOp // ring buffer of SlowOpCap entries
	slowNext int
	refused  uint64 // Ring() calls past MaxRings
}

// NewRecorder builds a Recorder with cfg (zero value = defaults).
func NewRecorder(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults()}
}

// Ring allocates a new ring labeled label. Returns nil — an inert ring —
// when the recorder is nil or MaxRings is reached.
func (r *Recorder) Ring(label string) *Ring {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.rings) >= r.cfg.MaxRings {
		r.refused++
		return nil
	}
	rg := &Ring{
		rec:   r,
		label: label,
		mask:  uint64(r.cfg.EventsPerRing - 1),
		words: make([]atomic.Uint64, 4*r.cfg.EventsPerRing),
	}
	r.rings = append(r.rings, rg)
	return rg
}

// SlowOp is one tail-captured operation: the events between its begin and
// end, copied out of the ring when the op exceeded the threshold.
type SlowOp struct {
	Label  string        `json:"ring"`
	Kind   uint64        `json:"kind"`
	Dur    time.Duration `json:"dur_ns"`
	End    int64         `json:"end_ns"` // Now() at op end
	Events []Event       `json:"events"`
}

func (r *Recorder) addSlow(op SlowOp) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.slow) < r.cfg.SlowOpCap {
		r.slow = append(r.slow, op)
		return
	}
	r.slow[r.slowNext] = op
	r.slowNext = (r.slowNext + 1) % r.cfg.SlowOpCap
}

// Event is one decoded ring slot.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time int64     `json:"t_ns"` // Now() at emit
	Type EventType `json:"-"`
	Arg1 uint64    `json:"a1"`
	Arg2 uint64    `json:"a2"`
}

// MarshalJSON renders the event with its type spelled out, for the human
// (?format=json) form of /debug/trace.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event
	return json.Marshal(struct {
		Type string `json:"type"`
		alias
	}{Type: e.Type.String(), alias: alias(e)})
}

// RingSnap is one ring's consistent events, in sequence order.
type RingSnap struct {
	Label  string  `json:"label"`
	Events []Event `json:"events"`
}

// Snapshot is a point-in-time copy of the recorder, safe to serialize while
// the writers keep running.
type Snapshot struct {
	Wall         time.Time  `json:"wall"`
	Mono         int64      `json:"mono_ns"` // Now() at snapshot
	Rings        []RingSnap `json:"rings"`
	SlowOps      []SlowOp   `json:"slow_ops,omitempty"`
	RefusedRings uint64     `json:"refused_rings,omitempty"`
}

// Snapshot copies out every ring's consistent events plus the slow-op log.
// Nil-safe: a nil recorder yields an empty snapshot.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Wall: time.Now(), Mono: Now()}
	if r == nil {
		return s
	}
	r.mu.Lock()
	rings := append([]*Ring(nil), r.rings...)
	// Oldest-first copy of the slow-op ring buffer.
	s.SlowOps = append(s.SlowOps, r.slow[r.slowNext:]...)
	s.SlowOps = append(s.SlowOps, r.slow[:r.slowNext]...)
	s.RefusedRings = r.refused
	r.mu.Unlock()
	for _, rg := range rings {
		s.Rings = append(s.Rings, RingSnap{Label: rg.label, Events: rg.read(0)})
	}
	return s
}

// Ring is a single-writer fixed-size event buffer. The owning thread is the
// only writer; any goroutine may read via Recorder.Snapshot. All methods are
// nil-safe no-ops.
type Ring struct {
	rec   *Recorder
	label string
	mask  uint64
	words []atomic.Uint64 // 4 per slot: meta(seq<<8|type), time, arg1, arg2

	// Writer-only state (never touched by readers).
	seq     uint64
	opKind  uint64
	opSeq   uint64
	opStart int64
	opOpen  bool
	lastDur int64
}

// Label returns the ring's label ("" for nil).
func (g *Ring) Label() string {
	if g == nil {
		return ""
	}
	return g.label
}

// Emit records one event stamped Now().
func (g *Ring) Emit(t EventType, a1, a2 uint64) {
	if g == nil {
		return
	}
	g.EmitAt(t, Now(), a1, a2)
}

// EmitAt records one event with a caller-supplied timestamp (callers that
// already read the clock for phase accounting avoid a second read).
func (g *Ring) EmitAt(t EventType, now int64, a1, a2 uint64) {
	if g == nil {
		return
	}
	g.seq++
	i := (g.seq & g.mask) * 4
	w := g.words
	// Invalidate → payload → publish. A reader that sees the same non-zero
	// meta on both sides of its payload loads got a consistent slot.
	w[i].Store(0)
	w[i+1].Store(uint64(now))
	w[i+2].Store(a1)
	w[i+3].Store(a2)
	w[i].Store(g.seq<<8 | uint64(t))
}

// OpBegin opens an operation span (for slow-op capture) and emits EvOpBegin.
func (g *Ring) OpBegin(kind, arg uint64) {
	if g == nil {
		return
	}
	now := Now()
	g.opKind, g.opSeq, g.opStart, g.opOpen = kind, g.seq+1, now, true
	g.EmitAt(EvOpBegin, now, kind, arg)
}

// OpEnd closes the span opened by OpBegin, emits EvOpEnd with the duration,
// and tail-captures the op's events if it exceeded the slow-op threshold.
func (g *Ring) OpEnd(kind uint64) {
	if g == nil {
		return
	}
	now := Now()
	var dur int64
	matched := g.opOpen && g.opKind == kind
	if matched {
		dur = now - g.opStart
		g.opOpen = false
	}
	g.lastDur = dur
	g.EmitAt(EvOpEnd, now, kind, uint64(dur))
	if matched && g.rec.cfg.SlowOp > 0 && time.Duration(dur) >= g.rec.cfg.SlowOp {
		g.rec.addSlow(SlowOp{
			Label:  g.label,
			Kind:   kind,
			Dur:    time.Duration(dur),
			End:    now,
			Events: g.read(g.opSeq),
		})
	}
}

// LastOpDur returns the duration recorded by the most recent OpEnd
// (writer-side convenience for tests).
func (g *Ring) LastOpDur() time.Duration {
	if g == nil {
		return 0
	}
	return time.Duration(g.lastDur)
}

// read decodes every consistent slot with Seq >= minSeq, sorted by sequence.
// Safe concurrently with the writer: torn slots are detected by the meta
// recheck and dropped.
func (g *Ring) read(minSeq uint64) []Event {
	n := len(g.words) / 4
	evs := make([]Event, 0, n)
	for s := 0; s < n; s++ {
		i := s * 4
		m := g.words[i].Load()
		if m == 0 {
			continue
		}
		tm := g.words[i+1].Load()
		a1 := g.words[i+2].Load()
		a2 := g.words[i+3].Load()
		if g.words[i].Load() != m {
			continue // overwritten mid-read
		}
		ev := Event{
			Seq:  m >> 8,
			Time: int64(tm),
			Type: EventType(m & 0xff),
			Arg1: a1,
			Arg2: a2,
		}
		if ev.Seq >= minSeq {
			evs = append(evs, ev)
		}
	}
	sort.Slice(evs, func(a, b int) bool { return evs[a].Seq < evs[b].Seq })
	return evs
}
