package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedSnapshot is a hand-built dump with a known shape: one worker ring
// holding a fast insert, a complete range query with all four phases, and an
// op left in flight; plus a watchdog ring with a stall edge. Timestamps are
// fixed so the analyzer and the Chrome rendering are fully deterministic.
func fixedSnapshot() *Snapshot {
	return &Snapshot{
		Wall: time.Unix(1754000000, 0),
		Mono: 60_000,
		Rings: []RingSnap{
			{
				Label: "t0",
				Events: []Event{
					{Seq: 1, Time: 1_000, Type: EvOpBegin, Arg1: OpInsert, Arg2: 42},
					{Seq: 2, Time: 1_800, Type: EvRetire, Arg1: ^uint64(0), Arg2: 3},
					{Seq: 3, Time: 2_000, Type: EvOpEnd, Arg1: OpInsert, Arg2: 1_000},
					{Seq: 4, Time: 3_000, Type: EvCombineBegin, Arg1: 3, Arg2: 0},
					{Seq: 5, Time: 5_000, Type: EvCombineEnd, Arg1: 3, Arg2: 2_000},
					{Seq: 6, Time: 5_200, Type: EvCombineWait, Arg1: 7, Arg2: 1_500},
					{Seq: 7, Time: 10_000, Type: EvOpBegin, Arg1: OpRQ, Arg2: 5},
					{Seq: 8, Time: 10_500, Type: EvTSAdvance, Arg1: 7, Arg2: 500},
					{Seq: 9, Time: 13_500, Type: EvTraverse, Arg1: 9, Arg2: 3_000},
					{Seq: 10, Time: 14_300, Type: EvAnnScan, Arg1: 4, Arg2: 800},
					{Seq: 11, Time: 14_500, Type: EvLimboBag, Arg1: 6, Arg2: 1},
					{Seq: 12, Time: 15_000, Type: EvLimboDone, Arg1: 6, Arg2: 700},
					{Seq: 13, Time: 15_100, Type: EvOpEnd, Arg1: OpRQ, Arg2: 5_100},
					{Seq: 14, Time: 20_000, Type: EvOpBegin, Arg1: OpDelete, Arg2: 13},
				},
			},
			{
				Label: "watchdog",
				Events: []Event{
					{Seq: 1, Time: 55_000, Type: EvStall, Arg1: 0, Arg2: 35_000},
				},
			},
		},
	}
}

func TestBuildReport(t *testing.T) {
	rep := BuildReport(fixedSnapshot())
	if rep.Rings != 2 || rep.Events != 15 {
		t.Fatalf("rings/events = %d/%d, want 2/15", rep.Rings, rep.Events)
	}
	if rep.SpanNs != 54_000 {
		t.Fatalf("span = %d, want 54000", rep.SpanNs)
	}
	if s := rep.Ops["insert"]; s.Count != 1 || s.MeanNs != 1_000 {
		t.Fatalf("insert stat = %+v", s)
	}
	if s := rep.Ops["rq"]; s.Count != 1 || s.MaxNs != 5_100 {
		t.Fatalf("rq stat = %+v", s)
	}
	want := map[string]int64{"ts_wait": 500, "traverse": 3_000, "announce": 800, "limbo": 700}
	for ph, ns := range want {
		if s := rep.Phases[ph]; s.Count != 1 || s.TotalNs != ns {
			t.Fatalf("phase %s = %+v, want total %d", ph, s, ns)
		}
	}
	if rep.TSAdvance != 1 || rep.TSAdopt != 0 {
		t.Fatalf("ts advance/adopt = %d/%d", rep.TSAdvance, rep.TSAdopt)
	}
	if rep.CombineBatches != 1 || rep.CombineOps != 3 {
		t.Fatalf("combine batches/ops = %d/%d, want 1/3", rep.CombineBatches, rep.CombineOps)
	}
	if s := rep.CombineWindow; s.Count != 1 || s.TotalNs != 2_000 {
		t.Fatalf("combine window = %+v, want one 2000ns window", s)
	}
	if s := rep.CombineWait; s.Count != 1 || s.TotalNs != 1_500 {
		t.Fatalf("combine wait = %+v, want one 1500ns wait", s)
	}
	if len(rep.Stalls) != 1 || rep.Stalls[0].ThreadID != 0 || rep.Stalls[0].StuckNs != 35_000 {
		t.Fatalf("stalls = %+v", rep.Stalls)
	}
	if len(rep.InFlight) != 1 || rep.InFlight[0].Op != "delete" || rep.InFlight[0].AgeNs != 40_000 {
		t.Fatalf("in-flight = %+v", rep.InFlight)
	}

	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"range-query phases",
		"STALL: thread 0 stuck",
		"IN-FLIGHT: delete on t0",
		"1 advanced, 0 shared",
		"combining: 1 windows carried 3 updates (3.00 ops/window)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
}

// TestChromeTraceGolden pins the exact Chrome trace-event JSON for the fixed
// snapshot. Regenerate with: go test ./internal/trace -run Chrome -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedSnapshot()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden:\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}
