package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// This file is the dump analyzer behind cmd/rqtrace: it folds a Snapshot
// into per-op-kind latency statistics, the paper's per-phase range-query
// breakdown (ts_wait / traverse / announce / limbo), stall findings, and a
// Chrome trace-event rendering for Perfetto.

// Stat summarizes one duration population in nanoseconds.
type Stat struct {
	Count   int   `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MeanNs  int64 `json:"mean_ns"`
	P50Ns   int64 `json:"p50_ns"`
	P90Ns   int64 `json:"p90_ns"`
	P99Ns   int64 `json:"p99_ns"`
	MaxNs   int64 `json:"max_ns"`
}

func makeStat(durs []int64) Stat {
	if len(durs) == 0 {
		return Stat{}
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	var total int64
	for _, d := range durs {
		total += d
	}
	q := func(p float64) int64 {
		i := int(p * float64(len(durs)-1))
		return durs[i]
	}
	return Stat{
		Count:   len(durs),
		TotalNs: total,
		MeanNs:  total / int64(len(durs)),
		P50Ns:   q(0.50),
		P90Ns:   q(0.90),
		P99Ns:   q(0.99),
		MaxNs:   durs[len(durs)-1],
	}
}

// StallInfo is one watchdog stall-edge event found in the dump.
type StallInfo struct {
	Ring     string `json:"ring"` // ring that recorded the edge (the watchdog's)
	ThreadID uint64 `json:"thread_id"`
	StuckNs  int64  `json:"stuck_ns"`
	AtNs     int64  `json:"at_ns"`
}

// InFlightOp is an operation whose begin has no matching end in the dump —
// in a stall dump, the op the stuck thread is wedged inside.
type InFlightOp struct {
	Ring    string `json:"ring"`
	Op      string `json:"op"`
	Arg     uint64 `json:"arg"` // key (or RQ low)
	StartNs int64  `json:"start_ns"`
	AgeNs   int64  `json:"age_ns"` // snapshot time minus start
}

// Report is the analyzed form of a Snapshot.
type Report struct {
	Rings     int             `json:"rings"`
	Events    int             `json:"events"`
	SpanNs    int64           `json:"span_ns"` // earliest to latest event
	Ops       map[string]Stat `json:"ops"`     // by op kind name
	Phases    map[string]Stat `json:"phases"`  // ts_wait/traverse/announce/limbo
	DCSSRetry int             `json:"dcss_retries"`
	TSAdvance int             `json:"ts_advanced"`
	TSAdopt   int             `json:"ts_shared"`
	TSPinned  int             `json:"ts_pinned"`
	CrossRQ   Stat            `json:"cross_rq"`
	// Combine amortization (aggregating update funnel): how many combiner
	// windows ran, how many updates they carried, the window duration and
	// the publication-to-result follower wait.
	CombineBatches int  `json:"combine_batches"`
	CombineOps     int  `json:"combine_ops"`
	CombineWindow  Stat `json:"combine_window"`
	CombineWait    Stat `json:"combine_wait"`
	Stalls    []StallInfo     `json:"stalls,omitempty"`
	InFlight  []InFlightOp    `json:"in_flight,omitempty"`
	SlowOps   int             `json:"slow_ops"`
	Refused   uint64          `json:"refused_rings,omitempty"`
}

// phaseOf maps an event to its RQ phase bucket, if any. The duration is in
// arg2 for every phase-carrying event.
func phaseOf(t EventType) (string, bool) {
	switch t {
	case EvTSAdvance, EvTSAdopt, EvTSPinned:
		return "ts_wait", true
	case EvTraverse:
		return "traverse", true
	case EvAnnScan:
		return "announce", true
	case EvLimboDone:
		return "limbo", true
	}
	return "", false
}

// BuildReport analyzes a snapshot.
func BuildReport(s *Snapshot) *Report {
	rep := &Report{
		Rings:   len(s.Rings),
		Ops:     map[string]Stat{},
		Phases:  map[string]Stat{},
		SlowOps: len(s.SlowOps),
		Refused: s.RefusedRings,
	}
	opDurs := map[string][]int64{}
	phDurs := map[string][]int64{}
	var xrqDurs, combWindows, combWaits []int64
	var tMin, tMax int64
	for _, rg := range s.Rings {
		var open *InFlightOp
		for _, ev := range rg.Events {
			rep.Events++
			if tMin == 0 || ev.Time < tMin {
				tMin = ev.Time
			}
			if ev.Time > tMax {
				tMax = ev.Time
			}
			if ph, ok := phaseOf(ev.Type); ok {
				phDurs[ph] = append(phDurs[ph], int64(ev.Arg2))
			}
			switch ev.Type {
			case EvOpBegin:
				open = &InFlightOp{
					Ring:    rg.Label,
					Op:      OpName(ev.Arg1),
					Arg:     ev.Arg2,
					StartNs: ev.Time,
				}
			case EvOpEnd:
				open = nil
				k := OpName(ev.Arg1)
				opDurs[k] = append(opDurs[k], int64(ev.Arg2))
			case EvDCSSRetry:
				rep.DCSSRetry++
			case EvTSAdvance:
				rep.TSAdvance++
			case EvTSAdopt:
				rep.TSAdopt++
			case EvTSPinned:
				rep.TSPinned++
			case EvCrossRQEnd:
				xrqDurs = append(xrqDurs, int64(ev.Arg2))
			case EvCombineEnd:
				rep.CombineBatches++
				rep.CombineOps += int(ev.Arg1)
				combWindows = append(combWindows, int64(ev.Arg2))
			case EvCombineWait:
				combWaits = append(combWaits, int64(ev.Arg2))
			case EvStall:
				rep.Stalls = append(rep.Stalls, StallInfo{
					Ring:     rg.Label,
					ThreadID: ev.Arg1,
					StuckNs:  int64(ev.Arg2),
					AtNs:     ev.Time,
				})
			}
		}
		if open != nil {
			open.AgeNs = s.Mono - open.StartNs
			if open.AgeNs < 0 {
				open.AgeNs = 0
			}
			rep.InFlight = append(rep.InFlight, *open)
		}
	}
	if tMax > tMin {
		rep.SpanNs = tMax - tMin
	}
	for k, d := range opDurs {
		rep.Ops[k] = makeStat(d)
	}
	for k, d := range phDurs {
		rep.Phases[k] = makeStat(d)
	}
	rep.CrossRQ = makeStat(xrqDurs)
	rep.CombineWindow = makeStat(combWindows)
	rep.CombineWait = makeStat(combWaits)
	sort.Slice(rep.Stalls, func(a, b int) bool { return rep.Stalls[a].AtNs < rep.Stalls[b].AtNs })
	return rep
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(10 * time.Nanosecond).String()
}

// phaseOrder fixes the RQ phase table's row order to protocol order.
var phaseOrder = []string{"ts_wait", "traverse", "announce", "limbo"}

// WriteText renders the report as aligned human-readable tables.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "trace: %d rings, %d events, span %s, %d slow ops\n",
		r.Rings, r.Events, fmtNs(r.SpanNs), r.SlowOps)
	if r.Refused > 0 {
		fmt.Fprintf(w, "WARNING: %d ring allocations refused (MaxRings); trace is partial\n", r.Refused)
	}

	if len(r.Ops) > 0 {
		fmt.Fprintf(w, "\n%-10s %8s %10s %10s %10s %10s %10s\n",
			"op", "count", "mean", "p50", "p90", "p99", "max")
		kinds := make([]string, 0, len(r.Ops))
		for k := range r.Ops {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			s := r.Ops[k]
			fmt.Fprintf(w, "%-10s %8d %10s %10s %10s %10s %10s\n",
				k, s.Count, fmtNs(s.MeanNs), fmtNs(s.P50Ns), fmtNs(s.P90Ns),
				fmtNs(s.P99Ns), fmtNs(s.MaxNs))
		}
	}

	var phTotal int64
	for _, ph := range phaseOrder {
		phTotal += r.Phases[ph].TotalNs
	}
	if phTotal > 0 {
		fmt.Fprintf(w, "\nrange-query phases (share of attributed RQ time):\n")
		fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %7s\n",
			"phase", "count", "mean", "p99", "total", "share")
		for _, ph := range phaseOrder {
			s, ok := r.Phases[ph]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%-10s %8d %10s %10s %10s %6.1f%%\n",
				ph, s.Count, fmtNs(s.MeanNs), fmtNs(s.P99Ns), fmtNs(s.TotalNs),
				100*float64(s.TotalNs)/float64(phTotal))
		}
		fmt.Fprintf(w, "timestamps: %d advanced, %d shared, %d pinned; %d DCSS retries\n",
			r.TSAdvance, r.TSAdopt, r.TSPinned, r.DCSSRetry)
	}
	if r.CrossRQ.Count > 0 {
		fmt.Fprintf(w, "cross-shard RQs: %d, mean %s, p99 %s\n",
			r.CrossRQ.Count, fmtNs(r.CrossRQ.MeanNs), fmtNs(r.CrossRQ.P99Ns))
	}
	if r.CombineBatches > 0 {
		fmt.Fprintf(w, "combining: %d windows carried %d updates (%.2f ops/window); window mean %s p99 %s; wait mean %s p99 %s\n",
			r.CombineBatches, r.CombineOps,
			float64(r.CombineOps)/float64(r.CombineBatches),
			fmtNs(r.CombineWindow.MeanNs), fmtNs(r.CombineWindow.P99Ns),
			fmtNs(r.CombineWait.MeanNs), fmtNs(r.CombineWait.P99Ns))
	}

	for _, st := range r.Stalls {
		fmt.Fprintf(w, "\nSTALL: thread %d stuck %s (flagged by %s at t=%s)\n",
			st.ThreadID, fmtNs(st.StuckNs), st.Ring, fmtNs(st.AtNs))
	}
	for _, op := range r.InFlight {
		fmt.Fprintf(w, "IN-FLIGHT: %s on %s (arg %d) open for %s at dump time\n",
			op.Op, op.Ring, op.Arg, fmtNs(op.AgeNs))
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// spans, "i" instants, "M" metadata) understood by Perfetto and
// chrome://tracing. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace renders the snapshot as Chrome trace-event JSON: one
// Perfetto "thread" per ring, ops as complete spans, RQ phases as nested
// spans, and punctual events (retire, advance, stall, ...) as instants.
func WriteChromeTrace(w io.Writer, s *Snapshot) error {
	evs := []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "ebrrq"},
	}}
	for ti, rg := range s.Rings {
		tid := ti + 1
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": rg.Label},
		})
		var beginArg uint64
		for _, ev := range rg.Events {
			switch ev.Type {
			case EvOpBegin:
				beginArg = ev.Arg2 // span emitted at the matching end
			case EvOpEnd:
				dur := int64(ev.Arg2)
				evs = append(evs, chromeEvent{
					Name: OpName(ev.Arg1), Ph: "X",
					Ts: us(ev.Time - dur), Dur: us(dur),
					Pid: 1, Tid: tid,
					Args: map[string]any{"arg": beginArg},
				})
			case EvCrossRQEnd:
				dur := int64(ev.Arg2)
				evs = append(evs, chromeEvent{
					Name: "cross_rq", Ph: "X",
					Ts: us(ev.Time - dur), Dur: us(dur),
					Pid: 1, Tid: tid,
					Args: map[string]any{"ts": ev.Arg1},
				})
			case EvStall:
				evs = append(evs, chromeEvent{
					Name: fmt.Sprintf("stall t%d", ev.Arg1), Ph: "i",
					Ts: us(ev.Time), Pid: 1, Tid: tid, S: "g",
					Args: map[string]any{"stuck_ns": ev.Arg2},
				})
			case EvCombineEnd:
				dur := int64(ev.Arg2)
				evs = append(evs, chromeEvent{
					Name: "combine", Ph: "X",
					Ts: us(ev.Time - dur), Dur: us(dur),
					Pid: 1, Tid: tid,
					Args: map[string]any{"batch": ev.Arg1},
				})
			default:
				if ph, ok := phaseOf(ev.Type); ok {
					dur := int64(ev.Arg2)
					evs = append(evs, chromeEvent{
						Name: ph, Ph: "X",
						Ts: us(ev.Time - dur), Dur: us(dur),
						Pid: 1, Tid: tid,
						Args: map[string]any{"a1": ev.Arg1},
					})
					continue
				}
				evs = append(evs, chromeEvent{
					Name: ev.Type.String(), Ph: "i",
					Ts: us(ev.Time), Pid: 1, Tid: tid, S: "t",
					Args: map[string]any{"a1": ev.Arg1, "a2": ev.Arg2},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{evs, "ns"})
}
