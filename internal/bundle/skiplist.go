// Bundled optimistic skip list (Herlihy-Lev-Luchangco-Shavit shape, bundled
// bottom level): per-node locks, wait-free searches, logical deletion via a
// marked flag, a fullyLinked flag gating index use — and a bundle on every
// bottom-level link. Only the bottom level is versioned: the index levels
// are a probabilistic accelerator, so a range query descends them over the
// raw pointers to a bottom-level predecessor of the range that is provably
// in its ts-snapshot, then walks the bottom level through bundles exactly
// like the bundled lazy list.
//
// Descent visibility: the index may step onto a node only when it is
// fullyLinked, unmarked and has 0 < itime < ts. Unmarked observed after ts
// was installed means any future deletion stamps at or above ts (deleters
// mark before reading the clock, and ts came from an advance), and
// itime < ts means the insertion is visible — so the node is in the
// snapshot and its bundle chain covers the range suffix. A node failing
// the check just stops the level early (the descent drops a level without
// advancing); correctness never depends on index quality.
package bundle

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"

	"ebrrq/internal/epoch"
)

// skipMaxLevel bounds tower height; 1/2 branching supports ~2^20 keys well.
const skipMaxLevel = 20

type snode struct {
	epoch.Node // must be first
	mu         sync.Mutex
	marked     atomic.Bool
	fullyLink  atomic.Bool
	topLevel   int
	next       [skipMaxLevel]atomic.Pointer[snode]
	bun        bundle // versions of next[0]
}

func shdr(n *snode) *epoch.Node    { return &n.Node }
func sowner(h *epoch.Node) *snode  { return (*snode)(unsafe.Pointer(h)) }
func sptr(p unsafe.Pointer) *snode { return (*snode)(p) }
func sraw(n *snode) unsafe.Pointer { return unsafe.Pointer(n) }

// SkipList is a concurrent sorted set whose range queries are served by
// bottom-level bundles.
type SkipList struct {
	head  *snode
	tail  *snode
	prov  *Provider
	pools []sfreeList
	rngs  []srngState
}

type sfreeList struct {
	nodes []*snode
	_     [40]byte
}

type srngState struct {
	s uint64
	_ [56]byte
}

// NewSkipList creates an empty bundled skip list attached to the provider.
func NewSkipList(p *Provider) *SkipList {
	tail := &snode{topLevel: skipMaxLevel - 1}
	tail.InitKey(math.MaxInt64, 0)
	tail.SetITime(1)
	tail.fullyLink.Store(true)
	head := &snode{topLevel: skipMaxLevel - 1}
	head.InitKey(math.MinInt64, 0)
	head.SetITime(1)
	head.fullyLink.Store(true)
	for i := 0; i < skipMaxLevel; i++ {
		head.next[i].Store(tail)
	}
	head.bun.seed(1, sraw(tail))
	l := &SkipList{head: head, tail: tail, prov: p}
	l.pools = make([]sfreeList, p.MaxThreads())
	l.rngs = make([]srngState, p.MaxThreads())
	for i := range l.rngs {
		l.rngs[i].s = uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &l.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, sowner(h))
		}
	})
	p.SetGCFunc(l.gcSweep)
	p.entriesLive.Add(1) // head's seed entry
	return l
}

// randomLevel draws a geometric(1/2) tower height in [0, skipMaxLevel).
func (l *SkipList) randomLevel(tid int) int {
	st := &l.rngs[tid]
	x := st.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	st.s = x
	lvl := 0
	for x&1 == 1 && lvl < skipMaxLevel-1 {
		lvl++
		x >>= 1
	}
	return lvl
}

func (l *SkipList) alloc(t *Thread, key, value int64) *snode {
	fl := &l.pools[t.ID()]
	var n *snode
	if ln := len(fl.nodes); ln > 0 {
		n = fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		t.PoolHit()
	} else {
		n = &snode{}
		t.PoolMiss()
	}
	n.InitKey(key, value) // resets itime/dtime/limbo link
	n.marked.Store(false)
	n.fullyLink.Store(false)
	n.bun.reset()
	return n
}

func (l *SkipList) dealloc(t *Thread, n *snode) {
	fl := &l.pools[t.ID()]
	if len(fl.nodes) < 4096 {
		fl.nodes = append(fl.nodes, n)
	}
}

// find fills preds/succs with the nodes bracketing key at every level and
// returns the highest level at which key was found, or -1.
func (l *SkipList) find(key int64, preds, succs *[skipMaxLevel]*snode) int {
	found := -1
	pred := l.head
	for lv := skipMaxLevel - 1; lv >= 0; lv-- {
		curr := pred.next[lv].Load()
		for curr.Key() < key {
			pred = curr
			curr = curr.next[lv].Load()
		}
		if found == -1 && curr.Key() == key {
			found = lv
		}
		preds[lv] = pred
		succs[lv] = curr
	}
	return found
}

// Insert adds key with the given value; false if key is present.
func (l *SkipList) Insert(t *Thread, key, value int64) bool {
	t.StartOp()
	defer t.EndOp()
	var preds, succs [skipMaxLevel]*snode
	topLevel := l.randomLevel(t.ID())
	for {
		if fl := l.find(key, &preds, &succs); fl != -1 {
			f := succs[fl]
			if !f.marked.Load() {
				// Wait until the competing insertion linearizes, then
				// report "already present".
				for i := 0; !f.fullyLink.Load(); i++ {
					if i > 8 {
						runtime.Gosched()
					}
				}
				return false
			}
			// Marked: the victim is on its way out; retry.
			continue
		}
		// Lock preds[0..topLevel] in ascending level order, validating.
		valid := true
		highestLocked := -1
		var prevPred *snode
		for lv := 0; valid && lv <= topLevel; lv++ {
			pred, succ := preds[lv], succs[lv]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lv
				prevPred = pred
			}
			valid = !pred.marked.Load() && !succ.marked.Load() &&
				pred.next[lv].Load() == succ
		}
		if !valid {
			sUnlockPreds(&preds, highestLocked)
			continue
		}
		n := l.alloc(t, key, value)
		n.topLevel = topLevel
		for lv := 0; lv <= topLevel; lv++ {
			n.next[lv].Store(succs[lv])
		}
		// Seed the new node's bundle pending, publish the bottom link,
		// version it, stamp — the range-query linearization (see list.go).
		en := n.bun.prepend(sraw(succs[0]))
		preds[0].next[0].Store(n)
		ep := preds[0].bun.prepend(sraw(n))
		v := t.stamp2(en, ep)
		n.SetITime(v)
		for lv := 1; lv <= topLevel; lv++ {
			preds[lv].next[lv].Store(n)
		}
		n.fullyLink.Store(true) // index may now use the node
		t.record(v, shdr(n), nil)
		t.gcInline(&preds[0].bun)
		sUnlockPreds(&preds, highestLocked)
		return true
	}
}

func sUnlockPreds(preds *[skipMaxLevel]*snode, highestLocked int) {
	var prev *snode
	for lv := 0; lv <= highestLocked; lv++ {
		if preds[lv] != prev {
			preds[lv].mu.Unlock()
			prev = preds[lv]
		}
	}
}

// Delete removes key; false if key is absent.
func (l *SkipList) Delete(t *Thread, key int64) bool {
	t.StartOp()
	defer t.EndOp()
	var preds, succs [skipMaxLevel]*snode
	var victim *snode
	isMarkedByUs := false
	topLevel := -1
	for {
		fl := l.find(key, &preds, &succs)
		if fl != -1 {
			victim = succs[fl]
		}
		if !isMarkedByUs {
			if fl == -1 || !victim.fullyLink.Load() ||
				victim.topLevel != fl || victim.marked.Load() {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.marked.Load() {
				victim.mu.Unlock()
				return false
			}
			// Mark before the clock read below: the point-op
			// linearization, and the fence that keeps index descents off
			// the node once a newer timestamp exists.
			victim.marked.Store(true)
			isMarkedByUs = true
		}
		// Lock predecessors and validate, then unlink every level.
		valid := true
		highestLocked := -1
		var prevPred *snode
		for lv := 0; valid && lv <= topLevel; lv++ {
			pred := preds[lv]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lv
				prevPred = pred
			}
			valid = !pred.marked.Load() && pred.next[lv].Load() == victim
		}
		if !valid {
			sUnlockPreds(&preds, highestLocked)
			continue
		}
		for lv := topLevel; lv >= 1; lv-- {
			preds[lv].next[lv].Store(victim.next[lv].Load())
		}
		succ := victim.next[0].Load()
		preds[0].next[0].Store(succ)
		ep := preds[0].bun.prepend(sraw(succ))
		v := t.stamp1(ep) // range-query linearization
		victim.SetDTime(v)
		t.record(v, nil, shdr(victim))
		t.Retire(shdr(victim))
		t.gcInline(&preds[0].bun)
		victim.mu.Unlock()
		sUnlockPreds(&preds, highestLocked)
		return true
	}
}

// Contains reports whether key is present (wait-free, raw links).
func (l *SkipList) Contains(t *Thread, key int64) (int64, bool) {
	t.StartOp()
	defer t.EndOp()
	pred := l.head
	var curr *snode
	for lv := skipMaxLevel - 1; lv >= 0; lv-- {
		curr = pred.next[lv].Load()
		for curr.Key() < key {
			pred = curr
			curr = curr.next[lv].Load()
		}
	}
	if curr.Key() != key || !curr.fullyLink.Load() || curr.marked.Load() {
		return 0, false
	}
	return curr.Value(), true
}

// visibleAt reports whether the index descent may step onto c for a query
// at ts (see the package comment's visibility argument). Order matters:
// fullyLink is published after itime, so a true load here guarantees a
// stamped itime.
func visibleAt(c *snode, ts uint64) bool {
	if !c.fullyLink.Load() || c.marked.Load() {
		return false
	}
	it := c.ITime()
	return it != 0 && it < ts
}

// RangeQuery returns all pairs with keys in [low, high], linearized at the
// query's timestamp. Index descent over raw pointers restricted to
// snapshot-visible nodes, then a bundle walk along the bottom level. The
// result is valid until the thread's next range query.
func (l *SkipList) RangeQuery(t *Thread, low, high int64) []epoch.KV {
	t.StartOp()
	defer t.EndOp()
	ts := t.rqBegin(low)
	pred := l.head
	for lv := skipMaxLevel - 1; lv >= 0; lv-- {
		curr := pred.next[lv].Load()
		for curr.Key() < low && visibleAt(curr, ts) {
			pred = curr
			curr = pred.next[lv].Load()
		}
	}
	res := t.resultBuf()
	curr := sptr(t.deref(&pred.bun, ts))
	for curr != nil && curr.Key() < low {
		curr = sptr(t.deref(&curr.bun, ts))
	}
	for curr != nil && curr.Key() <= high {
		res = append(res, epoch.KV{Key: curr.Key(), Value: curr.Value()})
		curr = sptr(t.deref(&curr.bun, ts))
	}
	return t.rqEnd(res)
}

// Size counts live nodes (quiescent use only).
func (l *SkipList) Size() int {
	n := 0
	for curr := l.head.next[0].Load(); curr != l.tail; curr = curr.next[0].Load() {
		if !curr.marked.Load() && curr.fullyLink.Load() {
			n++
		}
	}
	return n
}

// gcSweep locks every reachable bottom-level node in turn and prunes its
// bundle below min; registered as the provider's full-GC pass.
func (l *SkipList) gcSweep(min uint64) int {
	n := 0
	for c := l.head; c != nil && c != l.tail; c = c.next[0].Load() {
		c.mu.Lock()
		n += c.bun.gcBelow(min)
		c.mu.Unlock()
	}
	return n
}

// MaxBundleLen returns the longest bundle over reachable bottom links
// (tests).
func (l *SkipList) MaxBundleLen() int {
	max := 0
	for c := l.head; c != nil && c != l.tail; c = c.next[0].Load() {
		if n := c.bun.len(); n > max {
			max = n
		}
	}
	return max
}
