// Package bundle implements the bundled-references range-query technique
// (Nelson-Slivon, Hassan and Palmieri, "Bundling: ...", arXiv 2012.15438 /
// 2201.00874) behind the same timestamp clock the EBR provider uses: every
// bottom-level list link carries a "bundle" — a timestamp-ordered history of
// the link's targets — and a range query at timestamp ts reconstructs the
// set as of ts by dereferencing, per link, the newest bundle entry with
// entry.ts < ts. No announcement scan and no limbo sweep: the query's cost
// is independent of concurrent update churn, while every update pays one
// bundle-entry prepend (two for an insert) on top of the pointer writes.
//
// # Linearization protocol
//
// Updates serialize per link under the link owner's lock and linearize at a
// single read of the shared clock:
//
//	raw pointer write(s)            (point-op linearization)
//	prepend PENDING entry (ts = 0)  (at most one per bundle, at its head)
//	v := clock.Load()
//	stamp entry ts = v              (insert: the new node's own seed entry
//	                                 is stamped before the predecessor's,
//	                                 both with the same v)
//	publish itime/dtime = v; record the update
//
// A query whose timestamp was installed before v's read satisfies
// ts <= v and must not see the update (the validator's strict ts_entry < ts
// rule); one installed after sees the stamped entry. A reader that finds a
// pending entry must wait (spin + yield): the entry's eventual stamp may be
// below the reader's timestamp. Pending entries resolve in a handful of
// instructions — there are no loops, allocations or faults between prepend
// and stamp.
//
// # Reclamation
//
// Node memory reuses the epoch machinery wholesale (an rqprov ModeUnsafe
// substrate provides the domain, the limbo limits and the backpressure
// ladder). Bundle entries are plain GC'd structs pruned against the oldest
// timestamp any active range query may still dereference: each query
// publishes a pessimistic floor (a clock read taken before it acquires its
// timestamp) in a per-thread slot, and gcBelow(min) keeps, per bundle, the
// newest stamped entry strictly below min — the entry a query at exactly
// min resolves to — truncating everything older. Updaters prune inline
// (under the link lock they already hold); CollectGarbage runs the same
// pass over every link for background or test use.
package bundle

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"ebrrq/internal/epoch"
	"ebrrq/internal/obs"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
)

// entry is one link version: next was the link's target from [ts, ts of the
// entry above). ts == 0 marks a pending entry whose stamp is in flight.
type entry struct {
	ts    atomic.Uint64
	next  unsafe.Pointer // immutable after creation
	older atomic.Pointer[entry]
}

// bundle is a per-link version history, newest first, ts non-increasing
// toward older entries (equal timestamps are legal: two updates of one link
// may both read the clock between two query advances; the newer entry wins,
// matching the final state of the pair). Prepends and truncations happen
// only under the link owner's lock; reads are lock-free.
type bundle struct {
	head atomic.Pointer[entry]
}

// prepend pushes a pending entry for next. Caller holds the link lock.
func (b *bundle) prepend(next unsafe.Pointer) *entry {
	e := &entry{next: next}
	e.older.Store(b.head.Load())
	b.head.Store(e)
	return e
}

// seed installs the bundle's first entry already stamped (sentinel setup
// and node initialization, before the node is reachable).
func (b *bundle) seed(ts uint64, next unsafe.Pointer) {
	e := &entry{next: next}
	e.ts.Store(ts)
	b.head.Store(e)
}

// reset clears a recycled node's bundle before reuse.
func (b *bundle) reset() { b.head.Store(nil) }

// len walks the bundle (racy; statistics and tests).
func (b *bundle) len() int {
	n := 0
	for e := b.head.Load(); e != nil; e = e.older.Load() {
		n++
	}
	return n
}

// gcBelow keeps the newest stamped entry with ts < min and truncates the
// strictly older tail, returning how many entries were cut. Pending entries
// are skipped conservatively (their eventual stamp may be old, making them
// the boundary — keeping one extra entry is always safe). Caller holds the
// link lock, so truncations never race each other or a prepend; concurrent
// readers at ts >= min resolve at the boundary entry or newer.
func (b *bundle) gcBelow(min uint64) int {
	e := b.head.Load()
	for e != nil {
		if ts := e.ts.Load(); ts != 0 && ts < min {
			break
		}
		e = e.older.Load()
	}
	if e == nil {
		return 0
	}
	tail := e.older.Swap(nil)
	n := 0
	for ; tail != nil; tail = tail.older.Load() {
		n++
	}
	return n
}

// Config configures a bundle Provider. The zero value of every field but
// MaxThreads is usable.
type Config struct {
	// MaxThreads bounds concurrently registered threads. Required.
	MaxThreads int
	// Recorder, if non-nil, receives every timestamped update.
	Recorder rqprov.Recorder
	// Clock is the timestamp source; nil allocates a private SharedClock.
	Clock rqprov.TimestampSource
	// Trace attaches the flight recorder (per-thread rings, as rqprov).
	Trace      *trace.Recorder
	TraceLabel string
	// LimboSoftLimit / LimboHardLimit / PressureWait bound unreclaimed
	// node memory exactly as in rqprov.Config: at the hard limit
	// AdmitUpdate sheds writes with ErrMemoryPressure.
	LimboSoftLimit int64
	LimboHardLimit int64
	PressureWait   time.Duration
}

// Provider owns the technique-wide state: the epoch substrate (node
// reclamation, backpressure, health), the clock, the per-thread active-
// timestamp floors bundle GC prunes against, and the metrics.
type Provider struct {
	sub   *rqprov.Provider // ModeUnsafe substrate: epoch domain + backpressure
	clock rqprov.TimestampSource
	word  *atomic.Uint64
	rec   rqprov.Recorder

	// active[i] is thread i's published floor: a clock value taken before
	// the thread acquired its current range-query timestamp (so floor <=
	// ts), or 0 when no query (and no cross-shard pin) is active. Bundle
	// GC prunes below the minimum floor.
	active []activeSlot

	entriesLive atomic.Int64 // prepends+seeds minus pruned (gauge)

	met *metrics

	gcAll func(min uint64) int // structure-registered full GC sweep
}

type activeSlot struct {
	v atomic.Uint64
	_ [56]byte // pad: scanned by GC, written on every RQ begin/end
}

type metrics struct {
	entries      *obs.Counter // ebrrq_bundle_entries_total
	pruned       *obs.Counter // ebrrq_bundle_pruned_total
	gcPasses     *obs.Counter // ebrrq_bundle_gc_total
	pendingWaits *obs.Counter // ebrrq_bundle_pending_waits_total
	rqs          *obs.Counter // ebrrq_bundle_rq_total
}

// New creates a provider. The epoch domain is reachable via Domain for
// watchdogs and limits; structures attach their free-func to it.
func New(cfg Config) *Provider {
	clock := cfg.Clock
	if clock == nil {
		clock = rqprov.NewSharedClock()
	}
	sub := rqprov.New(rqprov.Config{
		MaxThreads:     cfg.MaxThreads,
		Mode:           rqprov.ModeUnsafe,
		LimboSorted:    true, // deleters retire their own victims in dtime order
		Clock:          clock,
		Trace:          cfg.Trace,
		TraceLabel:     cfg.TraceLabel,
		LimboSoftLimit: cfg.LimboSoftLimit,
		LimboHardLimit: cfg.LimboHardLimit,
		PressureWait:   cfg.PressureWait,
	})
	return &Provider{
		sub:    sub,
		clock:  clock,
		word:   clock.Word(),
		rec:    cfg.Recorder,
		active: make([]activeSlot, cfg.MaxThreads),
	}
}

// EnableMetrics registers the provider's and the epoch domain's metrics
// plus the bundle-specific series with reg. Call before registering
// threads.
func (p *Provider) EnableMetrics(reg *obs.Registry) {
	p.sub.EnableMetrics(reg)
	p.met = &metrics{
		entries: reg.Counter("ebrrq_bundle_entries_total",
			"bundle entries created (seeds and prepends)"),
		pruned: reg.Counter("ebrrq_bundle_pruned_total",
			"bundle entries reclaimed by GC"),
		gcPasses: reg.Counter("ebrrq_bundle_gc_total",
			"bundle GC passes (inline and full sweeps)"),
		pendingWaits: reg.Counter("ebrrq_bundle_pending_waits_total",
			"range-query waits on a pending (unstamped) bundle entry"),
		rqs: reg.Counter("ebrrq_bundle_rq_total",
			"range queries answered from bundles"),
	}
	reg.GaugeFunc("ebrrq_bundle_entries_live",
		"bundle entries currently retained (created minus pruned)",
		func() int64 { return p.entriesLive.Load() })
}

// Health returns the substrate's epoch health check (hard-limit critical,
// stall/neutralization/soft-limit degraded).
func (p *Provider) Health() obs.HealthCheck { return p.sub.Health() }

// Domain returns the epoch domain backing node reclamation.
func (p *Provider) Domain() *epoch.Domain { return p.sub.Domain() }

// Clock returns the timestamp source.
func (p *Provider) Clock() rqprov.TimestampSource { return p.clock }

// MaxThreads returns the registration bound.
func (p *Provider) MaxThreads() int { return len(p.active) }

// EntriesLive returns the approximate number of retained bundle entries.
func (p *Provider) EntriesLive() int64 { return p.entriesLive.Load() }

// SetGCFunc registers the structure's full GC sweep (walk every link,
// gcBelow each bundle); CollectGarbage calls it. Must be set before use
// (each structure constructor registers itself).
func (p *Provider) SetGCFunc(f func(min uint64) int) { p.gcAll = f }

// CollectGarbage runs one full bundle-GC sweep at the current reclamation
// floor and returns how many entries it pruned. Safe to call from any
// goroutine (a background ticker, a test); concurrent sweeps serialize per
// link on the link locks.
func (p *Provider) CollectGarbage() int {
	if p.gcAll == nil {
		return 0
	}
	n := p.gcAll(p.MinActiveTS())
	if n > 0 {
		p.entriesLive.Add(int64(-n))
	}
	if p.met != nil {
		p.met.gcPasses.Add(0, 1)
		p.met.pruned.Add(0, uint64(n))
	}
	return n
}

// MinActiveTS returns the bundle reclamation floor: the minimum published
// active-query floor, or the current clock value when no query is active.
// The slots are scanned before the clock is read, and floors are clock
// reads taken before their queries' timestamps — so a query that begins
// concurrently with the scan always has ts at or above the returned value,
// and the boundary-keeping gcBelow retains the entry it resolves to.
func (p *Provider) MinActiveTS() uint64 {
	var min uint64
	for i := range p.active {
		if v := p.active[i].v.Load(); v != 0 && (min == 0 || v < min) {
			min = v
		}
	}
	if min == 0 {
		min = p.word.Load()
	}
	return min
}

// Thread is a per-goroutine provider handle (single-goroutine, like
// rqprov.Thread). Structure operations bracket themselves with
// StartOp/EndOp for epoch protection.
type Thread struct {
	p   *Provider
	sub *rqprov.Thread
	id  int
	tr  *trace.Ring

	// pinnedTS, when nonzero, is the timestamp the next range query must
	// linearize at (the shard router's single-timestamp contract);
	// single-use, cleared by Abort and Deregister.
	pinnedTS uint64
	// pinDepth counts PinEpoch nesting: while pinned, the thread's floor
	// stays published even between range queries, so a cross-shard query
	// that acquired its timestamp after the pin can still dereference
	// every version it needs on every shard.
	pinDepth int
	rqActive bool

	// floorCache amortizes MinActiveTS over update operations; refreshed
	// every floorEvery updates (staleness is safe: floors only rise, so a
	// stale cache prunes less).
	floorCache uint64
	floorAge   int

	lastRQTS  uint64
	result    []epoch.KV
	resultHWM int
}

// floorEvery is the update-side refresh period of the GC floor cache: one
// atomic scan of the active slots every 32 updates keeps inline pruning
// within a constant factor of the true floor without putting the scan on
// every critical section.
const floorEvery = 32

// Register allocates a thread handle, panicking when every slot is held.
func (p *Provider) Register() *Thread {
	t, err := p.TryRegister()
	if err != nil {
		panic("bundle: too many threads registered")
	}
	return t
}

// TryRegister allocates a thread handle, reusing slots released by
// Deregister; returns rqprov.ErrTooManyThreads when none is free.
func (p *Provider) TryRegister() (*Thread, error) {
	sub, err := p.sub.TryRegister()
	if err != nil {
		return nil, err
	}
	return &Thread{p: p, sub: sub, id: sub.ID(), tr: sub.TraceRing()}, nil
}

// ID returns the thread's registration index.
func (t *Thread) ID() int { return t.id }

// Provider returns the owning provider.
func (t *Thread) Provider() *Provider { return t.p }

// TraceRing returns the thread's flight-recorder ring (nil untraced).
func (t *Thread) TraceRing() *trace.Ring { return t.tr }

// StartOp / EndOp bracket a structure operation (epoch announcement).
func (t *Thread) StartOp() { t.sub.StartOp() }
func (t *Thread) EndOp()   { t.sub.EndOp() }

// AdmitUpdate is the backpressure gate; see rqprov.Thread.AdmitUpdate.
func (t *Thread) AdmitUpdate() error { return t.sub.AdmitUpdate() }

// Retire hands a node to epoch reclamation (call inside StartOp/EndOp).
func (t *Thread) Retire(n *epoch.Node) { t.sub.Retire(n) }

// PoolHit / PoolMiss count node-pool recycling.
func (t *Thread) PoolHit()  { t.sub.PoolHit() }
func (t *Thread) PoolMiss() { t.sub.PoolMiss() }

// LastRQTS returns the most recent range query's timestamp.
func (t *Thread) LastRQTS() uint64 { return t.lastRQTS }

// PinEpoch enters the cross-shard retention bracket: the epoch pin keeps
// every retired node, and the published floor keeps every bundle version,
// that a query timestamp acquired after this call may need. Nests.
func (t *Thread) PinEpoch() {
	t.sub.PinEpoch()
	if t.pinDepth == 0 && !t.rqActive {
		t.p.active[t.id].v.Store(t.p.word.Load())
	}
	t.pinDepth++
}

// UnpinEpoch leaves the bracket; idempotent at depth zero.
func (t *Thread) UnpinEpoch() {
	if t.pinDepth > 0 {
		t.pinDepth--
		if t.pinDepth == 0 && !t.rqActive {
			t.p.active[t.id].v.Store(0)
		}
	}
	t.sub.UnpinEpoch()
}

// PinTimestamp forces the next range query to linearize at ts
// (single-use). The caller must already hold PinEpoch, which published
// this thread's floor before ts was taken from the clock.
func (t *Thread) PinTimestamp(ts uint64) { t.pinnedTS = ts }

// Abort clears in-flight state after a panic unwound an operation; the
// thread remains registered and usable.
func (t *Thread) Abort() {
	t.pinnedTS = 0
	t.pinDepth = 0
	t.rqActive = false
	t.p.active[t.id].v.Store(0)
	t.sub.Abort()
}

// Deregister releases the slot permanently (idempotent).
func (t *Thread) Deregister() {
	t.pinnedTS = 0
	t.pinDepth = 0
	t.rqActive = false
	t.p.active[t.id].v.Store(0)
	t.sub.Deregister()
}

// record reports a linearized update to the validation recorder.
func (t *Thread) record(ts uint64, ins, del *epoch.Node) {
	if t.p.rec == nil {
		return
	}
	var inodes, dnodes []*epoch.Node
	if ins != nil {
		inodes = []*epoch.Node{ins}
	}
	if del != nil {
		dnodes = []*epoch.Node{del}
	}
	t.p.rec.RecordUpdate(t.id, ts, inodes, dnodes)
}

// stamp1 linearizes a delete: one clock read stamps the predecessor's new
// entry. Returns the linearization timestamp.
func (t *Thread) stamp1(e *entry) uint64 {
	v := t.p.word.Load()
	e.ts.Store(v)
	t.countEntries(1)
	return v
}

// stamp2 linearizes an insert: one clock read stamps the new node's seed
// entry FIRST, then the predecessor's entry — a reader that resolved the
// predecessor's entry therefore always finds the node's own bundle
// stamped. Both entries carry the same timestamp.
func (t *Thread) stamp2(seed, pred *entry) uint64 {
	v := t.p.word.Load()
	seed.ts.Store(v)
	pred.ts.Store(v)
	t.countEntries(2)
	return v
}

func (t *Thread) countEntries(n int) {
	t.p.entriesLive.Add(int64(n))
	if m := t.p.met; m != nil {
		m.entries.Add(t.id, uint64(n))
	}
}

// gcFloor returns the cached reclamation floor, refreshing it every
// floorEvery updates.
func (t *Thread) gcFloor() uint64 {
	t.floorAge++
	if t.floorCache == 0 || t.floorAge >= floorEvery {
		t.floorAge = 0
		t.floorCache = t.p.MinActiveTS()
	}
	return t.floorCache
}

// gcInline prunes one bundle at the cached floor. Caller holds the link
// lock.
func (t *Thread) gcInline(b *bundle) {
	n := b.gcBelow(t.gcFloor())
	if n == 0 {
		return
	}
	t.p.entriesLive.Add(int64(-n))
	if m := t.p.met; m != nil {
		m.gcPasses.Inc(t.id)
		m.pruned.Add(t.id, uint64(n))
	}
	if t.tr != nil {
		t.tr.Emit(trace.EvBundleGC, t.floorCache, uint64(n))
	}
}

// rqBegin publishes the floor and acquires the query's linearization
// timestamp (the pinned one, if the shard router set it). Call inside
// StartOp/EndOp.
func (t *Thread) rqBegin(low int64) uint64 {
	if t.pinDepth == 0 {
		t.p.active[t.id].v.Store(t.p.word.Load())
	}
	ts := t.pinnedTS
	if ts != 0 {
		t.pinnedTS = 0
		if t.tr != nil {
			t.tr.Emit(trace.EvTSPinned, ts, 0)
		}
	} else {
		var advanced bool
		ts, advanced = t.p.clock.AdvanceOrAdopt()
		if t.tr != nil {
			if advanced {
				t.tr.Emit(trace.EvTSAdvance, ts, 0)
			} else {
				t.tr.Emit(trace.EvTSAdopt, ts, 0)
			}
		}
	}
	t.rqActive = true
	t.lastRQTS = ts
	if t.tr != nil {
		t.tr.Emit(trace.EvBundleEnter, ts, uint64(low))
	}
	return ts
}

// rqEnd withdraws the floor and stores the reusable result buffer.
func (t *Thread) rqEnd(res []epoch.KV) []epoch.KV {
	t.rqActive = false
	if t.pinDepth == 0 {
		t.p.active[t.id].v.Store(0)
	}
	t.result = res
	if len(res) > t.resultHWM {
		t.resultHWM = len(res)
	}
	if m := t.p.met; m != nil {
		m.rqs.Inc(t.id)
	}
	return res
}

// resultBuf returns the empty reusable result buffer, restoring its
// steady-state capacity after a drop.
func (t *Thread) resultBuf() []epoch.KV {
	if cap(t.result) < t.resultHWM {
		t.result = make([]epoch.KV, 0, t.resultHWM)
	}
	return t.result[:0]
}

// deref resolves a link as of ts: the target of the newest entry with
// entry.ts < ts. A pending entry is waited out — its eventual stamp may be
// below ts (see the package comment).
func (t *Thread) deref(b *bundle, ts uint64) unsafe.Pointer {
	e := b.head.Load()
	for e != nil {
		ets := e.ts.Load()
		if ets == 0 {
			if m := t.p.met; m != nil {
				m.pendingWaits.Inc(t.id)
			}
			for ets == 0 {
				runtime.Gosched()
				ets = e.ts.Load()
			}
		}
		if ets < ts {
			return e.next
		}
		e = e.older.Load()
	}
	return nil
}
