// Bundled lazy linked list (Heller et al. shape, bundled links): per-node
// locks, optimistic validation, wait-free searches, logical deletion via a
// marked flag — and a bundle on every next-link so range queries traverse
// the list as of their timestamp instead of scanning announcements.
//
// Point operations are the classic lazy-list protocol plus one pending
// entry prepend+stamp per modified link (two for an insert: the new node's
// own link needs a seed entry so queries can continue past it). The raw
// pointer write stays the point-op linearization; the stamp is the
// range-query linearization. Both happen under pred's lock, so a bundle's
// timestamps are non-increasing toward older entries.
//
// The thread that marks a node retires it (per-thread limbo stays
// dtime-sorted, LimboSorted substrate). Node visibility for queries never
// consults marked bits or itime/dtime: a node is in the ts-snapshot iff the
// bundle walk reaches it.

package bundle

import (
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"ebrrq/internal/epoch"
)

type lnode struct {
	epoch.Node // must be first
	mu         sync.Mutex
	marked     atomic.Bool
	next       atomic.Pointer[lnode]
	bun        bundle
}

func lhdr(n *lnode) *epoch.Node    { return &n.Node }
func lowner(h *epoch.Node) *lnode  { return (*lnode)(unsafe.Pointer(h)) }
func lptr(p unsafe.Pointer) *lnode { return (*lnode)(p) }
func lraw(n *lnode) unsafe.Pointer { return unsafe.Pointer(n) }

// List is a concurrent sorted set whose range queries are served by
// per-link bundles.
type List struct {
	head  *lnode
	tail  *lnode
	prov  *Provider
	pools []lfreeList
}

type lfreeList struct {
	nodes []*lnode
	_     [40]byte
}

// NewList creates an empty bundled lazy list attached to the provider. The
// substrate's epoch domain recycles this list's nodes, and the provider's
// full-GC sweep walks this list's links.
func NewList(p *Provider) *List {
	tail := &lnode{}
	tail.InitKey(math.MaxInt64, 0)
	tail.SetITime(1)
	head := &lnode{}
	head.InitKey(math.MinInt64, 0)
	head.SetITime(1)
	head.next.Store(tail)
	head.bun.seed(1, lraw(tail))
	l := &List{head: head, tail: tail, prov: p}
	l.pools = make([]lfreeList, p.MaxThreads())
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &l.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, lowner(h))
		}
	})
	p.SetGCFunc(l.gcSweep)
	p.entriesLive.Add(1) // head's seed entry
	return l
}

func (l *List) alloc(t *Thread, key, value int64) *lnode {
	fl := &l.pools[t.ID()]
	var n *lnode
	if ln := len(fl.nodes); ln > 0 {
		n = fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		t.PoolHit()
	} else {
		n = &lnode{}
		t.PoolMiss()
	}
	n.InitKey(key, value) // resets itime/dtime/limbo link
	n.marked.Store(false)
	n.bun.reset()
	return n
}

func (l *List) dealloc(t *Thread, n *lnode) {
	fl := &l.pools[t.ID()]
	if len(fl.nodes) < 4096 {
		fl.nodes = append(fl.nodes, n)
	}
}

// search returns (pred, curr) with pred.key < key <= curr.key over the raw
// links, without locks.
func (l *List) search(key int64) (*lnode, *lnode) {
	pred := l.head
	curr := pred.next.Load()
	for curr.Key() < key {
		pred = curr
		curr = curr.next.Load()
	}
	return pred, curr
}

func lvalidate(pred, curr *lnode) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// Insert adds key with the given value; false if key is present.
func (l *List) Insert(t *Thread, key, value int64) bool {
	t.StartOp()
	defer t.EndOp()
	var n *lnode
	for {
		pred, curr := l.search(key)
		pred.mu.Lock()
		if !lvalidate(pred, curr) {
			pred.mu.Unlock()
			continue
		}
		if curr.Key() == key {
			pred.mu.Unlock()
			if n != nil {
				l.dealloc(t, n)
			}
			return false
		}
		if n == nil {
			n = l.alloc(t, key, value)
		}
		n.next.Store(curr)
		// Seed the new node's bundle pending BEFORE publishing the raw
		// link: once pred.next (or pred's bundle) exposes n, a query can
		// continue through n's own bundle — at worst waiting out the
		// stamp, never finding it empty.
		en := n.bun.prepend(lraw(curr))
		pred.next.Store(n) // point-op linearization
		ep := pred.bun.prepend(lraw(n))
		v := t.stamp2(en, ep) // range-query linearization
		n.SetITime(v)
		t.record(v, lhdr(n), nil)
		t.gcInline(&pred.bun)
		pred.mu.Unlock()
		return true
	}
}

// Delete removes key; false if key is absent.
func (l *List) Delete(t *Thread, key int64) bool {
	t.StartOp()
	defer t.EndOp()
	for {
		pred, curr := l.search(key)
		if curr.Key() != key {
			return false
		}
		pred.mu.Lock()
		curr.mu.Lock()
		if !lvalidate(pred, curr) {
			curr.mu.Unlock()
			pred.mu.Unlock()
			continue
		}
		// Mark before the clock read: a point op that still sees curr
		// unmarked after a timestamp v was read is ordered before v.
		curr.marked.Store(true)
		succ := curr.next.Load()
		pred.next.Store(succ) // point-op linearization (unlink)
		ep := pred.bun.prepend(lraw(succ))
		v := t.stamp1(ep) // range-query linearization
		curr.SetDTime(v)
		t.record(v, nil, lhdr(curr))
		t.Retire(lhdr(curr))
		t.gcInline(&pred.bun)
		curr.mu.Unlock()
		pred.mu.Unlock()
		return true
	}
}

// Contains reports whether key is present (wait-free, raw links).
func (l *List) Contains(t *Thread, key int64) (int64, bool) {
	t.StartOp()
	defer t.EndOp()
	_, curr := l.search(key)
	if curr.Key() != key || curr.marked.Load() {
		return 0, false
	}
	return curr.Value(), true
}

// RangeQuery returns all pairs with keys in [low, high], linearized at the
// query's timestamp. The walk dereferences every link through its bundle —
// the node set visited IS the ts-snapshot; no marks, itime/dtime or
// announcement scans are consulted. The result is valid until the thread's
// next range query.
func (l *List) RangeQuery(t *Thread, low, high int64) []epoch.KV {
	t.StartOp()
	defer t.EndOp()
	ts := t.rqBegin(low)
	res := t.resultBuf()
	curr := lptr(t.deref(&l.head.bun, ts))
	for curr != nil && curr.Key() < low {
		curr = lptr(t.deref(&curr.bun, ts))
	}
	for curr != nil && curr.Key() <= high {
		res = append(res, epoch.KV{Key: curr.Key(), Value: curr.Value()})
		curr = lptr(t.deref(&curr.bun, ts))
	}
	return t.rqEnd(res)
}

// Size counts live nodes (quiescent use only).
func (l *List) Size() int {
	n := 0
	for curr := l.head.next.Load(); curr != l.tail; curr = curr.next.Load() {
		if !curr.marked.Load() {
			n++
		}
	}
	return n
}

// gcSweep locks every reachable node in turn and prunes its bundle below
// min; registered as the provider's full-GC pass.
func (l *List) gcSweep(min uint64) int {
	n := 0
	for c := l.head; c != nil && c != l.tail; c = c.next.Load() {
		c.mu.Lock()
		n += c.bun.gcBelow(min)
		c.mu.Unlock()
	}
	return n
}

// MaxBundleLen returns the longest bundle over reachable links (tests).
func (l *List) MaxBundleLen() int {
	max := 0
	for c := l.head; c != nil && c != l.tail; c = c.next.Load() {
		if n := c.bun.len(); n > max {
			max = n
		}
	}
	return max
}
