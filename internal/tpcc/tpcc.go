// Package tpcc implements the TPC-C workload of the paper's macrobenchmark
// (§5, Figure 9): the nine TPC-C relations held in a dbx row store, indexed
// by pluggable ordered indexes (data structure × RQ technique), and the
// five transaction types with the standard 45/43/4/4/4 mix. Approximately
// 45% of transactions issue range queries over the indexes (new-order
// scans are replaced by true index range queries — the original DBx1000
// used hash indexes and could not express them).
//
// Scaling follows the spec shape (10 districts per warehouse, 3000
// customers per district, 100k items) with a divisor for laptop-scale runs.
// Money is in cents; strings carry realistic payload sizes.
package tpcc

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"ebrrq"
	"ebrrq/internal/dbx"
	"ebrrq/internal/obs"
)

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

// Warehouse is the WAREHOUSE relation.
type Warehouse struct {
	ID   int64
	Name string
	Tax  int64 // basis points
	YTD  int64 // accessed atomically
}

// District is the DISTRICT relation.
type District struct {
	W, ID   int64
	Tax     int64
	YTD     int64 // accessed atomically
	NextOID int64 // accessed atomically
}

// Customer is the CUSTOMER relation.
type Customer struct {
	W, D, ID    int64
	First, Last string
	LastID      int64 // index of the generated last name (0..999)
	Credit      string
	Balance     int64 // accessed atomically
	YTDPayment  int64 // accessed atomically
	PaymentCnt  int64 // accessed atomically
	DeliveryCnt int64 // accessed atomically
	Data        string
}

// History is the HISTORY relation.
type History struct {
	W, D, C int64
	Amount  int64
	Data    string
}

// Order is the ORDER relation.
type Order struct {
	W, D, ID, C int64
	EntryD      int64
	Carrier     int64 // accessed atomically // 0 = not delivered
	OLCnt       int64
	AllLocal    int64
}

// OrderLine is the ORDER-LINE relation.
type OrderLine struct {
	W, D, O, Num int64
	I, SupplyW   int64
	Qty, Amount  int64
	DeliveryD    int64 // accessed atomically
	DistInfo     string
}

// Item is the ITEM relation.
type Item struct {
	ID    int64
	Name  string
	Price int64
	Data  string
}

// Stock is the STOCK relation.
type Stock struct {
	W, I      int64
	Qty       int64 // accessed atomically
	YTD       int64 // accessed atomically
	OrderCnt  int64 // accessed atomically
	RemoteCnt int64 // accessed atomically
	Data      string
}

// Composite-key bit widths (most significant first). All keys fit in 62
// bits: warehouse(10) district(4) customer(18) order(24) line(4) name(10).
var (
	wCustomer  = []int{10, 4, 18}
	wCustName  = []int{10, 4, 10, 18}
	wOrder     = []int{10, 4, 24}
	wOrderCust = []int{10, 4, 18, 24}
	wOrderLine = []int{10, 4, 24, 4}
	wStock     = []int{10, 18}
)

const (
	maxOID  = 1<<24 - 1
	maxCust = 1<<18 - 1
	maxLine = 15
)

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

// Config sizes the database and selects the index implementation.
type Config struct {
	Warehouses int
	Scale      int // divisor on customers/orders/items per the spec (1 = full)
	DS         ebrrq.DataStructure
	Tech       ebrrq.Mode
	MaxThreads int
	Seed       int64
	// Metrics, if non-nil, instruments every index of the database with
	// the observability layer (shared registry; counters aggregate over
	// all indexes).
	Metrics *obs.Registry
}

// DB is a populated TPC-C database.
type DB struct {
	cfg          Config
	CustPerDist  int
	ItemCount    int
	InitialOrder int // orders preloaded per district

	warehouses []Warehouse
	districts  []District

	customers  *dbx.Store[Customer]
	orders     *dbx.Store[Order]
	orderLines *dbx.Store[OrderLine]
	history    *dbx.Store[History]
	items      []Item
	stock      []Stock

	// handlePool recycles the per-thread index handles created during
	// population for the benchmark workers (index thread slots are a
	// fixed resource).
	poolMu     sync.Mutex
	handlePool []*handles

	idxItem      *dbx.Index // i -> item row id (slice offset)
	idxStock     *dbx.Index // (w,i) -> stock slice offset
	idxCustomer  *dbx.Index // (w,d,c) -> customer row
	idxCustName  *dbx.Index // (w,d,lastID,c) -> customer row
	idxOrder     *dbx.Index // (w,d,o) -> order row
	idxOrderCust *dbx.Index // (w,d,c,o) -> order row
	idxNewOrder  *dbx.Index // (w,d,o) -> order row
	idxOrderLine *dbx.Index // (w,d,o,num) -> order-line row
}

// Indexes returns the pluggable index list (for stats and tests).
func (db *DB) Indexes() []*dbx.Index {
	return []*dbx.Index{db.idxItem, db.idxStock, db.idxCustomer, db.idxCustName,
		db.idxOrder, db.idxOrderCust, db.idxNewOrder, db.idxOrderLine}
}

// New creates and populates a database.
func New(cfg Config) (*DB, error) {
	if cfg.Warehouses <= 0 {
		cfg.Warehouses = 1
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = cfg.Warehouses + 1
	}
	db := &DB{
		cfg:          cfg,
		CustPerDist:  maxInt(3000/cfg.Scale, 30),
		ItemCount:    maxInt(100_000/cfg.Scale, 100),
		InitialOrder: 0,
	}
	db.InitialOrder = db.CustPerDist // one initial order per customer
	mt := cfg.MaxThreads
	db.customers = dbx.NewStore[Customer](mt)
	db.orders = dbx.NewStore[Order](mt)
	db.orderLines = dbx.NewStore[OrderLine](mt)
	db.history = dbx.NewStore[History](mt)

	var err error
	mk := func(name string) *dbx.Index {
		if err != nil {
			return nil
		}
		var ix *dbx.Index
		ix, err = dbx.NewIndexWithOptions(name, cfg.DS, cfg.Tech, mt,
			ebrrq.Options{Metrics: cfg.Metrics})
		return ix
	}
	db.idxItem = mk("item")
	db.idxStock = mk("stock")
	db.idxCustomer = mk("customer")
	db.idxCustName = mk("customer_by_name")
	db.idxOrder = mk("order")
	db.idxOrderCust = mk("order_by_customer")
	db.idxNewOrder = mk("new_order")
	db.idxOrderLine = mk("order_line")
	if err != nil {
		return nil, err
	}
	db.populate()
	return db, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// lastNames are the TPC-C syllables; a last name is three of them indexed
// by the digits of a number in 0..999.
var lastSyllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName builds the spec's synthetic last name for id in 0..999.
func LastName(id int64) string {
	return lastSyllables[id/100] + lastSyllables[(id/10)%10] + lastSyllables[id%10]
}

// maxLastID is the largest last-name id actually present: the spec's 999
// at full scale, smaller when the customer population is scaled down (so
// by-name lookups keep the spec's hit rate).
func (db *DB) maxLastID() int64 {
	if db.CustPerDist >= 1000 {
		return 999
	}
	return int64(db.CustPerDist)
}

func (db *DB) populate() {
	W := db.cfg.Warehouses
	db.warehouses = make([]Warehouse, W+1)
	db.districts = make([]District, (W+1)*11)
	db.items = make([]Item, db.ItemCount+1)
	db.stock = make([]Stock, (W+1)*(db.ItemCount+1))

	rng := rand.New(rand.NewSource(db.cfg.Seed + 1))
	pad := strings.Repeat("x", 24)
	for i := 1; i <= db.ItemCount; i++ {
		db.items[i] = Item{ID: int64(i), Name: fmt.Sprintf("item-%d", i),
			Price: 100 + rng.Int63n(9900), Data: pad}
	}

	// Populate warehouses in parallel, one goroutine per warehouse (each
	// uses its own index handles and store segment).
	workers := W
	if workers > db.cfg.MaxThreads {
		workers = db.cfg.MaxThreads
	}
	var wg sync.WaitGroup
	next := atomic.Int64{}
	next.Store(1)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			h := db.takeHandles()
			defer db.putHandles(h)
			r := rand.New(rand.NewSource(db.cfg.Seed + int64(tid)*31337))
			if tid == 0 {
				// Item index is warehouse-independent.
				for i := 1; i <= db.ItemCount; i++ {
					h.item.Insert(int64(i), int64(i))
				}
			}
			for {
				w := next.Add(1) - 1
				if w > int64(W) {
					return
				}
				db.populateWarehouse(tid, w, h, r)
			}
		}(g)
	}
	wg.Wait()
}

type handles struct {
	item, stock, cust, custName, order, orderCust, newOrder, orderLine *dbx.Handle
}

// takeHandles returns pooled handles or registers fresh ones.
func (db *DB) takeHandles() *handles {
	db.poolMu.Lock()
	defer db.poolMu.Unlock()
	if n := len(db.handlePool); n > 0 {
		h := db.handlePool[n-1]
		db.handlePool = db.handlePool[:n-1]
		return h
	}
	return db.newHandles()
}

// putHandles returns handles to the pool. The caller must no longer use
// them (handle ownership transfers, never shared).
func (db *DB) putHandles(h *handles) {
	db.poolMu.Lock()
	db.handlePool = append(db.handlePool, h)
	db.poolMu.Unlock()
}

func (db *DB) newHandles() *handles {
	return &handles{
		item:      db.idxItem.NewHandle(),
		stock:     db.idxStock.NewHandle(),
		cust:      db.idxCustomer.NewHandle(),
		custName:  db.idxCustName.NewHandle(),
		order:     db.idxOrder.NewHandle(),
		orderCust: db.idxOrderCust.NewHandle(),
		newOrder:  db.idxNewOrder.NewHandle(),
		orderLine: db.idxOrderLine.NewHandle(),
	}
}

// kvPair is a deferred index insertion; population batches and shuffles
// them so the unbalanced trees (LFBST, Citrus) are not built from sorted
// keys, which would degenerate them into linked lists.
type kvPair struct{ k, v int64 }

func insertShuffled(h *dbx.Handle, r *rand.Rand, pairs []kvPair) {
	r.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	for _, p := range pairs {
		h.Insert(p.k, p.v)
	}
}

func (db *DB) populateWarehouse(tid int, w int64, h *handles, r *rand.Rand) {
	db.warehouses[w] = Warehouse{ID: w, Name: fmt.Sprintf("wh-%d", w), Tax: r.Int63n(20)}
	stockKVs := make([]kvPair, 0, db.ItemCount)
	for i := 1; i <= db.ItemCount; i++ {
		s := &db.stock[int(w)*(db.ItemCount+1)+i]
		s.W, s.I = w, int64(i)
		atomic.StoreInt64(&s.Qty, 10+r.Int63n(91))
		s.Data = "stockdata"
		stockKVs = append(stockKVs, kvPair{dbx.Key([]int64{w, int64(i)}, wStock),
			int64(int(w)*(db.ItemCount+1) + i)})
	}
	insertShuffled(h.stock, r, stockKVs)
	var custKVs, custNameKVs, orderKVs, orderCustKVs, newOrderKVs, olKVs []kvPair
	for d := int64(1); d <= 10; d++ {
		dist := &db.districts[w*11+d]
		dist.W, dist.ID = w, d
		dist.Tax = r.Int63n(20)
		atomic.StoreInt64(&dist.NextOID, int64(db.InitialOrder)+1)
		for c := int64(1); c <= int64(db.CustPerDist); c++ {
			lastID := c % 1000
			if c >= 1000 {
				lastID = nuRand(r, 255, 0, 999)
			}
			cust := Customer{W: w, D: d, ID: c,
				First: fmt.Sprintf("first-%d", c), Last: LastName(lastID), LastID: lastID,
				Credit: "GC", Data: "customerdata"}
			atomic.StoreInt64(&cust.Balance, -1000)
			rid := db.customers.Append(tid, cust)
			custKVs = append(custKVs, kvPair{dbx.Key([]int64{w, d, c}, wCustomer), rid})
			custNameKVs = append(custNameKVs, kvPair{dbx.Key([]int64{w, d, lastID, c}, wCustName), rid})
		}
		// One initial order per customer, in a random permutation; the
		// newest 30% are undelivered new-orders (spec: 900 of 3000).
		perm := r.Perm(db.CustPerDist)
		for o := int64(1); o <= int64(db.InitialOrder); o++ {
			c := int64(perm[o-1] + 1)
			olCnt := 5 + r.Int63n(11)
			ord := Order{W: w, D: d, ID: o, C: c, EntryD: 1, OLCnt: olCnt, AllLocal: 1}
			isNew := o > int64(db.InitialOrder-db.InitialOrder*3/10)
			if !isNew {
				atomic.StoreInt64(&ord.Carrier, 1+r.Int63n(10))
			}
			rid := db.orders.Append(tid, ord)
			orderKVs = append(orderKVs, kvPair{dbx.Key([]int64{w, d, o}, wOrder), rid})
			orderCustKVs = append(orderCustKVs, kvPair{dbx.Key([]int64{w, d, c, o}, wOrderCust), rid})
			if isNew {
				newOrderKVs = append(newOrderKVs, kvPair{dbx.Key([]int64{w, d, o}, wOrder), rid})
			}
			for n := int64(1); n <= olCnt; n++ {
				i := 1 + r.Int63n(int64(db.ItemCount))
				ol := OrderLine{W: w, D: d, O: o, Num: n, I: i, SupplyW: w,
					Qty: 5, Amount: r.Int63n(10000), DistInfo: "distinfo"}
				if !isNew {
					atomic.StoreInt64(&ol.DeliveryD, 1)
				}
				olRid := db.orderLines.Append(tid, ol)
				olKVs = append(olKVs, kvPair{dbx.Key([]int64{w, d, o, n}, wOrderLine), olRid})
			}
		}
	}
	insertShuffled(h.cust, r, custKVs)
	insertShuffled(h.custName, r, custNameKVs)
	insertShuffled(h.order, r, orderKVs)
	insertShuffled(h.orderCust, r, orderCustKVs)
	insertShuffled(h.newOrder, r, newOrderKVs)
	insertShuffled(h.orderLine, r, olKVs)
}

// nuRand is the spec's non-uniform random function NURand(A, x, y) with C=7.
func nuRand(r *rand.Rand, a, x, y int64) int64 {
	c := int64(7)
	return ((r.Int63n(a+1)|(x+r.Int63n(y-x+1)))+c)%(y-x+1) + x
}
