package tpcc

import (
	"math/rand"
	"sync/atomic"

	"ebrrq"
	"ebrrq/internal/dbx"
)

// TxnType identifies a TPC-C transaction.
type TxnType int

// The five TPC-C transaction types.
const (
	NewOrderTxn TxnType = iota
	PaymentTxn
	OrderStatusTxn
	DeliveryTxn
	StockLevelTxn
	numTxnTypes
)

// String names the transaction type.
func (t TxnType) String() string {
	return [...]string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}[t]
}

// Worker executes transactions against a DB. One per goroutine.
type Worker struct {
	db   *DB
	tid  int
	h    *handles
	rng  *rand.Rand
	home int64

	// Counts[t] is the number of committed transactions of each type;
	// Aborts counts user aborts (the spec's 1% invalid-item new-orders).
	Counts [numTxnTypes]uint64
	Aborts uint64
}

// NewWorker registers a worker; tid must be unique in [0, MaxThreads) and
// is also used as the row-store segment id.
func (db *DB) NewWorker(tid int) *Worker {
	return &Worker{
		db:   db,
		tid:  tid,
		h:    db.takeHandles(),
		rng:  rand.New(rand.NewSource(db.cfg.Seed + 7_000_003*int64(tid+1))),
		home: int64(tid%db.cfg.Warehouses) + 1,
	}
}

// Close returns the worker's index handles to the pool.
func (w *Worker) Close() { w.db.putHandles(w.h) }

// Total returns the number of committed transactions.
func (w *Worker) Total() uint64 {
	var t uint64
	for _, c := range w.Counts {
		t += c
	}
	return t
}

// RunOne executes one transaction drawn from the standard mix
// (45% NewOrder, 43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel)
// and returns its type.
func (w *Worker) RunOne() TxnType {
	p := w.rng.Intn(100)
	var t TxnType
	switch {
	case p < 45:
		t = NewOrderTxn
	case p < 88:
		t = PaymentTxn
	case p < 92:
		t = OrderStatusTxn
	case p < 96:
		t = DeliveryTxn
	default:
		t = StockLevelTxn
	}
	w.Run(t)
	return t
}

// Run executes one transaction of the given type.
func (w *Worker) Run(t TxnType) {
	switch t {
	case NewOrderTxn:
		w.newOrder()
	case PaymentTxn:
		w.payment()
	case OrderStatusTxn:
		w.orderStatus()
	case DeliveryTxn:
		w.delivery()
	case StockLevelTxn:
		w.stockLevel()
	}
}

func (w *Worker) randDistrict() int64 { return 1 + w.rng.Int63n(10) }

func (w *Worker) randCustomer() int64 {
	return nuRand(w.rng, 1023, 1, int64(w.db.CustPerDist))
}

func (w *Worker) randItem() int64 {
	return nuRand(w.rng, 8191, 1, int64(w.db.ItemCount))
}

// newOrder implements the NewOrder transaction (§2.4 of the spec): insert
// an order with 5-15 lines, updating stock quantities. 1% of transactions
// roll back on an invalid item (validated before any writes, as DBx1000
// does).
func (w *Worker) newOrder() {
	db := w.db
	wid := w.home
	d := w.randDistrict()
	c := w.randCustomer()

	olCnt := 5 + w.rng.Int63n(11)
	items := make([]int64, olCnt)
	supply := make([]int64, olCnt)
	qty := make([]int64, olCnt)
	rollback := w.rng.Intn(100) == 0
	allLocal := int64(1)
	for i := range items {
		if rollback && i == len(items)-1 {
			items[i] = int64(db.ItemCount) + 10_000 // unused item id
		} else {
			items[i] = w.randItem()
		}
		supply[i] = wid
		if db.cfg.Warehouses > 1 && w.rng.Intn(100) == 0 {
			// 1% remote supply warehouse.
			for {
				sw := 1 + w.rng.Int63n(int64(db.cfg.Warehouses))
				if sw != wid || db.cfg.Warehouses == 1 {
					supply[i] = sw
					break
				}
			}
			if supply[i] != wid {
				allLocal = 0
			}
		}
		qty[i] = 1 + w.rng.Int63n(10)
	}
	// Validate all items first; abort (no writes) on the invalid one.
	itemRows := make([]*Item, olCnt)
	for i, it := range items {
		rid, ok := w.h.item.Get(it)
		if !ok {
			w.Aborts++
			return
		}
		itemRows[i] = &db.items[rid]
	}

	dist := &db.districts[wid*11+d]
	o := atomic.AddInt64(&dist.NextOID, 1) - 1
	if o > maxOID {
		panic("tpcc: order id overflow")
	}

	ord := Order{W: wid, D: d, ID: o, C: c, EntryD: 1, OLCnt: olCnt, AllLocal: allLocal}
	rid := db.orders.Append(w.tid, ord)
	w.h.order.Insert(dbx.Key([]int64{wid, d, o}, wOrder), rid)
	w.h.orderCust.Insert(dbx.Key([]int64{wid, d, c, o}, wOrderCust), rid)
	w.h.newOrder.Insert(dbx.Key([]int64{wid, d, o}, wOrder), rid)

	for i := range items {
		srid, ok := w.h.stock.Get(dbx.Key([]int64{supply[i], items[i]}, wStock))
		if !ok {
			continue // impossible for valid items
		}
		st := &db.stock[srid]
		// s_quantity := s_quantity - qty, +91 if it would underflow 10.
		for {
			q := atomic.LoadInt64(&st.Qty)
			nq := q - qty[i]
			if nq < 10 {
				nq += 91
			}
			if atomic.CompareAndSwapInt64(&st.Qty, q, nq) {
				break
			}
		}
		atomic.AddInt64(&st.YTD, qty[i])
		atomic.AddInt64(&st.OrderCnt, 1)
		if supply[i] != wid {
			atomic.AddInt64(&st.RemoteCnt, 1)
		}
		amount := qty[i] * itemRows[i].Price
		ol := OrderLine{W: wid, D: d, O: o, Num: int64(i) + 1, I: items[i],
			SupplyW: supply[i], Qty: qty[i], Amount: amount, DistInfo: "distinfo"}
		olRid := db.orderLines.Append(w.tid, ol)
		w.h.orderLine.Insert(dbx.Key([]int64{wid, d, o, int64(i) + 1}, wOrderLine), olRid)
	}
	w.Counts[NewOrderTxn]++
}

// lookupCustomer resolves a customer by id (40%) or last name (60%, via a
// range query over the name index picking the middle match, per the spec).
func (w *Worker) lookupCustomer(wid, d int64) (int64, *Customer) {
	db := w.db
	if w.rng.Intn(100) < 40 {
		c := w.randCustomer()
		rid, ok := w.h.cust.Get(dbx.Key([]int64{wid, d, c}, wCustomer))
		if !ok {
			return 0, nil
		}
		return rid, db.customers.Get(rid)
	}
	lastID := nuRand(w.rng, 255, 0, db.maxLastID())
	lo := dbx.Key([]int64{wid, d, lastID, 0}, wCustName)
	hi := dbx.Key([]int64{wid, d, lastID, maxCust}, wCustName)
	matches := w.h.custName.Range(lo, hi)
	if len(matches) == 0 {
		return 0, nil
	}
	rid := matches[len(matches)/2].Value
	return rid, db.customers.Get(rid)
}

// payment implements the Payment transaction: update warehouse/district
// YTD, credit the customer, record history.
func (w *Worker) payment() {
	db := w.db
	wid := w.home
	d := w.randDistrict()
	// 15% of payments are for a customer of a remote warehouse/district.
	cw, cd := wid, d
	if db.cfg.Warehouses > 1 && w.rng.Intn(100) < 15 {
		cw = 1 + w.rng.Int63n(int64(db.cfg.Warehouses))
		cd = w.randDistrict()
	}
	amount := 100 + w.rng.Int63n(499_900)
	// Resolve the customer first: an aborted payment (no matching last
	// name) must leave no effects, or the warehouse/district/customer
	// YTD consistency condition breaks.
	_, cust := w.lookupCustomer(cw, cd)
	if cust == nil {
		w.Aborts++
		return
	}
	atomic.AddInt64(&db.warehouses[wid].YTD, amount)
	atomic.AddInt64(&db.districts[wid*11+d].YTD, amount)
	atomic.AddInt64(&cust.Balance, -amount)
	atomic.AddInt64(&cust.YTDPayment, amount)
	atomic.AddInt64(&cust.PaymentCnt, 1)
	db.history.Append(w.tid, History{W: wid, D: d, C: cust.ID, Amount: amount, Data: "payment"})
	w.Counts[PaymentTxn]++
}

// orderStatus implements the OrderStatus transaction: the customer's most
// recent order and its lines — two range queries.
func (w *Worker) orderStatus() {
	db := w.db
	wid := w.home
	d := w.randDistrict()
	_, cust := w.lookupCustomer(wid, d)
	if cust == nil {
		w.Aborts++
		return
	}
	lo := dbx.Key([]int64{wid, d, cust.ID, 0}, wOrderCust)
	hi := dbx.Key([]int64{wid, d, cust.ID, maxOID}, wOrderCust)
	orders := w.h.orderCust.Range(lo, hi)
	if len(orders) == 0 {
		w.Counts[OrderStatusTxn]++
		return
	}
	ord := db.orders.Get(orders[len(orders)-1].Value)
	llo := dbx.Key([]int64{wid, d, ord.ID, 0}, wOrderLine)
	lhi := dbx.Key([]int64{wid, d, ord.ID, maxLine}, wOrderLine)
	var total int64
	for _, kv := range w.h.orderLine.Range(llo, lhi) {
		total += db.orderLines.Get(kv.Value).Amount
	}
	_ = total
	w.Counts[OrderStatusTxn]++
}

// delivery implements the Delivery transaction: for every district of the
// home warehouse, deliver the oldest undelivered order (a range query over
// the new-order index, then an index delete that atomically claims it).
func (w *Worker) delivery() {
	db := w.db
	wid := w.home
	carrier := 1 + w.rng.Int63n(10)
	for d := int64(1); d <= 10; d++ {
		lo := dbx.Key([]int64{wid, d, 0}, wOrder)
		hi := dbx.Key([]int64{wid, d, maxOID}, wOrder)
		pending := w.h.newOrder.Range(lo, hi)
		delivered := false
		for _, kv := range pending {
			if !w.h.newOrder.Delete(kv.Key) {
				continue // another delivery claimed it; try the next
			}
			ord := db.orders.Get(kv.Value)
			atomic.StoreInt64(&ord.Carrier, carrier)
			llo := dbx.Key([]int64{wid, d, ord.ID, 0}, wOrderLine)
			lhi := dbx.Key([]int64{wid, d, ord.ID, maxLine}, wOrderLine)
			var total int64
			for _, ol := range w.h.orderLine.Range(llo, lhi) {
				row := db.orderLines.Get(ol.Value)
				atomic.StoreInt64(&row.DeliveryD, 1)
				total += row.Amount
			}
			crid, ok := w.h.cust.Get(dbx.Key([]int64{wid, d, ord.C}, wCustomer))
			if ok {
				cust := db.customers.Get(crid)
				atomic.AddInt64(&cust.Balance, total)
				atomic.AddInt64(&cust.DeliveryCnt, 1)
			}
			delivered = true
			break
		}
		_ = delivered
	}
	w.Counts[DeliveryTxn]++
}

// stockLevel implements the StockLevel transaction: scan the order lines of
// the district's last 20 orders (one large range query) and count distinct
// items whose stock is below a threshold.
func (w *Worker) stockLevel() {
	db := w.db
	wid := w.home
	d := w.randDistrict()
	threshold := 10 + w.rng.Int63n(11)
	next := atomic.LoadInt64(&db.districts[wid*11+d].NextOID)
	loOID := next - 20
	if loOID < 1 {
		loOID = 1
	}
	lo := dbx.Key([]int64{wid, d, loOID, 0}, wOrderLine)
	hi := dbx.Key([]int64{wid, d, next - 1, maxLine}, wOrderLine)
	seen := make(map[int64]struct{}, 64)
	low := 0
	for _, kv := range w.h.orderLine.Range(lo, hi) {
		ol := db.orderLines.Get(kv.Value)
		if _, dup := seen[ol.I]; dup {
			continue
		}
		seen[ol.I] = struct{}{}
		srid, ok := w.h.stock.Get(dbx.Key([]int64{wid, ol.I}, wStock))
		if ok && atomic.LoadInt64(&db.stock[srid].Qty) < threshold {
			low++
		}
	}
	_ = low
	w.Counts[StockLevelTxn]++
}

// Supported reports whether the index technique can run TPC-C (all except
// the Snap-collector, which the paper excludes from Figure 9 as it was
// 1000x slower — it must snapshot entire indexes per range query; it is
// still runnable here for demonstration at tiny scales).
func Supported(ds ebrrq.DataStructure, tech ebrrq.Mode) bool {
	return ebrrq.Supported(ds, tech)
}
