package tpcc

import (
	"sync/atomic"
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/dbx"
)

// TestConsistencyConditions checks the TPC-C §3.3 consistency conditions
// this engine maintains, after a concurrent run:
//
//	C1: W_YTD = Σ D_YTD for each warehouse.
//	C2: D_NEXT_O_ID − 1 = max(O_ID) in the order index, per district.
//	C3: every order id in [1, D_NEXT_O_ID) is present in the order index.
//	C4: for every order, the order-line index holds exactly O_OL_CNT lines.
//	C5: every new-order entry refers to an existing, undelivered order.
func TestConsistencyConditions(t *testing.T) {
	for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.LockFree} {
		t.Run(tech.String(), func(t *testing.T) {
			cfg := Config{Warehouses: 2, Scale: 100, DS: ebrrq.ABTree, Tech: tech,
				MaxThreads: 6, Seed: 11}
			db, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			db.Drive(4, 300*time.Millisecond)

			h := db.takeHandles()
			defer db.putHandles(h)
			for w := int64(1); w <= int64(cfg.Warehouses); w++ {
				// C1.
				var distYTD int64
				for d := int64(1); d <= 10; d++ {
					distYTD += atomic.LoadInt64(&db.districts[w*11+d].YTD)
				}
				if got := atomic.LoadInt64(&db.warehouses[w].YTD); got != distYTD {
					t.Fatalf("C1: warehouse %d YTD %d != Σ district YTD %d", w, got, distYTD)
				}
				for d := int64(1); d <= 10; d++ {
					next := atomic.LoadInt64(&db.districts[w*11+d].NextOID)
					// C2: the maximum order id equals NextOID-1.
					orders := h.order.Range(
						dbx.Key([]int64{w, d, 0}, wOrder),
						dbx.Key([]int64{w, d, maxOID}, wOrder))
					if int64(len(orders)) != next-1 {
						t.Fatalf("C3: district (%d,%d) has %d orders, want %d", w, d, len(orders), next-1)
					}
					maxO := int64(0)
					for _, kv := range orders {
						o := db.orders.Get(kv.Value)
						if o.ID > maxO {
							maxO = o.ID
						}
						// C4.
						lines := h.orderLine.Range(
							dbx.Key([]int64{w, d, o.ID, 0}, wOrderLine),
							dbx.Key([]int64{w, d, o.ID, maxLine}, wOrderLine))
						if int64(len(lines)) != o.OLCnt {
							t.Fatalf("C4: order (%d,%d,%d): %d lines, want %d", w, d, o.ID, len(lines), o.OLCnt)
						}
					}
					if maxO != next-1 {
						t.Fatalf("C2: district (%d,%d) max order %d, NextOID %d", w, d, maxO, next)
					}
					// C5.
					pending := h.newOrder.Range(
						dbx.Key([]int64{w, d, 0}, wOrder),
						dbx.Key([]int64{w, d, maxOID}, wOrder))
					for _, kv := range pending {
						o := db.orders.Get(kv.Value)
						if atomic.LoadInt64(&o.Carrier) != 0 {
							t.Fatalf("C5: new-order (%d,%d,%d) already delivered", w, d, o.ID)
						}
					}
				}
			}
		})
	}
}

// TestCustomerBalanceFlow: payments debit and deliveries credit customer
// balances; sum of balance deltas must equal deliveries' order totals
// minus payments. We verify a weaker but exact invariant: after a run of
// only Payment transactions, Σ balances = initial − Σ district YTD.
func TestCustomerBalanceFlow(t *testing.T) {
	cfg := Config{Warehouses: 1, Scale: 100, DS: ebrrq.SkipList, Tech: ebrrq.LockFree,
		MaxThreads: 4, Seed: 13}
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := sumBalances(db)
	w := db.NewWorker(0)
	defer w.Close()
	for i := 0; i < 500; i++ {
		w.Run(PaymentTxn)
	}
	paid := atomic.LoadInt64(&db.warehouses[1].YTD)
	if paid == 0 {
		t.Fatal("no payments applied")
	}
	if got := sumBalances(db); got != initial-paid {
		t.Fatalf("Σ balances = %d, want %d - %d = %d", got, initial, paid, initial-paid)
	}
}

func sumBalances(db *DB) int64 {
	var sum int64
	h := db.takeHandles()
	defer db.putHandles(h)
	for w := int64(1); w <= int64(db.cfg.Warehouses); w++ {
		for d := int64(1); d <= 10; d++ {
			kvs := h.cust.Range(
				dbx.Key([]int64{w, d, 0}, wCustomer),
				dbx.Key([]int64{w, d, maxCust}, wCustomer))
			for _, kv := range kvs {
				sum += atomic.LoadInt64(&db.customers.Get(kv.Value).Balance)
			}
		}
	}
	return sum
}

// TestStockLevelSafety: StockLevel must never crash on districts with few
// orders (loOID clamping) and must count only distinct items.
func TestStockLevelSafety(t *testing.T) {
	cfg := Config{Warehouses: 1, Scale: 100, DS: ebrrq.Citrus, Tech: ebrrq.Lock,
		MaxThreads: 3, Seed: 17}
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := db.NewWorker(0)
	defer w.Close()
	for i := 0; i < 100; i++ {
		w.Run(StockLevelTxn)
	}
	if w.Counts[StockLevelTxn] != 100 {
		t.Fatalf("committed %d stock-levels", w.Counts[StockLevelTxn])
	}
}
