package tpcc

import (
	"sync"
	"sync/atomic"
	"time"
)

// BenchResult aggregates a timed TPC-C run.
type BenchResult struct {
	Elapsed time.Duration
	Txns    uint64
	PerType [numTxnTypes]uint64
	Aborts  uint64
}

// TxnsPerUs returns committed transactions per microsecond (the paper's
// Figure 9 metric).
func (r BenchResult) TxnsPerUs() float64 {
	return float64(r.Txns) / float64(r.Elapsed.Microseconds())
}

// RunBench populates a database with cfg and drives `workers` goroutines
// through the standard transaction mix for the given duration.
func RunBench(cfg Config, workers int, duration time.Duration) (BenchResult, error) {
	if cfg.MaxThreads < workers+1 {
		cfg.MaxThreads = workers + 1
	}
	db, err := New(cfg)
	if err != nil {
		return BenchResult{}, err
	}
	return db.Drive(workers, duration), nil
}

// Drive runs `workers` goroutines through the standard mix for duration.
func (db *DB) Drive(workers int, duration time.Duration) BenchResult {
	var halt atomic.Bool
	var wg sync.WaitGroup
	results := make([]*Worker, workers)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			w := db.NewWorker(tid)
			defer w.Close()
			results[tid] = w
			start.Wait()
			for !halt.Load() {
				w.RunOne()
			}
		}(i)
	}
	t0 := time.Now()
	start.Done()
	time.Sleep(duration)
	halt.Store(true)
	wg.Wait()
	res := BenchResult{Elapsed: time.Since(t0)}
	for _, w := range results {
		res.Txns += w.Total()
		res.Aborts += w.Aborts
		for t, c := range w.Counts {
			res.PerType[t] += c
		}
	}
	return res
}
