package tpcc

import (
	"sync/atomic"
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/dbx"
)

func smallCfg(ds ebrrq.DataStructure, tech ebrrq.Mode) Config {
	return Config{Warehouses: 2, Scale: 100, DS: ds, Tech: tech, MaxThreads: 6, Seed: 7}
}

func TestLastName(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %s", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %s", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Fatalf("LastName(999) = %s", LastName(999))
	}
}

func TestPopulationShape(t *testing.T) {
	db, err := New(smallCfg(ebrrq.ABTree, ebrrq.LockFree))
	if err != nil {
		t.Fatal(err)
	}
	wantCust := 2 * 10 * db.CustPerDist
	if got := db.customers.Rows(); got != wantCust {
		t.Fatalf("customers = %d, want %d", got, wantCust)
	}
	if got := db.orders.Rows(); got != wantCust {
		t.Fatalf("orders = %d, want %d (one per customer)", got, wantCust)
	}
	if db.orderLines.Rows() < 5*wantCust {
		t.Fatalf("too few order lines: %d", db.orderLines.Rows())
	}
	// Each district's next order id follows the preloaded orders.
	for w := int64(1); w <= 2; w++ {
		for d := int64(1); d <= 10; d++ {
			if got := atomic.LoadInt64(&db.districts[w*11+d].NextOID); got != int64(db.InitialOrder)+1 {
				t.Fatalf("district (%d,%d) NextOID = %d", w, d, got)
			}
		}
	}
	// The new-order index holds the newest 30% per district.
	h := db.takeHandles()
	defer db.putHandles(h)
	for w := int64(1); w <= 2; w++ {
		for d := int64(1); d <= 10; d++ {
			lo := dbx.Key([]int64{w, d, 0}, wOrder)
			hi := dbx.Key([]int64{w, d, maxOID}, wOrder)
			pending := h.newOrder.Range(lo, hi)
			want := db.InitialOrder * 3 / 10
			if len(pending) != want {
				t.Fatalf("district (%d,%d): %d pending, want %d", w, d, len(pending), want)
			}
		}
	}
}

func TestTransactionsSequential(t *testing.T) {
	db, err := New(smallCfg(ebrrq.SkipList, ebrrq.Lock))
	if err != nil {
		t.Fatal(err)
	}
	w := db.NewWorker(0)
	defer w.Close()
	for _, txn := range []TxnType{NewOrderTxn, PaymentTxn, OrderStatusTxn, DeliveryTxn, StockLevelTxn} {
		for i := 0; i < 50; i++ {
			w.Run(txn)
		}
	}
	for txn, c := range w.Counts {
		if c == 0 {
			t.Fatalf("no committed %v transactions", TxnType(txn))
		}
	}
	// NewOrder grew some district's order sequence.
	grown := false
	for d := int64(1); d <= 10; d++ {
		if atomic.LoadInt64(&db.districts[w.home*11+d].NextOID) > int64(db.InitialOrder)+1 {
			grown = true
		}
	}
	if !grown {
		t.Fatal("NewOrder did not advance any district order id")
	}
}

// TestNewOrderVisibleToStatus checks cross-transaction consistency: after a
// NewOrder for a known customer, OrderStatus-style queries find it.
func TestNewOrderVisibleToStatus(t *testing.T) {
	db, err := New(smallCfg(ebrrq.Citrus, ebrrq.LockFree))
	if err != nil {
		t.Fatal(err)
	}
	w := db.NewWorker(0)
	defer w.Close()
	before := db.orders.Rows()
	for i := 0; i < 200; i++ {
		w.Run(NewOrderTxn)
	}
	added := db.orders.Rows() - before
	if added == 0 {
		t.Fatal("no orders inserted")
	}
	// Every inserted order is findable through the order index and its
	// lines through the order-line index.
	checked := 0
	for d := int64(1); d <= 10; d++ {
		next := atomic.LoadInt64(&db.districts[w.home*11+d].NextOID)
		for o := int64(db.InitialOrder) + 1; o < next; o++ {
			rid, ok := w.h.order.Get(dbx.Key([]int64{w.home, d, o}, wOrder))
			if !ok {
				t.Fatalf("order (%d,%d,%d) missing from index", w.home, d, o)
			}
			ord := db.orders.Get(rid)
			lines := w.h.orderLine.Range(
				dbx.Key([]int64{w.home, d, o, 0}, wOrderLine),
				dbx.Key([]int64{w.home, d, o, maxLine}, wOrderLine))
			if int64(len(lines)) != ord.OLCnt {
				t.Fatalf("order (%d,%d,%d): %d lines, want %d", w.home, d, o, len(lines), ord.OLCnt)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

// TestDeliveryDrainsNewOrders checks that repeated deliveries empty the
// new-order queue and mark orders delivered.
func TestDeliveryDrainsNewOrders(t *testing.T) {
	cfg := smallCfg(ebrrq.ABTree, ebrrq.Lock)
	cfg.Warehouses = 1
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := db.NewWorker(0)
	defer w.Close()
	pendingPerDist := db.InitialOrder * 3 / 10
	for i := 0; i < pendingPerDist+5; i++ {
		w.Run(DeliveryTxn)
	}
	for d := int64(1); d <= 10; d++ {
		pending := w.h.newOrder.Range(
			dbx.Key([]int64{1, d, 0}, wOrder),
			dbx.Key([]int64{1, d, maxOID}, wOrder))
		if len(pending) != 0 {
			t.Fatalf("district %d still has %d pending new-orders", d, len(pending))
		}
	}
}

// TestConcurrentDrive runs the full mix concurrently on several index
// techniques.
func TestConcurrentDrive(t *testing.T) {
	for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree, ebrrq.Unsafe} {
		t.Run(tech.String(), func(t *testing.T) {
			cfg := smallCfg(ebrrq.ABTree, tech)
			cfg.MaxThreads = 5
			db, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := db.Drive(4, 200*time.Millisecond)
			if res.Txns == 0 {
				t.Fatal("no transactions committed")
			}
			if res.PerType[NewOrderTxn] == 0 || res.PerType[PaymentTxn] == 0 {
				t.Fatalf("mix skewed: %+v", res.PerType)
			}
		})
	}
}

func TestRLUCitrusIndexes(t *testing.T) {
	cfg := smallCfg(ebrrq.Citrus, ebrrq.RLU)
	cfg.MaxThreads = 4
	db, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := db.Drive(2, 150*time.Millisecond)
	if res.Txns == 0 {
		t.Fatal("no transactions committed on RLU indexes")
	}
}
