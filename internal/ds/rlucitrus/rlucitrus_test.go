package rlucitrus

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialModel(t *testing.T) {
	tr := New(2)
	th := tr.Register()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 20000; i++ {
		k := rng.Int63n(300)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := rng.Int63n(1 << 30)
			_, have := model[k]
			if got := th.Insert(k, v); got == have {
				t.Fatalf("op %d: Insert(%d)=%v have=%v", i, k, got, have)
			}
			if !have {
				model[k] = v
			}
		case 4, 5, 6:
			_, have := model[k]
			if got := th.Delete(k); got != have {
				t.Fatalf("op %d: Delete(%d)=%v have=%v", i, k, got, have)
			}
			delete(model, k)
		case 7, 8:
			wantV, want := model[k]
			gotV, got := th.Contains(k)
			if got != want || (want && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d)=(%d,%v) want (%d,%v)", i, k, gotV, got, wantV, want)
			}
		default:
			lo := rng.Int63n(300)
			hi := lo + rng.Int63n(80)
			res := th.RangeQuery(lo, hi)
			want := 0
			for mk := range model {
				if lo <= mk && mk <= hi {
					want++
				}
			}
			if len(res) != want {
				t.Fatalf("op %d: RQ(%d,%d) len %d want %d", i, lo, hi, len(res), want)
			}
			for j := 1; j < len(res); j++ {
				if res[j-1].Key >= res[j].Key {
					t.Fatalf("op %d: RQ unsorted", i)
				}
			}
		}
	}
	if got, want := tr.Size(), len(model); got != want {
		t.Fatalf("Size=%d want %d", got, want)
	}
}

func TestTwoChildDeletion(t *testing.T) {
	tr := New(1)
	th := tr.Register()
	for _, k := range []int64{50, 25, 80, 60, 90, 55} {
		if !th.Insert(k, k*2) {
			t.Fatalf("insert %d", k)
		}
	}
	if !th.Delete(50) { // successor 55 deep in right subtree
		t.Fatal("delete 50")
	}
	for _, k := range []int64{25, 55, 60, 80, 90} {
		if v, ok := th.Contains(k); !ok || v != k*2 {
			t.Fatalf("lost %d after two-child delete", k)
		}
	}
	if !th.Delete(80) { // successor 90 is direct right child
		t.Fatal("delete 80")
	}
	res := th.RangeQuery(0, 100)
	if len(res) != 4 {
		t.Fatalf("RQ len %d: %v", len(res), res)
	}
}

// TestSnapshotPrefix mirrors the rlulist test on the tree.
func TestSnapshotPrefix(t *testing.T) {
	const writers = 3
	tr := New(writers + 2)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			th := tr.Register()
			r := rand.New(rand.NewSource(id))
			for i := int64(0); !stop.Load() && i < 1<<20; i++ {
				// Insert in increasing sequence order, random subtrees.
				th.Insert(id*1_000_000+i, r.Int63())
			}
		}(int64(w))
	}
	rq := tr.Register()
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		res := rq.RangeQuery(0, 1<<62)
		last := make(map[int64]int64)
		counts := make(map[int64]int64)
		for _, kv := range res {
			w := kv.Key / 1_000_000
			i := kv.Key % 1_000_000
			if i > last[w] {
				last[w] = i
			}
			counts[w]++
		}
		for w, hi := range last {
			if counts[w] != hi+1 {
				t.Fatalf("writer %d: %d keys, max index %d — snapshot hole", w, counts[w], hi)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}
