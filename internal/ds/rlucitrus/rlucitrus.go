// Package rlucitrus implements an internal binary search tree on RLU — the
// "RLU" baseline for the Citrus tree in the PPoPP '18 experiments (the
// paper chose Citrus for the comparison because its lock+RCU design is the
// closest to RLU's). Structure and deletion strategy mirror package citrus;
// synchronization replaces RCU + per-node locks with RLU sections, TryLock
// copies and commit-time RLUSync. Range queries are RLU snapshot reads.
package rlucitrus

import (
	"math"

	"ebrrq/internal/epoch"
	"ebrrq/internal/rlu"
)

type body struct {
	key, value int64
	child      [2]*rlu.Node[body]
}

// Tree is an internal BST on RLU.
type Tree struct {
	dom  *rlu.Domain[body]
	root *rlu.Node[body] // sentinel, key MaxInt64; user keys under child[0]
}

// Thread is a per-goroutine handle.
type Thread struct {
	t  *rlu.Thread[body]
	tr *Tree
}

// New creates an empty tree for up to maxThreads threads.
func New(maxThreads int) *Tree {
	return &Tree{
		dom:  rlu.NewDomain[body](maxThreads),
		root: rlu.NewNode(body{key: math.MaxInt64}),
	}
}

// Register allocates a thread handle.
func (tr *Tree) Register() *Thread {
	return &Thread{t: tr.dom.Register(), tr: tr}
}

func dirFor(key, nodeKey int64) int {
	if key < nodeKey {
		return 0
	}
	return 1
}

// locate returns (prev, dir, curr) with curr the (dereferenced) node
// holding key or nil; prev is dereferenced too.
func (tr *Tree) locate(t *rlu.Thread[body], key int64) (*rlu.Node[body], int, *rlu.Node[body]) {
	prev := t.Deref(tr.root)
	dir := 0
	curr := t.Deref(prev.Body.child[0])
	for curr != nil && curr.Body.key != key {
		prev = curr
		dir = dirFor(key, curr.Body.key)
		curr = t.Deref(curr.Body.child[dir])
	}
	return prev, dir, curr
}

// Insert adds key; false if present.
func (th *Thread) Insert(key, value int64) bool {
	t := th.t
	for {
		t.ReaderLock()
		prev, dir, curr := th.tr.locate(t, key)
		if curr != nil {
			t.ReaderUnlock()
			return false
		}
		p, ok := t.TryLock(prev)
		if !ok {
			t.Abort()
			continue
		}
		p.Body.child[dir] = rlu.NewNode(body{key: key, value: value})
		t.ReaderUnlock() // commit
		return true
	}
}

// Delete removes key; false if absent.
func (th *Thread) Delete(key int64) bool {
	t := th.t
	for {
		t.ReaderLock()
		prev, dir, curr := th.tr.locate(t, key)
		if curr == nil {
			t.ReaderUnlock()
			return false
		}
		p, ok := t.TryLock(prev)
		if !ok {
			t.Abort()
			continue
		}
		c, ok := t.TryLock(curr)
		if !ok {
			t.Abort()
			continue
		}
		l := t.Deref(c.Body.child[0])
		r := t.Deref(c.Body.child[1])
		if l == nil || r == nil {
			repl := c.Body.child[0]
			if l == nil {
				repl = c.Body.child[1]
			}
			p.Body.child[dir] = rlu.Orig(repl)
			t.ReaderUnlock() // commit
			return true
		}
		if th.deleteTwoChildren(p, dir, c, r) {
			return true
		}
		// aborted inside; retry
	}
}

// deleteTwoChildren replaces curr (locked copy c) with a copy of its
// successor and unlinks the original successor — all in one RLU commit, so
// readers never observe an intermediate state. Returns false after Abort.
func (th *Thread) deleteTwoChildren(p *rlu.Node[body], dir int, c *rlu.Node[body], r *rlu.Node[body]) bool {
	t := th.t
	// Find the successor (leftmost of the right subtree).
	succPrev := (*rlu.Node[body])(nil) // nil means succ is curr's right child
	succ := r
	for {
		next := t.Deref(succ.Body.child[0])
		if next == nil {
			break
		}
		succPrev = succ
		succ = next
	}
	s, ok := t.TryLock(succ)
	if !ok {
		t.Abort()
		return false
	}
	n := rlu.NewNode(body{key: s.Body.key, value: s.Body.value})
	n.Body.child[0] = rlu.Orig(c.Body.child[0])
	if succPrev == nil {
		// Successor is curr's right child: its right subtree hangs off
		// the replacement directly.
		n.Body.child[1] = rlu.Orig(s.Body.child[1])
	} else {
		sp, ok := t.TryLock(succPrev)
		if !ok {
			t.Abort()
			return false
		}
		n.Body.child[1] = rlu.Orig(c.Body.child[1])
		sp.Body.child[0] = rlu.Orig(s.Body.child[1])
	}
	p.Body.child[dir] = n
	t.ReaderUnlock() // commit
	return true
}

// Contains reports whether key is present.
func (th *Thread) Contains(key int64) (int64, bool) {
	t := th.t
	t.ReaderLock()
	_, _, curr := th.tr.locate(t, key)
	if curr == nil {
		t.ReaderUnlock()
		return 0, false
	}
	v := curr.Body.value
	t.ReaderUnlock()
	return v, true
}

// RangeQuery returns all pairs in [low, high]; linearized at the section
// start (RLU snapshot).
func (th *Thread) RangeQuery(low, high int64) []epoch.KV {
	t := th.t
	t.ReaderLock()
	var res []epoch.KV
	// Pruned in-order traversal: emits keys in sorted order.
	stack := make([]*rlu.Node[body], 0, 64)
	cur := t.Deref(t.Deref(th.tr.root).Body.child[0])
	for cur != nil || len(stack) > 0 {
		for cur != nil {
			stack = append(stack, cur)
			if low < cur.Body.key {
				cur = t.Deref(cur.Body.child[0])
			} else {
				cur = nil
			}
		}
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := n.Body.key
		if low <= k && k <= high {
			res = append(res, epoch.KV{Key: k, Value: n.Body.value})
		}
		if high > k {
			cur = t.Deref(n.Body.child[1])
		}
	}
	t.ReaderUnlock()
	return res
}

// Size counts keys (quiescent use only).
func (tr *Tree) Size() int {
	var count func(n *rlu.Node[body]) int
	count = func(n *rlu.Node[body]) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.Body.child[0]) + count(n.Body.child[1])
	}
	return count(tr.root.Body.child[0])
}
