package lazylist

import (
	"testing"

	"ebrrq/internal/dstest"
	"ebrrq/internal/rqprov"
)

func builder(p *rqprov.Provider) dstest.Set { return New(p) }

func TestSequential(t *testing.T) {
	for _, mode := range dstest.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunSequential(t, mode, true, builder, dstest.SequentialCfg{Seed: 21})
		})
	}
}

func TestValidatedConcurrent(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{Seed: 22})
		})
	}
}

func TestValidatedFullIteration(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{
				Seed: 23, RQRange: 1 << 30, KeySpace: 128,
			})
		})
	}
}
