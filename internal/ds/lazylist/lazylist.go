// Package lazylist implements the lazy linked list of Heller et al.
// ("LazyList" in the paper's Figure 4): per-node locks, optimistic
// validation, wait-free searches, and logical deletion via a marked flag.
//
// RQ integration: insertion linearizes at the write of pred.next under
// pred's lock (routed through UpdateCAS, which under the lock cannot fail);
// deletion linearizes at the write of the marked flag under the victim's
// lock. The marked flag is represented as a dcss.Slot (nil = live,
// &markedSentinel = logically deleted) so the lock-free provider can
// linearize it with DCSS like any other slot.
//
// The thread that marks a node is the thread that physically unlinks and
// retires it, so per-thread limbo lists are sorted by dtime and the
// provider may be configured with LimboSorted=true.
package lazylist

import (
	"math"
	"sync"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/snapc"
)

// markedSentinel is the non-nil value stored in a node's marked slot once
// the node is logically deleted.
var markedSentinel int64

func sentinelPtr() unsafe.Pointer { return unsafe.Pointer(&markedSentinel) }

type node struct {
	epoch.Node // must be first
	mu         sync.Mutex
	marked     dcss.Slot // nil = live
	next       dcss.Slot // *node
}

func ptr(v unsafe.Pointer) *node      { return (*node)(dcss.Ptr(v)) }
func fromNode(n *node) unsafe.Pointer { return unsafe.Pointer(n) }
func hdr(n *node) *epoch.Node         { return &n.Node }
func ownerOf(h *epoch.Node) *node     { return (*node)(unsafe.Pointer(h)) }

func (n *node) isMarked() bool { return n.marked.Load() != nil }

// List is a concurrent sorted set with linearizable range queries.
type List struct {
	head  *node
	tail  *node
	prov  *rqprov.Provider
	snap  *snapc.Registry // non-nil: range queries use the Snap-collector
	pools []freeList
}

type freeList struct {
	nodes []*node
	_     [40]byte
}

// New creates an empty lazy list attached to the provider. The provider's
// EBR domain is configured to recycle this list's nodes.
func New(p *rqprov.Provider) *List {
	tail := &node{}
	tail.InitKey(math.MaxInt64, 0)
	tail.SetITime(1)
	head := &node{}
	head.InitKey(math.MinInt64, 0)
	head.SetITime(1)
	head.next.Store(fromNode(tail))
	l := &List{head: head, tail: tail, prov: p}
	l.pools = make([]freeList, p.MaxThreads())
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &l.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, ownerOf(h))
		}
	})
	return l
}

// NewSnap creates a list whose range queries are served by the
// Petrank-Timnat Snap-collector (the paper's "Snap-collector" baseline).
// Use with a ModeUnsafe provider.
func NewSnap(p *rqprov.Provider) *List {
	l := New(p)
	l.snap = snapc.NewRegistry(p.MaxThreads())
	return l
}

func (l *List) reportIns(t *rqprov.Thread, h *epoch.Node) {
	if l.snap == nil {
		return
	}
	if c := l.snap.Active(); c != nil {
		c.Report(t.ID(), h, h.Key(), h.Value(), snapc.ReportInsert)
	}
}

func (l *List) reportDel(t *rqprov.Thread, h *epoch.Node) {
	if l.snap == nil {
		return
	}
	if c := l.snap.Active(); c != nil {
		c.Report(t.ID(), h, h.Key(), h.Value(), snapc.ReportDelete)
	}
}

func (l *List) alloc(t *rqprov.Thread, key, value int64) *node {
	fl := &l.pools[t.ID()]
	var n *node
	if ln := len(fl.nodes); ln > 0 {
		n = fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		t.PoolHit()
	} else {
		n = &node{}
		t.PoolMiss()
	}
	n.InitKey(key, value)
	n.marked.Store(nil)
	return n
}

func (l *List) dealloc(t *rqprov.Thread, n *node) {
	fl := &l.pools[t.ID()]
	if len(fl.nodes) < 4096 {
		fl.nodes = append(fl.nodes, n)
	}
}

// search returns (pred, curr) with pred.key < key <= curr.key, without
// acquiring locks or helping.
func (l *List) search(key int64) (*node, *node) {
	pred := l.head
	curr := ptr(pred.next.Load())
	for curr.Key() < key {
		pred = curr
		curr = ptr(curr.next.Load())
	}
	return pred, curr
}

// validate checks, under locks, that pred and curr are live and adjacent.
func validate(pred, curr *node) bool {
	return !pred.isMarked() && !curr.isMarked() && ptr(pred.next.Load()) == curr
}

func oneNode(h *epoch.Node) []*epoch.Node { return []*epoch.Node{h} }

// Insert adds key with the given value; false if key is present.
func (l *List) Insert(t *rqprov.Thread, key, value int64) bool {
	t.StartOp()
	defer t.EndOp()
	var n *node
	for {
		pred, curr := l.search(key)
		pred.mu.Lock()
		if !validate(pred, curr) {
			pred.mu.Unlock()
			continue
		}
		if curr.Key() == key {
			pred.mu.Unlock()
			if n != nil {
				l.dealloc(t, n)
			}
			l.reportIns(t, hdr(curr)) // observed present
			return false
		}
		if n == nil {
			n = l.alloc(t, key, value)
		}
		n.next.Store(fromNode(curr))
		// Linearization: publish pred.next = n (the CAS cannot fail:
		// pred.next is only written under pred's lock).
		if !t.UpdateCAS(&pred.next, fromNode(curr), fromNode(n),
			oneNode(hdr(n)), nil, false) {
			panic("lazylist: locked insert CAS failed")
		}
		l.reportIns(t, hdr(n))
		pred.mu.Unlock()
		return true
	}
}

// Delete removes key; false if key is absent.
func (l *List) Delete(t *rqprov.Thread, key int64) bool {
	t.StartOp()
	defer t.EndOp()
	for {
		pred, curr := l.search(key)
		if curr.Key() != key {
			return false
		}
		pred.mu.Lock()
		curr.mu.Lock()
		if !validate(pred, curr) {
			curr.mu.Unlock()
			pred.mu.Unlock()
			continue
		}
		// Linearization: logical deletion (records dtime).
		if !t.UpdateCAS(&curr.marked, nil, sentinelPtr(),
			nil, oneNode(hdr(curr)), false) {
			panic("lazylist: locked mark CAS failed")
		}
		l.reportDel(t, hdr(curr))
		succ := ptr(curr.next.Load())
		// Physical unlink: announce, unlink, retire.
		t.PhysicalDelete(oneNode(hdr(curr)), func() bool {
			if !pred.next.CAS(fromNode(curr), fromNode(succ)) {
				panic("lazylist: locked unlink CAS failed")
			}
			return true
		})
		curr.mu.Unlock()
		pred.mu.Unlock()
		return true
	}
}

// Contains reports whether key is present (wait-free).
func (l *List) Contains(t *rqprov.Thread, key int64) (int64, bool) {
	t.StartOp()
	defer t.EndOp()
	_, curr := l.search(key)
	if curr.Key() != key {
		return 0, false
	}
	if curr.isMarked() {
		l.reportDel(t, hdr(curr)) // observed marked
		return 0, false
	}
	l.reportIns(t, hdr(curr)) // observed present
	return curr.Value(), true
}

// RangeQuery returns all pairs with keys in [low, high], linearized at the
// query's timestamp increment. The result is valid until the thread's next
// range query.
func (l *List) RangeQuery(t *rqprov.Thread, low, high int64) []epoch.KV {
	t.StartOp()
	defer t.EndOp()
	if l.snap != nil {
		return l.snapRangeQuery(t, low, high)
	}
	t.TraversalStart(low, high)
	curr := ptr(l.head.next.Load())
	for curr.Key() < low {
		curr = ptr(curr.next.Load())
	}
	for curr.Key() <= high {
		t.VisitMaybeMarked(hdr(curr), curr.isMarked())
		curr = ptr(curr.next.Load())
	}
	return t.TraversalEnd()
}

// snapRangeQuery takes a full snapshot with the Snap-collector and filters
// it to [low, high].
func (l *List) snapRangeQuery(t *rqprov.Thread, low, high int64) []epoch.KV {
	c := l.snap.Acquire()
	curr := ptr(l.head.next.Load())
	for curr != l.tail && c.IsActive() {
		if curr.isMarked() {
			c.Report(t.ID(), hdr(curr), curr.Key(), curr.Value(), snapc.ReportDelete)
		} else {
			c.AddNode(hdr(curr), curr.Key(), curr.Value())
		}
		curr = ptr(curr.next.Load())
	}
	c.BlockFurtherNodes()
	c.Deactivate()
	c.BlockFurtherReports()
	return snapc.FilterRange(c.Reconstruct(), low, high)
}

// Size counts live nodes (quiescent use only).
func (l *List) Size() int {
	n := 0
	for curr := ptr(l.head.next.Load()); curr != l.tail; curr = ptr(curr.next.Load()) {
		if !curr.isMarked() {
			n++
		}
	}
	return n
}
