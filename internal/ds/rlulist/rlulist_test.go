package rlulist

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialModel(t *testing.T) {
	l := New(2)
	th := l.Register()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 20000; i++ {
		k := rng.Int63n(200)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := rng.Int63n(1 << 30)
			_, have := model[k]
			if got := th.Insert(k, v); got == have {
				t.Fatalf("op %d: Insert(%d)=%v have=%v", i, k, got, have)
			}
			if !have {
				model[k] = v
			}
		case 4, 5, 6:
			_, have := model[k]
			if got := th.Delete(k); got != have {
				t.Fatalf("op %d: Delete(%d)=%v have=%v", i, k, got, have)
			}
			delete(model, k)
		case 7, 8:
			wantV, want := model[k]
			gotV, got := th.Contains(k)
			if got != want || (want && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d)", i, k)
			}
		default:
			lo := rng.Int63n(200)
			hi := lo + rng.Int63n(50)
			res := th.RangeQuery(lo, hi)
			want := 0
			for mk := range model {
				if lo <= mk && mk <= hi {
					want++
				}
			}
			if len(res) != want {
				t.Fatalf("op %d: RQ(%d,%d) len %d want %d", i, lo, hi, len(res), want)
			}
		}
	}
}

// TestSnapshotPrefix: writers insert strictly increasing keys; every range
// query must see, per writer, a prefix of its sequence. A non-snapshot
// traversal can violate this (seeing key i+1 while missing key i).
func TestSnapshotPrefix(t *testing.T) {
	const writers = 3
	l := New(writers + 2)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			th := l.Register()
			for i := int64(0); !stop.Load() && i < 1<<20; i++ {
				th.Insert(id*1_000_000+i, i)
			}
		}(int64(w))
	}
	rq := l.Register()
	deadline := time.Now().Add(400 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		res := rq.RangeQuery(0, 1<<62)
		last := make(map[int64]int64)
		counts := make(map[int64]int64)
		for _, kv := range res {
			w := kv.Key / 1_000_000
			i := kv.Key % 1_000_000
			if i > last[w] {
				last[w] = i
			}
			counts[w]++
		}
		for w, hi := range last {
			if counts[w] != hi+1 {
				t.Fatalf("writer %d: saw %d keys but max index %d — snapshot hole", w, counts[w], hi)
			}
		}
		checks++
	}
	stop.Store(true)
	wg.Wait()
	if checks == 0 {
		t.Fatal("no snapshot checks performed")
	}
}

func TestConcurrentMixedSmoke(t *testing.T) {
	l := New(6)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := l.Register()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := r.Int63n(128)
				switch r.Intn(3) {
				case 0:
					th.Insert(k, k)
				case 1:
					th.Delete(k)
				default:
					th.Contains(k)
				}
			}
		}(int64(w))
	}
	rq := l.Register()
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		res := rq.RangeQuery(20, 90)
		for i, kv := range res {
			if kv.Key < 20 || kv.Key > 90 {
				t.Fatalf("out-of-range key %d", kv.Key)
			}
			if i > 0 && res[i-1].Key >= kv.Key {
				t.Fatalf("unsorted/duplicate result")
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}
