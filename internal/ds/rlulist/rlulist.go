// Package rlulist implements the linked list of the RLU paper (Matveev et
// al., SOSP '15) — the "RLU" baseline for LazyList in the PPoPP '18
// experiments. Readers (including range queries) run in RLU read-side
// sections and observe a consistent snapshot; every update commits through
// RLUSync, waiting for all concurrent sections.
//
// Within a section, originals cannot change (committers wait for active
// sections), so a successful TryLock needs no re-validation: conflicting
// writers are detected by TryLock failure, which aborts and retries.
package rlulist

import (
	"math"

	"ebrrq/internal/epoch"
	"ebrrq/internal/rlu"
)

type body struct {
	key, value int64
	next       *rlu.Node[body]
}

// List is a sorted set on RLU.
type List struct {
	dom  *rlu.Domain[body]
	head *rlu.Node[body]
}

// Thread is a per-goroutine handle.
type Thread struct {
	t *rlu.Thread[body]
	l *List
}

// New creates an empty list for up to maxThreads threads.
func New(maxThreads int) *List {
	tail := rlu.NewNode(body{key: math.MaxInt64})
	head := rlu.NewNode(body{key: math.MinInt64, next: tail})
	return &List{dom: rlu.NewDomain[body](maxThreads), head: head}
}

// Register allocates a thread handle.
func (l *List) Register() *Thread {
	return &Thread{t: l.dom.Register(), l: l}
}

// find locates (prev, curr) with prev.key < key <= curr.key inside the
// caller's section, dereferencing through RLU.
func (l *List) find(t *rlu.Thread[body], key int64) (*rlu.Node[body], *rlu.Node[body]) {
	prev := t.Deref(l.head)
	curr := t.Deref(prev.Body.next)
	for curr.Body.key < key {
		prev = curr
		curr = t.Deref(curr.Body.next)
	}
	return prev, curr
}

// Insert adds key; false if present.
func (th *Thread) Insert(key, value int64) bool {
	t := th.t
	for {
		t.ReaderLock()
		prev, curr := th.l.find(t, key)
		if curr.Body.key == key {
			t.ReaderUnlock()
			return false
		}
		p, ok := t.TryLock(prev)
		if !ok {
			t.Abort()
			continue
		}
		n := rlu.NewNode(body{key: key, value: value, next: rlu.Orig(curr)})
		p.Body.next = n
		t.ReaderUnlock() // commit
		return true
	}
}

// Delete removes key; false if absent.
func (th *Thread) Delete(key int64) bool {
	t := th.t
	for {
		t.ReaderLock()
		prev, curr := th.l.find(t, key)
		if curr.Body.key != key {
			t.ReaderUnlock()
			return false
		}
		p, ok := t.TryLock(prev)
		if !ok {
			t.Abort()
			continue
		}
		c, ok := t.TryLock(curr)
		if !ok {
			t.Abort()
			continue
		}
		p.Body.next = rlu.Orig(c.Body.next)
		t.ReaderUnlock() // commit; curr is unlinked (GC reclaims)
		return true
	}
}

// Contains reports whether key is present.
func (th *Thread) Contains(key int64) (int64, bool) {
	t := th.t
	t.ReaderLock()
	_, curr := th.l.find(t, key)
	found := curr.Body.key == key
	v := curr.Body.value
	t.ReaderUnlock()
	if !found {
		return 0, false
	}
	return v, true
}

// RangeQuery returns all pairs in [low, high]; it is linearized at the
// section start (RLU snapshot).
func (th *Thread) RangeQuery(low, high int64) []epoch.KV {
	t := th.t
	t.ReaderLock()
	var res []epoch.KV
	curr := t.Deref(t.Deref(th.l.head).Body.next)
	for curr.Body.key < low {
		curr = t.Deref(curr.Body.next)
	}
	for curr.Body.key <= high {
		res = append(res, epoch.KV{Key: curr.Body.key, Value: curr.Body.value})
		curr = t.Deref(curr.Body.next)
	}
	t.ReaderUnlock()
	return res
}

// Size counts keys (quiescent use only).
func (l *List) Size() int {
	n := 0
	curr := l.head.Body.next
	for curr.Body.key != math.MaxInt64 {
		n++
		curr = curr.Body.next
	}
	return n
}
