package citrus

import (
	"testing"

	"ebrrq/internal/dstest"
	"ebrrq/internal/rqprov"
)

func builder(p *rqprov.Provider) dstest.Set { return New(p) }

func TestSequential(t *testing.T) {
	for _, mode := range dstest.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunSequential(t, mode, true, builder, dstest.SequentialCfg{Seed: 41})
		})
	}
}

func TestValidatedConcurrent(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{Seed: 42})
		})
	}
}

func TestValidatedFullIteration(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{
				Seed: 43, RQRange: 1 << 30, KeySpace: 128,
			})
		})
	}
}

// TestTwoChildDeletion exercises the successor-copy path deterministically.
func TestTwoChildDeletion(t *testing.T) {
	p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLock, LimboSorted: true})
	tr := New(p)
	th := p.Register()
	// Build a tree where 50's successor is deep: 50 -> (25, 80 -> (60 -> (55), 90)).
	for _, k := range []int64{50, 25, 80, 60, 90, 55} {
		if !tr.Insert(th, k, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	if !tr.Delete(th, 50) { // successor is 55, succPrev is 60 (≠ curr)
		t.Fatal("delete 50 failed")
	}
	if _, ok := tr.Contains(th, 50); ok {
		t.Fatal("50 still present")
	}
	for _, k := range []int64{25, 55, 60, 80, 90} {
		if _, ok := tr.Contains(th, k); !ok {
			t.Fatalf("%d missing after two-child delete", k)
		}
	}
	if !tr.Delete(th, 80) { // successor 90 is direct right child
		t.Fatal("delete 80 failed")
	}
	res := tr.RangeQuery(th, 0, 100)
	want := []int64{25, 55, 60, 90}
	if len(res) != len(want) {
		t.Fatalf("RangeQuery = %v, want keys %v", res, want)
	}
	for i, k := range want {
		if res[i].Key != k {
			t.Fatalf("RangeQuery = %v, want keys %v", res, want)
		}
	}
	if got := tr.Size(); got != 4 {
		t.Fatalf("Size = %d, want 4", got)
	}
}
