// Package citrus implements the Citrus tree of Arbel and Attiya (PODC '14):
// an internal binary search tree synchronized with fine-grained per-node
// locks for updates and RCU for searches ("Citrus" in the paper's Figure 4).
// There is no logical deletion: nodes leave the key set at the same CAS
// that physically unlinks (or replaces) them.
//
// RQ integration: insertion linearizes at the child-pointer write that
// publishes the new node; deletion of a node with at most one child
// linearizes at the child-pointer CAS that splices it out; deletion of a
// node with two children linearizes at the CAS that replaces the victim
// with a fresh copy of its successor (the copy's key transiently duplicates
// the successor's key — the provider deduplicates, per §4 of the PPoPP '18
// paper). Between that CAS and the removal of the original successor the
// algorithm performs an RCU Synchronize, so searches that had already
// descended past the replacement still find the original; range queries
// participate as RCU readers.
//
// Deleted nodes are always retired by the deleting thread inside
// UpdateCAS, so limbo lists are dtime-sorted (LimboSorted=true).
package citrus

import (
	"math"
	"sync"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rcu"
	"ebrrq/internal/rqprov"
)

type node struct {
	epoch.Node // must be first
	mu         sync.Mutex
	retired    bool // guarded by mu: set when the node leaves the tree
	child      [2]dcss.Slot
}

func ptr(v unsafe.Pointer) *node      { return (*node)(dcss.Ptr(v)) }
func fromNode(n *node) unsafe.Pointer { return unsafe.Pointer(n) }
func hdr(n *node) *epoch.Node         { return &n.Node }
func ownerOf(h *epoch.Node) *node     { return (*node)(unsafe.Pointer(h)) }

// Tree is a concurrent internal BST with linearizable range queries.
type Tree struct {
	root  *node // sentinel with key MaxInt64; user keys go to child[0]
	prov  *rqprov.Provider
	rcu   *rcu.Domain
	pools []freeList
}

type freeList struct {
	nodes []*node
	_     [40]byte
}

// New creates an empty Citrus tree attached to the provider.
func New(p *rqprov.Provider) *Tree {
	root := &node{}
	root.InitKey(math.MaxInt64, 0)
	root.SetITime(1)
	t := &Tree{root: root, prov: p, rcu: rcu.NewDomain(p.MaxThreads())}
	t.pools = make([]freeList, p.MaxThreads())
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &t.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, ownerOf(h))
		}
	})
	return t
}

func (t *Tree) alloc(th *rqprov.Thread, key, value int64) *node {
	fl := &t.pools[th.ID()]
	var n *node
	if ln := len(fl.nodes); ln > 0 {
		n = fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		th.PoolHit()
	} else {
		n = &node{}
		th.PoolMiss()
	}
	n.InitKey(key, value)
	n.retired = false
	n.child[0].Store(nil)
	n.child[1].Store(nil)
	return n
}

func oneNode(h *epoch.Node) []*epoch.Node { return []*epoch.Node{h} }

// dirFor returns which child of n covers key.
func dirFor(n *node, key int64) int {
	if key < n.Key() {
		return 0
	}
	return 1
}

// locate descends from the root and returns (prev, dir, curr) where curr is
// the node holding key (or nil) and prev.child[dir] was observed to
// reference curr. Must run inside an RCU read-side critical section.
func (t *Tree) locate(key int64) (*node, int, *node) {
	prev := t.root
	dir := 0
	curr := ptr(prev.child[0].Load())
	for curr != nil && curr.Key() != key {
		prev = curr
		dir = dirFor(curr, key)
		curr = ptr(curr.child[dir].Load())
	}
	return prev, dir, curr
}

// Insert adds key with the given value; false if key is present.
func (t *Tree) Insert(th *rqprov.Thread, key, value int64) bool {
	th.StartOp()
	defer th.EndOp()
	tid := th.ID()
	for {
		t.rcu.ReadLock(tid)
		prev, dir, curr := t.locate(key)
		t.rcu.ReadUnlock(tid)
		if curr != nil {
			return false
		}
		prev.mu.Lock()
		if prev.retired || prev.child[dir].Load() != nil {
			prev.mu.Unlock()
			continue
		}
		n := t.alloc(th, key, value)
		// Linearization: publish the node (cannot fail under the lock).
		if !th.UpdateCAS(&prev.child[dir], nil, fromNode(n),
			oneNode(hdr(n)), nil, false) {
			panic("citrus: locked insert CAS failed")
		}
		prev.mu.Unlock()
		return true
	}
}

// Delete removes key; false if key is absent.
func (t *Tree) Delete(th *rqprov.Thread, key int64) bool {
	th.StartOp()
	defer th.EndOp()
	tid := th.ID()
	for {
		t.rcu.ReadLock(tid)
		prev, dir, curr := t.locate(key)
		t.rcu.ReadUnlock(tid)
		if curr == nil {
			return false
		}
		prev.mu.Lock()
		curr.mu.Lock()
		if prev.retired || curr.retired || ptr(prev.child[dir].Load()) != curr {
			curr.mu.Unlock()
			prev.mu.Unlock()
			continue
		}
		l := ptr(curr.child[0].Load())
		r := ptr(curr.child[1].Load())
		if l == nil || r == nil {
			// At most one child: splice curr out (linearization).
			repl := l
			if repl == nil {
				repl = r
			}
			curr.retired = true
			if !th.UpdateCAS(&prev.child[dir], fromNode(curr), fromNode(repl),
				nil, oneNode(hdr(curr)), true) {
				panic("citrus: locked splice CAS failed")
			}
			curr.mu.Unlock()
			prev.mu.Unlock()
			return true
		}
		if t.deleteTwoChildren(th, prev, dir, curr, l, r) {
			return true
		}
		// Validation deeper in the tree failed; retry from the top.
	}
}

// deleteTwoChildren removes curr (which has children l and r) by replacing
// it with a copy of its successor. It returns false (with all locks
// released) if successor validation failed and the operation must retry.
func (t *Tree) deleteTwoChildren(th *rqprov.Thread, prev *node, dir int, curr, l, r *node) bool {
	// Find the successor (leftmost node of the right subtree).
	succPrev, sdir, succ := curr, 1, r
	for {
		next := ptr(succ.child[0].Load())
		if next == nil {
			break
		}
		succPrev = succ
		sdir = 0
		succ = next
	}
	if succPrev != curr {
		succPrev.mu.Lock()
	}
	succ.mu.Lock()
	valid := !succPrev.retired && !succ.retired &&
		ptr(succPrev.child[sdir].Load()) == succ &&
		succ.child[0].Load() == nil
	if !valid {
		succ.mu.Unlock()
		if succPrev != curr {
			succPrev.mu.Unlock()
		}
		curr.mu.Unlock()
		prev.mu.Unlock()
		return false
	}

	n := t.alloc(th, succ.Key(), succ.Value())
	n.child[0].Store(fromNode(l))
	curr.retired = true

	if succPrev == curr {
		// The successor is curr's right child: a single CAS replaces
		// curr by the copy (whose right subtree is succ's) and removes
		// both curr and succ.
		n.child[1].Store(succ.child[1].Load())
		succ.retired = true
		if !th.UpdateCAS(&prev.child[dir], fromNode(curr), fromNode(n),
			oneNode(hdr(n)), []*epoch.Node{hdr(curr), hdr(succ)}, true) {
			panic("citrus: locked replace CAS failed")
		}
		succ.mu.Unlock()
		curr.mu.Unlock()
		prev.mu.Unlock()
		return true
	}

	// General case: install the copy (linearization #1: removes curr's
	// key; the copy duplicates succ's key), wait for concurrent readers
	// that may still be heading for the original successor, then unlink
	// the original (linearization #2: no net key-set change).
	n.child[1].Store(fromNode(r))
	if !th.UpdateCAS(&prev.child[dir], fromNode(curr), fromNode(n),
		oneNode(hdr(n)), oneNode(hdr(curr)), true) {
		panic("citrus: locked replace CAS failed")
	}
	t.rcu.Synchronize()
	succ.retired = true
	if !th.UpdateCAS(&succPrev.child[sdir], fromNode(succ), succ.child[1].Load(),
		nil, oneNode(hdr(succ)), true) {
		panic("citrus: locked successor unlink CAS failed")
	}
	succ.mu.Unlock()
	succPrev.mu.Unlock()
	curr.mu.Unlock()
	prev.mu.Unlock()
	return true
}

// Contains reports whether key is present.
func (t *Tree) Contains(th *rqprov.Thread, key int64) (int64, bool) {
	th.StartOp()
	defer th.EndOp()
	tid := th.ID()
	t.rcu.ReadLock(tid)
	_, _, curr := t.locate(key)
	t.rcu.ReadUnlock(tid)
	if curr == nil {
		return 0, false
	}
	return curr.Value(), true
}

// RangeQuery returns all pairs with keys in [low, high], linearized at the
// query's timestamp increment. The DFS traversal of Figure 1 satisfies
// COLLECT because Citrus searches are exactly sequential BST searches (§3.1
// of the PPoPP '18 paper); the query runs as an RCU reader so two-child
// deletions wait for it before removing original successor nodes.
func (t *Tree) RangeQuery(th *rqprov.Thread, low, high int64) []epoch.KV {
	th.StartOp()
	defer th.EndOp()
	tid := th.ID()
	t.rcu.ReadLock(tid)
	th.TraversalStart(low, high)
	stack := make([]*node, 0, 64)
	if c := ptr(t.root.child[0].Load()); c != nil {
		stack = append(stack, c)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := n.Key()
		if low <= k && k <= high {
			th.Visit(hdr(n))
		}
		if low < k {
			if c := ptr(n.child[0].Load()); c != nil {
				stack = append(stack, c)
			}
		}
		if high > k {
			if c := ptr(n.child[1].Load()); c != nil {
				stack = append(stack, c)
			}
		}
	}
	res := th.TraversalEnd()
	t.rcu.ReadUnlock(tid)
	return res
}

// Size counts the tree's nodes (quiescent use only).
func (t *Tree) Size() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		return 1 + count(ptr(n.child[0].Load())) + count(ptr(n.child[1].Load()))
	}
	return count(ptr(t.root.child[0].Load()))
}
