package abtree

import (
	"testing"

	"ebrrq/internal/dstest"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
)

func builder(p *rqprov.Provider) dstest.Set { return New(p) }

func TestSequential(t *testing.T) {
	for _, mode := range dstest.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunSequential(t, mode, true, builder, dstest.SequentialCfg{Seed: 61, KeySpace: 500})
		})
	}
}

func TestValidatedConcurrent(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{Seed: 62})
		})
	}
}

func TestValidatedFullIteration(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{
				Seed: 63, RQRange: 1 << 30, KeySpace: 128,
			})
		})
	}
}

// TestSplitMerge drives occupancy through splits and merges and checks
// structure invariants.
func TestSplitMerge(t *testing.T) {
	p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLock, LimboSorted: true})
	tr := New(p)
	th := p.Register()
	const n = 5000
	for i := int64(0); i < n; i++ {
		if !tr.Insert(th, i, i*2) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if got := tr.Size(); got != n {
		t.Fatalf("Size = %d, want %d", got, n)
	}
	if h := tr.Height(); h > 12 {
		t.Fatalf("height %d too large for %d sequential inserts", h, n)
	}
	res := tr.RangeQuery(th, 100, 199)
	if len(res) != 100 || res[0].Key != 100 || res[99].Key != 199 {
		t.Fatalf("RangeQuery(100,199) wrong: len=%d", len(res))
	}
	for i := int64(0); i < n; i += 2 {
		if !tr.Delete(th, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if got := tr.Size(); got != n/2 {
		t.Fatalf("Size after deletes = %d, want %d", got, n/2)
	}
	for i := int64(1); i < n; i += 2 {
		if v, ok := tr.Contains(th, i); !ok || v != i*2 {
			t.Fatalf("Contains(%d) = (%d,%v)", i, v, ok)
		}
	}
	for i := int64(1); i < n; i += 2 {
		if !tr.Delete(th, i) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if got := tr.Size(); got != 0 {
		t.Fatalf("Size after all deletes = %d, want 0", got)
	}
	// Reuse after full drain.
	if !tr.Insert(th, 42, 1) {
		t.Fatal("insert into drained tree failed")
	}
	if got := tr.Size(); got != 1 {
		t.Fatalf("Size = %d, want 1", got)
	}
}

// TestGroupUpdateRecording checks that a leaf split records its group
// update correctly: net key events must balance.
func TestGroupUpdateRecording(t *testing.T) {
	p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLock, LimboSorted: true})
	tr := New(p)
	th := p.Register()
	for i := int64(0); i < int64(B)+1; i++ { // force one split
		tr.Insert(th, i, i)
	}
	res := tr.RangeQuery(th, 0, int64(B)+5)
	if len(res) != B+1 {
		t.Fatalf("after split: %d keys, want %d", len(res), B+1)
	}
	var seen []int64
	for _, kv := range res {
		seen = append(seen, kv.Key)
	}
	for i, k := range seen {
		if k != int64(i) {
			t.Fatalf("key order broken: %v", seen)
		}
	}
	_ = epoch.KV{}
}
