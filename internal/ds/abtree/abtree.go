// Package abtree implements a concurrency-friendly, leaf-oriented relaxed
// (a,b)-tree ("ABTree" in the paper's Figure 4), modelled on Brown's
// relaxed (a,b)-tree: internal router nodes hold up to b routing keys,
// leaves hold between 0 and b key-value pairs, and every key-set change is
// a *group update* — a single child-pointer CAS that replaces one or more
// immutable nodes with freshly built ones (split, merge, redistribute),
// inserting and deleting several multi-key nodes atomically.
//
// Substitution note (see DESIGN.md): the original uses Brown's LLX/SCX
// lock-free primitives; here writers serialize with per-node locks, but
// every update still linearizes at a single child-pointer CAS routed
// through UpdateCAS — which is all the RQ provider requires — and the
// structure exercises exactly the feature that defeats the Snap-collector:
// atomic multi-node, multi-key replacements. Nodes are immutable except for
// an internal node's child slots; replaced nodes are marked retired under
// their lock so optimistic validation fails.
//
// Rebalancing is relaxed: a leaf split grows a router downward; leaf
// underflow merges or redistributes with a leaf sibling (replacing the
// parent router), splicing single-child routers out. Heights stay
// logarithmic in expectation for the random workloads of the paper's
// benchmarks.
//
// The updating thread retires every node it replaces inside UpdateCAS, so
// limbo lists are dtime-sorted (LimboSorted=true).
package abtree

import (
	"sync"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
)

const (
	// B is the maximum number of keys in a leaf (and of routing keys in a
	// router); A is the minimum leaf occupancy below which a leaf with a
	// leaf sibling is merged or redistributed.
	B = 16
	A = 6
)

type node struct {
	epoch.Node // must be first
	mu         sync.Mutex
	retired    bool // guarded by mu
	keys       []int64     // router: len(children)-1 separator keys
	children   []dcss.Slot // router only; nil for leaves
}

func ptr(v unsafe.Pointer) *node      { return (*node)(dcss.Ptr(v)) }
func fromNode(n *node) unsafe.Pointer { return unsafe.Pointer(n) }
func hdr(n *node) *epoch.Node         { return &n.Node }
func ownerOf(h *epoch.Node) *node     { return (*node)(unsafe.Pointer(h)) }

func (n *node) isLeaf() bool { return !n.Routing() }

// childIdx returns the index of the child covering key: child i covers
// [keys[i-1], keys[i]).
func (n *node) childIdx(key int64) int {
	i := 0
	for i < len(n.keys) && key >= n.keys[i] {
		i++
	}
	return i
}

// Tree is a concurrent relaxed (a,b)-tree with linearizable range queries.
type Tree struct {
	anchor *node // router with exactly one child; never retired
	prov   *rqprov.Provider
	pools  []freeList

	// groupCompress selects B-slack-style rebalancing (§6 of the paper:
	// "a lock-free relaxed B-slack tree, a space-efficient balanced
	// tree"): instead of merging/redistributing an underfull leaf with
	// one sibling, the *entire* sibling group is repacked into
	// ⌈total/B⌉ leaves in a single group update, bounding the group's
	// slack and keeping average occupancy near B.
	groupCompress bool
}

type freeList struct {
	nodes []*node
	_     [40]byte
}

// NewBSlack creates an empty tree using B-slack group compression instead
// of pairwise merge/redistribute ("BSlack" in the public API). The
// provider must be configured with MaxAnnounce >= 2*B+4: one compression
// deletes up to B+1 nodes atomically.
func NewBSlack(p *rqprov.Provider) *Tree {
	t := New(p)
	t.groupCompress = true
	return t
}

// New creates an empty tree attached to the provider.
func New(p *rqprov.Provider) *Tree {
	empty := &node{}
	empty.InitMulti(nil)
	empty.SetITime(1)
	anchor := &node{children: make([]dcss.Slot, 1)}
	anchor.InitRouting(0)
	anchor.children[0].Store(fromNode(empty))
	t := &Tree{anchor: anchor, prov: p}
	t.pools = make([]freeList, p.MaxThreads())
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &t.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, ownerOf(h))
		}
	})
	return t
}

func (t *Tree) shell(th *rqprov.Thread) *node {
	fl := &t.pools[th.ID()]
	if ln := len(fl.nodes); ln > 0 {
		n := fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		n.retired = false
		n.keys = n.keys[:0]
		n.children = nil
		th.PoolHit()
		return n
	}
	th.PoolMiss()
	return &node{}
}

func (t *Tree) newLeaf(th *rqprov.Thread, kvs []epoch.KV) *node {
	n := t.shell(th)
	n.children = nil
	n.InitMulti(kvs)
	return n
}

func (t *Tree) newRouter(th *rqprov.Thread, keys []int64, children []*node) *node {
	n := t.shell(th)
	n.InitRouting(0)
	n.keys = append(n.keys[:0], keys...)
	n.children = make([]dcss.Slot, len(children))
	for i, c := range children {
		n.children[i].Store(fromNode(c))
	}
	return n
}

// path describes the descent to a leaf.
type path struct {
	gp    *node // grandparent of the leaf (nil if parent is the anchor)
	gpIdx int
	p     *node // parent router of the leaf
	pIdx  int
	leaf  *node
}

func (t *Tree) descend(key int64) path {
	var gp *node
	gpIdx := 0
	p := t.anchor
	pIdx := 0
	n := ptr(p.children[0].Load())
	for !n.isLeaf() {
		gp, gpIdx = p, pIdx
		p, pIdx = n, n.childIdx(key)
		n = ptr(n.children[pIdx].Load())
	}
	return path{gp: gp, gpIdx: gpIdx, p: p, pIdx: pIdx, leaf: n}
}

// descendPreemptive is descend for writers: it splits any full router it is
// about to enter (classic top-down preemptive B-tree splitting), which
// guarantees the final parent has room to absorb a leaf split and keeps the
// height logarithmic. Returns false if a preemptive split was performed (or
// attempted) and the caller must restart.
func (t *Tree) descendPreemptive(th *rqprov.Thread, key int64, out *path) bool {
	var gp *node
	gpIdx := 0
	p := t.anchor
	pIdx := 0
	n := ptr(p.children[0].Load())
	for !n.isLeaf() {
		if len(n.children) >= B {
			t.splitRouter(th, gp, gpIdx, p, pIdx, n)
			return false
		}
		gp, gpIdx = p, pIdx
		p, pIdx = n, n.childIdx(key)
		n = ptr(n.children[pIdx].Load())
	}
	*out = path{gp: gp, gpIdx: gpIdx, p: p, pIdx: pIdx, leaf: n}
	return true
}

// splitRouter splits the full router n (child pIdx of p, which is child
// gpIdx of gp) into two routers. If p is the anchor, the split adds a level
// at the top (root growth); otherwise the halves are absorbed into a
// rebuilt p. Failures (validation) are silent: the caller restarts.
func (t *Tree) splitRouter(th *rqprov.Thread, gp *node, gpIdx int, p *node, pIdx int, n *node) {
	mid := len(n.children) / 2
	if p == t.anchor {
		p.mu.Lock()
		n.mu.Lock()
		if ptr(p.children[0].Load()) != n || n.retired || len(n.children) < B {
			n.mu.Unlock()
			p.mu.Unlock()
			return
		}
		n1, n2, sep := t.splitHalves(th, n, mid)
		top := t.newRouter(th, []int64{sep}, []*node{n1, n2})
		n.retired = true
		if !th.UpdateCAS(&p.children[0], fromNode(n), fromNode(top),
			[]*epoch.Node{hdr(n1), hdr(n2), hdr(top)}, []*epoch.Node{hdr(n)}, true) {
			panic("abtree: locked root split CAS failed")
		}
		n.mu.Unlock()
		p.mu.Unlock()
		return
	}
	gp.mu.Lock()
	p.mu.Lock()
	n.mu.Lock()
	unlock := func() { n.mu.Unlock(); p.mu.Unlock(); gp.mu.Unlock() }
	if gp.retired || p.retired || n.retired ||
		ptr(gp.children[gpIdx].Load()) != p ||
		ptr(p.children[pIdx].Load()) != n ||
		len(p.children) >= B || len(n.children) < B {
		unlock()
		return
	}
	n1, n2, sep := t.splitHalves(th, n, mid)
	np := t.rebuildWithSplit(th, p, pIdx, n1, n2, sep)
	p.retired = true
	n.retired = true
	if !th.UpdateCAS(&gp.children[gpIdx], fromNode(p), fromNode(np),
		[]*epoch.Node{hdr(n1), hdr(n2), hdr(np)},
		[]*epoch.Node{hdr(p), hdr(n)}, true) {
		panic("abtree: locked router split CAS failed")
	}
	unlock()
}

// splitHalves builds the two halves of router n around child index mid and
// returns them with the separator key. n must be locked.
func (t *Tree) splitHalves(th *rqprov.Thread, n *node, mid int) (*node, *node, int64) {
	c1 := make([]*node, mid)
	for i := 0; i < mid; i++ {
		c1[i] = ptr(n.children[i].Load())
	}
	c2 := make([]*node, len(n.children)-mid)
	for i := mid; i < len(n.children); i++ {
		c2[i-mid] = ptr(n.children[i].Load())
	}
	n1 := t.newRouter(th, n.keys[:mid-1], c1)
	n2 := t.newRouter(th, n.keys[mid:], c2)
	return n1, n2, n.keys[mid-1]
}

// rebuildWithSplit returns a copy of router p in which child pIdx has been
// replaced by n1, sep, n2. p must be locked.
func (t *Tree) rebuildWithSplit(th *rqprov.Thread, p *node, pIdx int, n1, n2 *node, sep int64) *node {
	nk := make([]int64, 0, len(p.keys)+1)
	nc := make([]*node, 0, len(p.children)+1)
	for i := range p.children {
		if i == pIdx {
			nc = append(nc, n1, n2)
			nk = append(nk, sep)
		} else {
			nc = append(nc, ptr(p.children[i].Load()))
		}
		if i < len(p.keys) {
			nk = append(nk, p.keys[i])
		}
	}
	return t.newRouter(th, nk, nc)
}

func findKV(kvs []epoch.KV, key int64) int {
	for i := range kvs {
		if kvs[i].Key == key {
			return i
		}
		if kvs[i].Key > key {
			break
		}
	}
	return -1
}

// Contains reports whether key is present.
func (t *Tree) Contains(th *rqprov.Thread, key int64) (int64, bool) {
	th.StartOp()
	defer th.EndOp()
	pt := t.descend(key)
	if i := findKV(pt.leaf.Multi(), key); i >= 0 {
		return pt.leaf.Multi()[i].Value, true
	}
	return 0, false
}

// Insert adds key with the given value; false if key is present. Full
// routers on the descent are split preemptively, so the leaf's parent can
// always absorb a leaf split (log-height growth at the root).
func (t *Tree) Insert(th *rqprov.Thread, key, value int64) bool {
	th.StartOp()
	defer th.EndOp()
	for {
		var pt path
		if !t.descendPreemptive(th, key, &pt) {
			continue
		}
		p, leaf := pt.p, pt.leaf
		old := leaf.Multi()
		if findKV(old, key) >= 0 {
			return false
		}
		// Build the sorted union.
		kvs := make([]epoch.KV, 0, len(old)+1)
		ins := false
		for _, kv := range old {
			if !ins && key < kv.Key {
				kvs = append(kvs, epoch.KV{Key: key, Value: value})
				ins = true
			}
			kvs = append(kvs, kv)
		}
		if !ins {
			kvs = append(kvs, epoch.KV{Key: key, Value: value})
		}

		if len(kvs) <= B {
			// Fast path: replace the leaf in place.
			p.mu.Lock()
			if p.retired || ptr(p.children[pt.pIdx].Load()) != leaf {
				p.mu.Unlock()
				continue
			}
			if findKV(leaf.Multi(), key) >= 0 {
				p.mu.Unlock()
				return false
			}
			nl := t.newLeaf(th, kvs)
			if !th.UpdateCAS(&p.children[pt.pIdx], fromNode(leaf), fromNode(nl),
				[]*epoch.Node{hdr(nl)}, []*epoch.Node{hdr(leaf)}, true) {
				panic("abtree: locked replace CAS failed")
			}
			p.mu.Unlock()
			return true
		}

		// Overflow: split the leaf and absorb the halves into the parent.
		mid := len(kvs) / 2
		sep := kvs[mid].Key
		if p == t.anchor {
			// The whole tree is a single leaf: grow a root router.
			p.mu.Lock()
			if ptr(p.children[0].Load()) != leaf {
				p.mu.Unlock()
				continue
			}
			l1 := t.newLeaf(th, kvs[:mid:mid])
			l2 := t.newLeaf(th, kvs[mid:])
			r := t.newRouter(th, []int64{sep}, []*node{l1, l2})
			if !th.UpdateCAS(&p.children[0], fromNode(leaf), fromNode(r),
				[]*epoch.Node{hdr(l1), hdr(l2), hdr(r)}, []*epoch.Node{hdr(leaf)}, true) {
				panic("abtree: locked root grow CAS failed")
			}
			p.mu.Unlock()
			return true
		}
		gp := pt.gp
		gp.mu.Lock()
		p.mu.Lock()
		if gp.retired || p.retired ||
			ptr(gp.children[pt.gpIdx].Load()) != p ||
			ptr(p.children[pt.pIdx].Load()) != leaf ||
			len(p.children) >= B {
			p.mu.Unlock()
			gp.mu.Unlock()
			continue
		}
		l1 := t.newLeaf(th, kvs[:mid:mid])
		l2 := t.newLeaf(th, kvs[mid:])
		np := t.rebuildWithSplit(th, p, pt.pIdx, l1, l2, sep)
		p.retired = true
		// Group update: one CAS inserts two leaves and a rebuilt router
		// and deletes the old leaf and router.
		if !th.UpdateCAS(&gp.children[pt.gpIdx], fromNode(p), fromNode(np),
			[]*epoch.Node{hdr(l1), hdr(l2), hdr(np)},
			[]*epoch.Node{hdr(leaf), hdr(p)}, true) {
			panic("abtree: locked absorb CAS failed")
		}
		p.mu.Unlock()
		gp.mu.Unlock()
		return true
	}
}

// Delete removes key; false if key is absent.
func (t *Tree) Delete(th *rqprov.Thread, key int64) bool {
	th.StartOp()
	defer th.EndOp()
	for {
		pt := t.descend(key)
		p, leaf := pt.p, pt.leaf
		if findKV(leaf.Multi(), key) < 0 {
			return false
		}
		old := leaf.Multi()
		kvs := make([]epoch.KV, 0, len(old)-1)
		for _, kv := range old {
			if kv.Key != key {
				kvs = append(kvs, kv)
			}
		}
		// Fast path: no underflow, or no grandparent to rebuild through.
		if len(kvs) >= A || pt.gp == nil {
			p.mu.Lock()
			if p.retired || ptr(p.children[pt.pIdx].Load()) != leaf {
				p.mu.Unlock()
				continue
			}
			nl := t.newLeaf(th, kvs)
			if !th.UpdateCAS(&p.children[pt.pIdx], fromNode(leaf), fromNode(nl),
				[]*epoch.Node{hdr(nl)}, []*epoch.Node{hdr(leaf)}, true) {
				panic("abtree: locked replace CAS failed")
			}
			p.mu.Unlock()
			return true
		}
		if t.groupCompress {
			if t.deleteCompress(th, pt, kvs) {
				return true
			}
		} else if t.deleteRebalance(th, pt, kvs) {
			return true
		}
	}
}

// deleteRebalance removes key from pt.leaf (whose remaining pairs are kvs,
// an underflow) by merging or redistributing with a sibling, replacing the
// parent router through the grandparent's child slot — a group update that
// deletes up to three nodes and inserts up to three in one CAS. Returns
// false to retry from the top.
func (t *Tree) deleteRebalance(th *rqprov.Thread, pt path, kvs []epoch.KV) bool {
	gp, p, leaf := pt.gp, pt.p, pt.leaf
	gp.mu.Lock()
	p.mu.Lock()
	unlock := func() { p.mu.Unlock(); gp.mu.Unlock() }
	if gp.retired || p.retired ||
		ptr(gp.children[pt.gpIdx].Load()) != p ||
		ptr(p.children[pt.pIdx].Load()) != leaf {
		unlock()
		return false
	}
	sIdx := pt.pIdx - 1
	if pt.pIdx == 0 {
		sIdx = 1
	}
	sib := ptr(p.children[sIdx].Load())
	gpSlot := &gp.children[pt.gpIdx]

	if !sib.isLeaf() {
		// No leaf sibling to merge with: tolerate the underfull leaf
		// (relaxed tree) by plain replacement.
		nl := t.newLeaf(th, kvs)
		if !th.UpdateCAS(&p.children[pt.pIdx], fromNode(leaf), fromNode(nl),
			[]*epoch.Node{hdr(nl)}, []*epoch.Node{hdr(leaf)}, true) {
			panic("abtree: locked replace CAS failed")
		}
		unlock()
		return true
	}

	// Merge the remaining pairs with the leaf sibling, keeping key order.
	var combined []epoch.KV
	if sIdx < pt.pIdx {
		combined = append(append(make([]epoch.KV, 0, len(sib.Multi())+len(kvs)), sib.Multi()...), kvs...)
	} else {
		combined = append(append(make([]epoch.KV, 0, len(sib.Multi())+len(kvs)), kvs...), sib.Multi()...)
	}

	lo, hi := pt.pIdx, sIdx
	if hi < lo {
		lo, hi = hi, lo
	}
	if len(combined) <= B {
		merged := t.newLeaf(th, combined)
		if len(p.children) == 2 {
			// The router would be left with one child: splice it out.
			p.retired = true
			if !th.UpdateCAS(gpSlot, fromNode(p), fromNode(merged),
				[]*epoch.Node{hdr(merged)},
				[]*epoch.Node{hdr(p), hdr(leaf), hdr(sib)}, true) {
				panic("abtree: locked merge CAS failed")
			}
			unlock()
			return true
		}
		// Rebuild the parent with one fewer child.
		nk := make([]int64, 0, len(p.keys)-1)
		nc := make([]*node, 0, len(p.children)-1)
		for i := range p.children {
			switch {
			case i == lo:
				nc = append(nc, merged)
			case i == hi:
				// dropped
			default:
				nc = append(nc, ptr(p.children[i].Load()))
			}
		}
		for i := range p.keys {
			if i != lo {
				nk = append(nk, p.keys[i])
			}
		}
		np := t.newRouter(th, nk, nc)
		p.retired = true
		if !th.UpdateCAS(gpSlot, fromNode(p), fromNode(np),
			[]*epoch.Node{hdr(merged), hdr(np)},
			[]*epoch.Node{hdr(p), hdr(leaf), hdr(sib)}, true) {
			panic("abtree: locked merge CAS failed")
		}
		unlock()
		return true
	}

	// Redistribute: split the combined run into two halves and rebuild the
	// parent with an updated separator.
	mid := len(combined) / 2
	l1 := t.newLeaf(th, combined[:mid:mid])
	l2 := t.newLeaf(th, combined[mid:])
	nk := append(make([]int64, 0, len(p.keys)), p.keys...)
	nk[lo] = combined[mid].Key
	nc := make([]*node, len(p.children))
	for i := range p.children {
		switch i {
		case lo:
			nc[i] = l1
		case hi:
			nc[i] = l2
		default:
			nc[i] = ptr(p.children[i].Load())
		}
	}
	np := t.newRouter(th, nk, nc)
	p.retired = true
	if !th.UpdateCAS(gpSlot, fromNode(p), fromNode(np),
		[]*epoch.Node{hdr(l1), hdr(l2), hdr(np)},
		[]*epoch.Node{hdr(p), hdr(leaf), hdr(sib)}, true) {
		panic("abtree: locked redistribute CAS failed")
	}
	unlock()
	return true
}

// deleteCompress removes key from pt.leaf (remaining pairs kvs, an
// underflow) the B-slack way: if every child of the parent is a leaf, the
// whole sibling group is repacked into evenly filled leaves of at most B
// pairs and the parent is rebuilt (or spliced out when one leaf remains) —
// one CAS that deletes up to B+1 nodes. Returns false to retry.
func (t *Tree) deleteCompress(th *rqprov.Thread, pt path, kvs []epoch.KV) bool {
	gp, p, leaf := pt.gp, pt.p, pt.leaf
	gp.mu.Lock()
	p.mu.Lock()
	unlock := func() { p.mu.Unlock(); gp.mu.Unlock() }
	if gp.retired || p.retired ||
		ptr(gp.children[pt.gpIdx].Load()) != p ||
		ptr(p.children[pt.pIdx].Load()) != leaf {
		unlock()
		return false
	}
	// Gather the sibling group; fall back to a plain replacement if any
	// child is a router (cannot repack across levels).
	group := make([]*node, len(p.children))
	total := len(kvs)
	for i := range p.children {
		c := ptr(p.children[i].Load())
		if !c.isLeaf() {
			nl := t.newLeaf(th, kvs)
			if !th.UpdateCAS(&p.children[pt.pIdx], fromNode(leaf), fromNode(nl),
				[]*epoch.Node{hdr(nl)}, []*epoch.Node{hdr(leaf)}, true) {
				panic("abtree: locked replace CAS failed")
			}
			unlock()
			return true
		}
		group[i] = c
		if i != pt.pIdx {
			total += len(c.Multi())
		}
	}
	// Concatenate the group's pairs in key order, with the deleted leaf's
	// remainder substituted in place.
	all := make([]epoch.KV, 0, total)
	for i, c := range group {
		if i == pt.pIdx {
			all = append(all, kvs...)
		} else {
			all = append(all, c.Multi()...)
		}
	}
	nLeaves := (len(all) + B - 1) / B
	if nLeaves == 0 {
		nLeaves = 1
	}
	dnodes := make([]*epoch.Node, 0, len(group)+1)
	dnodes = append(dnodes, hdr(p))
	for _, c := range group {
		dnodes = append(dnodes, hdr(c))
	}
	p.retired = true
	gpSlot := &gp.children[pt.gpIdx]

	if nLeaves == 1 {
		// The whole group fits one leaf: splice the router out.
		merged := t.newLeaf(th, all)
		if !th.UpdateCAS(gpSlot, fromNode(p), fromNode(merged),
			[]*epoch.Node{hdr(merged)}, dnodes, true) {
			panic("abtree: locked compress CAS failed")
		}
		unlock()
		return true
	}
	// Evenly repack into nLeaves leaves (sizes differ by at most one, the
	// B-slack shape) under a rebuilt router.
	leaves := make([]*node, nLeaves)
	keys := make([]int64, 0, nLeaves-1)
	inodes := make([]*epoch.Node, 0, nLeaves+1)
	base, rem := len(all)/nLeaves, len(all)%nLeaves
	off := 0
	for i := 0; i < nLeaves; i++ {
		sz := base
		if i < rem {
			sz++
		}
		part := all[off : off+sz : off+sz]
		off += sz
		leaves[i] = t.newLeaf(th, part)
		inodes = append(inodes, hdr(leaves[i]))
		if i > 0 {
			keys = append(keys, part[0].Key)
		}
	}
	np := t.newRouter(th, keys, leaves)
	inodes = append(inodes, hdr(np))
	if !th.UpdateCAS(gpSlot, fromNode(p), fromNode(np), inodes, dnodes, true) {
		panic("abtree: locked compress CAS failed")
	}
	unlock()
	return true
}

// RangeQuery returns all pairs with keys in [low, high], linearized at the
// query's timestamp increment. The DFS visits every leaf whose covered
// interval intersects the range; searches are standard multiway-search-tree
// searches, so the traversal satisfies COLLECT (§3.1 generalises directly
// to nodes with multiple keys).
func (t *Tree) RangeQuery(th *rqprov.Thread, low, high int64) []epoch.KV {
	th.StartOp()
	defer th.EndOp()
	th.TraversalStart(low, high)
	stack := make([]*node, 0, 64)
	stack = append(stack, ptr(t.anchor.children[0].Load()))
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.isLeaf() {
			th.Visit(hdr(n))
			continue
		}
		for i := range n.children {
			if i > 0 && n.keys[i-1] > high {
				break
			}
			if i < len(n.keys) && n.keys[i] <= low {
				continue
			}
			stack = append(stack, ptr(n.children[i].Load()))
		}
	}
	return th.TraversalEnd()
}

// Size counts keys (quiescent use only).
func (t *Tree) Size() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n.isLeaf() {
			return len(n.Multi())
		}
		s := 0
		for i := range n.children {
			s += count(ptr(n.children[i].Load()))
		}
		return s
	}
	return count(ptr(t.anchor.children[0].Load()))
}

// Height returns the tree height (quiescent use only; for balance tests).
func (t *Tree) Height() int {
	var h func(n *node) int
	h = func(n *node) int {
		if n.isLeaf() {
			return 1
		}
		m := 0
		for i := range n.children {
			if d := h(ptr(n.children[i].Load())); d > m {
				m = d
			}
		}
		return m + 1
	}
	return h(ptr(t.anchor.children[0].Load()))
}
