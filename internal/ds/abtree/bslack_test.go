package abtree

import (
	"math/rand"
	"testing"

	"ebrrq/internal/dstest"
	"ebrrq/internal/rqprov"
)

func bslackBuilder(p *rqprov.Provider) dstest.Set { return NewBSlack(p) }

func TestBSlackSequential(t *testing.T) {
	for _, mode := range dstest.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunSequential(t, mode, true, bslackBuilder, dstest.SequentialCfg{Seed: 161, KeySpace: 500})
		})
	}
}

func TestBSlackValidatedConcurrent(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, bslackBuilder, dstest.StressCfg{Seed: 162})
		})
	}
}

func TestBSlackValidatedFullIteration(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, bslackBuilder, dstest.StressCfg{
				Seed: 163, RQRange: 1 << 30, KeySpace: 128,
			})
		})
	}
}

// TestBSlackOccupancy: after heavy deletion churn, group compression must
// keep average leaf occupancy well above the pairwise-rebalanced tree's.
func TestBSlackOccupancy(t *testing.T) {
	build := func(bslack bool) (*Tree, *rqprov.Thread) {
		p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLock,
			LimboSorted: true, MaxAnnounce: 64})
		var tr *Tree
		if bslack {
			tr = NewBSlack(p)
		} else {
			tr = New(p)
		}
		return tr, p.Register()
	}
	churn := func(tr *Tree, th *rqprov.Thread) float64 {
		r := rand.New(rand.NewSource(9))
		const n = 20000
		for i := int64(0); i < n; i++ {
			tr.Insert(th, i, i)
		}
		// Delete 80% at random.
		for _, i := range r.Perm(n)[:n*8/10] {
			tr.Delete(th, int64(i))
		}
		leaves, keys := 0, 0
		var walk func(nd *node)
		walk = func(nd *node) {
			if nd.isLeaf() {
				leaves++
				keys += len(nd.Multi())
				return
			}
			for i := range nd.children {
				walk(ptr(nd.children[i].Load()))
			}
		}
		walk(ptr(tr.anchor.children[0].Load()))
		if leaves == 0 {
			t.Fatal("no leaves")
		}
		return float64(keys) / float64(leaves)
	}
	trA, thA := build(false)
	occA := churn(trA, thA)
	trB, thB := build(true)
	occB := churn(trB, thB)
	// On random churn both rebalancing schemes converge to similar average
	// occupancy (merges produce near-full leaves in either); the B-slack
	// scheme's guarantee is about worst-case group slack, which the
	// compression-splice test below exercises directly. Here we assert the
	// space bound both must satisfy and that compression does not regress.
	t.Logf("avg leaf occupancy: abtree %.2f, bslack %.2f (B=%d)", occA, occB, B)
	if occB < float64(B)/2-1 {
		t.Fatalf("B-slack occupancy %.2f below B/2-1", occB)
	}
	if occB < 0.85*occA {
		t.Fatalf("B-slack occupancy %.2f regressed far below abtree %.2f", occB, occA)
	}
}

// TestBSlackGroupCompression directs a scenario where the whole-group
// repack visibly beats pairwise rebalancing: every leaf of a group is
// drained to the underflow threshold, and one more deletion must repack
// the entire group into ⌈total/B⌉ near-full leaves in a single CAS.
func TestBSlackGroupCompression(t *testing.T) {
	p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLock,
		LimboSorted: true, MaxAnnounce: 64})
	tr := NewBSlack(p)
	th := p.Register()
	// Two full leaves under one router.
	for i := int64(0); i < 2*B; i++ {
		tr.Insert(th, i, i)
	}
	// Drain below the underflow threshold to force a compression.
	for i := int64(0); i < 2*B-A+1; i++ {
		if !tr.Delete(th, i) {
			t.Fatalf("delete %d", i)
		}
	}
	// A-1 keys remain; the group must have been repacked into one leaf
	// spliced into the grandparent (height collapse).
	if got := tr.Size(); got != A-1 {
		t.Fatalf("Size = %d, want %d", got, A-1)
	}
	root := ptr(tr.anchor.children[0].Load())
	if !root.isLeaf() {
		t.Fatalf("group not compressed to a single leaf (root still a router with %d children)", len(root.children))
	}
	if len(root.Multi()) != A-1 {
		t.Fatalf("compressed leaf holds %d keys, want %d", len(root.Multi()), A-1)
	}
}

// TestBSlackCompressionSplice drains a tree and checks the structure
// collapses back toward a single leaf.
func TestBSlackCompressionSplice(t *testing.T) {
	p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLockFree,
		LimboSorted: true, MaxAnnounce: 64})
	tr := NewBSlack(p)
	th := p.Register()
	const n = 3000
	for i := int64(0); i < n; i++ {
		tr.Insert(th, i, i)
	}
	h1 := tr.Height()
	for i := int64(0); i < n; i++ {
		if !tr.Delete(th, i) {
			t.Fatalf("delete %d", i)
		}
	}
	if got := tr.Size(); got != 0 {
		t.Fatalf("Size = %d after drain", got)
	}
	if h2 := tr.Height(); h2 > 3 || h2 >= h1 {
		t.Fatalf("height did not collapse: %d -> %d", h1, h2)
	}
	// And it is still usable.
	for i := int64(0); i < 100; i++ {
		if !tr.Insert(th, i, i) {
			t.Fatalf("reinsert %d", i)
		}
	}
	if got := len(tr.RangeQuery(th, 0, 99)); got != 100 {
		t.Fatalf("RQ after drain/refill: %d", got)
	}
}
