package abtree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq/internal/rqprov"
	"ebrrq/internal/validate"
)

// TestStructuralIntegrity: updaters only, then compare the quiescent tree
// against the event history.
func TestStructuralIntegrity(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		mode := []rqprov.Mode{rqprov.ModeLock, rqprov.ModeLockFree}[trial%2]
		n := 7
		checker := validate.NewChecker(n)
		p := rqprov.New(rqprov.Config{MaxThreads: n, Mode: mode, LimboSorted: true, Recorder: checker})
		tr := New(p)
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				th := p.Register()
				r := rand.New(rand.NewSource(seed))
				for !stop.Load() {
					k := r.Int63n(48)
					if r.Intn(2) == 0 {
						tr.Insert(th, k, k*3)
					} else {
						tr.Delete(th, k)
					}
				}
			}(int64(trial*100 + w))
		}
		time.Sleep(250 * time.Millisecond)
		stop.Store(true)
		wg.Wait()
		th := p.Register()
		res := tr.RangeQuery(th, 0, 1000)
		checker.AddRQ(th.ID(), th.LastRQTS(), 0, 1000, res)
		if err := checker.Check(); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, mode, err)
		}
	}
}
