package abtree

import (
	"testing"

	"ebrrq/internal/dstest"
)

func TestStressSingleUpdater(t *testing.T) {
	for i := 0; i < 6; i++ {
		dstest.RunValidated(t, dstest.Modes[i%3], true, builder, dstest.StressCfg{
			Seed: int64(100 + i), Updaters: 1, RQThreads: 2, KeySpace: 64, RQRange: 32,
		})
	}
}

func TestStressMultiUpdater(t *testing.T) {
	for i := 0; i < 6; i++ {
		dstest.RunValidated(t, dstest.Modes[i%3], true, builder, dstest.StressCfg{
			Seed: int64(200 + i), Updaters: 6, RQThreads: 1, KeySpace: 48, RQRange: 24,
		})
	}
}
