// Package lflist implements the Harris-Michael lock-free linked list
// ("LFList" in the paper's Figure 4) augmented with linearizable range
// queries via the RQ provider.
//
// Deletion is logical-then-physical: a delete linearizes at the CAS that
// sets the mark bit in the victim's next pointer (routed through
// Thread.UpdateCAS so the victim's dtime is recorded), and the node is
// physically unlinked — by the deleter or by a helping traversal — under
// Thread.PhysicalDelete, which announces the node before unlinking and
// retires it to the EBR limbo list afterwards.
//
// Because a node may be physically unlinked (and hence retired) by a thread
// other than the one that marked it, per-thread limbo lists are not sorted
// by dtime; the provider must be configured with LimboSorted=false.
package lflist

import (
	"math"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/snapc"
)

// markBit flags a node's next pointer when the node is logically deleted.
// Bit 0 is reserved by package dcss for descriptors.
const markBit = uintptr(2)

type node struct {
	epoch.Node // must be the first field (limbo lists recover *node from it)
	next       dcss.Slot
}

func asNode(p unsafe.Pointer) *node     { return (*node)(p) }
func fromNode(n *node) unsafe.Pointer   { return unsafe.Pointer(n) }
func hdr(n *node) *epoch.Node           { return &n.Node }
func ownerOf(h *epoch.Node) *node       { return (*node)(unsafe.Pointer(h)) }
func marked(v unsafe.Pointer) bool      { return dcss.Flags(v)&markBit != 0 }
func ptr(v unsafe.Pointer) *node        { return asNode(dcss.Ptr(v)) }
func pack(n *node, m bool) unsafe.Pointer {
	if m {
		return dcss.Pack(fromNode(n), markBit)
	}
	return fromNode(n)
}

// List is a concurrent sorted set over int64 keys in
// (math.MinInt64, math.MaxInt64) with linearizable range queries.
type List struct {
	head  *node
	tail  *node
	prov  *rqprov.Provider
	snap  *snapc.Registry // non-nil: range queries use the Snap-collector
	pools []freeList
}

type freeList struct {
	nodes []*node
	_     [40]byte // avoid false sharing between per-thread pools
}

// New creates an empty list attached to the provider. The provider's EBR
// domain is configured to recycle this list's nodes; a provider must not be
// shared between data structures.
func New(p *rqprov.Provider) *List {
	tail := &node{}
	tail.InitKey(math.MaxInt64, 0)
	head := &node{}
	head.InitKey(math.MinInt64, 0)
	head.next.Store(pack(tail, false))
	// Sentinels are permanently "inserted".
	head.SetITime(1)
	tail.SetITime(1)
	l := &List{head: head, tail: tail, prov: p}
	l.pools = make([]freeList, p.MaxThreads())
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &l.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, ownerOf(h))
		}
	})
	return l
}

// NewSnap creates a list whose range queries are served by the
// Petrank-Timnat Snap-collector instead of the RQ provider (the paper's
// "Snap-collector" baseline). Use it with a ModeUnsafe provider so updates
// pay no timestamping cost; every update and search then reports to the
// active collector, as the original algorithm requires.
func NewSnap(p *rqprov.Provider) *List {
	l := New(p)
	l.snap = snapc.NewRegistry(p.MaxThreads())
	return l
}

// reportIns tells the active collector (if any) that h was inserted or
// observed present.
func (l *List) reportIns(t *rqprov.Thread, h *epoch.Node) {
	if l.snap == nil {
		return
	}
	if c := l.snap.Active(); c != nil {
		c.Report(t.ID(), h, h.Key(), h.Value(), snapc.ReportInsert)
	}
}

// reportDel tells the active collector (if any) that h was deleted or
// observed marked.
func (l *List) reportDel(t *rqprov.Thread, h *epoch.Node) {
	if l.snap == nil {
		return
	}
	if c := l.snap.Active(); c != nil {
		c.Report(t.ID(), h, h.Key(), h.Value(), snapc.ReportDelete)
	}
}

func (l *List) alloc(t *rqprov.Thread, key, value int64) *node {
	fl := &l.pools[t.ID()]
	var n *node
	if ln := len(fl.nodes); ln > 0 {
		n = fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		t.PoolHit()
	} else {
		n = &node{}
		t.PoolMiss()
	}
	n.InitKey(key, value)
	return n
}

func (l *List) dealloc(t *rqprov.Thread, n *node) {
	fl := &l.pools[t.ID()]
	if len(fl.nodes) < 4096 {
		fl.nodes = append(fl.nodes, n)
	}
}

// find returns (pred, curr) such that pred.key < key <= curr.key, with pred
// and curr unmarked at the time of observation, physically unlinking marked
// nodes along the way (with announcement + retire via PhysicalDelete).
func (l *List) find(t *rqprov.Thread, key int64) (*node, *node) {
retry:
	for {
		pred := l.head
		currv := pred.next.Load()
		for {
			curr := ptr(currv)
			nextv := curr.next.Load()
			for marked(nextv) {
				// curr is logically deleted: help unlink it.
				succ := ptr(nextv)
				ok := t.PhysicalDelete(oneNode(hdr(curr)), func() bool {
					return pred.next.CAS(pack(curr, false), pack(succ, false))
				})
				if !ok {
					continue retry
				}
				curr = succ
				nextv = curr.next.Load()
			}
			if curr.Key() >= key {
				return pred, curr
			}
			pred = curr
			currv = nextv
		}
	}
}

// oneNode avoids a heap allocation for single-node inode/dnode slices.
func oneNode(h *epoch.Node) []*epoch.Node { return []*epoch.Node{h} }

// Insert adds key with the given value. It returns false if key is present.
func (l *List) Insert(t *rqprov.Thread, key, value int64) bool {
	t.StartOp()
	defer t.EndOp()
	var n *node
	for {
		pred, curr := l.find(t, key)
		if curr.Key() == key {
			if n != nil {
				l.dealloc(t, n)
			}
			l.reportIns(t, hdr(curr)) // observed present
			return false
		}
		if n == nil {
			n = l.alloc(t, key, value)
		}
		n.next.Store(pack(curr, false))
		if t.UpdateCAS(&pred.next, pack(curr, false), pack(n, false),
			oneNode(hdr(n)), nil, false) {
			l.reportIns(t, hdr(n))
			return true
		}
	}
}

// Delete removes key. It returns false if key is absent.
func (l *List) Delete(t *rqprov.Thread, key int64) bool {
	t.StartOp()
	defer t.EndOp()
	for {
		pred, curr := l.find(t, key)
		if curr.Key() != key {
			return false
		}
		nextv := curr.next.Load()
		if marked(nextv) {
			continue // concurrently deleted; re-find to settle outcome
		}
		succ := ptr(nextv)
		// Linearization: mark curr (records dtime).
		if !t.UpdateCAS(&curr.next, pack(succ, false), pack(succ, true),
			nil, oneNode(hdr(curr)), false) {
			continue
		}
		l.reportDel(t, hdr(curr))
		// Best-effort physical unlink; a later find() will otherwise do it.
		t.PhysicalDelete(oneNode(hdr(curr)), func() bool {
			return pred.next.CAS(pack(curr, false), pack(succ, false))
		})
		return true
	}
}

// Contains reports whether key is present, returning its value. The search
// is read-only (it does not help unlink marked nodes).
func (l *List) Contains(t *rqprov.Thread, key int64) (int64, bool) {
	t.StartOp()
	defer t.EndOp()
	curr := l.head
	for curr.Key() < key {
		curr = ptr(curr.next.Load())
	}
	if curr.Key() != key {
		return 0, false
	}
	if marked(curr.next.Load()) {
		l.reportDel(t, hdr(curr)) // observed marked
		return 0, false
	}
	l.reportIns(t, hdr(curr)) // observed present
	return curr.Value(), true
}

// RangeQuery returns all key-value pairs with keys in [low, high],
// linearized at the query's timestamp increment. The returned slice is
// valid until the thread's next range query.
func (l *List) RangeQuery(t *rqprov.Thread, low, high int64) []epoch.KV {
	t.StartOp()
	defer t.EndOp()
	if l.snap != nil {
		return l.snapRangeQuery(t, low, high)
	}
	t.TraversalStart(low, high)
	curr := ptr(l.head.next.Load())
	for curr.Key() < low {
		curr = ptr(curr.next.Load())
	}
	for curr.Key() <= high {
		nextv := curr.next.Load()
		t.VisitMaybeMarked(hdr(curr), marked(nextv))
		curr = ptr(nextv)
	}
	return t.TraversalEnd()
}

// snapRangeQuery takes a full snapshot with the Snap-collector and filters
// it to [low, high]. Must run inside the caller's StartOp/EndOp (node
// identities in the collector must not be recycled mid-snapshot).
func (l *List) snapRangeQuery(t *rqprov.Thread, low, high int64) []epoch.KV {
	c := l.snap.Acquire()
	curr := ptr(l.head.next.Load())
	for curr != l.tail && c.IsActive() {
		nextv := curr.next.Load()
		if marked(nextv) {
			c.Report(t.ID(), hdr(curr), curr.Key(), curr.Value(), snapc.ReportDelete)
		} else {
			c.AddNode(hdr(curr), curr.Key(), curr.Value())
		}
		curr = ptr(nextv)
	}
	c.BlockFurtherNodes()
	c.Deactivate()
	c.BlockFurtherReports()
	return snapc.FilterRange(c.Reconstruct(), low, high)
}

// Size counts the unmarked nodes; intended for tests and prefill accounting
// (quiescent use only).
func (l *List) Size() int {
	n := 0
	curr := ptr(l.head.next.Load())
	for curr != l.tail {
		if !marked(curr.next.Load()) {
			n++
		}
		curr = ptr(curr.next.Load())
	}
	return n
}
