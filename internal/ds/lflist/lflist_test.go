package lflist

import (
	"testing"

	"ebrrq/internal/dstest"
	"ebrrq/internal/rqprov"
)

func builder(p *rqprov.Provider) dstest.Set { return New(p) }

func TestSequential(t *testing.T) {
	for _, mode := range dstest.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunSequential(t, mode, false, builder, dstest.SequentialCfg{Seed: 7})
		})
	}
}

func TestBasic(t *testing.T) {
	p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLock})
	l := New(p)
	th := p.Register()
	if !l.Insert(th, 5, 50) || !l.Insert(th, 1, 10) || !l.Insert(th, 9, 90) {
		t.Fatal("inserts failed")
	}
	if l.Insert(th, 5, 55) {
		t.Fatal("duplicate insert succeeded")
	}
	if v, ok := l.Contains(th, 5); !ok || v != 50 {
		t.Fatalf("Contains(5) = (%d,%v)", v, ok)
	}
	res := l.RangeQuery(th, 0, 100)
	if len(res) != 3 || res[0].Key != 1 || res[1].Key != 5 || res[2].Key != 9 {
		t.Fatalf("RangeQuery = %v", res)
	}
	if !l.Delete(th, 5) || l.Delete(th, 5) {
		t.Fatal("delete behaviour wrong")
	}
	if _, ok := l.Contains(th, 5); ok {
		t.Fatal("deleted key still present")
	}
	if got := l.Size(); got != 2 {
		t.Fatalf("Size = %d, want 2", got)
	}
}

func TestValidatedConcurrent(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, false, builder, dstest.StressCfg{Seed: 11})
		})
	}
}

func TestValidatedFullIteration(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, false, builder, dstest.StressCfg{
				Seed: 13, RQRange: 1 << 30, KeySpace: 128,
			})
		})
	}
}
