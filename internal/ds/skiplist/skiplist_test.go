package skiplist

import (
	"testing"

	"ebrrq/internal/dstest"
	"ebrrq/internal/rqprov"
)

func builder(p *rqprov.Provider) dstest.Set { return New(p) }

func TestSequential(t *testing.T) {
	for _, mode := range dstest.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunSequential(t, mode, true, builder, dstest.SequentialCfg{Seed: 31})
		})
	}
}

func TestValidatedConcurrent(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{Seed: 32})
		})
	}
}

func TestValidatedFullIteration(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{
				Seed: 33, RQRange: 1 << 30, KeySpace: 128,
			})
		})
	}
}

func TestTowerDistribution(t *testing.T) {
	p := rqprov.New(rqprov.Config{MaxThreads: 1, Mode: rqprov.ModeLock, LimboSorted: true})
	l := New(p)
	counts := make([]int, maxLevel)
	for i := 0; i < 100000; i++ {
		counts[l.randomLevel(0)]++
	}
	if counts[0] < 40000 || counts[0] > 60000 {
		t.Fatalf("level-0 frequency %d outside geometric expectation", counts[0])
	}
	for lv := 1; lv < 5; lv++ {
		if counts[lv] == 0 {
			t.Fatalf("level %d never drawn", lv)
		}
		ratio := float64(counts[lv-1]) / float64(counts[lv])
		if ratio < 1.5 || ratio > 2.7 {
			t.Fatalf("level %d/%d ratio %.2f not ~2", lv-1, lv, ratio)
		}
	}
}
