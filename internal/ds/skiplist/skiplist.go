// Package skiplist implements the optimistic lazy skip list of Herlihy,
// Lev, Luchangco and Shavit ("SkipList" in the paper's Figure 4): per-node
// locks, wait-free searches, logical deletion via a marked flag, and a
// fullyLinked flag that marks the linearization of insertions.
//
// RQ integration: insertion linearizes at the write that sets fullyLinked
// (after the node is linked at every level), and deletion linearizes at the
// write that sets marked — both routed through UpdateCAS on dcss.Slot flag
// words so all three providers apply. A traversal that encounters a node
// whose insertion has not yet linearized simply waits for (or, lock-free,
// helps derive) its itime, exactly as the paper prescribes.
//
// The marking thread unlinks and retires its own victim, so limbo lists are
// dtime-sorted (LimboSorted=true).
package skiplist

import (
	"math"
	"runtime"
	"sync"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/snapc"
)

// maxLevel bounds tower height; 1/2 branching supports ~2^20 keys well.
const maxLevel = 20

var flagSentinel int64

func sentinelPtr() unsafe.Pointer { return unsafe.Pointer(&flagSentinel) }

type node struct {
	epoch.Node // must be first
	mu         sync.Mutex
	marked     dcss.Slot // nil = live; deletion linearization point
	fullyLink  dcss.Slot // nil = pending; insertion linearization point
	topLevel   int
	next       [maxLevel]dcss.Slot // next[i] holds *node at level i
}

func ptr(v unsafe.Pointer) *node      { return (*node)(dcss.Ptr(v)) }
func fromNode(n *node) unsafe.Pointer { return unsafe.Pointer(n) }
func hdr(n *node) *epoch.Node         { return &n.Node }
func ownerOf(h *epoch.Node) *node     { return (*node)(unsafe.Pointer(h)) }

func (n *node) isMarked() bool      { return n.marked.Load() != nil }
func (n *node) isFullyLinked() bool { return n.fullyLink.Load() != nil }

// List is a concurrent sorted set with linearizable range queries.
type List struct {
	head  *node
	tail  *node
	prov  *rqprov.Provider
	snap  *snapc.Registry // non-nil: range queries use the Snap-collector
	pools []freeList
	rngs  []rngState
}

type freeList struct {
	nodes []*node
	_     [40]byte
}

type rngState struct {
	s uint64
	_ [56]byte
}

// New creates an empty skip list attached to the provider.
func New(p *rqprov.Provider) *List {
	tail := &node{topLevel: maxLevel - 1}
	tail.InitKey(math.MaxInt64, 0)
	tail.SetITime(1)
	tail.fullyLink.Store(sentinelPtr())
	head := &node{topLevel: maxLevel - 1}
	head.InitKey(math.MinInt64, 0)
	head.SetITime(1)
	head.fullyLink.Store(sentinelPtr())
	for i := 0; i < maxLevel; i++ {
		head.next[i].Store(fromNode(tail))
	}
	l := &List{head: head, tail: tail, prov: p}
	l.pools = make([]freeList, p.MaxThreads())
	l.rngs = make([]rngState, p.MaxThreads())
	for i := range l.rngs {
		l.rngs[i].s = uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	}
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &l.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, ownerOf(h))
		}
	})
	return l
}

// NewSnap creates a skip list whose range queries are served by the
// Petrank-Timnat Snap-collector (the paper's "Snap-collector" baseline).
// Use with a ModeUnsafe provider.
func NewSnap(p *rqprov.Provider) *List {
	l := New(p)
	l.snap = snapc.NewRegistry(p.MaxThreads())
	return l
}

func (l *List) reportIns(t *rqprov.Thread, h *epoch.Node) {
	if l.snap == nil {
		return
	}
	if c := l.snap.Active(); c != nil {
		c.Report(t.ID(), h, h.Key(), h.Value(), snapc.ReportInsert)
	}
}

func (l *List) reportDel(t *rqprov.Thread, h *epoch.Node) {
	if l.snap == nil {
		return
	}
	if c := l.snap.Active(); c != nil {
		c.Report(t.ID(), h, h.Key(), h.Value(), snapc.ReportDelete)
	}
}

// randomLevel draws a geometric(1/2) tower height in [0, maxLevel).
func (l *List) randomLevel(tid int) int {
	st := &l.rngs[tid]
	x := st.s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	st.s = x
	lvl := 0
	for x&1 == 1 && lvl < maxLevel-1 {
		lvl++
		x >>= 1
	}
	return lvl
}

func (l *List) alloc(t *rqprov.Thread, key, value int64) *node {
	fl := &l.pools[t.ID()]
	var n *node
	if ln := len(fl.nodes); ln > 0 {
		n = fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		t.PoolHit()
	} else {
		n = &node{}
		t.PoolMiss()
	}
	n.InitKey(key, value)
	n.marked.Store(nil)
	n.fullyLink.Store(nil)
	return n
}

func (l *List) dealloc(t *rqprov.Thread, n *node) {
	fl := &l.pools[t.ID()]
	if len(fl.nodes) < 4096 {
		fl.nodes = append(fl.nodes, n)
	}
}

// find fills preds/succs with the nodes bracketing key at every level and
// returns the highest level at which key was found, or -1.
func (l *List) find(key int64, preds, succs *[maxLevel]*node) int {
	found := -1
	pred := l.head
	for lv := maxLevel - 1; lv >= 0; lv-- {
		curr := ptr(pred.next[lv].Load())
		for curr.Key() < key {
			pred = curr
			curr = ptr(curr.next[lv].Load())
		}
		if found == -1 && curr.Key() == key {
			found = lv
		}
		preds[lv] = pred
		succs[lv] = curr
	}
	return found
}

func oneNode(h *epoch.Node) []*epoch.Node { return []*epoch.Node{h} }

// Insert adds key with the given value; false if key is present.
func (l *List) Insert(t *rqprov.Thread, key, value int64) bool {
	t.StartOp()
	defer t.EndOp()
	var preds, succs [maxLevel]*node
	topLevel := l.randomLevel(t.ID())
	for {
		if fl := l.find(key, &preds, &succs); fl != -1 {
			f := succs[fl]
			if !f.isMarked() {
				// Wait until the competing insertion linearizes, then
				// report "already present".
				for i := 0; !f.isFullyLinked(); i++ {
					if i > 8 {
						runtime.Gosched()
					}
				}
				l.reportIns(t, hdr(f)) // observed present
				return false
			}
			// Marked: the victim is on its way out; retry.
			continue
		}
		// Lock preds[0..topLevel] in ascending level order, validating.
		valid := true
		highestLocked := -1
		var prevPred *node
		for lv := 0; valid && lv <= topLevel; lv++ {
			pred, succ := preds[lv], succs[lv]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lv
				prevPred = pred
			}
			valid = !pred.isMarked() && !succ.isMarked() &&
				ptr(pred.next[lv].Load()) == succ
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		n := l.alloc(t, key, value)
		n.topLevel = topLevel
		for lv := 0; lv <= topLevel; lv++ {
			n.next[lv].Store(fromNode(succs[lv]))
		}
		for lv := 0; lv <= topLevel; lv++ {
			if !preds[lv].next[lv].CAS(fromNode(succs[lv]), fromNode(n)) {
				panic("skiplist: locked link CAS failed")
			}
		}
		// The node is physically reachable at every level but its insertion
		// has not linearized; traversals that find it wait in awaitITime.
		fault.Inject("skiplist.insert.linked")
		// Linearization: fullyLinked (records itime).
		if !t.UpdateCAS(&n.fullyLink, nil, sentinelPtr(),
			oneNode(hdr(n)), nil, false) {
			panic("skiplist: locked fullyLinked CAS failed")
		}
		l.reportIns(t, hdr(n))
		unlockPreds(&preds, highestLocked)
		return true
	}
}

func unlockPreds(preds *[maxLevel]*node, highestLocked int) {
	var prev *node
	for lv := 0; lv <= highestLocked; lv++ {
		if preds[lv] != prev {
			preds[lv].mu.Unlock()
			prev = preds[lv]
		}
	}
}

// Delete removes key; false if key is absent.
func (l *List) Delete(t *rqprov.Thread, key int64) bool {
	t.StartOp()
	defer t.EndOp()
	var preds, succs [maxLevel]*node
	var victim *node
	isMarkedByUs := false
	topLevel := -1
	for {
		fl := l.find(key, &preds, &succs)
		if fl != -1 {
			victim = succs[fl]
		}
		if !isMarkedByUs {
			if fl == -1 || !victim.isFullyLinked() ||
				victim.topLevel != fl || victim.isMarked() {
				return false
			}
			topLevel = victim.topLevel
			victim.mu.Lock()
			if victim.isMarked() {
				victim.mu.Unlock()
				return false
			}
			// Linearization: logical deletion (records dtime).
			if !t.UpdateCAS(&victim.marked, nil, sentinelPtr(),
				nil, oneNode(hdr(victim)), false) {
				panic("skiplist: locked mark CAS failed")
			}
			l.reportDel(t, hdr(victim))
			isMarkedByUs = true
			// Logically deleted (dtime published) but still physically
			// linked at every level.
			fault.Inject("skiplist.delete.marked")
		}
		// Lock predecessors and validate, then unlink every level.
		valid := true
		highestLocked := -1
		var prevPred *node
		for lv := 0; valid && lv <= topLevel; lv++ {
			pred := preds[lv]
			if pred != prevPred {
				pred.mu.Lock()
				highestLocked = lv
				prevPred = pred
			}
			valid = !pred.isMarked() && ptr(pred.next[lv].Load()) == victim
		}
		if !valid {
			unlockPreds(&preds, highestLocked)
			continue
		}
		t.PhysicalDelete(oneNode(hdr(victim)), func() bool {
			for lv := topLevel; lv >= 0; lv-- {
				if !preds[lv].next[lv].CAS(fromNode(victim), victim.next[lv].Load()) {
					panic("skiplist: locked unlink CAS failed")
				}
			}
			// Unlinked but not yet retired: only the physdel announcement
			// makes the victim findable by a concurrent range query.
			fault.Inject("skiplist.delete.unlinked")
			return true
		})
		victim.mu.Unlock()
		unlockPreds(&preds, highestLocked)
		return true
	}
}

// Contains reports whether key is present (wait-free).
func (l *List) Contains(t *rqprov.Thread, key int64) (int64, bool) {
	t.StartOp()
	defer t.EndOp()
	pred := l.head
	var curr *node
	for lv := maxLevel - 1; lv >= 0; lv-- {
		curr = ptr(pred.next[lv].Load())
		for curr.Key() < key {
			pred = curr
			curr = ptr(curr.next[lv].Load())
		}
	}
	if curr.Key() != key || !curr.isFullyLinked() {
		return 0, false
	}
	if curr.isMarked() {
		l.reportDel(t, hdr(curr)) // observed marked
		return 0, false
	}
	l.reportIns(t, hdr(curr)) // observed present
	return curr.Value(), true
}

// RangeQuery returns all pairs with keys in [low, high], linearized at the
// query's timestamp increment. The traversal descends the index levels to
// the bottom-level predecessor of low and then walks the bottom level (the
// COLLECT property follows from the bottom list's structure, as for the
// linked lists).
func (l *List) RangeQuery(t *rqprov.Thread, low, high int64) []epoch.KV {
	t.StartOp()
	defer t.EndOp()
	if l.snap != nil {
		return l.snapRangeQuery(t, low, high)
	}
	t.TraversalStart(low, high)
	pred := l.head
	for lv := maxLevel - 1; lv >= 0; lv-- {
		curr := ptr(pred.next[lv].Load())
		for curr.Key() < low {
			pred = curr
			curr = ptr(curr.next[lv].Load())
		}
	}
	// Timestamp taken, index descent done, bottom-level walk not started:
	// updates slipping in here must be recovered by the end-of-query
	// announcement and limbo sweeps.
	fault.Inject("skiplist.rq.bottomwalk")
	curr := ptr(pred.next[0].Load())
	for curr.Key() <= high {
		t.VisitMaybeMarked(hdr(curr), curr.isMarked())
		curr = ptr(curr.next[0].Load())
	}
	return t.TraversalEnd()
}

// snapRangeQuery takes a full snapshot with the Snap-collector over the
// bottom level and filters it to [low, high]. Nodes that are not yet fully
// linked are skipped: their insertions have not linearized, and the
// inserting thread reports them if they linearize while the collector is
// active.
func (l *List) snapRangeQuery(t *rqprov.Thread, low, high int64) []epoch.KV {
	c := l.snap.Acquire()
	curr := ptr(l.head.next[0].Load())
	for curr != l.tail && c.IsActive() {
		switch {
		case curr.isMarked():
			c.Report(t.ID(), hdr(curr), curr.Key(), curr.Value(), snapc.ReportDelete)
		case curr.isFullyLinked():
			c.AddNode(hdr(curr), curr.Key(), curr.Value())
		}
		curr = ptr(curr.next[0].Load())
	}
	c.BlockFurtherNodes()
	c.Deactivate()
	c.BlockFurtherReports()
	return snapc.FilterRange(c.Reconstruct(), low, high)
}

// Size counts live nodes (quiescent use only).
func (l *List) Size() int {
	n := 0
	for curr := ptr(l.head.next[0].Load()); curr != l.tail; curr = ptr(curr.next[0].Load()) {
		if !curr.isMarked() && curr.isFullyLinked() {
			n++
		}
	}
	return n
}
