package skiplist

// Deterministic schedule-stress repro harness for the rare
// TestValidatedFullIteration validation failures (see ROADMAP.md). The rig
// replaces "run it thousands of times and hope" with seeded schedules: each
// schedule arms a random subset of the failpoints at the skiplist/provider
// integration sites with seeded delays (site, first hit, repetition count
// and duration all derived from the schedule seed), forces a GOMAXPROCS
// value, and runs the full-iteration validated workload. A failure names
// the exact (seed, procs, mode) triple, which replays by itself.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"ebrrq/internal/dstest"
	"ebrrq/internal/fault"
	"ebrrq/internal/rqprov"
)

// envInt reads an integer override for schedule scanning/bisection runs,
// e.g. EBRRQ_SCHED_COUNT=200 EBRRQ_SCHED_SEED0=6000 go test -tags failpoints
// -run ScheduleStress ./internal/ds/skiplist/.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// stressSites are the handoff points a schedule can delay: the windows
// between physical linking and linearization (insert), between logical and
// physical deletion, between unlink and retire, and between the query's
// timestamp acquisition, traversal and recovery sweeps.
var stressSites = []string{
	"skiplist.insert.linked",
	"skiplist.delete.marked",
	"skiplist.delete.unlinked",
	"skiplist.rq.bottomwalk",
	"rqprov.update.announced",
	"rqprov.update.desc",
	"rqprov.update.finished",
	"rqprov.physdel.announced",
	"rqprov.rq.tsadvance",
	"rqprov.rq.annsweep",
	"rqprov.rq.limbosweep",
	"epoch.startop.stale",
	"epoch.startop.announced",
}

func armSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, name := range stressSites {
		if rng.Intn(3) == 0 {
			continue // leave ~1/3 of the sites alone each schedule
		}
		d := time.Duration(20+rng.Intn(180)) * time.Microsecond
		after, times := rng.Intn(400), 1+rng.Intn(64)
		fault.Arm(name, fault.Delay(d).After(after).Times(times))
		t.Logf("armed %-28s delay %v after %d times %d", name, d, after, times)
	}
}

// TestFaultScheduleStressFullIteration is part of the chaos suite (the
// "Fault" in its name matches the suite's -run filter). Under normal
// operation every schedule must validate — delays widen race windows but
// never change the algorithm — so a failure here is a reproduction of the
// full-iteration flake with a replayable name.
func TestFaultScheduleStressFullIteration(t *testing.T) {
	if !fault.Enabled {
		t.Skip("schedule stress requires -tags failpoints")
	}
	schedules := 18
	duration := 80 * time.Millisecond
	if testing.Short() {
		schedules = 6
		duration = 50 * time.Millisecond
	}
	schedules = envInt("EBRRQ_SCHED_COUNT", schedules)
	seed0 := envInt("EBRRQ_SCHED_SEED0", 5000)
	duration = time.Duration(envInt("EBRRQ_SCHED_DURATION_MS", int(duration/time.Millisecond))) * time.Millisecond
	modes := []rqprov.Mode{rqprov.ModeLock, rqprov.ModeHTM, rqprov.ModeLockFree}
	procs := []int{2, 4, 8}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for s := 0; s < schedules; s++ {
		seed := int64(seed0 + s)
		p := procs[s%len(procs)]
		mode := modes[s%len(modes)]
		name := fmt.Sprintf("seed%d/procs%d/%s", seed, p, mode)
		t.Run(name, func(t *testing.T) {
			runtime.GOMAXPROCS(p)
			fault.Reset()
			defer fault.Reset()
			armSchedule(t, seed)
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{
				Seed: seed, RQRange: 1 << 30, KeySpace: 128,
				Duration: duration,
			})
		})
	}
}
