package lfbst

import (
	"testing"

	"ebrrq/internal/dstest"
	"ebrrq/internal/rqprov"
)

func builder(p *rqprov.Provider) dstest.Set { return New(p) }

func TestSequential(t *testing.T) {
	for _, mode := range dstest.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunSequential(t, mode, true, builder, dstest.SequentialCfg{Seed: 51})
		})
	}
}

func TestValidatedConcurrent(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{Seed: 52})
		})
	}
}

func TestValidatedFullIteration(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{
				Seed: 53, RQRange: 1 << 30, KeySpace: 128,
			})
		})
	}
}

// TestHighContentionSmallKeys drives many threads over a tiny key space to
// exercise injection/cleanup helping and tagged chains.
func TestHighContentionSmallKeys(t *testing.T) {
	for _, mode := range dstest.Modes {
		t.Run(mode.String(), func(t *testing.T) {
			dstest.RunValidated(t, mode, true, builder, dstest.StressCfg{
				Seed: 54, Updaters: 8, KeySpace: 16, RQRange: 8,
			})
		})
	}
}
