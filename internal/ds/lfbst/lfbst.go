// Package lfbst implements the lock-free external binary search tree of
// Natarajan and Mittal (PPoPP '14) — "LFBST" in the paper's Figure 4.
//
// The tree is leaf-oriented: internal (router) nodes direct searches, leaves
// hold the keys. Updates synchronize by flagging and tagging *edges* (child
// pointers): a deletion first flags the edge to its victim leaf (injection),
// then — possibly with help from other operations — tags the sibling edge
// and splices the victim's parent out with a single CAS at the ancestor.
//
// There is no logical deletion in the PPoPP '18 paper's sense: an element
// leaves the abstract set at the splice CAS that physically removes its
// leaf, so that CAS is routed through UpdateCAS (recording dtime and
// retiring both the leaf and its router parent), while the injection CAS is
// an ordinary slot CAS. Insertion linearizes at the CAS that replaces a
// leaf with a new router over the old leaf and the new one; only the new
// leaf is recorded as inserted (the old leaf keeps its identity and itime).
//
// Because the thread whose splice CAS succeeds both sets dtime and retires
// the victim, limbo lists are dtime-sorted (LimboSorted=true).
package lfbst

import (
	"math"
	"unsafe"

	"ebrrq/internal/dcss"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
)

const (
	flagBit = uintptr(2) // edge leads to a leaf whose deletion is pending
	tagBit  = uintptr(4) // edge is frozen (its parent is being spliced out)
)

// MaxKey is the largest user key (two larger values serve as sentinels).
const MaxKey = math.MaxInt64 - 2

type node struct {
	epoch.Node // must be first
	child      [2]dcss.Slot
}

func ptr(v unsafe.Pointer) *node      { return (*node)(dcss.Ptr(v)) }
func fromNode(n *node) unsafe.Pointer { return unsafe.Pointer(n) }
func hdr(n *node) *epoch.Node         { return &n.Node }
func ownerOf(h *epoch.Node) *node     { return (*node)(unsafe.Pointer(h)) }
func flagged(v unsafe.Pointer) bool   { return dcss.Flags(v)&flagBit != 0 }
func tagged(v unsafe.Pointer) bool    { return dcss.Flags(v)&tagBit != 0 }

// Tree is a concurrent external BST with linearizable range queries over
// keys in [math.MinInt64, MaxKey].
type Tree struct {
	root  *node // R: router with key inf2
	s     *node // S: router with key inf1 (R's left child)
	prov  *rqprov.Provider
	pools []freeList
}

type freeList struct {
	nodes []*node
	_     [40]byte
}

// New creates an empty tree attached to the provider.
func New(p *rqprov.Provider) *Tree {
	inf2 := int64(math.MaxInt64)
	inf1 := int64(math.MaxInt64 - 1)
	mkLeaf := func(k int64) *node {
		n := &node{}
		n.InitKey(k, 0)
		n.SetITime(1)
		return n
	}
	s := &node{}
	s.InitRouting(inf1)
	s.child[0].Store(fromNode(mkLeaf(inf1)))
	s.child[1].Store(fromNode(mkLeaf(inf2)))
	root := &node{}
	root.InitRouting(inf2)
	root.child[0].Store(fromNode(s))
	root.child[1].Store(fromNode(mkLeaf(inf2)))
	t := &Tree{root: root, s: s, prov: p}
	t.pools = make([]freeList, p.MaxThreads())
	p.Domain().SetFreeFunc(func(tid int, h *epoch.Node) {
		fl := &t.pools[tid]
		if len(fl.nodes) < 4096 {
			fl.nodes = append(fl.nodes, ownerOf(h))
		}
	})
	return t
}

func (t *Tree) alloc(th *rqprov.Thread) *node {
	fl := &t.pools[th.ID()]
	if ln := len(fl.nodes); ln > 0 {
		n := fl.nodes[ln-1]
		fl.nodes = fl.nodes[:ln-1]
		th.PoolHit()
		return n
	}
	th.PoolMiss()
	return &node{}
}

func (t *Tree) dealloc(th *rqprov.Thread, n *node) {
	fl := &t.pools[th.ID()]
	if len(fl.nodes) < 4096 {
		fl.nodes = append(fl.nodes, n)
	}
}

// seekRec captures the state of a seek: ancestor is the deepest node on the
// access path entered via an untagged edge above parent, successor its child
// on the path, parent the leaf's router parent and leaf the terminal leaf.
// leafV is the raw edge value under which leaf was reached.
type seekRec struct {
	ancestor, successor, parent, leaf *node
	leafV                             unsafe.Pointer
}

func dirFor(n *node, key int64) int {
	if key < n.Key() {
		return 0
	}
	return 1
}

// seek walks from the root to the leaf for key. It never restarts.
func (t *Tree) seek(key int64) seekRec {
	anc, succ := t.root, t.s
	par := t.s
	currV := t.s.child[0].Load()
	curr := ptr(currV)
	for curr.Routing() {
		if !tagged(currV) {
			anc, succ = par, curr
		}
		par = curr
		currV = curr.child[dirFor(curr, key)].Load()
		curr = ptr(currV)
	}
	return seekRec{ancestor: anc, successor: succ, parent: par, leaf: curr, leafV: currV}
}

// cleanup completes a pending deletion near sr (its own, or one it is
// helping): it tags the sibling edge and splices the region between the
// ancestor's edge and the parent out of the tree with one CAS. Returns true
// if this thread's CAS performed the splice.
//
// The spliced region can be a *chain*: the seek path between successor and
// parent consists of edges that are already tagged, each belonging to
// another pending deletion whose flagged leaf hangs off the chain. The
// single CAS at the ancestor therefore commits every deletion along the
// chain at once, so every flagged leaf (set keys) and every router on the
// chain is passed as dnodes — their dtimes are all the splice's timestamp
// and they are all retired by the winning thread. Chain edges are immutable
// (flags and tags are never cleared), which makes the walk race-free.
func (t *Tree) cleanup(th *rqprov.Thread, key int64, sr seekRec) bool {
	parent := sr.parent
	d := dirFor(parent, key)
	childSlot, siblingSlot := &parent.child[d], &parent.child[1-d]
	childV := childSlot.Load()
	if !flagged(childV) {
		// The pending deletion flagged the other edge (we are helping a
		// deletion of the sibling leaf).
		childSlot, siblingSlot = siblingSlot, childSlot
		childV = childSlot.Load()
		if !flagged(childV) {
			return false // already cleaned up
		}
	}
	// Freeze the sibling edge (preserving any flag on it).
	for {
		sv := siblingSlot.Load()
		if tagged(sv) {
			break
		}
		if siblingSlot.CAS(sv, dcss.Pack(dcss.Ptr(sv), dcss.Flags(sv)|tagBit)) {
			break
		}
	}
	sv := siblingSlot.Load() // tagged ⇒ immutable now
	newV := dcss.Pack(dcss.Ptr(sv), dcss.Flags(sv)&flagBit)

	// Collect everything the splice removes: walk the (immutable) chain
	// from successor to parent along the seek path; each interior node
	// contributes itself (a router) and its flagged leaf.
	//
	// A *reachable* chain holds at most one uncommitted deletion per
	// thread (a deleter loops until its flag is committed), so a longer
	// walk proves the seek wandered into an already-spliced, frozen
	// region — the splice CAS below would fail anyway, so give up early
	// rather than overflow the announcement array.
	maxRouters := th.Provider().MaxThreads() + 2
	var dnodes []*epoch.Node
	for cur := sr.successor; cur != parent; {
		if maxRouters--; maxRouters < 0 {
			return false // stale seek record; caller re-seeks
		}
		dn := dirFor(cur, key)
		dnodes = append(dnodes, hdr(cur), hdr(ptr(cur.child[1-dn].Load())))
		cur = ptr(cur.child[dn].Load())
	}
	dnodes = append(dnodes, hdr(parent), hdr(ptr(childV)))

	aSlot := &sr.ancestor.child[dirFor(sr.ancestor, key)]
	// The splice is the linearization point of every deletion it commits.
	return th.UpdateCAS(aSlot, fromNode(sr.successor), newV, nil, dnodes, true)
}

// Insert adds key with the given value; false if key is present.
func (t *Tree) Insert(th *rqprov.Thread, key, value int64) bool {
	th.StartOp()
	defer th.EndOp()
	var newLeaf, newInternal *node
	for {
		sr := t.seek(key)
		if sr.leaf.Key() == key {
			if newLeaf != nil {
				t.dealloc(th, newLeaf)
			}
			if newInternal != nil {
				t.dealloc(th, newInternal)
			}
			return false
		}
		if dcss.Flags(sr.leafV) != 0 {
			// The edge to the leaf is flagged or tagged: help the
			// pending deletion, then retry.
			t.cleanup(th, key, sr)
			continue
		}
		if newLeaf == nil {
			newLeaf = t.alloc(th)
			newInternal = t.alloc(th)
		}
		newLeaf.InitKey(key, value)
		oldLeaf := sr.leaf
		rk := key
		if oldLeaf.Key() > rk {
			rk = oldLeaf.Key()
		}
		newInternal.InitRouting(rk)
		if key < oldLeaf.Key() {
			newInternal.child[0].Store(fromNode(newLeaf))
			newInternal.child[1].Store(fromNode(oldLeaf))
		} else {
			newInternal.child[0].Store(fromNode(oldLeaf))
			newInternal.child[1].Store(fromNode(newLeaf))
		}
		slot := &sr.parent.child[dirFor(sr.parent, key)]
		// Linearization: replace the leaf with the new router.
		if th.UpdateCAS(slot, fromNode(oldLeaf), fromNode(newInternal),
			[]*epoch.Node{hdr(newLeaf)}, nil, false) {
			return true
		}
		v := slot.Load()
		if ptr(v) == oldLeaf && dcss.Flags(v) != 0 {
			t.cleanup(th, key, sr)
		}
	}
}

// Delete removes key; false if key is absent.
func (t *Tree) Delete(th *rqprov.Thread, key int64) bool {
	th.StartOp()
	defer th.EndOp()
	injected := false
	var victim *node
	for {
		sr := t.seek(key)
		if !injected {
			if sr.leaf.Key() != key {
				return false
			}
			if dcss.Flags(sr.leafV) != 0 {
				// Another operation owns this leaf; help and retry.
				t.cleanup(th, key, sr)
				continue
			}
			victim = sr.leaf
			slot := &sr.parent.child[dirFor(sr.parent, key)]
			// Injection: flag the edge (plain CAS — the deletion
			// linearizes later, at the splice).
			if slot.CAS(fromNode(victim), dcss.Pack(fromNode(victim), flagBit)) {
				injected = true
				if t.cleanup(th, key, sr) {
					return true
				}
				continue
			}
			v := slot.Load()
			if ptr(v) == victim && dcss.Flags(v) != 0 {
				t.cleanup(th, key, sr)
			}
			continue
		}
		// Cleanup mode: finish our own deletion (helpers may beat us).
		if sr.leaf != victim {
			return true // spliced by a helper
		}
		if t.cleanup(th, key, sr) {
			return true
		}
	}
}

// Contains reports whether key is present.
func (t *Tree) Contains(th *rqprov.Thread, key int64) (int64, bool) {
	th.StartOp()
	defer th.EndOp()
	curr := ptr(t.s.child[0].Load())
	for curr.Routing() {
		curr = ptr(curr.child[dirFor(curr, key)].Load())
	}
	if curr.Key() != key {
		return 0, false
	}
	return curr.Value(), true
}

// RangeQuery returns all pairs with keys in [low, high], linearized at the
// query's timestamp increment. The DFS traversal (Figure 1 of the PPoPP '18
// paper, adapted to an external tree) satisfies COLLECT because searches
// are exactly sequential external-BST searches.
func (t *Tree) RangeQuery(th *rqprov.Thread, low, high int64) []epoch.KV {
	th.StartOp()
	defer th.EndOp()
	if high > MaxKey {
		high = MaxKey
	}
	th.TraversalStart(low, high)
	stack := make([]*node, 0, 64)
	stack = append(stack, ptr(t.s.child[0].Load()))
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !n.Routing() {
			if low <= n.Key() && n.Key() <= high {
				th.Visit(hdr(n))
			}
			continue
		}
		// External tree: left subtree < n.key, right subtree >= n.key.
		if low < n.Key() {
			stack = append(stack, ptr(n.child[0].Load()))
		}
		if high >= n.Key() {
			stack = append(stack, ptr(n.child[1].Load()))
		}
	}
	return th.TraversalEnd()
}

// Size counts the user leaves (quiescent use only).
func (t *Tree) Size() int {
	var count func(n *node) int
	count = func(n *node) int {
		if !n.Routing() {
			if n.Key() <= MaxKey {
				return 1
			}
			return 0
		}
		return count(ptr(n.child[0].Load())) + count(ptr(n.child[1].Load()))
	}
	return count(ptr(t.s.child[0].Load()))
}
