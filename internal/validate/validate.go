// Package validate implements the paper's experimental-correctness
// technique (§1, §5): because every range query is explicitly linearized at
// its increment of the global timestamp, and every update records the exact
// timestamp at which it linearized, an offline replay can compute the exact
// expected answer of every range query.
//
// A Checker records, per thread, every successful timestamped update
// (through the provider's Recorder hook) and every range query (timestamp,
// bounds, result). Check() then verifies that each query returned precisely
//
//	{ k ∈ [low, high] : #inserts(k, ts < rq) > #deletes(k, ts < rq) }
//
// which is exactly the set of keys whose node had itime < ts and
// (dtime = ⊥ or dtime ≥ ts): set semantics force insert/delete events of a
// key to alternate, so membership at timestamp ts is determined by the
// event counts below ts alone.
//
// The authors report that this technique exposed bugs appearing once per
// thousand executions; the integration tests in this repository run it over
// every data structure × provider pair.
package validate

import (
	"fmt"
	"sort"

	"ebrrq/internal/epoch"
)

// Event is one key-set change performed by an update.
type Event struct {
	TS     uint64
	Key    int64
	Value  int64
	Insert bool
	// Tid is the recording thread, carried for failure diagnostics.
	Tid int
}

// RQ is one recorded range query.
type RQ struct {
	TS        uint64
	Low, High int64
	Result    []epoch.KV
}

type threadLog struct {
	events []Event
	rqs    []RQ
	_      [64]byte // false-sharing padding between per-thread logs
}

// Checker accumulates a run's history. RecordUpdate and AddRQ are called on
// the owning thread (no locking); Check is called after all workers stop.
type Checker struct {
	logs []threadLog
}

// NewChecker creates a checker for up to maxThreads threads.
func NewChecker(maxThreads int) *Checker {
	return &Checker{logs: make([]threadLog, maxThreads)}
}

// RecordUpdate implements rqprov.Recorder.
func (c *Checker) RecordUpdate(tid int, ts uint64, inodes, dnodes []*epoch.Node) {
	lg := &c.logs[tid]
	for _, n := range inodes {
		if n.Routing() {
			continue
		}
		n.Each(func(k, v int64) {
			lg.events = append(lg.events, Event{TS: ts, Key: k, Value: v, Insert: true, Tid: tid})
		})
	}
	for _, n := range dnodes {
		if n.Routing() {
			continue
		}
		n.Each(func(k, v int64) {
			lg.events = append(lg.events, Event{TS: ts, Key: k, Value: v, Tid: tid})
		})
	}
}

// AddRQ records a completed range query. The result slice is copied (the
// provider reuses it between queries).
func (c *Checker) AddRQ(tid int, ts uint64, low, high int64, result []epoch.KV) {
	lg := &c.logs[tid]
	cp := make([]epoch.KV, len(result))
	copy(cp, result)
	lg.rqs = append(lg.rqs, RQ{TS: ts, Low: low, High: high, Result: cp})
}

// Events returns the total number of recorded update events.
func (c *Checker) Events() int {
	n := 0
	for i := range c.logs {
		n += len(c.logs[i].events)
	}
	return n
}

// RQs returns the total number of recorded range queries.
func (c *Checker) RQs() int {
	n := 0
	for i := range c.logs {
		n += len(c.logs[i].rqs)
	}
	return n
}

type keyHistory struct {
	// Sorted by TS. prefixNet[i] = #inserts - #deletes among events[0..i].
	events    []Event
	prefixNet []int
}

// Check replays the history and returns an error describing the first
// incorrect range query found, or nil if every query was correct.
func (c *Checker) Check() error {
	byKey := make(map[int64]*keyHistory)
	for i := range c.logs {
		for _, e := range c.logs[i].events {
			h := byKey[e.Key]
			if h == nil {
				h = &keyHistory{}
				byKey[e.Key] = h
			}
			h.events = append(h.events, e)
		}
	}
	for k, h := range byKey {
		sort.SliceStable(h.events, func(i, j int) bool { return h.events[i].TS < h.events[j].TS })
		h.prefixNet = make([]int, len(h.events))
		net := 0
		for i, e := range h.events {
			if e.Insert {
				net++
			} else {
				net--
			}
			h.prefixNet[i] = net
			// Sanity check: the number of live nodes holding a key can
			// never be negative. (It can transiently exceed one:
			// Citrus's two-child deletion inserts a copy of the
			// successor before unlinking the original.)
			if i+1 == len(h.events) || h.events[i+1].TS != e.TS {
				if net < 0 {
					return fmt.Errorf("validate: key %d has inconsistent history (net %d at ts %d): recorder or set semantics broken", k, net, e.TS)
				}
			}
		}
	}

	for tid := range c.logs {
		for ri, rq := range c.logs[tid].rqs {
			if err := c.checkRQ(byKey, tid, ri, rq); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Checker) checkRQ(byKey map[int64]*keyHistory, tid, ri int, rq RQ) error {
	got := make(map[int64]int64, len(rq.Result))
	var prev int64
	for i, kv := range rq.Result {
		if i > 0 && kv.Key <= prev {
			return fmt.Errorf("validate: thread %d rq #%d (ts %d): result not sorted/deduplicated at key %d", tid, ri, rq.TS, kv.Key)
		}
		prev = kv.Key
		if kv.Key < rq.Low || kv.Key > rq.High {
			return fmt.Errorf("validate: thread %d rq #%d (ts %d): key %d outside [%d,%d]", tid, ri, rq.TS, kv.Key, rq.Low, rq.High)
		}
		got[kv.Key] = kv.Value
	}
	// Every key whose history says "present at rq.TS" must be in the
	// result, and vice versa. All of the query's mismatches are collected
	// before reporting: whether a bad query misses one isolated key or a
	// contiguous run distinguishes a per-node race (timestamp/recovery)
	// from a traversal that skipped a physical segment of the structure.
	var missing, spurious []int64
	for k, h := range byKey {
		if k < rq.Low || k > rq.High {
			continue
		}
		// Index of last event with TS < rq.TS.
		idx := sort.Search(len(h.events), func(i int) bool { return h.events[i].TS >= rq.TS }) - 1
		expected := idx >= 0 && h.prefixNet[idx] > 0
		val, present := got[k]
		if expected && !present {
			missing = append(missing, k)
		}
		if !expected && present {
			spurious = append(spurious, k)
		}
		if expected && present {
			// Value check, only when the last insert below ts is
			// unambiguous (no same-timestamp sibling inserts).
			if v, ok := lastInsertValue(h, rq.TS); ok && v != val {
				return fmt.Errorf("validate: thread %d rq #%d (ts %d): key %d has value %d, expected %d", tid, ri, rq.TS, k, val, v)
			}
		}
		delete(got, k)
	}
	for k := range got {
		return fmt.Errorf("validate: thread %d rq #%d (ts %d): result contains key %d that was never inserted", tid, ri, rq.TS, k)
	}
	switch {
	case len(missing) == 1 && len(spurious) == 0:
		return fmt.Errorf("validate: thread %d rq #%d (ts %d, [%d,%d]): missing key %d (present since before ts) %s",
			tid, ri, rq.TS, rq.Low, rq.High, missing[0], eventsAround(byKey[missing[0]], rq.TS))
	case len(missing) == 0 && len(spurious) == 1:
		return fmt.Errorf("validate: thread %d rq #%d (ts %d, [%d,%d]): spurious key %d %s",
			tid, ri, rq.TS, rq.Low, rq.High, spurious[0], eventsAround(byKey[spurious[0]], rq.TS))
	case len(missing) > 0 || len(spurious) > 0:
		sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
		sort.Slice(spurious, func(i, j int) bool { return spurious[i] < spurious[j] })
		return fmt.Errorf("validate: thread %d rq #%d (ts %d, [%d,%d]): %d missing %v, %d spurious %v",
			tid, ri, rq.TS, rq.Low, rq.High, len(missing), clip(missing), len(spurious), clip(spurious))
	}
	return nil
}

// eventsAround renders the key's event history near the failing timestamp.
// The window discriminates failure mechanisms: a delete event just above ts
// means the node was unlinked concurrently with the query and the recovery
// sweeps failed to restore it; no nearby delete means a node that stayed
// linked throughout the traversal was skipped (or its itime misrecorded).
func eventsAround(h *keyHistory, ts uint64) string {
	idx := sort.Search(len(h.events), func(i int) bool { return h.events[i].TS >= ts })
	lo, hi := idx-3, idx+3
	if lo < 0 {
		lo = 0
	}
	if hi > len(h.events) {
		hi = len(h.events)
	}
	s := "[events near ts:"
	for i := lo; i < hi; i++ {
		e := &h.events[i]
		kind := "del"
		if e.Insert {
			kind = "ins"
		}
		s += fmt.Sprintf(" %s@%d(t%d)", kind, e.TS, e.Tid)
	}
	return s + "]"
}

// clip bounds a key list in an error message to its first 16 entries.
func clip(ks []int64) []int64 {
	if len(ks) > 16 {
		return ks[:16]
	}
	return ks
}

// lastInsertValue returns the value the key should have at timestamp ts:
// the value of the most recent insert with TS < ts. If any other event of
// the key shares that insert's timestamp, the real-time order within the
// timestamp is unknowable and the value check is skipped (ok = false).
func lastInsertValue(h *keyHistory, ts uint64) (int64, bool) {
	idx := sort.Search(len(h.events), func(i int) bool { return h.events[i].TS >= ts }) - 1
	for i := idx; i >= 0; i-- {
		e := &h.events[i]
		if !e.Insert {
			continue
		}
		sharesTS := (i > 0 && h.events[i-1].TS == e.TS) ||
			(i < idx && h.events[i+1].TS == e.TS)
		if sharesTS {
			return 0, false
		}
		return e.Value, true
	}
	return 0, false
}
