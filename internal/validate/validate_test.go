package validate

import (
	"strings"
	"testing"

	"ebrrq/internal/epoch"
)

func mkNode(k, v int64) *epoch.Node {
	n := &epoch.Node{}
	n.InitKey(k, v)
	return n
}

func mkMulti(kvs ...epoch.KV) *epoch.Node {
	n := &epoch.Node{}
	n.InitMulti(kvs)
	return n
}

func mkRouter() *epoch.Node {
	n := &epoch.Node{}
	n.InitRouting(0)
	return n
}

func TestCorrectHistoryPasses(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(5, 50)}, nil)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(7, 70)}, nil)
	// RQ at ts 2 sees {5,7}.
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 5, Value: 50}, {Key: 7, Value: 70}})
	c.RecordUpdate(0, 2, nil, []*epoch.Node{mkNode(5, 50)})
	// RQ at ts 3 sees {7}.
	c.AddRQ(0, 3, 0, 10, []epoch.KV{{Key: 7, Value: 70}})
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMissingKeyDetected(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(5, 50)}, nil)
	c.AddRQ(0, 2, 0, 10, nil) // misses 5
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "missing key 5") {
		t.Fatalf("err = %v", err)
	}
}

func TestSpuriousKeyDetected(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(5, 50)}, nil)
	c.RecordUpdate(0, 1, nil, []*epoch.Node{mkNode(5, 50)})
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 5, Value: 50}})
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "spurious key 5") {
		t.Fatalf("err = %v", err)
	}
}

func TestNeverInsertedDetected(t *testing.T) {
	c := NewChecker(1)
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 9, Value: 1}})
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "never inserted") {
		t.Fatalf("err = %v", err)
	}
}

func TestWrongValueDetected(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(5, 50)}, nil)
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 5, Value: 51}})
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "value") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnsortedResultDetected(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(5, 50), mkNode(7, 70)}, nil)
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 7, Value: 70}, {Key: 5, Value: 50}})
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfRangeDetected(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(50, 1)}, nil)
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 50, Value: 1}})
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupUpdateBalances(t *testing.T) {
	c := NewChecker(1)
	// Leaf split: old leaf {1,2,3} replaced by {1,2} and {3,4} plus a
	// router; net effect is insert of 4 only.
	c.RecordUpdate(0, 1, []*epoch.Node{mkMulti(epoch.KV{Key: 1, Value: 10}, epoch.KV{Key: 2, Value: 20}, epoch.KV{Key: 3, Value: 30})}, nil)
	c.RecordUpdate(0, 1,
		[]*epoch.Node{mkMulti(epoch.KV{Key: 1, Value: 10}, epoch.KV{Key: 2, Value: 20}), mkMulti(epoch.KV{Key: 3, Value: 30}, epoch.KV{Key: 4, Value: 40}), mkRouter()},
		[]*epoch.Node{mkMulti(epoch.KV{Key: 1, Value: 10}, epoch.KV{Key: 2, Value: 20}, epoch.KV{Key: 3, Value: 30})})
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 3, Value: 30}, {Key: 4, Value: 40}})
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingNodesIgnored(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkRouter()}, []*epoch.Node{mkRouter()})
	if c.Events() != 0 {
		t.Fatalf("router nodes recorded: %d events", c.Events())
	}
}

func TestTransientDuplicateAccepted(t *testing.T) {
	// Citrus two-child delete: copy inserted at ts 3, original removed at
	// ts 4; key present throughout.
	c := NewChecker(1)
	c.RecordUpdate(0, 1, []*epoch.Node{mkNode(9, 90)}, nil)
	c.RecordUpdate(0, 3, []*epoch.Node{mkNode(9, 90)}, nil)  // copy
	c.RecordUpdate(0, 4, nil, []*epoch.Node{mkNode(9, 90)}) // original removed
	c.AddRQ(0, 2, 0, 10, []epoch.KV{{Key: 9, Value: 90}})
	c.AddRQ(0, 5, 0, 10, []epoch.KV{{Key: 9, Value: 90}})
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeNetDetected(t *testing.T) {
	c := NewChecker(1)
	c.RecordUpdate(0, 1, nil, []*epoch.Node{mkNode(5, 50)})
	err := c.Check()
	if err == nil || !strings.Contains(err.Error(), "inconsistent history") {
		t.Fatalf("err = %v", err)
	}
}
