package kcas

import (
	"math/rand"
	"sync"
	"testing"
)

func words(vals ...uint64) []*Word {
	ws := make([]*Word, len(vals))
	for i, v := range vals {
		ws[i] = &Word{}
		ws[i].Store(NewBox(v))
	}
	return ws
}

func TestKCASBasic(t *testing.T) {
	ws := words(1, 2, 3)
	olds := []*Box{ws[0].Read(), ws[1].Read(), ws[2].Read()}
	news := []*Box{NewBox(10), NewBox(20), NewBox(30)}
	ok := KCAS([]Entry{
		{W: ws[0], Old: olds[0], New: news[0]},
		{W: ws[1], Old: olds[1], New: news[1]},
		{W: ws[2], Old: olds[2], New: news[2]},
	})
	if !ok {
		t.Fatal("k-CAS failed")
	}
	for i, want := range []uint64{10, 20, 30} {
		if got := ws[i].Value(); got != want {
			t.Fatalf("word %d = %d, want %d", i, got, want)
		}
	}
}

func TestKCASFailsOnMismatch(t *testing.T) {
	ws := words(1, 2)
	o0, o1 := ws[0].Read(), ws[1].Read()
	// Invalidate the second expectation.
	ws[1].Store(NewBox(99))
	ok := KCAS([]Entry{
		{W: ws[0], Old: o0, New: NewBox(10)},
		{W: ws[1], Old: o1, New: NewBox(20)},
	})
	if ok {
		t.Fatal("k-CAS succeeded despite mismatch")
	}
	if ws[0].Value() != 1 || ws[1].Value() != 99 {
		t.Fatalf("failed k-CAS mutated words: %d %d", ws[0].Value(), ws[1].Value())
	}
}

func TestKCASReadOnlyMember(t *testing.T) {
	// Old == New expresses "verify unchanged" (the paper's TS check).
	ws := words(7, 1)
	guard := ws[0].Read()
	old1 := ws[1].Read()
	if !KCAS([]Entry{
		{W: ws[0], Old: guard, New: guard},
		{W: ws[1], Old: old1, New: NewBox(2)},
	}) {
		t.Fatal("guarded k-CAS failed")
	}
	if ws[0].Value() != 7 || ws[1].Value() != 2 {
		t.Fatal("guard semantics broken")
	}
	// Change the guard; the next guarded k-CAS must fail.
	ws[0].Store(NewBox(8))
	old1 = ws[1].Read()
	if KCAS([]Entry{
		{W: ws[0], Old: guard, New: guard},
		{W: ws[1], Old: old1, New: NewBox(3)},
	}) {
		t.Fatal("guarded k-CAS ignored guard change")
	}
}

// TestKCASAtomicityUnderContention: concurrent 4-word "transfers" preserve
// a global invariant only if each k-CAS is atomic.
func TestKCASAtomicityUnderContention(t *testing.T) {
	const nWords = 8
	const workers = 6
	const iters = 3000
	ws := make([]*Word, nWords)
	total := uint64(0)
	for i := range ws {
		ws[i] = &Word{}
		ws[i].Store(NewBox(1000))
		total += 1000
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				a, b := r.Intn(nWords), r.Intn(nWords)
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a // consistent order
				}
				oa, ob := ws[a].Read(), ws[b].Read()
				if oa.V == 0 {
					continue
				}
				// Move one unit from a to b, atomically.
				KCAS([]Entry{
					{W: ws[a], Old: oa, New: NewBox(oa.V - 1)},
					{W: ws[b], Old: ob, New: NewBox(ob.V + 1)},
				})
			}
		}(int64(w))
	}
	wg.Wait()
	var sum uint64
	for _, w := range ws {
		sum += w.Value()
	}
	if sum != total {
		t.Fatalf("sum = %d, want %d: k-CAS tore", sum, total)
	}
}

// TestKCASOverlappingSets stresses operations whose word sets overlap
// partially, which exercises cross-descriptor helping.
func TestKCASOverlappingSets(t *testing.T) {
	const n = 6
	ws := make([]*Word, n)
	for i := range ws {
		ws[i] = &Word{}
		ws[i].Store(NewBox(0))
	}
	var wg sync.WaitGroup
	var successes [n]uint64
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			local := make([]uint64, n)
			for i := 0; i < 4000; i++ {
				// Increment a random window of 3 adjacent words.
				s := r.Intn(n - 2)
				olds := []*Box{ws[s].Read(), ws[s+1].Read(), ws[s+2].Read()}
				ok := KCAS([]Entry{
					{W: ws[s], Old: olds[0], New: NewBox(olds[0].V + 1)},
					{W: ws[s+1], Old: olds[1], New: NewBox(olds[1].V + 1)},
					{W: ws[s+2], Old: olds[2], New: NewBox(olds[2].V + 1)},
				})
				if ok {
					local[s]++
					local[s+1]++
					local[s+2]++
				}
			}
			mu.Lock()
			for i := range local {
				successes[i] += local[i]
			}
			mu.Unlock()
		}(int64(w))
	}
	wg.Wait()
	for i := range ws {
		if got := ws[i].Value(); got != successes[i] {
			t.Fatalf("word %d = %d, want %d successful increments", i, got, successes[i])
		}
	}
}
