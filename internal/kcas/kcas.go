// Package kcas implements the multi-word compare-and-swap of Harris,
// Fraser and Pratt (DISC '02): k-CAS built from RDCSS (restricted
// double-compare single-swap).
//
// §4.5 of the PPoPP '18 paper discusses k-CAS as the "easy" way to build a
// lock-free RQ provider — atomically perform the update CAS, set every
// itime/dtime field, and verify TS is unchanged — and dismisses it:
// "k-CAS is relatively expensive, so this approach would be slow in
// practice". This package exists to reproduce that claim quantitatively:
// BenchmarkAblationKCASvsDCSS (bench_test.go) compares a k-CAS-composed
// update against the DCSS + plain-stores recipe the paper actually uses.
//
// Words hold pointers to immutable value boxes; descriptors are
// distinguished by a low tag bit (interior pointer — GC-safe, exactly as in
// package dcss). Using real pointers keeps helpers' descriptor references
// visible to the garbage collector, which is what makes a Go
// implementation of Harris k-CAS memory-safe without the manual descriptor
// reclamation machinery the C++ version needs.
package kcas

import (
	"sync/atomic"
	"unsafe"
)

// Box is an immutable boxed value; words point at boxes.
type Box struct {
	V uint64
}

// NewBox allocates a box.
func NewBox(v uint64) *Box { return &Box{V: v} }

const (
	tagRDCSS = uintptr(1)
	tagKCAS  = uintptr(2)
	tagMask  = uintptr(3)
)

func tagOf(p unsafe.Pointer) uintptr { return uintptr(p) & tagMask }

func untag(p unsafe.Pointer) unsafe.Pointer {
	off := uintptr(p) & tagMask
	if off == 0 {
		return p
	}
	return unsafe.Add(p, -int(off))
}

func tag(p unsafe.Pointer, t uintptr) unsafe.Pointer {
	return unsafe.Add(p, int(t))
}

// Word is a shared cell holding a *Box. All reads must go through Read.
type Word struct {
	p unsafe.Pointer
}

// Store initialises the word (not atomic w.r.t. concurrent k-CAS).
func (w *Word) Store(b *Box) { atomic.StorePointer(&w.p, unsafe.Pointer(b)) }

// Read returns the word's current box, helping in-flight operations first.
func (w *Word) Read() *Box {
	for {
		v := atomic.LoadPointer(&w.p)
		switch tagOf(v) {
		case 0:
			return (*Box)(v)
		case tagRDCSS:
			(*rdcssDesc)(untag(v)).complete()
		case tagKCAS:
			(*kcasDesc)(untag(v)).help()
		}
	}
}

// Value is shorthand for Read().V.
func (w *Word) Value() uint64 { return w.Read().V }

// Entry is one word of a k-CAS: replace Old by New (pointer identity).
// Old == New expresses read-only membership (the paper's "verify TS has
// not changed").
type Entry struct {
	W        *Word
	Old, New *Box
}

const (
	statusUndecided uint32 = iota
	statusSucceeded
	statusFailed
)

type kcasDesc struct {
	status  atomic.Uint32
	entries []Entry
}

// rdcssDesc installs a k-CAS descriptor into one word only while the k-CAS
// is still undecided (RDCSS with a1 = &kcas.status, e1 = undecided).
type rdcssDesc struct {
	kcas *kcasDesc
	w    *Word
	old  *Box
}

// run attempts the RDCSS; it returns the word's value at the linearization
// point: d.old on success (the k-CAS descriptor is installed), any other
// box if the word differs.
func (d *rdcssDesc) run() unsafe.Pointer {
	self := tag(unsafe.Pointer(d), tagRDCSS)
	for {
		if atomic.CompareAndSwapPointer(&d.w.p, unsafe.Pointer(d.old), self) {
			d.complete()
			return unsafe.Pointer(d.old)
		}
		v := atomic.LoadPointer(&d.w.p)
		switch tagOf(v) {
		case 0:
			if v != unsafe.Pointer(d.old) {
				return v
			}
			// Lost a race but the value matches; retry the install.
		case tagRDCSS:
			(*rdcssDesc)(untag(v)).complete()
		case tagKCAS:
			if untag(v) == unsafe.Pointer(d.kcas) {
				return unsafe.Pointer(d.old) // already installed (helper won)
			}
			(*kcasDesc)(untag(v)).help()
		}
	}
}

// complete resolves an installed RDCSS: to the k-CAS descriptor if it is
// still undecided, back to the old value otherwise.
func (d *rdcssDesc) complete() {
	self := tag(unsafe.Pointer(d), tagRDCSS)
	if d.kcas.status.Load() == statusUndecided {
		atomic.CompareAndSwapPointer(&d.w.p, self, tag(unsafe.Pointer(d.kcas), tagKCAS))
	} else {
		atomic.CompareAndSwapPointer(&d.w.p, self, unsafe.Pointer(d.old))
	}
}

// KCAS atomically compares every entry's word against Old (by box
// identity) and, if all match, replaces each with New. Callers that may
// contend on overlapping word sets should order entries consistently
// (e.g. by address) to reduce aborts; correctness does not depend on it.
func KCAS(entries []Entry) bool {
	d := &kcasDesc{entries: entries}
	return d.help()
}

// help drives the k-CAS to completion; safe for any thread to call.
func (d *kcasDesc) help() bool {
	self := tag(unsafe.Pointer(d), tagKCAS)
	if d.status.Load() == statusUndecided {
		decision := statusSucceeded
	install:
		for _, e := range d.entries {
			for {
				cur := atomic.LoadPointer(&e.W.p)
				if cur == self {
					break // already carries our descriptor
				}
				r := &rdcssDesc{kcas: d, w: e.W, old: e.Old}
				got := r.run()
				if got == unsafe.Pointer(e.Old) {
					break
				}
				if tagOf(got) == 0 {
					decision = statusFailed
					break install
				}
			}
			if d.status.Load() != statusUndecided {
				break
			}
		}
		d.status.CompareAndSwap(statusUndecided, decision)
	}
	ok := d.status.Load() == statusSucceeded
	for _, e := range d.entries {
		nv := unsafe.Pointer(e.Old)
		if ok {
			nv = unsafe.Pointer(e.New)
		}
		atomic.CompareAndSwapPointer(&e.W.p, self, nv)
	}
	return ok
}
