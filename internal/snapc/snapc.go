// Package snapc implements the Snap-collector of Petrank and Timnat
// ("Lock-Free Data-Structure Iterators", DISC '13) — the main prior-work
// baseline of the PPoPP '18 paper. A snapshot is built collaboratively: the
// iterating thread(s) traverse the structure appending the unmarked nodes
// they find (in ascending key order) to a shared node list, while every
// concurrent update and search *reports* the insertions and deletions it
// performs or observes. After the traversal the iterator blocks further
// nodes, deactivates the collector, seals the report lists and reconstructs
// the snapshot: a node belongs iff it was collected or insert-reported, and
// was not delete-reported.
//
// As the paper's §2 details, this design (a) requires logical deletion,
// (b) cannot express small range queries (every query snapshots the entire
// structure), (c) burdens every update and search with reporting overhead
// while a collector is active, and (d) allocates many auxiliary objects.
// Those costs are exactly what the experiments measure. The original relies
// on garbage collection for the auxiliary objects (the paper's C++ version
// used DEBRA); here Go's GC plays that role.
package snapc

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ebrrq/internal/epoch"
)

// ReportType distinguishes insert from delete reports.
type ReportType uint8

const (
	// ReportInsert records that a node was inserted (or observed present).
	ReportInsert ReportType = iota
	// ReportDelete records that a node was deleted (or observed marked).
	ReportDelete
)

// sealMarker is the report type of the sentinel that seals a report list.
const sealMarker = ReportType(0xff)

type report struct {
	node *epoch.Node
	key  int64
	val  int64
	typ  ReportType
	next *report
}

type reportList struct {
	head atomic.Pointer[report]
	_    [56]byte
}

type snapNode struct {
	key  int64
	val  int64
	node *epoch.Node
	next atomic.Pointer[snapNode]
}

// Collector is one collaborative snapshot in progress (a Snap-collector
// object).
type Collector struct {
	head    *snapNode
	tail    atomic.Pointer[snapNode]
	reports []reportList
	active  atomic.Bool

	reconstructOnce sync.Once
	snapshot        []epoch.KV
}

// newCollector creates an active collector for maxThreads threads.
func newCollector(maxThreads int) *Collector {
	c := &Collector{
		head:    &snapNode{key: math.MinInt64},
		reports: make([]reportList, maxThreads),
	}
	c.tail.Store(c.head)
	c.active.Store(true)
	return c
}

// IsActive reports whether the collector still accepts nodes and reports.
func (c *Collector) IsActive() bool { return c.active.Load() }

// AddNode offers a node (with its key/value) found by an iterating thread's
// traversal. Nodes must be offered in ascending key order; offers at or
// below the current tail key are ignored (another iterator got there
// first), which also makes AddNode a no-op once the collector is blocked.
func (c *Collector) AddNode(n *epoch.Node, key, val int64) {
	for {
		t := c.tail.Load()
		if t.key >= key {
			return
		}
		if nx := t.next.Load(); nx != nil {
			c.tail.CompareAndSwap(t, nx)
			continue
		}
		nn := &snapNode{key: key, val: val, node: n}
		if t.next.CompareAndSwap(nil, nn) {
			c.tail.CompareAndSwap(t, nn)
			return
		}
	}
}

// Report records an insertion/deletion of node n performed or observed by
// thread tid. It is a no-op once the thread's report list is sealed.
func (c *Collector) Report(tid int, n *epoch.Node, key, val int64, typ ReportType) {
	rl := &c.reports[tid]
	r := &report{node: n, key: key, val: val, typ: typ}
	for {
		h := rl.head.Load()
		if h != nil && h.typ == sealMarker {
			return
		}
		r.next = h
		if rl.head.CompareAndSwap(h, r) {
			return
		}
	}
}

// BlockFurtherNodes prevents any further AddNode from taking effect.
func (c *Collector) BlockFurtherNodes() {
	c.AddNode(nil, math.MaxInt64, 0)
}

// Deactivate stops updates from reporting to this collector.
func (c *Collector) Deactivate() { c.active.Store(false) }

// BlockFurtherReports seals every thread's report list by pushing a seal
// sentinel; earlier reports stay reachable behind it.
func (c *Collector) BlockFurtherReports() {
	for i := range c.reports {
		rl := &c.reports[i]
		for {
			h := rl.head.Load()
			if h != nil && h.typ == sealMarker {
				break
			}
			if rl.head.CompareAndSwap(h, &report{typ: sealMarker, next: h}) {
				break
			}
		}
	}
}

// Reconstruct computes (once) and returns the snapshot: sorted key-value
// pairs of every node that was collected or insert-reported and not
// delete-reported.
func (c *Collector) Reconstruct() []epoch.KV {
	c.reconstructOnce.Do(func() {
		type entry struct {
			kv      epoch.KV
			deleted bool
		}
		members := make(map[*epoch.Node]*entry)
		for sn := c.head.next.Load(); sn != nil; sn = sn.next.Load() {
			if sn.node == nil {
				continue // blocking sentinel
			}
			members[sn.node] = &entry{kv: epoch.KV{Key: sn.key, Value: sn.val}}
		}
		for i := range c.reports {
			for r := c.reports[i].head.Load(); r != nil; r = r.next {
				if r.typ == sealMarker || r.node == nil {
					continue
				}
				e := members[r.node]
				if e == nil {
					e = &entry{kv: epoch.KV{Key: r.key, Value: r.val}}
					members[r.node] = e
				}
				if r.typ == ReportDelete {
					e.deleted = true
				}
			}
		}
		res := make([]epoch.KV, 0, len(members))
		for _, e := range members {
			if !e.deleted {
				res = append(res, e.kv)
			}
		}
		sort.Slice(res, func(i, j int) bool { return res[i].Key < res[j].Key })
		// Defensive dedup (set semantics guarantee at most one live node
		// per key, but reports may duplicate).
		out := res[:0]
		for i := range res {
			if i == 0 || res[i].Key != res[i-1].Key {
				out = append(out, res[i])
			}
		}
		c.snapshot = out
	})
	return c.snapshot
}

// FilterRange returns the sub-slice of a sorted snapshot whose keys lie in
// [low, high]. The result aliases the snapshot (read-only).
func FilterRange(snap []epoch.KV, low, high int64) []epoch.KV {
	lo := sort.Search(len(snap), func(i int) bool { return snap[i].Key >= low })
	hi := sort.Search(len(snap), func(i int) bool { return snap[i].Key > high })
	return snap[lo:hi]
}

// Registry publishes the active collector of one data structure.
type Registry struct {
	cur        atomic.Pointer[Collector]
	maxThreads int
}

// NewRegistry creates a registry for maxThreads threads.
func NewRegistry(maxThreads int) *Registry {
	return &Registry{maxThreads: maxThreads}
}

// Acquire joins the active collector, or installs a fresh one.
func (r *Registry) Acquire() *Collector {
	for {
		c := r.cur.Load()
		if c != nil && c.IsActive() {
			return c
		}
		n := newCollector(r.maxThreads)
		if r.cur.CompareAndSwap(c, n) {
			return n
		}
	}
}

// Active returns the active collector, or nil. Updates and searches call
// this on every operation (the reporting overhead the paper measures).
func (r *Registry) Active() *Collector {
	c := r.cur.Load()
	if c != nil && c.IsActive() {
		return c
	}
	return nil
}
