package snapc_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq/internal/ds/lazylist"
	"ebrrq/internal/ds/lflist"
	"ebrrq/internal/ds/skiplist"
	"ebrrq/internal/dstest"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/snapc"
)

func TestCollectorBasics(t *testing.T) {
	r := snapc.NewRegistry(2)
	if r.Active() != nil {
		t.Fatal("fresh registry has an active collector")
	}
	c := r.Acquire()
	if !c.IsActive() || r.Active() != c {
		t.Fatal("acquire did not activate")
	}
	n1, n2, n3 := &epoch.Node{}, &epoch.Node{}, &epoch.Node{}
	c.AddNode(n1, 1, 10)
	c.AddNode(n2, 5, 50)
	c.AddNode(n3, 3, 30) // out of order: ignored (tail at 5)
	c.Report(0, n3, 3, 30, snapc.ReportInsert)
	c.Report(1, n2, 5, 50, snapc.ReportDelete)
	c.BlockFurtherNodes()
	c.Deactivate()
	c.BlockFurtherReports()
	c.Report(0, &epoch.Node{}, 9, 90, snapc.ReportInsert) // sealed: dropped
	snap := c.Reconstruct()
	want := []epoch.KV{{Key: 1, Value: 10}, {Key: 3, Value: 30}}
	if len(snap) != len(want) || snap[0] != want[0] || snap[1] != want[1] {
		t.Fatalf("snapshot = %v, want %v", snap, want)
	}
	if r.Active() != nil {
		t.Fatal("deactivated collector still returned")
	}
	if c2 := r.Acquire(); c2 == c {
		t.Fatal("acquire returned the dead collector")
	}
}

func TestFilterRange(t *testing.T) {
	snap := []epoch.KV{{Key: 1}, {Key: 3}, {Key: 5}, {Key: 7}}
	got := snapc.FilterRange(snap, 2, 6)
	if len(got) != 2 || got[0].Key != 3 || got[1].Key != 5 {
		t.Fatalf("FilterRange = %v", got)
	}
	if len(snapc.FilterRange(snap, 8, 9)) != 0 || len(snapc.FilterRange(snap, 0, 0)) != 0 {
		t.Fatal("empty filters wrong")
	}
	if len(snapc.FilterRange(snap, 0, 100)) != 4 {
		t.Fatal("full filter wrong")
	}
}

func snapBuilders() map[string]func(p *rqprov.Provider) dstest.Set {
	return map[string]func(p *rqprov.Provider) dstest.Set{
		"lflist":   func(p *rqprov.Provider) dstest.Set { return lflist.NewSnap(p) },
		"lazylist": func(p *rqprov.Provider) dstest.Set { return lazylist.NewSnap(p) },
		"skiplist": func(p *rqprov.Provider) dstest.Set { return skiplist.NewSnap(p) },
	}
}

// TestSnapSequential checks snap-mode range queries against a model with a
// single thread (collector built and reconstructed per query).
func TestSnapSequential(t *testing.T) {
	for name, build := range snapBuilders() {
		t.Run(name, func(t *testing.T) {
			dstest.RunSequential(t, rqprov.ModeUnsafe, false, build, dstest.SequentialCfg{Seed: 91})
		})
	}
}

// TestSnapshotPrefix: writers insert strictly increasing keys; a
// linearizable snapshot must contain a prefix of each writer's sequence.
func TestSnapshotPrefix(t *testing.T) {
	for name, build := range snapBuilders() {
		t.Run(name, func(t *testing.T) {
			const writers = 3
			p := rqprov.New(rqprov.Config{MaxThreads: writers + 1, Mode: rqprov.ModeUnsafe})
			s := build(p)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(id int64) {
					defer wg.Done()
					th := p.Register()
					for i := int64(0); !stop.Load() && i < 1<<20; i++ {
						s.Insert(th, id*1_000_000+i, i)
					}
				}(int64(w))
			}
			rq := p.Register()
			deadline := time.Now().Add(400 * time.Millisecond)
			checks := 0
			for time.Now().Before(deadline) {
				res := s.RangeQuery(rq, 0, 1<<62)
				last := make(map[int64]int64)
				counts := make(map[int64]int64)
				for _, kv := range res {
					w := kv.Key / 1_000_000
					i := kv.Key % 1_000_000
					if i > last[w] {
						last[w] = i
					}
					counts[w]++
				}
				for w, hi := range last {
					if counts[w] != hi+1 {
						t.Fatalf("writer %d: %d keys, max index %d — snapshot hole", w, counts[w], hi)
					}
				}
				checks++
			}
			stop.Store(true)
			wg.Wait()
			if checks == 0 {
				t.Fatal("no snapshots taken")
			}
		})
	}
}

// TestSnapMixedSmoke: mixed updates + deletes + snapshots; results must be
// sorted, deduplicated, in range.
func TestSnapMixedSmoke(t *testing.T) {
	for name, build := range snapBuilders() {
		t.Run(name, func(t *testing.T) {
			p := rqprov.New(rqprov.Config{MaxThreads: 6, Mode: rqprov.ModeUnsafe})
			s := build(p)
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := p.Register()
					r := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						k := r.Int63n(128)
						switch r.Intn(3) {
						case 0:
							s.Insert(th, k, k)
						case 1:
							s.Delete(th, k)
						default:
							s.Contains(th, k)
						}
					}
				}(int64(w))
			}
			rq := p.Register()
			deadline := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(deadline) {
				res := s.RangeQuery(rq, 20, 90)
				for i, kv := range res {
					if kv.Key < 20 || kv.Key > 90 {
						t.Fatalf("out-of-range key %d", kv.Key)
					}
					if i > 0 && res[i-1].Key >= kv.Key {
						t.Fatal("unsorted/duplicate result")
					}
					if kv.Value != kv.Key {
						t.Fatalf("key %d has wrong value %d", kv.Key, kv.Value)
					}
				}
			}
			stop.Store(true)
			wg.Wait()
		})
	}
}
