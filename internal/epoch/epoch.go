// Package epoch implements DEBRA-style epoch-based memory reclamation (EBR)
// with the extension required by the PPoPP'18 range-query technique of
// Arbel-Raviv and Brown: per-thread limbo lists that remain traversable by
// concurrent operations, plus the GetLimboLists operation (exposed here as
// ForEachLimboList) that returns every limbo list which may contain nodes
// retired during the calling thread's current operation.
//
// The EBR ADT of the paper provides StartOp, EndOp, Retire and GetLimboLists.
// Retire(node) places node at the head of the retiring thread's current limbo
// list, so each list is sorted in descending order of deletion time — the
// property the provider's early-exit optimization relies on.
//
// Reclamation in Go: the garbage collector makes use-after-free impossible,
// but the paper's algorithm depends on nodes not being *reused* while a
// concurrent operation may still hold a reference (otherwise ABA on data
// structure pointers and bogus itime/dtime values would corrupt range
// queries). This package therefore performs real reclamation: when a limbo
// bag becomes reclaimable (two epoch advances after it was sealed), its nodes
// are handed to a free function that returns them to per-thread pools for
// reuse. Premature hand-off would be an observable bug, so the epoch
// discipline is exercised exactly as in a manually-managed language.
package epoch

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"ebrrq/internal/fault"
	"ebrrq/internal/obs"
	"ebrrq/internal/trace"
)

// KV is a key-value pair stored in a multi-key node.
type KV struct {
	Key   int64
	Value int64
}

// Node is the header embedded (as the first field) in every data-structure
// node managed by EBR and the range-query provider. It carries the insertion
// and deletion timestamps of §4 of the paper, a mirror of the node's key(s)
// so that limbo-list and announcement sweeps never need to know the concrete
// node layout, and the limbo-list link.
//
// Timestamp encoding: 0 represents ⊥ (not yet set); the provider's global
// timestamp starts at 1.
type Node struct {
	itime     atomic.Uint64
	dtime     atomic.Uint64
	key       int64
	value     int64
	multi     []KV // key-value pairs of a multi-key node (may be empty)
	isMulti   bool // true for multi-key nodes (even when multi is empty)
	routing   bool // true for internal router nodes that hold no set keys
	limboNext atomic.Pointer[Node]

	// gen counts how many times this node has been recycled. Debug
	// assertions use it to detect reuse of a node that an operation still
	// holds; it is also handy when diagnosing ABA bugs.
	gen atomic.Uint64
}

// InitKey prepares a (new or recycled) single-key node for insertion.
func (n *Node) InitKey(key, value int64) {
	n.key = key
	n.value = value
	n.multi = nil
	n.isMulti = false
	n.routing = false
	n.itime.Store(0)
	n.dtime.Store(0)
	n.limboNext.Store(nil)
}

// InitRouting prepares a router node: it participates in traversals (key is
// its routing key) and in EBR reclamation, but holds no set keys — range
// queries and the validation recorder ignore it entirely.
func (n *Node) InitRouting(key int64) {
	n.key = key
	n.value = 0
	n.multi = nil
	n.isMulti = false
	n.routing = true
	n.itime.Store(0)
	n.dtime.Store(0)
	n.limboNext.Store(nil)
}

// Routing reports whether this is a router node (no set keys).
func (n *Node) Routing() bool { return n.routing }

// InitMulti prepares a (new or recycled) multi-key node for insertion. The
// slice must not be mutated after the node becomes reachable.
func (n *Node) InitMulti(kvs []KV) {
	n.key = 0
	n.value = 0
	n.multi = kvs
	n.isMulti = true
	n.routing = false
	n.itime.Store(0)
	n.dtime.Store(0)
	n.limboNext.Store(nil)
}

// Key returns the node's single key. For multi-key nodes use Each.
func (n *Node) Key() int64 { return n.key }

// Value returns the node's single value.
func (n *Node) Value() int64 { return n.value }

// Multi returns a multi-key node's key-value pairs (nil or empty for an
// empty leaf; meaningless for single-key nodes).
func (n *Node) Multi() []KV { return n.multi }

// IsMulti reports whether the node is a multi-key node.
func (n *Node) IsMulti() bool { return n.isMulti }

// Each invokes f for every key-value pair held by the node.
func (n *Node) Each(f func(k, v int64)) {
	if n.isMulti {
		for _, kv := range n.multi {
			f(kv.Key, kv.Value)
		}
		return
	}
	f(n.key, n.value)
}

// ContainsInRange reports whether any key of the node lies in [low, high].
func (n *Node) ContainsInRange(low, high int64) bool {
	if n.isMulti {
		for _, kv := range n.multi {
			if low <= kv.Key && kv.Key <= high {
				return true
			}
		}
		return false
	}
	return low <= n.key && n.key <= high
}

// ITime returns the node's insertion timestamp (0 = ⊥).
func (n *Node) ITime() uint64 { return n.itime.Load() }

// DTime returns the node's deletion timestamp (0 = ⊥).
func (n *Node) DTime() uint64 { return n.dtime.Load() }

// SetITime publishes the node's insertion timestamp. It is idempotent in the
// lock-free provider (helpers may store the same value concurrently).
func (n *Node) SetITime(ts uint64) { n.itime.Store(ts) }

// SetDTime publishes the node's deletion timestamp.
func (n *Node) SetDTime(ts uint64) { n.dtime.Store(ts) }

// LimboNext returns the next node in the limbo list this node belongs to.
func (n *Node) LimboNext() *Node { return n.limboNext.Load() }

// Gen returns the node's recycling generation.
func (n *Node) Gen() uint64 { return n.gen.Load() }

// nodeHeaderBytes is the in-memory footprint of the Node header itself. The
// byte gauges are estimates: the header is embedded in a larger structure
// node (skip-list towers, tree children), so real footprints are strictly
// larger — good enough for limits, which bound growth, not exact RSS.
const nodeHeaderBytes = int64(unsafe.Sizeof(Node{}))

// approxBytes estimates the node's heap footprint for the limbo/quarantine
// byte gauges: the header plus any multi-key payload.
func (n *Node) approxBytes() int64 {
	if n.isMulti {
		return nodeHeaderBytes + int64(len(n.multi))*int64(unsafe.Sizeof(KV{}))
	}
	return nodeHeaderBytes
}

// numBags is the number of limbo bags per thread. A bag sealed at epoch e is
// reclaimable once the global epoch reaches e+2, so three bags (current,
// previous, reclaimable) suffice.
const numBags = 3

// scanInterval is the number of operations a thread performs between attempts
// to advance the global epoch (DEBRA's amortization).
const scanInterval = 32

type bag struct {
	epoch atomic.Uint64
	head  atomic.Pointer[Node]

	// maxDTime is a monotone fence over the deletion timestamps of every
	// node currently in the bag: Retire raises it before publishing the
	// node (so a reader that observes a node in the chain also observes a
	// fence at least as large as its dtime), and rotate resets it before
	// re-tagging the bag. A node retired before its dtime was published
	// (helpers may physically unlink another thread's victim) forces the
	// fence to ^uint64(0) — "unknown, never skip". Range queries use the
	// fence to skip entire bags whose contents predate their timestamp.
	maxDTime atomic.Uint64
}

// FreeFunc receives nodes whose reclamation is safe. Implementations
// typically push the node into a per-thread pool keyed by tid for reuse.
type FreeFunc func(tid int, n *Node)

// Metrics holds the domain's observability counters. All fields are
// optional (nil counters ignore writes), so the uninstrumented path costs
// one branch per event.
type Metrics struct {
	// Advances counts successful global-epoch advances.
	Advances *obs.Counter
	// Retires counts nodes placed in limbo via Retire.
	Retires *obs.Counter
	// Rotations counts limbo-bag rotations (bag sealed & reclaimed).
	Rotations *obs.Counter
	// Reclaimed counts nodes handed to the free function.
	Reclaimed *obs.Counter
	// Neutralizations counts threads whose announcement the watchdog
	// poisoned (the escalation ladder's final rung).
	Neutralizations *obs.Counter
	// Quarantined counts reclaimable nodes diverted to the quarantine list
	// while a neutralization was unacknowledged.
	Quarantined *obs.Counter
	// ForcedAdvances counts global-epoch advances forced by the watchdog
	// under limbo pressure (escalation rung 1).
	ForcedAdvances *obs.Counter
	// ForcedSweeps counts orphan-bag sweeps forced by the watchdog under
	// limbo pressure (escalation rung 2).
	ForcedSweeps *obs.Counter
}

// Domain is an EBR domain shared by all threads operating on one (or more)
// data structures.
type Domain struct {
	global     atomic.Uint64
	threads    []atomic.Pointer[Thread]
	registered atomic.Int32
	free       FreeFunc

	// Registration bookkeeping. mu guards freeIDs and slot adoption; the
	// orphans counter lets tryAdvance skip the orphan sweep entirely while
	// no thread has ever deregistered.
	mu      sync.Mutex
	freeIDs []int
	orphans atomic.Int32

	wd atomic.Pointer[Watchdog]

	// Flight recorder (may be nil). trPrefix namespaces ring labels when
	// several domains (shards) share one recorder.
	trec     *trace.Recorder
	trPrefix string

	// Stats.
	reclaimed atomic.Uint64
	advances  atomic.Uint64
	met       Metrics

	// O(1) memory accounting: limboNodes/limboBytes track every node placed
	// in a limbo bag (Retire adds, reclamation subtracts); quarNodes/
	// quarBytes track the quarantine list. The limits (0 = unlimited) bound
	// limboNodes+quarNodes — the total the domain cannot hand back to the
	// free pools.
	limboNodes atomic.Int64
	limboBytes atomic.Int64
	quarNodes  atomic.Int64
	quarBytes  atomic.Int64
	softLimit  atomic.Int64
	hardLimit  atomic.Int64

	// Two-phase neutralization (DESIGN.md §11). unacked counts neutralized
	// threads that have not yet acknowledged the poison at an op boundary;
	// while it is nonzero every reclaimable chain is diverted to quarantine
	// instead of the free function, because the neutralized thread may still
	// dereference any node that existed when it stalled — recycling one
	// would hand it ABA'd timestamps or a relinked limbo chain. quarMu
	// guards the list and serializes writes to quarTr.
	unacked         atomic.Int32
	neutralizations atomic.Uint64
	quarMu          sync.Mutex
	quarantine      []quarChain
	quarTr          *trace.Ring
}

// quarChain is one reclaimable limbo chain held in quarantine until every
// outstanding neutralization is acknowledged. tid selects the free pool the
// chain drains to, exactly as the diverted reclaimChain call would have.
type quarChain struct {
	head  *Node
	tid   int
	nodes int64
	bytes int64
}

// ErrTooManyThreads is returned by TryRegister when every slot is occupied
// by a live (non-deregistered) thread.
var ErrTooManyThreads = errors.New("epoch: too many threads registered")

// ErrNeutralized is the panic value raised when a thread that the watchdog
// neutralized reaches a protocol checkpoint: the thread's announcement was
// poisoned, its epoch protection is gone, and the in-flight (or next)
// operation must be abandoned. Recover it at the operation boundary, then
// Deregister the thread and re-register through the slot-adoption path.
var ErrNeutralized = errors.New("epoch: thread neutralized by watchdog")

// poisonedAnn is the announcement sentinel a neutralization installs: the
// quiescent bit is set, so tryAdvance, Stalls and the watchdog all treat the
// thread as no longer pinning the epoch. No legitimate announcement can
// equal it (the epoch would have to be 2^63-1).
const poisonedAnn = ^uint64(0)

// NewDomain creates an EBR domain supporting up to maxThreads registered
// threads. The global epoch starts at numBags so bag-age arithmetic never
// underflows.
func NewDomain(maxThreads int) *Domain {
	if maxThreads <= 0 {
		panic("epoch: maxThreads must be positive")
	}
	d := &Domain{threads: make([]atomic.Pointer[Thread], maxThreads)}
	d.global.Store(numBags)
	return d
}

// SetFreeFunc installs the reclamation callback. Must be called before any
// operations run. When unset, reclaimable nodes are simply dropped (the Go GC
// collects them), which still exercises the full epoch discipline.
func (d *Domain) SetFreeFunc(f FreeFunc) { d.free = f }

// SetMetrics wires observability counters into the domain. Call before the
// domain is shared between goroutines (metrics handles are nil-safe, so
// partial wiring is fine).
func (d *Domain) SetMetrics(m Metrics) { d.met = m }

// SetTrace attaches a flight recorder to the domain. The domain itself only
// uses it for the watchdog's stall-edge ring (labeled prefix+"watchdog");
// per-thread rings are attached by the layer that owns thread registration
// (Thread.SetTrace). Call before StartWatchdog.
func (d *Domain) SetTrace(rec *trace.Recorder, prefix string) {
	d.trec = rec
	d.trPrefix = prefix
	if rec != nil {
		// Quarantine events come from whichever thread happens to divert or
		// drain a chain; quarMu serializes them, so one ring is safe.
		d.quarTr = rec.Ring(prefix + "quarantine")
	}
}

// Register allocates a thread slot in the domain, panicking when the domain
// is full. It is a thin wrapper around TryRegister kept for existing
// callers; new code should prefer TryRegister. The returned Thread must only
// be used by a single goroutine.
func (d *Domain) Register() *Thread {
	t, err := d.TryRegister()
	if err != nil {
		panic(fmt.Sprintf("epoch: more than %d threads registered", len(d.threads)))
	}
	return t
}

// TryRegister allocates a thread slot in the domain, reusing slots released
// by Deregister before extending the high-water mark. It is safe to call
// concurrently and returns ErrTooManyThreads when every slot is held by a
// live thread.
func (d *Domain) TryRegister() (*Thread, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.freeIDs); n > 0 {
		id := d.freeIDs[n-1]
		d.freeIDs = d.freeIDs[:n-1]
		d.orphans.Add(-1)
		return d.adopt(id), nil
	}
	id := int(d.registered.Load())
	if id >= len(d.threads) {
		return nil, ErrTooManyThreads
	}
	t := &Thread{dom: d, id: id}
	t.ann.Store(quiescentBit) // quiescent
	e := d.global.Load()
	// Slot s always holds the most recent epoch ≡ s (mod numBags): tag the
	// slots for epochs e, e-1, e-2 so rotation arithmetic holds from the
	// first operation. The global epoch starts at numBags, so no underflow.
	for k := uint64(0); k < numBags; k++ {
		t.bags[(e-k)%numBags].epoch.Store(e - k)
	}
	t.localEpoch = e
	d.threads[id].Store(t)
	d.registered.Store(int32(id + 1))
	return t, nil
}

// adopt builds a fresh Thread over the slot of a deregistered one. Limbo
// bags still holding the most recent epoch of their slot are inherited in
// place: their chains may contain nodes a concurrent range query must still
// find (COLLECT), and the dead thread's bag keeps pointing at the shared
// chain so readers that captured the old Thread pointer stay correct — by
// the time the new owner rotates an inherited bag, every operation
// concurrent with the adoption has finished (rotation requires two further
// epoch advances, which active operations block). Stale bags (at least
// numBags epochs old, unreachable through any active operation's limbo
// view) are reclaimed immediately; Swap arbitrates with concurrent orphan
// sweeps. Caller holds d.mu.
func (d *Domain) adopt(id int) *Thread {
	old := d.threads[id].Load()
	t := &Thread{dom: d, id: id}
	t.ann.Store(quiescentBit)
	e := d.global.Load()
	for k := uint64(0); k < numBags; k++ {
		slot := (e - k) % numBags
		nb, ob := &t.bags[slot], &old.bags[slot]
		nb.epoch.Store(e - k)
		if ob.epoch.Load() == e-k {
			nb.maxDTime.Store(ob.maxDTime.Load()) // fence before head, as in Retire
			nb.head.Store(ob.head.Load())
		} else if head := ob.head.Swap(nil); head != nil {
			d.reclaimChain(id, head)
		}
	}
	t.localEpoch = e
	d.threads[id].Store(t)
	return t
}

// reclaimChain hands every node of a limbo chain to the free function,
// crediting the stats, and returns how many nodes left limbo. tid selects
// the receiving free pool.
//
// While any neutralization is unacknowledged the chain is diverted — intact,
// links preserved — to the quarantine list instead: the neutralized thread
// may still be walking it (its epoch protection is gone, but its goroutine
// cannot be stopped), and recycling a node it can reach would corrupt its
// walk with ABA'd timestamps or relinked chains. The diverted chain reaches
// the free pools when the last acknowledgement drains the quarantine.
func (d *Domain) reclaimChain(tid int, head *Node) int {
	if head == nil {
		return 0
	}
	if d.unacked.Load() > 0 {
		if n := d.quarantineChain(tid, head); n >= 0 {
			return n
		}
	}
	n, bytes := 0, int64(0)
	for head != nil {
		next := head.limboNext.Load()
		bytes += head.approxBytes()
		head.gen.Add(1)
		if d.free != nil {
			d.free(tid, head)
		}
		head = next
		n++
	}
	d.limboNodes.Add(int64(-n))
	d.limboBytes.Add(-bytes)
	d.reclaimed.Add(uint64(n))
	d.met.Reclaimed.Add(tid, uint64(n))
	return n
}

// quarantineChain moves a reclaimable chain from limbo accounting to the
// quarantine list. It returns -1 — telling reclaimChain to free normally —
// when the last acknowledgement arrived between the caller's unacked check
// and the lock: the re-check under quarMu pairs with drainQuarantine's lock
// acquisition, so no chain can slip into the quarantine after its drain.
func (d *Domain) quarantineChain(tid int, head *Node) int {
	d.quarMu.Lock()
	defer d.quarMu.Unlock()
	if d.unacked.Load() == 0 {
		return -1
	}
	var nodes, bytes int64
	for n := head; n != nil; n = n.limboNext.Load() {
		nodes++
		bytes += n.approxBytes()
	}
	d.quarantine = append(d.quarantine, quarChain{head: head, tid: tid, nodes: nodes, bytes: bytes})
	d.limboNodes.Add(-nodes)
	d.limboBytes.Add(-bytes)
	d.quarNodes.Add(nodes)
	d.quarBytes.Add(bytes)
	d.met.Quarantined.Add(tid, uint64(nodes))
	d.quarTr.Emit(trace.EvQuarantine, uint64(nodes), uint64(tid))
	return int(nodes)
}

// drainQuarantine hands every quarantined chain to the free function. Called
// when the last outstanding neutralization is acknowledged — the neutralized
// threads have all reached an op boundary (or been aborted), so nothing can
// reference the held nodes any more.
func (d *Domain) drainQuarantine() {
	d.quarMu.Lock()
	defer d.quarMu.Unlock()
	chains := d.quarantine
	d.quarantine = nil
	var nodes, bytes int64
	for _, c := range chains {
		head := c.head
		for head != nil {
			next := head.limboNext.Load()
			head.gen.Add(1)
			if d.free != nil {
				d.free(c.tid, head)
			}
			head = next
		}
		d.reclaimed.Add(uint64(c.nodes))
		d.met.Reclaimed.Add(c.tid, uint64(c.nodes))
		nodes += c.nodes
		bytes += c.bytes
	}
	if nodes > 0 {
		d.quarNodes.Add(-nodes)
		d.quarBytes.Add(-bytes)
		d.quarTr.Emit(trace.EvQuarantineDrain, uint64(nodes), uint64(bytes))
	}
}

// GlobalEpoch returns the current global epoch (useful for stats/tests).
func (d *Domain) GlobalEpoch() uint64 { return d.global.Load() }

// Advances returns how many times the global epoch has advanced.
func (d *Domain) Advances() uint64 { return d.advances.Load() }

// Reclaimed returns the total number of nodes handed to the free function.
func (d *Domain) Reclaimed() uint64 { return d.reclaimed.Load() }

// LimboSize returns the total number of nodes currently in limbo across all
// threads. O(1): a domain counter maintained by Retire and reclamation, not
// a walk of the limbo chains — the watchdog and health checks read it every
// few milliseconds. Nodes moved to the quarantine list are not counted here;
// see QuarantinedNodes.
func (d *Domain) LimboSize() int { return int(d.limboNodes.Load()) }

// LimboNodes returns the number of nodes currently in limbo (O(1)).
func (d *Domain) LimboNodes() int64 { return d.limboNodes.Load() }

// LimboBytes returns the approximate heap bytes held in limbo (O(1); node
// headers plus multi-key payloads — embedded structure nodes are larger).
func (d *Domain) LimboBytes() int64 { return d.limboBytes.Load() }

// QuarantinedNodes returns the number of nodes held in the quarantine list,
// awaiting the acknowledgement of an outstanding neutralization.
func (d *Domain) QuarantinedNodes() int64 { return d.quarNodes.Load() }

// QuarantinedBytes returns the approximate heap bytes held in quarantine.
func (d *Domain) QuarantinedBytes() int64 { return d.quarBytes.Load() }

// Neutralizations returns how many threads have ever been neutralized.
func (d *Domain) Neutralizations() uint64 { return d.neutralizations.Load() }

// UnackedNeutralizations returns how many neutralized threads have not yet
// acknowledged the poison. While nonzero, reclamation diverts to quarantine.
func (d *Domain) UnackedNeutralizations() int { return int(d.unacked.Load()) }

// SetLimboLimits installs the domain's memory budget, in nodes (0 disables
// a limit). The limits bound LimboNodes()+QuarantinedNodes() — everything
// the domain has not yet handed back to the free pools. Crossing the soft
// limit arms the watchdog's escalation ladder; at the hard limit the
// provider's update admission gate fails updates with ErrMemoryPressure.
// Safe to call at any time.
func (d *Domain) SetLimboLimits(soft, hard int64) {
	d.softLimit.Store(soft)
	d.hardLimit.Store(hard)
}

// LimboLimits returns the configured (soft, hard) node limits (0 = none).
func (d *Domain) LimboLimits() (soft, hard int64) {
	return d.softLimit.Load(), d.hardLimit.Load()
}

// BoundedNodes returns the node count the limbo limits act on: nodes in
// limbo plus nodes in quarantine.
func (d *Domain) BoundedNodes() int64 {
	return d.limboNodes.Load() + d.quarNodes.Load()
}

// OverSoftLimit reports whether the soft limbo limit is breached.
func (d *Domain) OverSoftLimit() bool {
	s := d.softLimit.Load()
	return s > 0 && d.BoundedNodes() >= s
}

// OverHardLimit reports whether the hard limbo limit is breached.
func (d *Domain) OverHardLimit() bool {
	h := d.hardLimit.Load()
	return h > 0 && d.BoundedNodes() >= h
}

const quiescentBit = 1

// Thread is a per-goroutine EBR handle.
type Thread struct {
	dom *Domain
	id  int

	// ann is (epoch<<1) | quiescentBit. Written by the owner, read by all.
	ann atomic.Uint64

	// ops counts operations started. Single writer (the owner); the
	// watchdog reads it to tell "stuck in one long operation" from "many
	// short operations at the same epoch".
	ops atomic.Uint64

	// dead is set by Deregister; the slot is then skipped by stall scans
	// and its limbo bags become eligible for orphan sweeping.
	dead atomic.Bool

	// poison is the owner-facing half of the neutralization handshake:
	// 0 = healthy, 1 = neutralized and unacknowledged, 2 = acknowledged.
	// The watchdog CASes 0→1 (then poisons ann); the owner CASes 1→2 at the
	// first op boundary it reaches, releasing the quarantine when it was the
	// last outstanding acknowledgement. The flag — not the ann sentinel — is
	// authoritative: an owner racing the poison CAS in its announce loop can
	// overwrite the sentinel, but it cannot miss the flag.
	poison atomic.Uint32

	bags       [numBags]bag
	localEpoch uint64
	inOp       bool

	// pinned marks a critical section entered with Pin: StartOp/EndOp pairs
	// nest inside it as no-ops, so a multi-structure operation (a cross-shard
	// range query) can hold one announcement across several inner operations.
	pinned bool

	// tr is the thread's flight-recorder ring (nil when untraced). Owned by
	// the same goroutine as the rest of the mutable state.
	tr *trace.Ring
}

// ID returns the thread's slot index within its domain.
func (t *Thread) ID() int { return t.id }

// Domain returns the domain this thread is registered with.
func (t *Thread) Domain() *Domain { return t.dom }

// SetTrace attaches a flight-recorder ring to the thread. Call from the
// owner goroutine before the thread runs operations (the provider does this
// at registration).
func (t *Thread) SetTrace(r *trace.Ring) { t.tr = r }

// checkNeutralized is the op-boundary poison checkpoint: a neutralized
// thread acknowledges here (no operation is in flight, so it holds no node
// references) and aborts with ErrNeutralized.
func (t *Thread) checkNeutralized() {
	if t.poison.Load() != 0 {
		t.ackNeutralized()
		panic(ErrNeutralized)
	}
}

// CheckNeutralized is the mid-operation poison checkpoint: a neutralized
// thread aborts with ErrNeutralized WITHOUT acknowledging — references taken
// earlier in the operation may still be live, so the quarantine must hold
// until the panic unwinds to a boundary (AbortOp, EndOp, Deregister) that
// acknowledges. The provider calls this before every phase that reads shared
// timestamps or walks limbo chains, so a thread that resumes after being
// neutralized can never linearize an operation against recycled state.
func (t *Thread) CheckNeutralized() {
	if t.poison.Load() != 0 {
		panic(ErrNeutralized)
	}
}

// Poisoned reports whether the thread has been neutralized (acknowledged or
// not) without panicking. Callers that must release a resource (the update
// lock) before aborting use it in place of CheckNeutralized.
func (t *Thread) Poisoned() bool { return t.poison.Load() != 0 }

// ackNeutralized completes the two-phase handshake from the owner side. Only
// the 1→2 transition counts (later boundaries are no-ops); the last
// outstanding acknowledgement in the domain drains the quarantine.
func (t *Thread) ackNeutralized() {
	if !t.poison.CompareAndSwap(1, 2) {
		return
	}
	if t.tr != nil {
		t.tr.Emit(trace.EvNeutralizeAck, uint64(t.id), 0)
	}
	if t.dom.unacked.Add(-1) == 0 {
		t.dom.drainQuarantine()
	}
}

// StartOp announces the beginning of a data-structure operation. Every
// operation (update, search, or range query) must be bracketed by
// StartOp/EndOp. Operations must not nest.
func (t *Thread) StartOp() {
	if t.inOp {
		if t.pinned {
			return // nested inside a Pin: the pin's announcement covers us
		}
		panic("epoch: nested StartOp")
	}
	t.checkNeutralized() // op boundary: acknowledge the poison and abort
	if t.dead.Load() {
		panic("epoch: StartOp on a deregistered thread")
	}
	t.inOp = true
	e := t.dom.global.Load()
	fault.Inject("epoch.startop.stale")
	for {
		t.ann.Store(e << 1)
		// Announce-then-recheck (classic EBR). Between reading the global
		// epoch and publishing the announcement this thread is quiescent and
		// invisible to tryAdvance, so the global may advance arbitrarily far;
		// announcing that stale value breaks the two invariants the rest of
		// the system builds on. Reclamation safety: a reader more than one
		// epoch behind no longer blocks the rotation that frees nodes it can
		// still reach. Limbo-bag visibility: an updater's retires land in a
		// bag tagged with its stale epoch, below the localEpoch-1 floor of a
		// concurrent range query's LimboBags sweep — the query then misses a
		// node deleted with dtime >= its timestamp (the "missing key"
		// validation failures; see TestFaultStartOpStaleAnnounce). Once the
		// re-read confirms the announced value is current, the global can
		// advance at most once more while we remain in the operation.
		e2 := t.dom.global.Load()
		if e2 == e {
			break
		}
		e = e2
	}
	if e != t.localEpoch {
		t.rotate(e)
		t.localEpoch = e
	}
	fault.Inject("epoch.startop.announced")
	c := t.ops.Load() + 1
	t.ops.Store(c)
	if c%scanInterval == 0 {
		t.tryAdvance()
	}
}

// EndOp announces the end of the current operation. After EndOp the thread is
// quiescent and does not block epoch advancement.
func (t *Thread) EndOp() {
	if t.pinned {
		return // nested inside a Pin: Unpin ends the critical section
	}
	if !t.inOp {
		panic("epoch: EndOp without StartOp")
	}
	t.inOp = false
	t.ann.Store(t.ann.Load() | quiescentBit)
	// Op boundary: a thread neutralized mid-operation acknowledges here. No
	// panic — the finished operation's result is sound (every phase that
	// reads shared provider state re-checks the poison and aborts before
	// producing output; see LimboBags.Next and the provider checkpoints) —
	// but the *next* StartOp fails with ErrNeutralized until the thread is
	// deregistered and replaced.
	t.ackNeutralized()
}

// Pin enters a critical section like StartOp, but one that tolerates nested
// StartOp/EndOp pairs (which become no-ops until Unpin). A cross-shard range
// query pins the epoch of every shard it overlaps BEFORE acquiring its
// timestamp from the shared clock: from that point this domain cannot advance
// more than one epoch, so no limbo bag sealed from here on is reclaimed, and
// every node whose deletion timestamp the query must observe (dtime >= its
// timestamp, which is acquired after the pin) is still reachable by the
// limbo sweep when the traversal eventually visits this shard — exactly the
// retention a single-shard query gets from running StartOp and the timestamp
// acquisition back to back.
func (t *Thread) Pin() {
	if t.inOp {
		panic("epoch: Pin inside an operation")
	}
	t.checkNeutralized() // op boundary: acknowledge the poison and abort
	if t.dead.Load() {
		panic("epoch: Pin on a deregistered thread")
	}
	t.inOp = true
	t.pinned = true
	e := t.dom.global.Load()
	for {
		t.ann.Store(e << 1)
		// Same announce-then-recheck as StartOp: a pin published against a
		// stale epoch would neither hold back reclamation nor keep the
		// pinning query's limbo-bag visibility floor below concurrent
		// retires.
		e2 := t.dom.global.Load()
		if e2 == e {
			break
		}
		e = e2
	}
	if e != t.localEpoch {
		t.rotate(e)
		t.localEpoch = e
	}
	if t.tr != nil {
		t.tr.Emit(trace.EvEpochPin, e, 0)
	}
}

// Unpin leaves a pinned critical section and quiesces the announcement.
// Idempotent — panic-recovery paths may call it on an already-unpinned
// thread (AbortOp also clears a pin).
func (t *Thread) Unpin() {
	if !t.pinned {
		return
	}
	t.pinned = false
	t.inOp = false
	t.ann.Store(t.ann.Load() | quiescentBit)
	if t.tr != nil {
		t.tr.Emit(trace.EvEpochUnpin, t.localEpoch, 0)
	}
	t.ackNeutralized() // op boundary, same contract as EndOp
}

// AbortOp force-ends the current operation, if any. Unlike EndOp it is safe
// to call on a quiescent thread; panic-recovery paths use it to guarantee a
// thread that died mid-operation stops pinning the global epoch. It must be
// called from the owner goroutine or, after the owner died, from exactly one
// recovering goroutine.
func (t *Thread) AbortOp() {
	t.pinned = false
	if t.inOp {
		t.inOp = false
		t.ann.Store(t.ann.Load() | quiescentBit)
	}
	// Recovery checkpoint: a mid-operation poison panic (CheckNeutralized,
	// Retire, LimboBags) unwinds to here with the operation abandoned and no
	// reference surviving, so the acknowledgement is now safe.
	t.ackNeutralized()
}

// Deregister releases the thread's slot: any in-flight operation is aborted,
// the announcement becomes permanently quiescent (so the dead thread never
// again blocks epoch advancement) and the slot id is queued for reuse by a
// future TryRegister. The thread's limbo bags remain visible to concurrent
// range queries until they age out; once they are numBags epochs stale, the
// next epoch advance reclaims them (orphan sweep). Idempotent; the same
// ownership rule as AbortOp applies.
func (t *Thread) Deregister() {
	if !t.dead.CompareAndSwap(false, true) {
		return
	}
	t.inOp = false
	t.pinned = false
	t.ann.Store(t.ann.Load() | quiescentBit)
	// Deregistration is an op boundary: only the owner (or, after the owner
	// died, its single recoverer) may call it, so no reference survives.
	t.ackNeutralized()
	d := t.dom
	d.mu.Lock()
	d.freeIDs = append(d.freeIDs, t.id)
	d.orphans.Add(1)
	d.mu.Unlock()
}

// CurrentEpoch returns the epoch announced by the thread's current operation.
func (t *Thread) CurrentEpoch() uint64 { return t.localEpoch }

// Retire places a node, already physically removed from the data structure,
// at the head of the thread's current limbo list. The node will be handed to
// the domain's free function only after every concurrently running operation
// has completed.
//
// The bag's maxDTime fence is raised from the node's already-published dtime
// (the fence-before-link ordering below). This is what lets the provider's
// aggregating update funnel stay out of this package: a combined batch's
// updates all carry the batch's single timestamp as dtime, and each owner
// retires its own victims after that dtime is published, so the fence takes
// the batch's single dtime with no batch-aware machinery here.
func (t *Thread) Retire(n *Node) {
	if !t.inOp {
		panic("epoch: Retire outside operation")
	}
	// Mid-operation poison checkpoint (no ack — see CheckNeutralized). The
	// node is dropped rather than retired: it is already unlinked, its dtime
	// (if any) predates the stall, and the Go GC collects it once nothing
	// references it, so skipping limbo loses nothing.
	if t.poison.Load() != 0 {
		panic(ErrNeutralized)
	}
	b := &t.bags[t.localEpoch%numBags]
	// Raise the bag's dtime fence before the node becomes reachable via
	// head: a reader that finds n in the chain is then guaranteed to read a
	// fence >= n's dtime (both sides are sequentially consistent atomics).
	// A node whose dtime is not yet published poisons the fence — the bag
	// can never be skipped until it rotates.
	dt := n.dtime.Load()
	if dt == 0 {
		dt = ^uint64(0)
	}
	if b.maxDTime.Load() < dt { // single writer: the owner
		b.maxDTime.Store(dt)
	}
	n.limboNext.Store(b.head.Load())
	b.head.Store(n) // single producer; readers snapshot head and walk links
	t.dom.limboNodes.Add(1)
	t.dom.limboBytes.Add(n.approxBytes())
	t.dom.met.Retires.Inc(t.id)
	if t.tr != nil {
		t.tr.Emit(trace.EvRetire, dt, b.epoch.Load())
	}
}

// ReclaimStale reclaims every one of the thread's limbo bags that has aged
// out (bag epoch + numBags <= global, the orphan-sweep criterion: below the
// visibility floor of every active and future range query). Owner-only, and
// only while quiescent — it exists for threads that are refused admission by
// the memory-pressure gate and therefore never reach the StartOp rotation
// that normally frees their bags. Without it, backpressure would pin the
// domain at the hard limit forever: the limbo lives in the rejected threads'
// own bags, and only the owner may empty them. Returns the number of nodes
// handed to reclamation (diverted to quarantine while a neutralization is
// unacknowledged, like any other reclaim).
func (t *Thread) ReclaimStale() int {
	if t.inOp {
		panic("epoch: ReclaimStale inside an operation")
	}
	t.checkNeutralized() // op boundary, same contract as StartOp
	if t.dead.Load() {
		panic("epoch: ReclaimStale on a deregistered thread")
	}
	g := t.dom.global.Load()
	total := 0
	for i := range t.bags {
		b := &t.bags[i]
		if b.epoch.Load()+numBags > g {
			continue
		}
		old := b.head.Load()
		if old == nil {
			continue
		}
		// Single writer: the owner is quiescent, so no StartOp rotation can
		// run concurrently. The epoch tag is left in place — the bag is empty,
		// and the usual rotation re-tags it when the local epoch next lands on
		// this slot.
		b.head.Store(nil)
		b.maxDTime.Store(0)
		total += t.dom.reclaimChain(t.id, old)
	}
	if total > 0 && t.tr != nil {
		t.tr.Emit(trace.EvReclaim, uint64(total), uint64(t.id))
	}
	return total
}

// rotate is called by the owner when its local epoch changes to e: the bag
// slot for e is reclaimed (its contents are at least numBags-1 epochs old)
// and re-tagged. Ordering matters for concurrent limbo readers: the head is
// cleared before the epoch tag is updated, so a reader that observes the new
// epoch observes the emptied (or newly refilled) list.
func (t *Thread) rotate(e uint64) {
	b := &t.bags[e%numBags]
	old := b.head.Load()
	if b.epoch.Load()+2 > e {
		// Cannot happen given the slot arithmetic (slot e%numBags last
		// held epoch e-numBags), but guard against silent corruption.
		panic("epoch: rotating a bag that is too young")
	}
	b.head.Store(nil)
	b.maxDTime.Store(0) // reset with head cleared, before the re-tag below
	b.epoch.Store(e)
	fault.Inject("epoch.rotate.mid")
	n := t.dom.reclaimChain(t.id, old)
	t.dom.met.Rotations.Inc(t.id)
	if t.tr != nil {
		t.tr.Emit(trace.EvRotate, e, uint64(n))
	}
}

// tryAdvance attempts to advance the global epoch: it succeeds if every
// registered thread is either quiescent or has announced the current epoch.
func (t *Thread) tryAdvance() {
	t.dom.tryAdvanceFrom(t.id, t.tr)
}

// tryAdvanceFrom is tryAdvance for callers that are not a registered thread
// (the watchdog's forced advances). A neutralized thread's poisoned
// announcement has the quiescent bit set, so it no longer blocks the scan.
// tid only attributes metrics/reclaims; tr may be nil.
func (d *Domain) tryAdvanceFrom(tid int, tr *trace.Ring) bool {
	e := d.global.Load()
	n := int(d.registered.Load())
	for i := 0; i < n; i++ {
		other := d.threads[i].Load()
		if other == nil {
			continue
		}
		a := other.ann.Load()
		if a&quiescentBit == 0 && a>>1 != e {
			return false // other thread still active in an older epoch
		}
	}
	if !d.global.CompareAndSwap(e, e+1) {
		return false
	}
	d.advances.Add(1)
	d.met.Advances.Inc(tid)
	if tr != nil {
		tr.Emit(trace.EvEpochAdvance, e+1, 0)
	}
	if d.orphans.Load() > 0 {
		d.sweepOrphans(e+1, tid, tr)
	}
	return true
}

// Neutralize poisons the thread in slot id: its announcement is CASed to the
// poisoned sentinel so it stops pinning the global epoch, and every
// reclamation in the domain diverts to the quarantine list until the thread
// acknowledges at its next protocol checkpoint. Returns false when the slot
// is empty, dead, or already neutralized. This is the watchdog escalation
// ladder's final rung; call it only on a thread the duration-based stall
// detector has flagged.
func (d *Domain) Neutralize(id int) bool {
	if id < 0 || id >= int(d.registered.Load()) {
		return false
	}
	t := d.threads[id].Load()
	if t == nil || t.dead.Load() || t.poison.Load() != 0 {
		return false
	}
	if !t.poison.CompareAndSwap(0, 1) {
		return false
	}
	// Divert-before-poison: unacked must be visible before the sentinel can
	// let the epoch advance past the zombie, so every chain that becomes
	// reclaimable after this point is quarantined, never recycled. Both are
	// sequentially consistent, so any reclaimer that observed the advance
	// also observes unacked > 0.
	d.unacked.Add(1)
	if a := t.ann.Load(); a&quiescentBit == 0 {
		// Best-effort: if the owner concurrently rewrites its announcement it
		// is alive and will reach a checkpoint on its own; the poison flag —
		// which it cannot miss — is the authoritative half.
		t.ann.CompareAndSwap(a, poisonedAnn)
	}
	d.neutralizations.Add(1)
	d.met.Neutralizations.Inc(id)
	return true
}

// ForceAdvance makes up to rounds attempts to advance the global epoch from
// outside any registered thread (the watchdog's escalation rung 1). Each
// successful advance lets live threads rotate — and therefore reclaim — a
// limbo bag on their next StartOp, and sweeps orphan bags directly. Returns
// how many advances succeeded; it stops early at the first failure (an
// active thread on an older epoch blocks any further advance too).
func (d *Domain) ForceAdvance(rounds int) int {
	adv := 0
	for i := 0; i < rounds; i++ {
		if !d.tryAdvanceFrom(0, nil) {
			break
		}
		adv++
	}
	if adv > 0 {
		d.met.ForcedAdvances.Add(0, uint64(adv))
	}
	return adv
}

// ForceSweep reclaims the stale limbo bags of deregistered threads without
// waiting for a registered thread's next successful advance (the watchdog's
// escalation rung 2). Live threads' bags are never touched: only their owner
// may rotate them (the owner's head.Store(nil) during rotate would race an
// external Swap). Returns how many nodes left limbo.
func (d *Domain) ForceSweep() int {
	freed := d.sweepOrphans(d.global.Load(), 0, nil)
	if freed > 0 {
		d.met.ForcedSweeps.Add(0, uint64(freed))
	}
	return freed
}

// sweepOrphans reclaims limbo bags of deregistered threads once they are
// numBags epochs stale — no active operation's limbo view (which reaches
// back at most one epoch before the operation's own) can still include
// them. Without this, a thread that dies with retired nodes would pin those
// nodes forever, since only a bag's owner ever rotates it. d.mu arbitrates
// with slot adoption; head.Swap arbitrates chain ownership. Returns how many
// nodes were reclaimed (or quarantined).
func (d *Domain) sweepOrphans(e uint64, tid int, tr *trace.Ring) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	n := int(d.registered.Load())
	for i := 0; i < n; i++ {
		t := d.threads[i].Load()
		if t == nil || !t.dead.Load() {
			continue
		}
		for b := range t.bags {
			bg := &t.bags[b]
			if bg.epoch.Load()+numBags > e {
				continue
			}
			if head := bg.head.Swap(nil); head != nil {
				freed := d.reclaimChain(tid, head)
				total += freed
				if freed > 0 && tr != nil {
					tr.Emit(trace.EvReclaim, uint64(freed), uint64(i))
				}
			}
		}
	}
	return total
}

// Stall describes one thread pinning the global epoch.
type Stall struct {
	// ThreadID is the slot index of the stalled thread.
	ThreadID int
	// Epoch is the epoch announced by the thread's in-flight operation.
	Epoch uint64
	// Global is the global epoch at observation time.
	Global uint64
	// Stuck is how long the thread has been inside the same operation.
	// Only the watchdog can measure it; it is zero in Stalls results.
	Stuck time.Duration
}

// Lag returns how many epochs the stalled thread is behind the global epoch.
func (s Stall) Lag() uint64 { return s.Global - s.Epoch }

// Stalls returns every live thread currently inside an operation whose
// announced epoch lags the global epoch by at least minLag (clamped to 1).
// Note that a single stalled thread caps the achievable lag at one — the
// global epoch can advance at most once past its announcement — so lag-based
// detection alone cannot see it; the Watchdog's duration-based detection
// exists for exactly that case (the DEBRA+ observation).
func (d *Domain) Stalls(minLag uint64) []Stall {
	if minLag < 1 {
		minLag = 1
	}
	e := d.global.Load()
	var out []Stall
	n := int(d.registered.Load())
	for i := 0; i < n; i++ {
		t := d.threads[i].Load()
		if t == nil || t.dead.Load() {
			continue
		}
		a := t.ann.Load()
		if a&quiescentBit != 0 {
			continue
		}
		if ae := a >> 1; ae+minLag <= e {
			out = append(out, Stall{ThreadID: i, Epoch: ae, Global: e})
		}
	}
	return out
}

// MaxLag returns the largest epoch lag among active threads (0 when every
// thread is quiescent or current).
func (d *Domain) MaxLag() uint64 {
	e := d.global.Load()
	var max uint64
	n := int(d.registered.Load())
	for i := 0; i < n; i++ {
		t := d.threads[i].Load()
		if t == nil || t.dead.Load() {
			continue
		}
		a := t.ann.Load()
		if a&quiescentBit != 0 {
			continue
		}
		if ae := a >> 1; ae < e && e-ae > max {
			max = e - ae
		}
	}
	return max
}

// StalledThreads reports the domain's current stall set: the running
// watchdog's duration-based observation when one is attached, otherwise the
// instantaneous lag-based Stalls(2). The lag-based fallback is conservative
// (transient lag-1 threads are normal); attach a Watchdog for real
// detection. Observability gauges and health checks read this.
func (d *Domain) StalledThreads() []Stall {
	if w := d.wd.Load(); w != nil {
		return w.Stalls()
	}
	return d.Stalls(2)
}

// LimboBags is a zero-allocation pull iterator over the limbo bags visible
// to the calling thread's current operation — the bag-level refinement of
// GetLimboLists from the paper's EBR ADT. Obtain one with Thread.LimboBags
// and drain it with Next. The iterator is a plain value: it lives on the
// caller's stack, so the range-query hot path pays no closure or interface
// allocation per sweep.
type LimboBags struct {
	d   *Domain
	t   *Thread // calling thread, re-checked for poison on every pull
	cur *Thread
	min uint64
	i   int // next thread slot to load once cur is exhausted
	b   int // next bag index within cur
	n   int // registered-thread snapshot
}

// LimboBags returns an iterator over every limbo bag that may contain nodes
// retired during the calling thread's current operation: every bag whose
// epoch is at least the caller's announced epoch minus one. Older bags can
// only hold nodes retired strictly before the operation began, and may be
// reclaimed concurrently.
func (t *Thread) LimboBags() LimboBags {
	if !t.inOp {
		panic("epoch: LimboBags outside operation")
	}
	t.CheckNeutralized() // mid-op: a zombie must not start a limbo sweep
	d := t.dom
	return LimboBags{d: d, t: t, min: t.localEpoch - 1, n: int(d.registered.Load())}
}

// Next returns the head of the next non-empty visible limbo bag together
// with the bag's maxDTime fence: a monotone upper bound on the deletion
// timestamp of every node reachable from head. The fence lets a range query
// with timestamp ts skip the whole bag when fence < ts — no node in it can
// be missing from the query's traversal view. The chain reachable from head
// is immutable while the caller remains in its operation; walk it via
// Node.LimboNext. ok is false when the iterator is exhausted.
func (it *LimboBags) Next() (head *Node, maxDTime uint64, ok bool) {
	// A thread neutralized mid-sweep lost its epoch protection: the chain it
	// would pull next may already have been diverted to quarantine — held
	// intact for exactly this walk — but nothing newer is guaranteed visible,
	// so the sweep (and the operation) must abort before producing output.
	it.t.CheckNeutralized()
	for {
		if it.cur == nil {
			if it.i >= it.n {
				return nil, 0, false
			}
			it.cur = it.d.threads[it.i].Load()
			it.i++
			it.b = 0
			if it.cur == nil {
				continue
			}
		}
		for it.b < numBags {
			bg := &it.cur.bags[it.b]
			it.b++
			if bg.epoch.Load() < it.min {
				continue
			}
			// Head before fence: paired with Retire (fence before head),
			// sequential consistency guarantees fence >= dtime of every
			// node observed in the chain.
			if head := bg.head.Load(); head != nil {
				return head, bg.maxDTime.Load(), true
			}
		}
		it.cur = nil
	}
}

// ForEachLimboList implements GetLimboLists from the paper's EBR ADT: it
// invokes f with the head of every limbo list that may contain nodes retired
// during the calling thread's current operation. It is the closure-based
// veneer over LimboBags kept for callers that do not need the bag fence or
// the allocation-free pull interface.
func (t *Thread) ForEachLimboList(f func(head *Node)) {
	it := t.LimboBags()
	for head, _, ok := it.Next(); ok; head, _, ok = it.Next() {
		f(head)
	}
}
