package epoch

import (
	"testing"
	"time"
)

// TestWatchdogDetectsStallAndRecovery: a thread that sits inside one
// operation past StallAfter is reported (with its announced epoch), and the
// report clears once the operation ends.
func TestWatchdogDetectsStallAndRecovery(t *testing.T) {
	d := NewDomain(2)
	worker := d.Register()
	staller := d.Register()

	stallCh := make(chan []Stall, 1)
	recoverCh := make(chan struct{}, 1)
	w := d.StartWatchdog(WatchdogConfig{
		Interval:   time.Millisecond,
		StallAfter: 10 * time.Millisecond,
		OnStall:    func(s []Stall) { stallCh <- s },
		OnRecover:  func() { recoverCh <- struct{}{} },
	})
	defer w.Stop()

	staller.StartOp()
	churn(worker, scanInterval)

	select {
	case stalls := <-stallCh:
		if len(stalls) != 1 || stalls[0].ThreadID != staller.ID() {
			t.Fatalf("OnStall reported %+v, want thread %d", stalls, staller.ID())
		}
		if stalls[0].Stuck < 10*time.Millisecond {
			t.Fatalf("Stuck = %v, want >= StallAfter", stalls[0].Stuck)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never reported the stalled thread")
	}
	if got := w.Stalls(); len(got) != 1 || got[0].ThreadID != staller.ID() {
		t.Fatalf("Stalls() = %+v after OnStall", got)
	}
	if got := d.StalledThreads(); len(got) != 1 {
		t.Fatalf("StalledThreads() = %+v, want the watchdog's view", got)
	}

	staller.EndOp()
	select {
	case <-recoverCh:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never reported recovery")
	}
	if got := w.Stalls(); len(got) != 0 {
		t.Fatalf("Stalls() = %+v after recovery", got)
	}
}

// TestWatchdogIgnoresProgress: a thread that keeps completing operations is
// never flagged, even when every sample catches it mid-operation.
func TestWatchdogIgnoresProgress(t *testing.T) {
	d := NewDomain(1)
	th := d.Register()
	stalled := make(chan []Stall, 16)
	w := d.StartWatchdog(WatchdogConfig{
		Interval:   time.Millisecond,
		StallAfter: 5 * time.Millisecond,
		OnStall:    func(s []Stall) { stalled <- s },
	})
	defer w.Stop()

	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		th.StartOp()
		th.EndOp()
	}
	select {
	case s := <-stalled:
		t.Fatalf("progressing thread flagged as stalled: %+v", s)
	default:
	}
}

// TestStallsLagBased checks the instantaneous lag-based introspection that
// backs the observability gauges when no watchdog is attached. A single
// stalled thread shows lag exactly 1 (the global epoch can pass its
// announcement once and no further), which is precisely why StalledThreads'
// watchdog-free fallback uses minLag 2 and stays quiet.
func TestStallsLagBased(t *testing.T) {
	d := NewDomain(2)
	worker := d.Register()
	staller := d.Register()

	if got := d.Stalls(1); len(got) != 0 {
		t.Fatalf("Stalls(1) on idle domain = %+v", got)
	}
	staller.StartOp()
	churn(worker, 4*scanInterval)

	got := d.Stalls(1)
	if len(got) != 1 || got[0].ThreadID != staller.ID() {
		t.Fatalf("Stalls(1) = %+v, want the staller", got)
	}
	if got[0].Lag() != 1 {
		t.Fatalf("single staller lag = %d, want exactly 1", got[0].Lag())
	}
	if d.MaxLag() != 1 {
		t.Fatalf("MaxLag = %d, want 1", d.MaxLag())
	}
	if fallback := d.StalledThreads(); len(fallback) != 0 {
		t.Fatalf("watchdog-free StalledThreads = %+v, want empty (lag 1 is normal)", fallback)
	}
	staller.EndOp()
	churn(worker, 2*scanInterval)
	if d.MaxLag() != 0 {
		t.Fatalf("MaxLag after recovery = %d", d.MaxLag())
	}
}

// TestWatchdogReplaceAndStop: starting a second watchdog stops the first,
// Stop is idempotent, and a stopped watchdog detaches from the domain.
func TestWatchdogReplaceAndStop(t *testing.T) {
	d := NewDomain(1)
	w1 := d.StartWatchdog(WatchdogConfig{Interval: time.Millisecond})
	w2 := d.StartWatchdog(WatchdogConfig{Interval: time.Millisecond})
	if d.Watchdog() != w2 {
		t.Fatal("second StartWatchdog did not attach")
	}
	w1.Stop() // already stopped by the replacement; must not hang or detach w2
	if d.Watchdog() != w2 {
		t.Fatal("stopping the replaced watchdog detached the live one")
	}
	w2.Stop()
	w2.Stop()
	if d.Watchdog() != nil {
		t.Fatal("domain still points at a stopped watchdog")
	}
}
