package epoch

import (
	"testing"
)

// TestStalledThreadBlocksReclamationNotProgress injects the classic EBR
// failure mode: one thread enters an operation and stalls indefinitely.
// Other threads must keep operating correctly; reclamation must stop (the
// stalled thread pins the epoch, so limbo grows); and once the thread
// resumes, reclamation must catch up.
func TestStalledThreadBlocksReclamationNotProgress(t *testing.T) {
	d := NewDomain(2)
	freed := 0
	d.SetFreeFunc(func(tid int, n *Node) { freed++ })
	worker := d.Register()
	staller := d.Register()

	staller.StartOp() // stalls here, pinning the current epoch

	// The worker churns: retire many nodes across many operations.
	for i := 0; i < 20*scanInterval; i++ {
		worker.StartOp()
		n := &Node{}
		n.InitKey(int64(i), 0)
		worker.Retire(n)
		worker.EndOp()
	}
	// The global epoch can advance at most once past the staller's
	// announcement, so at most one bag generation was reclaimed.
	if freed > scanInterval*2 {
		t.Fatalf("reclaimed %d nodes despite a stalled thread", freed)
	}
	pinned := d.LimboSize()
	if pinned < 19*scanInterval {
		t.Fatalf("limbo should hold nearly all retired nodes, has %d", pinned)
	}

	// Resume: reclamation catches up within a few epochs.
	staller.EndOp()
	for i := 0; i < 10*scanInterval; i++ {
		worker.StartOp()
		worker.EndOp()
	}
	if d.LimboSize() >= pinned {
		t.Fatalf("limbo did not drain after the stall: %d -> %d", pinned, d.LimboSize())
	}
	if freed == 0 {
		t.Fatal("nothing reclaimed after resume")
	}
}

// TestStalledReaderPreservesLimboVisibility: nodes retired while a reader
// is mid-operation stay reachable through its limbo view for the whole
// operation, no matter how many epochs the other thread would like to
// advance.
func TestStalledReaderPreservesLimboVisibility(t *testing.T) {
	d := NewDomain(2)
	d.SetFreeFunc(func(tid int, n *Node) {
		n.InitKey(-999, 0) // poison: visible if reclaimed while referenced
	})
	worker := d.Register()
	reader := d.Register()

	reader.StartOp()
	// Worker retires nodes during the reader's operation.
	var retired []*Node
	for i := 0; i < 5*scanInterval; i++ {
		worker.StartOp()
		n := &Node{}
		n.InitKey(int64(i + 1), 0)
		n.SetDTime(uint64(i + 1))
		worker.Retire(n)
		retired = append(retired, n)
		worker.EndOp()
	}
	// All of them must appear in the reader's limbo view, unpoisoned.
	seen := map[int64]bool{}
	reader.ForEachLimboList(func(head *Node) {
		for n := head; n != nil; n = n.LimboNext() {
			if n.Key() == -999 {
				t.Fatal("reader observed a reclaimed (poisoned) node")
			}
			seen[n.Key()] = true
		}
	})
	for _, n := range retired {
		if !seen[n.Key()] {
			t.Fatalf("node %d retired during the reader's op is invisible", n.Key())
		}
	}
	reader.EndOp()
}
