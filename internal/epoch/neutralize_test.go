package epoch

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// retireN retires n fresh single-key nodes on t (each inside its own op).
func retireN(t *Thread, n int) {
	for i := 0; i < n; i++ {
		nd := &Node{}
		nd.InitKey(int64(i), 0)
		t.StartOp()
		t.Retire(nd)
		t.EndOp()
	}
}

// drainVia cycles quiescent ops on the given threads until the domain's
// limbo is empty or the op budget runs out.
func drainVia(ths ...*Thread) {
	for i := 0; i < 20*scanInterval; i++ {
		for _, t := range ths {
			t.StartOp()
			t.EndOp()
		}
	}
}

// TestLimboAccountingO1: the node/byte gauges track Retire and reclamation
// exactly, without walking chains, and the byte gauge scales with payload.
func TestLimboAccountingO1(t *testing.T) {
	d := NewDomain(2)
	a, b := d.Register(), d.Register()
	retireN(a, 10)
	if got := d.LimboNodes(); got != 10 {
		t.Fatalf("LimboNodes = %d, want 10", got)
	}
	if d.LimboBytes() < 10*nodeHeaderBytes {
		t.Fatalf("LimboBytes = %d, want >= %d", d.LimboBytes(), 10*nodeHeaderBytes)
	}
	// A multi-key node accounts for its payload too.
	multi := &Node{}
	multi.InitMulti(make([]KV, 7))
	a.StartOp()
	a.Retire(multi)
	a.EndOp()
	if want := 11*nodeHeaderBytes + 7*16; d.LimboBytes() < want {
		t.Fatalf("LimboBytes = %d after multi retire, want >= %d", d.LimboBytes(), want)
	}
	drainVia(a, b)
	if d.LimboNodes() != 0 || d.LimboBytes() != 0 {
		t.Fatalf("gauges not zero after drain: nodes=%d bytes=%d", d.LimboNodes(), d.LimboBytes())
	}
	if d.BoundedNodes() != 0 {
		t.Fatalf("BoundedNodes = %d after drain", d.BoundedNodes())
	}
}

// TestLimboLimits: OverSoftLimit/OverHardLimit trip at the configured node
// counts and zero limits never trip.
func TestLimboLimits(t *testing.T) {
	d := NewDomain(1)
	th := d.Register()
	retireN(th, 5)
	if d.OverSoftLimit() || d.OverHardLimit() {
		t.Fatal("limits tripped while unconfigured")
	}
	d.SetLimboLimits(3, 10)
	if !d.OverSoftLimit() {
		t.Fatal("soft limit (3) not tripped at 5 nodes")
	}
	if d.OverHardLimit() {
		t.Fatal("hard limit (10) tripped at 5 nodes")
	}
	retireN(th, 5)
	if !d.OverHardLimit() {
		t.Fatal("hard limit (10) not tripped at 10 nodes")
	}
	if soft, hard := d.LimboLimits(); soft != 3 || hard != 10 {
		t.Fatalf("LimboLimits = (%d, %d)", soft, hard)
	}
}

// TestForceAdvance (escalation rung 1): with every thread quiescent, forced
// advances move the global epoch without any registered thread's help, and
// the owners' next operations rotate the aged bags out.
func TestForceAdvance(t *testing.T) {
	d := NewDomain(2)
	freed := 0
	d.SetFreeFunc(func(tid int, n *Node) { freed++ })
	a, b := d.Register(), d.Register()
	retireN(a, 4)
	e0 := d.GlobalEpoch()
	if adv := d.ForceAdvance(numBags); adv != numBags {
		t.Fatalf("ForceAdvance = %d, want %d", adv, numBags)
	}
	if d.GlobalEpoch() != e0+numBags {
		t.Fatalf("global epoch %d, want %d", d.GlobalEpoch(), e0+numBags)
	}
	// The bags are now stale; one op per owner rotates and reclaims them.
	a.StartOp()
	a.EndOp()
	_ = b
	if freed != 4 || d.LimboNodes() != 0 {
		t.Fatalf("freed=%d limbo=%d after rotation, want 4/0", freed, d.LimboNodes())
	}
	// An active thread on an older epoch blocks forcing, exactly like it
	// blocks ordinary advances.
	b.StartOp()
	defer b.EndOp()
	if adv := d.ForceAdvance(2); adv > 1 {
		t.Fatalf("ForceAdvance past an active thread = %d, want <= 1", adv)
	}
}

// TestForceSweep (escalation rung 2): a dead thread's stale bags are
// reclaimed immediately by ForceSweep, without waiting for a live thread to
// reach its next scanInterval advance.
func TestForceSweep(t *testing.T) {
	d := NewDomain(2)
	freed := 0
	d.SetFreeFunc(func(tid int, n *Node) { freed++ })
	victim := d.Register()
	live := d.Register()
	retireN(victim, 6)
	victim.Deregister()
	// Age the dead thread's bags out with forced advances only.
	d.ForceAdvance(numBags)
	// ForceAdvance's own orphan sweep may already have taken them; the
	// explicit rung-2 call must leave nothing behind either way.
	d.ForceSweep()
	if d.LimboNodes() != 0 || freed != 6 {
		t.Fatalf("limbo=%d freed=%d after ForceSweep, want 0/6", d.LimboNodes(), freed)
	}
	_ = live
}

// TestNeutralizeUnpinsEpoch (escalation rung 3): neutralizing a thread
// stalled mid-operation lets the global epoch advance again, the victim's
// next StartOp panics ErrNeutralized (acknowledging), and the thread is
// replaceable through the usual deregister/adopt path.
func TestNeutralizeUnpinsEpoch(t *testing.T) {
	d := NewDomain(2)
	victim := d.Register()
	worker := d.Register()

	victim.StartOp() // stalls here: one advance can still happen, then pinned
	for i := 0; i < 2*scanInterval; i++ {
		worker.StartOp()
		worker.EndOp()
	}
	adv0 := d.Advances()
	for i := 0; i < 2*scanInterval; i++ {
		worker.StartOp()
		worker.EndOp()
	}
	if d.Advances() != adv0 {
		t.Fatal("stalled thread did not pin the epoch (test premise broken)")
	}

	if !d.Neutralize(victim.ID()) {
		t.Fatal("Neutralize refused a live stalled thread")
	}
	if d.Neutralize(victim.ID()) {
		t.Fatal("second Neutralize of the same thread succeeded")
	}
	if d.Neutralizations() != 1 || d.UnackedNeutralizations() != 1 {
		t.Fatalf("counters after neutralize: total=%d unacked=%d", d.Neutralizations(), d.UnackedNeutralizations())
	}
	for i := 0; i < 2*scanInterval; i++ {
		worker.StartOp()
		worker.EndOp()
	}
	if d.Advances() == adv0 {
		t.Fatal("epoch still pinned after neutralization")
	}

	// The victim resumes: its next op boundary must abort and acknowledge.
	func() {
		defer func() {
			if r := recover(); r != ErrNeutralized {
				t.Fatalf("victim EndOp+StartOp recovered %v, want ErrNeutralized", r)
			}
		}()
		victim.EndOp()   // op boundary: acks (no panic — completed op is sound)
		victim.StartOp() // must refuse to start a new op
		t.Fatal("StartOp on a neutralized thread did not panic")
	}()
	if d.UnackedNeutralizations() != 0 {
		t.Fatalf("unacked = %d after op boundary", d.UnackedNeutralizations())
	}

	// The slot is recoverable exactly like any dead thread's.
	victim.Deregister()
	fresh, err := d.TryRegister()
	if err != nil {
		t.Fatalf("TryRegister after neutralized deregister: %v", err)
	}
	if fresh.ID() != victim.ID() {
		t.Fatalf("adopted slot %d, want %d", fresh.ID(), victim.ID())
	}
	fresh.StartOp()
	fresh.EndOp()
}

// TestReclaimStaleQuiescentOwner: a quiescent owner can empty its own aged
// limbo bags without entering an operation. This is the self-service drain
// the backpressure gate relies on — a rejected updater never reaches the
// StartOp rotation, so without it the domain would sit at the hard limit
// with all the reclaimable garbage parked in the rejected threads' bags.
func TestReclaimStaleQuiescentOwner(t *testing.T) {
	d := NewDomain(2)
	var mu sync.Mutex
	freed := 0
	d.SetFreeFunc(func(tid int, n *Node) { mu.Lock(); freed++; mu.Unlock() })
	owner := d.Register()
	helper := d.Register()

	retireN(owner, 5)
	// Age the bags: the helper alone advances the epoch while the owner stays
	// quiescent, so the owner's rotation never runs and its limbo sits there.
	drainVia(helper)
	if got := d.LimboNodes(); got != 5 {
		t.Fatalf("limbo=%d before self-reclaim, want 5 (only the owner can rotate)", got)
	}
	if n := owner.ReclaimStale(); n != 5 {
		t.Fatalf("ReclaimStale freed %d, want 5", n)
	}
	mu.Lock()
	f := freed
	mu.Unlock()
	if d.LimboNodes() != 0 || f != 5 {
		t.Fatalf("after self-reclaim: limbo=%d freed=%d, want 0/5", d.LimboNodes(), f)
	}
	if n := owner.ReclaimStale(); n != 0 {
		t.Fatalf("second ReclaimStale freed %d, want 0", n)
	}

	// Freshly retired nodes are too young — the floor of a concurrent query
	// could still cover them — so they must survive a self-reclaim.
	retireN(owner, 3)
	if n := owner.ReclaimStale(); n != 0 {
		t.Fatalf("ReclaimStale freed %d fresh nodes, want 0", n)
	}

	// Misuse: mid-operation self-reclaim would race the thread's own rotation.
	owner.StartOp()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ReclaimStale inside an operation did not panic")
			}
		}()
		owner.ReclaimStale()
	}()
	owner.EndOp()
}

// TestQuarantineHoldsUntilAck: while a neutralization is unacknowledged,
// every reclaimable chain is diverted to quarantine — the free function must
// not run — and the last acknowledgement drains it.
func TestQuarantineHoldsUntilAck(t *testing.T) {
	d := NewDomain(2)
	var mu sync.Mutex
	freed := 0
	d.SetFreeFunc(func(tid int, n *Node) { mu.Lock(); freed++; mu.Unlock() })
	victim := d.Register()
	worker := d.Register()

	victim.StartOp() // stall mid-op
	if !d.Neutralize(victim.ID()) {
		t.Fatal("Neutralize failed")
	}

	// The worker retires and churns: everything that becomes reclaimable
	// while the poison is unacknowledged must land in quarantine.
	retireN(worker, 8)
	drainVia(worker)
	mu.Lock()
	f := freed
	mu.Unlock()
	if f != 0 {
		t.Fatalf("%d nodes freed while a neutralization was unacknowledged", f)
	}
	if d.QuarantinedNodes() == 0 {
		t.Fatal("nothing quarantined despite churn under an unacked neutralization")
	}
	if d.QuarantinedBytes() < d.QuarantinedNodes()*nodeHeaderBytes {
		t.Fatalf("quarantine bytes %d below header floor for %d nodes",
			d.QuarantinedBytes(), d.QuarantinedNodes())
	}
	// BoundedNodes covers quarantine, so the limits still see the memory.
	if d.BoundedNodes() < d.QuarantinedNodes() {
		t.Fatal("BoundedNodes does not include quarantined nodes")
	}

	// Ack via the victim's op boundary: the quarantine must drain to the
	// free function.
	func() {
		defer func() { recover() }()
		victim.EndOp()
		victim.StartOp()
	}()
	if d.UnackedNeutralizations() != 0 {
		t.Fatal("ack did not land")
	}
	if d.QuarantinedNodes() != 0 || d.QuarantinedBytes() != 0 {
		t.Fatalf("quarantine not drained after ack: nodes=%d bytes=%d",
			d.QuarantinedNodes(), d.QuarantinedBytes())
	}
	mu.Lock()
	f = freed
	mu.Unlock()
	if f == 0 {
		t.Fatal("drained quarantine reached no free function")
	}
}

// TestNeutralizedMidOpCheckpoints: the mid-operation checkpoints refuse to
// let a resumed zombie touch shared state — Retire and LimboBags panic
// without acknowledging (references may be live), and AbortOp on the unwind
// path delivers the acknowledgement.
func TestNeutralizedMidOpCheckpoints(t *testing.T) {
	d := NewDomain(2)
	victim := d.Register()
	d.Register()

	victim.StartOp()
	if !d.Neutralize(victim.ID()) {
		t.Fatal("Neutralize failed")
	}

	mustPanicNoAck := func(name string, f func()) {
		t.Helper()
		func() {
			defer func() {
				if r := recover(); r != ErrNeutralized {
					t.Fatalf("%s: recovered %v, want ErrNeutralized", name, r)
				}
			}()
			f()
		}()
		if d.UnackedNeutralizations() != 1 {
			t.Fatalf("%s acknowledged the poison mid-op", name)
		}
	}
	nd := &Node{}
	nd.InitKey(1, 1)
	mustPanicNoAck("Retire", func() { victim.Retire(nd) })
	mustPanicNoAck("LimboBags", func() { victim.LimboBags() })
	mustPanicNoAck("CheckNeutralized", victim.CheckNeutralized)

	victim.AbortOp() // the recovery path acknowledges
	if d.UnackedNeutralizations() != 0 {
		t.Fatal("AbortOp did not acknowledge")
	}
}

// TestWatchdogEscalationLadder: end to end — sustained soft-limit pressure
// from one permanently stalled thread makes the watchdog walk the ladder to
// neutralization, after which the epoch advances and limbo drains while the
// victim's garbage sits quarantined until its acknowledgement.
func TestWatchdogEscalationLadder(t *testing.T) {
	d := NewDomain(2)
	freedCh := make(chan struct{}, 1024)
	d.SetFreeFunc(func(tid int, n *Node) {
		select {
		case freedCh <- struct{}{}:
		default:
		}
	})
	d.SetLimboLimits(8, 64)
	victim := d.Register()
	worker := d.Register()

	neutralized := make(chan Stall, 16)
	w := d.StartWatchdog(WatchdogConfig{
		Interval:      time.Millisecond,
		StallAfter:    5 * time.Millisecond,
		EscalateAfter: 10 * time.Millisecond,
		Neutralize:    true,
		// Non-blocking send: the callback runs on the watchdog loop, and a
		// blocked callback would wedge the ladder (and Stop).
		OnNeutralize: func(s Stall) {
			select {
			case neutralized <- s:
			default:
			}
		},
	})
	defer w.Stop()

	victim.StartOp() // permanent stall

	// A scheduling hiccup can make the watchdog flag — and, this aggressively
	// configured, neutralize — the busy worker too. That is the configured
	// policy, not a bug; the worker recovers the way any neutralized thread
	// does: abort, deregister, re-register into the freed slot.
	workerDo := func(op func()) {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if err, ok := r.(error); !ok || !errors.Is(err, ErrNeutralized) {
				panic(r)
			}
			worker.AbortOp()
			worker.Deregister()
			worker = d.Register()
		}()
		op()
	}

	// Sustained update load drives limbo over the soft limit and keeps it
	// there; the pinned epoch stops rotation, so pressure is sustained.
	deadline := time.After(5 * time.Second)
loop:
	for {
		workerDo(func() { retireN(worker, 2) })
		select {
		case got := <-neutralized:
			if got.ThreadID == victim.ID() {
				break loop // collateral worker neutralizations recover above
			}
		case <-deadline:
			t.Fatal("watchdog never escalated to neutralizing the staller")
		default:
		}
	}
	// With the victim excluded from the min-epoch the worker can drain.
	for i := 0; i < 20*scanInterval; i++ {
		workerDo(func() {
			worker.StartOp()
			worker.EndOp()
		})
	}
	if d.LimboNodes() != 0 {
		t.Fatalf("limbo=%d after neutralization + drain, want 0", d.LimboNodes())
	}
	// Victim acks at its op boundary; the quarantine must then drain.
	func() {
		defer func() { recover() }()
		victim.EndOp()
		victim.StartOp()
	}()
	if d.QuarantinedNodes() != 0 {
		t.Fatalf("quarantine=%d after ack", d.QuarantinedNodes())
	}
}
