package epoch

import (
	"testing"

	"ebrrq/internal/fault"
)

// TestFaultStartOpStaleAnnounce is the deterministic regression test for the
// rare "missing key" validation failures (ROADMAP.md): a thread parked
// between reading the global epoch and publishing its announcement in
// StartOp is invisible to tryAdvance (its previous announcement is
// quiescent), so the global can advance two or more epochs before the stale
// value is announced. The stale-announced updater then retires its victims
// into a limbo bag tagged below the localEpoch-1 visibility floor of a
// concurrent range query's LimboBags sweep, making a node deleted with
// dtime >= the query's timestamp unrecoverable. The announce-then-recheck
// loop in StartOp closes the window; without it this test fails.
func TestFaultStartOpStaleAnnounce(t *testing.T) {
	if !fault.Enabled {
		t.Skip("requires -tags failpoints")
	}
	d := NewDomain(2)
	rq := d.Register()  // plays the range query, owned by this goroutine
	del := d.Register() // plays the deleter, owned by the goroutine below

	entered := make(chan struct{})
	resume := make(chan struct{})
	fault.Reset()
	defer fault.Reset()
	fault.Arm("epoch.startop.stale", fault.Hook(func(string) {
		entered <- struct{}{}
		<-resume
	}).Once())

	done := make(chan *Node)
	go func() {
		del.StartOp() // parks in the load->announce window
		n := retireWithDTime(del, 42, 1<<40)
		del.EndOp()
		done <- n
	}()

	<-entered
	// While the deleter is parked, advance the global epoch twice: the
	// deleter's old quiescent announcement does not hold it back.
	for i := 0; i < 2; i++ {
		before := d.GlobalEpoch()
		rq.tryAdvance()
		if d.GlobalEpoch() != before+1 {
			t.Fatalf("advance %d did not move the global epoch", i)
		}
	}
	// The query announces at the now-current epoch, then the deleter wakes,
	// announces, and retires a node whose deletion the query must be able
	// to observe.
	rq.StartOp()
	defer rq.EndOp()
	close(resume)
	n := <-done

	heads, _ := collectBags(rq)
	for _, h := range heads {
		for c := h; c != nil; c = c.LimboNext() {
			if c == n {
				return // the limbo sweep can recover the deletion
			}
		}
	}
	t.Fatal("node retired by a stale-announced thread is invisible to the query's limbo sweep")
}
