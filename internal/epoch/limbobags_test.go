package epoch

import (
	"sync"
	"testing"
)

func retireWithDTime(t *Thread, key int64, dtime uint64) *Node {
	n := &Node{}
	n.InitKey(key, 0)
	n.SetITime(1)
	if dtime != 0 {
		n.SetDTime(dtime)
	}
	t.Retire(n)
	return n
}

// collectBags snapshots every visible limbo bag (caller must be in-op).
func collectBags(t *Thread) (heads []*Node, fences []uint64) {
	it := t.LimboBags()
	for h, f, ok := it.Next(); ok; h, f, ok = it.Next() {
		heads = append(heads, h)
		fences = append(fences, f)
	}
	return
}

func chainLen(h *Node) int {
	n := 0
	for ; h != nil; h = h.LimboNext() {
		n++
	}
	return n
}

// TestBagFenceTracksMaxDTime: Retire raises the bag fence to the maximum
// dtime seen, regardless of retirement order.
func TestBagFenceTracksMaxDTime(t *testing.T) {
	d := NewDomain(1)
	th := d.Register()
	th.StartOp()
	defer th.EndOp()
	retireWithDTime(th, 1, 5)
	retireWithDTime(th, 2, 3)
	retireWithDTime(th, 3, 9)
	heads, fences := collectBags(th)
	if len(heads) != 1 || chainLen(heads[0]) != 3 {
		t.Fatalf("want one bag of 3 nodes, got %d bags", len(heads))
	}
	if fences[0] != 9 {
		t.Fatalf("fence = %d, want max dtime 9", fences[0])
	}
}

// TestBagFencePoisonOnUnpublishedDTime: a node retired before its dtime is
// published (helper unlinked another thread's victim) must poison the fence
// to "never skip" for the bag's whole lifetime.
func TestBagFencePoisonOnUnpublishedDTime(t *testing.T) {
	d := NewDomain(1)
	th := d.Register()
	th.StartOp()
	defer th.EndOp()
	retireWithDTime(th, 1, 6)
	retireWithDTime(th, 2, 0) // dtime ⊥ at retirement
	retireWithDTime(th, 3, 4)
	_, fences := collectBags(th)
	if len(fences) != 1 || fences[0] != ^uint64(0) {
		t.Fatalf("fence = %v, want poisoned (max uint64)", fences)
	}
}

// TestBagFenceResetOnRotate: after a bag rotates, its fence must restart
// from the new contents — the previous generation's maximum must not leak
// and permanently disable skipping.
func TestBagFenceResetOnRotate(t *testing.T) {
	d := NewDomain(1)
	th := d.Register()
	th.StartOp()
	retireWithDTime(th, 1, 99)
	th.EndOp()
	// Drive the global epoch forward numBags times: the slot holding the
	// dtime-99 node rotates (its contents age out and are reclaimed).
	for i := 0; i < numBags; i++ {
		th.StartOp()
		th.tryAdvance()
		th.EndOp()
	}
	th.StartOp()
	defer th.EndOp()
	retireWithDTime(th, 2, 2)
	heads, fences := collectBags(th)
	if len(heads) != 1 || chainLen(heads[0]) != 1 {
		t.Fatalf("want exactly the fresh node in limbo, got %d bags", len(heads))
	}
	if fences[0] != 2 {
		t.Fatalf("fence = %d after rotation, want 2 (old max 99 must not leak)", fences[0])
	}
}

// TestBagFenceInheritedOnAdopt: a slot adopted from a deregistered thread
// keeps both the limbo chain and its fence, so range queries keep skipping
// (or sweeping) inherited bags correctly.
func TestBagFenceInheritedOnAdopt(t *testing.T) {
	d := NewDomain(1)
	t1 := d.Register()
	t1.StartOp()
	retireWithDTime(t1, 1, 7)
	t1.EndOp()
	t1.Deregister()
	t2, err := d.TryRegister()
	if err != nil {
		t.Fatal(err)
	}
	t2.StartOp()
	defer t2.EndOp()
	heads, fences := collectBags(t2)
	if len(heads) != 1 || chainLen(heads[0]) != 1 {
		t.Fatalf("adopted limbo chain lost: %d bags", len(heads))
	}
	if fences[0] != 7 {
		t.Fatalf("adopted fence = %d, want 7", fences[0])
	}
}

// TestBagFenceVisibilityUnderConcurrentRetire checks the fence's memory
// ordering contract directly: a reader that observes a node through a bag
// head must observe a fence at least as large as that node's dtime (Retire
// publishes fence before head; Next loads head before fence). Run with
// -race for the full effect.
func TestBagFenceVisibilityUnderConcurrentRetire(t *testing.T) {
	d := NewDomain(2)
	writer := d.Register()
	reader := d.Register()

	// The reader stays in one operation, pinning the epoch: the writer's
	// chain only grows, so bound both sides to keep the walk subquadratic
	// under -race.
	const retires = 1500
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for dtime := uint64(1); dtime <= retires; dtime++ {
			select {
			case <-stop:
				return
			default:
			}
			writer.StartOp()
			retireWithDTime(writer, int64(dtime), dtime)
			writer.EndOp()
		}
	}()

	reader.StartOp()
	for i := 0; i < 500; i++ {
		it := reader.LimboBags()
		for h, fence, ok := it.Next(); ok; h, fence, ok = it.Next() {
			for n := h; n != nil; n = n.LimboNext() {
				if dt := n.DTime(); dt > fence {
					t.Errorf("observed node dtime %d above bag fence %d", dt, fence)
				}
			}
		}
		if t.Failed() {
			break
		}
	}
	reader.EndOp()
	close(stop)
	wg.Wait()
}
