package epoch

import (
	"sync"
	"time"

	"ebrrq/internal/trace"
)

// WatchdogConfig tunes a Domain's stall watchdog.
type WatchdogConfig struct {
	// Interval is the sampling period. Default 2ms.
	Interval time.Duration
	// StallAfter is how long a thread may sit inside one operation before
	// it is reported as stalled. Default 50ms.
	StallAfter time.Duration
	// OnStall, if non-nil, is called (on the watchdog goroutine) when the
	// stall set transitions from empty to non-empty.
	OnStall func([]Stall)
	// OnRecover, if non-nil, is called when the stall set transitions back
	// to empty.
	OnRecover func()

	// EscalateAfter is how long the domain may sit over its soft limbo limit
	// before the ladder reaches its final rung (neutralization). The earlier
	// rungs — forced epoch advances, then orphan sweeps — run on every tick
	// spent over the limit. Default 100ms.
	EscalateAfter time.Duration
	// Neutralize opts the final rung in: when the soft limit has been
	// breached for EscalateAfter and the earlier rungs freed nothing, every
	// thread in the current stall set is neutralized (DESIGN.md §11). Off by
	// default because it turns a stalled thread's next operation into an
	// ErrNeutralized panic the caller must handle.
	Neutralize bool
	// OnNeutralize, if non-nil, is called (on the watchdog goroutine) for
	// each thread the ladder neutralizes.
	OnNeutralize func(Stall)
}

// Watchdog detects threads pinning the global epoch. Epoch lag alone cannot
// expose the classic EBR failure mode — a single stalled thread caps the
// global epoch at one past its announcement, so its lag never exceeds one —
// therefore the watchdog samples each thread's (announcement, operation
// count) pair: a thread that stays non-quiescent on the same operation for
// longer than StallAfter is stalled, whatever its lag. This is the detection
// half of DEBRA+'s answer to stalled reclaimers; our recovery half is
// Deregister plus the orphan sweep.
type Watchdog struct {
	d    *Domain
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}

	samples []wdSample

	// pressureSince is when the domain crossed its soft limbo limit (zero
	// while under it); the escalation ladder's neutralization rung arms once
	// now-pressureSince exceeds EscalateAfter. Watchdog-goroutine only.
	pressureSince time.Time

	// tr records stall edges into the flight recorder (nil when the domain
	// is untraced). The watchdog goroutine is the ring's single writer.
	tr *trace.Ring

	mu  sync.Mutex
	cur []Stall
}

type wdSample struct {
	ops    uint64
	since  time.Time
	active bool
}

// StartWatchdog attaches a watchdog to the domain and starts its sampling
// goroutine. Any previously attached watchdog is stopped first. Stop the
// returned watchdog when done.
func (d *Domain) StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 50 * time.Millisecond
	}
	if cfg.EscalateAfter <= 0 {
		cfg.EscalateAfter = 100 * time.Millisecond
	}
	w := &Watchdog{
		d:       d,
		cfg:     cfg,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		samples: make([]wdSample, len(d.threads)),
	}
	if d.trec != nil {
		w.tr = d.trec.Ring(d.trPrefix + "watchdog")
	}
	if prev := d.wd.Swap(w); prev != nil {
		prev.Stop()
	}
	go w.run()
	return w
}

// Watchdog returns the currently attached watchdog, or nil.
func (d *Domain) Watchdog() *Watchdog { return d.wd.Load() }

// Stop halts the watchdog goroutine and detaches the watchdog from its
// domain (unless a newer one already replaced it). Idempotent.
func (w *Watchdog) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
	w.d.wd.CompareAndSwap(w, nil)
}

// Stalls returns the most recent observation (threads stuck in one
// operation for at least StallAfter).
func (w *Watchdog) Stalls() []Stall {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Stall, len(w.cur))
	copy(out, w.cur)
	return out
}

func (w *Watchdog) run() {
	defer close(w.done)
	ticker := time.NewTicker(w.cfg.Interval)
	defer ticker.Stop()
	stalled := false
	for {
		select {
		case <-w.stop:
			return
		case now := <-ticker.C:
			cur := w.sample(now)
			w.mu.Lock()
			w.cur = cur
			w.mu.Unlock()
			w.escalate(now, cur)
			if len(cur) > 0 && !stalled {
				stalled = true
				for _, s := range cur {
					w.tr.Emit(trace.EvStall, uint64(s.ThreadID), uint64(s.Stuck))
				}
				if w.cfg.OnStall != nil {
					w.cfg.OnStall(cur)
				}
			} else if len(cur) == 0 && stalled {
				stalled = false
				w.tr.Emit(trace.EvStallRecover, 0, 0)
				if w.cfg.OnRecover != nil {
					w.cfg.OnRecover()
				}
			}
		}
	}
}

// escalate runs the limbo-pressure ladder (DESIGN.md §11) on each tick the
// domain is over its soft limit:
//
//	rung 1 — force epoch advances (up to one full bag cycle), letting live
//	         threads rotate reclaimable bags on their next StartOp;
//	rung 2 — force an orphan-bag sweep, reclaiming what dead threads left;
//	rung 3 — after EscalateAfter of sustained pressure, neutralize every
//	         thread in the stall set (opt-in via cfg.Neutralize).
//
// The ladder never outruns the safety argument: rungs 1–2 only do what
// normal operation would eventually do anyway, and rung 3 hands the freed
// epochs' chains to the quarantine until the victim acknowledges.
func (w *Watchdog) escalate(now time.Time, cur []Stall) {
	d := w.d
	if !d.OverSoftLimit() {
		w.pressureSince = time.Time{}
		return
	}
	before := d.BoundedNodes()
	if w.pressureSince.IsZero() {
		w.pressureSince = now
		soft, _ := d.LimboLimits()
		w.tr.Emit(trace.EvLimboPressure, uint64(before), uint64(soft))
	}
	if adv := d.ForceAdvance(numBags); adv > 0 {
		w.tr.Emit(trace.EvForceAdvance, uint64(adv), uint64(before))
	}
	if freed := d.ForceSweep(); freed > 0 {
		w.tr.Emit(trace.EvForceSweep, uint64(freed), uint64(before))
	}
	if !w.cfg.Neutralize || now.Sub(w.pressureSince) < w.cfg.EscalateAfter {
		return
	}
	if !d.OverSoftLimit() {
		return // rungs 1–2 drained below the limit; no victim needed
	}
	for _, s := range cur {
		if d.Neutralize(s.ThreadID) {
			w.tr.Emit(trace.EvNeutralize, uint64(s.ThreadID), uint64(s.Stuck))
			if w.cfg.OnNeutralize != nil {
				w.cfg.OnNeutralize(s)
			}
		}
	}
}

// sample takes one observation of every registered thread.
func (w *Watchdog) sample(now time.Time) []Stall {
	d := w.d
	e := d.global.Load()
	var cur []Stall
	n := int(d.registered.Load())
	for i := 0; i < n; i++ {
		s := &w.samples[i]
		t := d.threads[i].Load()
		if t == nil || t.dead.Load() {
			s.active = false
			continue
		}
		a := t.ann.Load()
		if a&quiescentBit != 0 {
			s.active = false
			continue
		}
		ops := t.ops.Load()
		if !s.active || s.ops != ops {
			// New operation (or first sighting): restart the clock.
			s.active, s.ops, s.since = true, ops, now
			continue
		}
		if stuck := now.Sub(s.since); stuck >= w.cfg.StallAfter {
			cur = append(cur, Stall{ThreadID: i, Epoch: a >> 1, Global: e, Stuck: stuck})
		}
	}
	return cur
}
