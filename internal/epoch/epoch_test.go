package epoch

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestNodeInit(t *testing.T) {
	var n Node
	n.InitKey(7, 70)
	if n.Key() != 7 || n.Value() != 70 || n.IsMulti() || n.Routing() {
		t.Fatal("InitKey state wrong")
	}
	if n.ITime() != 0 || n.DTime() != 0 {
		t.Fatal("timestamps must start at ⊥")
	}
	n.SetITime(3)
	n.SetDTime(9)
	if n.ITime() != 3 || n.DTime() != 9 {
		t.Fatal("timestamp accessors broken")
	}
	n.InitMulti([]KV{{1, 10}, {2, 20}})
	if !n.IsMulti() || n.Routing() {
		t.Fatal("InitMulti state wrong")
	}
	if n.ITime() != 0 || n.DTime() != 0 {
		t.Fatal("InitMulti must reset timestamps")
	}
	var got []int64
	n.Each(func(k, v int64) { got = append(got, k, v) })
	if len(got) != 4 || got[0] != 1 || got[3] != 20 {
		t.Fatalf("Each over multi = %v", got)
	}
	n.InitMulti(nil)
	count := 0
	n.Each(func(k, v int64) { count++ })
	if count != 0 {
		t.Fatal("empty multi node must enumerate no keys")
	}
	n.InitRouting(5)
	if !n.Routing() || n.IsMulti() || n.Key() != 5 {
		t.Fatal("InitRouting state wrong")
	}
}

func TestContainsInRangeProperty(t *testing.T) {
	f := func(key, lo, span int64) bool {
		if span < 0 {
			span = -span
		}
		hi := lo + span%1000
		var n Node
		n.InitKey(key, 0)
		return n.ContainsInRange(lo, hi) == (lo <= key && key <= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEpochAdvances(t *testing.T) {
	d := NewDomain(2)
	t1 := d.Register()
	start := d.GlobalEpoch()
	for i := 0; i < 10*scanInterval; i++ {
		t1.StartOp()
		t1.EndOp()
	}
	if d.GlobalEpoch() <= start {
		t.Fatalf("epoch did not advance: %d -> %d", start, d.GlobalEpoch())
	}
}

func TestActiveThreadBlocksAdvance(t *testing.T) {
	d := NewDomain(2)
	t1 := d.Register()
	t2 := d.Register()
	t2.StartOp() // t2 stays active at the current epoch
	e := d.GlobalEpoch()
	for i := 0; i < 5*scanInterval; i++ {
		t1.StartOp()
		t1.EndOp()
	}
	// t1 may advance once past t2's announcement but not twice.
	if g := d.GlobalEpoch(); g > e+1 {
		t.Fatalf("epoch advanced %d -> %d despite active thread", e, g)
	}
	t2.EndOp()
	for i := 0; i < 5*scanInterval; i++ {
		t1.StartOp()
		t1.EndOp()
	}
	if g := d.GlobalEpoch(); g <= e+1 {
		t.Fatalf("epoch stuck at %d after thread quiesced", g)
	}
}

func TestRetireReclaimAfterGracePeriod(t *testing.T) {
	d := NewDomain(1)
	var freed []int64
	d.SetFreeFunc(func(tid int, n *Node) { freed = append(freed, n.Key()) })
	th := d.Register()
	th.StartOp()
	n := &Node{}
	n.InitKey(42, 0)
	th.Retire(n)
	th.EndOp()
	if len(freed) != 0 {
		t.Fatal("node freed immediately")
	}
	for i := 0; i < 10*scanInterval && len(freed) == 0; i++ {
		th.StartOp()
		th.EndOp()
	}
	if len(freed) != 1 || freed[0] != 42 {
		t.Fatalf("freed = %v, want [42]", freed)
	}
	if d.Reclaimed() != 1 {
		t.Fatalf("Reclaimed = %d", d.Reclaimed())
	}
}

func TestLimboListOrderAndVisibility(t *testing.T) {
	d := NewDomain(2)
	th := d.Register()
	rq := d.Register()
	rq.StartOp() // pin the epoch so nothing is reclaimed
	th.StartOp()
	var nodes []*Node
	for i := int64(0); i < 10; i++ {
		n := &Node{}
		n.InitKey(i, 0)
		n.SetDTime(uint64(i + 1))
		th.Retire(n)
		nodes = append(nodes, n)
	}
	seen := map[int64]bool{}
	var order []int64
	rq.ForEachLimboList(func(head *Node) {
		for n := head; n != nil; n = n.LimboNext() {
			seen[n.Key()] = true
			order = append(order, n.Key())
		}
	})
	for i := int64(0); i < 10; i++ {
		if !seen[i] {
			t.Fatalf("node %d not visible in limbo lists", i)
		}
	}
	// Head insertion ⇒ descending retire order.
	for i := 1; i < len(order); i++ {
		if order[i-1] < order[i] {
			t.Fatalf("limbo list not in reverse retire order: %v", order)
		}
	}
	th.EndOp()
	rq.EndOp()
	if d.LimboSize() != 10 {
		t.Fatalf("LimboSize = %d", d.LimboSize())
	}
}

// TestNoPrematureReclaim hammers retire/reclaim with concurrent "readers"
// that pin nodes they can still reach and verify their generation counters
// never change while pinned.
func TestNoPrematureReclaim(t *testing.T) {
	const nThreads = 4
	d := NewDomain(nThreads)
	var freeCount atomic.Int64
	d.SetFreeFunc(func(tid int, n *Node) { freeCount.Add(1) })

	// Shared "data structure": a single atomic slot holding one node.
	var slot atomic.Pointer[Node]
	first := &Node{}
	first.InitKey(0, 0)
	slot.Store(first)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var violations atomic.Int64
	for w := 0; w < nThreads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := d.Register()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				th.StartOp()
				if r.Intn(2) == 0 {
					// Replace the node, retiring the old one.
					n := &Node{}
					n.InitKey(r.Int63(), 0)
					old := slot.Swap(n)
					th.Retire(old)
				} else {
					// Read and hold across the op: gen must not move.
					n := slot.Load()
					g := n.Gen()
					for i := 0; i < 50; i++ {
						if n.Gen() != g {
							violations.Add(1)
						}
					}
				}
				th.EndOp()
			}
		}(int64(w))
	}
	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d premature reclamations detected", violations.Load())
	}
	if freeCount.Load() == 0 {
		t.Fatal("nothing was ever reclaimed; grace-period logic suspicious")
	}
}

func TestRegisterPanicsBeyondCapacity(t *testing.T) {
	d := NewDomain(1)
	d.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on over-registration")
		}
	}()
	d.Register()
}

func TestMisusePanics(t *testing.T) {
	d := NewDomain(1)
	th := d.Register()
	mustPanic(t, "nested StartOp", func() { th.StartOp(); th.StartOp() })
	th.EndOp()
	mustPanic(t, "EndOp when quiescent", func() { th.EndOp() })
	mustPanic(t, "Retire outside op", func() { th.Retire(&Node{}) })
	mustPanic(t, "ForEachLimboList outside op", func() { th.ForEachLimboList(func(*Node) {}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
