package epoch

import (
	"errors"
	"sync"
	"testing"
)

// churn drives t through n empty operations, giving tryAdvance plenty of
// chances to move the global epoch and run orphan sweeps.
func churn(t *Thread, n int) {
	for i := 0; i < n; i++ {
		t.StartOp()
		t.EndOp()
	}
}

// TestDeregisterMidOpUnblocksAdvance is the recovery half of the stall story:
// a thread that dies mid-operation pins the epoch until Deregister makes its
// announcement permanently quiescent, after which the epoch advances and the
// orphan sweep reclaims the nodes it abandoned in limbo.
func TestDeregisterMidOpUnblocksAdvance(t *testing.T) {
	d := NewDomain(2)
	freed := 0
	d.SetFreeFunc(func(tid int, n *Node) { freed++ })
	worker := d.Register()
	victim := d.Register()

	victim.StartOp()
	for i := 0; i < 10; i++ {
		n := &Node{}
		n.InitKey(int64(i), 0)
		victim.Retire(n)
	}
	// victim "crashes" here, still inside the operation.

	churn(worker, 4*scanInterval)
	base := d.Advances()
	churn(worker, 4*scanInterval)
	if d.Advances() != base {
		t.Fatalf("epoch advanced %d times while a thread was stalled mid-op",
			d.Advances()-base)
	}

	victim.Deregister()
	churn(worker, 10*scanInterval)
	if d.Advances() == base {
		t.Fatal("epoch did not resume advancing after Deregister")
	}
	if freed < 10 {
		t.Fatalf("orphan sweep reclaimed %d of the dead thread's 10 nodes", freed)
	}
}

// TestTryRegisterSlotReuse: a full domain rejects registration with
// ErrTooManyThreads instead of panicking, and Deregister releases the slot
// for reuse so registration capacity is not a one-way ratchet.
func TestTryRegisterSlotReuse(t *testing.T) {
	d := NewDomain(1)
	a, err := d.TryRegister()
	if err != nil {
		t.Fatalf("first TryRegister: %v", err)
	}
	if _, err := d.TryRegister(); !errors.Is(err, ErrTooManyThreads) {
		t.Fatalf("full domain returned %v, want ErrTooManyThreads", err)
	}

	a.Deregister()
	a.Deregister() // idempotent
	b, err := d.TryRegister()
	if err != nil {
		t.Fatalf("TryRegister after Deregister: %v", err)
	}
	if b.ID() != a.ID() {
		t.Fatalf("reused slot id = %d, want %d", b.ID(), a.ID())
	}
	churn(b, 2*scanInterval) // adopted slot must be fully operational

	// The dead handle must refuse further operations.
	defer func() {
		if recover() == nil {
			t.Fatal("StartOp on a deregistered thread did not panic")
		}
	}()
	a.StartOp()
}

// TestAdoptPreservesNodesNoDoubleFree: nodes retired by a thread that
// deregisters are each freed exactly once — whether by slot adoption, the
// orphan sweep, or normal rotation after adoption — and none are lost.
func TestAdoptPreservesNodesNoDoubleFree(t *testing.T) {
	d := NewDomain(2)
	frees := map[*Node]int{}
	d.SetFreeFunc(func(tid int, n *Node) { frees[n]++ })
	worker := d.Register()

	retired := 0
	// Several generations of: register into the second slot, retire nodes
	// across a few epochs, deregister (sometimes mid-op), re-register
	// (adopting the slot and its leftover bags).
	for gen := 0; gen < 5; gen++ {
		v, err := d.TryRegister()
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		for i := 0; i < 3; i++ {
			v.StartOp()
			n := &Node{}
			n.InitKey(int64(retired), 0)
			v.Retire(n)
			retired++
			if gen%2 == 0 && i == 2 {
				v.Deregister() // die mid-op, node still in the open bag
			} else {
				v.EndOp()
			}
			churn(worker, scanInterval) // let epochs move between retirements
		}
		v.Deregister()
		churn(worker, 2*scanInterval)
	}
	churn(worker, 10*scanInterval) // drain the last generation's bags

	for n, c := range frees {
		if c != 1 {
			t.Fatalf("node %d freed %d times", n.Key(), c)
		}
	}
	if len(frees) != retired {
		t.Fatalf("freed %d distinct nodes, retired %d", len(frees), retired)
	}
}

// TestConcurrentRegisterDeregister hammers slot churn from many goroutines
// against a smaller domain, relying on the race detector for the
// registration/adoption/sweep interlocks.
func TestConcurrentRegisterDeregister(t *testing.T) {
	const slots, workers, rounds = 4, 8, 200
	d := NewDomain(slots)
	d.SetFreeFunc(func(tid int, n *Node) {})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; {
				th, err := d.TryRegister()
				if err != nil {
					continue // domain full; another goroutine holds the slot
				}
				th.StartOp()
				n := &Node{}
				n.InitKey(int64(r), 0)
				th.Retire(n)
				th.EndOp()
				th.Deregister()
				r++
			}
		}()
	}
	wg.Wait()
	// Final owner drains what the churned threads left behind.
	th := d.Register()
	churn(th, 10*scanInterval)
	if got := int(d.Reclaimed()); got > workers*rounds {
		t.Fatalf("reclaimed %d nodes, retired only %d", got, workers*rounds)
	}
}

// TestAbortOp: aborting is a no-op while quiescent, unpins the epoch when
// mid-op, and leaves the thread reusable.
func TestAbortOp(t *testing.T) {
	d := NewDomain(2)
	worker := d.Register()
	th := d.Register()

	th.AbortOp() // quiescent: must not panic

	th.StartOp()
	churn(worker, 4*scanInterval) // absorb the one advance the announcement permits
	base := d.Advances()
	churn(worker, 4*scanInterval)
	if d.Advances() != base {
		t.Fatal("setup failed: epoch advanced despite an in-flight op")
	}
	th.AbortOp()
	churn(worker, 4*scanInterval)
	if d.Advances() == base {
		t.Fatal("epoch did not advance after AbortOp")
	}
	churn(th, scanInterval) // thread stays usable after an abort
}
