package dstest

import (
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
	"ebrrq/internal/validate"
)

// ChaosCfg parameterizes RunChaos.
type ChaosCfg struct {
	Updaters  int           // threads doing 50% insert / 50% delete (default 3)
	RQThreads int           // threads doing 100% range queries (default 2)
	KeySpace  int64         // default 128
	RQRange   int64         // default 32
	Duration  time.Duration // default 250ms
	Seed      int64
	// Combine enables the aggregating update funnel for the run, so the
	// injected faults hit combiner windows too (a crashed combiner must
	// release its followers with ErrNeutralized, never strand them).
	Combine bool
	// Faults maps failpoint sites to the actions armed for the run. Every
	// site must be hit at least once or the run fails (a site that never
	// fires is testing nothing).
	Faults map[string]fault.Action
}

// ChaosStats reports what a chaos run observed.
type ChaosStats struct {
	// Crashes counts injected panics recovered at worker top level (each
	// followed by a Deregister and a slot-reusing re-registration).
	Crashes int
	// Hits and Fired record the per-site failpoint counts at run end.
	Hits, Fired map[string]uint64
	// TraceDump is the path of the flight-recorder dump, written when the
	// watchdog flagged a stall or validation failed ("" if neither
	// happened). Analyze it with cmd/rqtrace.
	TraceDump string
}

// TraceDumpDir returns where chaos stall dumps go: $EBRRQ_TRACE_DIR if set
// (CI exports it so failed runs can upload dumps as artifacts), else the
// test's temporary directory.
func TraceDumpDir(t *testing.T) string {
	if dir := os.Getenv("EBRRQ_TRACE_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err == nil {
			return dir
		}
	}
	return t.TempDir()
}

// WriteTraceDump snapshots the recorder into dir under a name derived from
// the test and reason, logs the path, and returns it.
func WriteTraceDump(t *testing.T, rec *trace.Recorder, dir, reason string) string {
	name := strings.ReplaceAll(t.Name(), "/", "_") + "-" + reason + ".trace"
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Errorf("chaos: creating trace dump: %v", err)
		return ""
	}
	if _, err := rec.Snapshot().WriteTo(f); err != nil {
		t.Errorf("chaos: writing trace dump: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("chaos: closing trace dump: %v", err)
	}
	t.Logf("chaos: flight-recorder dump written to %s (analyze with: go run ./cmd/rqtrace %s)", path, path)
	return path
}

// RunChaos is RunValidated under injected faults: a mixed workload runs with
// the configured failpoints armed, worker goroutines treat injected panics
// as thread crashes (deregister, then re-register — the thread count is
// exactly the worker count plus one, so every recovery exercises slot
// reuse), and afterwards the harness verifies the stack degraded gracefully:
// every range query replays correctly against the recorded update history,
// the epoch still advances, and draining reclaims every node the crashed and
// exited threads abandoned in limbo (LimboSize returns to zero).
//
// Runs are skipped in production builds (no failpoints compiled in).
func RunChaos(t *testing.T, mode rqprov.Mode, limboSorted bool, build Builder, cfg ChaosCfg) ChaosStats {
	t.Helper()
	if !fault.Enabled {
		t.Skip("chaos runs require -tags failpoints")
	}
	if mode == rqprov.ModeUnsafe {
		t.Fatal("dstest: RunChaos requires a linearizable mode")
	}
	if cfg.Updaters == 0 {
		cfg.Updaters = 3
	}
	if cfg.RQThreads == 0 {
		cfg.RQThreads = 2
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 128
	}
	if cfg.RQRange == 0 {
		cfg.RQRange = 32
	}
	if cfg.Duration == 0 {
		cfg.Duration = 250 * time.Millisecond
	}
	n := cfg.Updaters + cfg.RQThreads + 1
	checker := validate.NewChecker(n)
	// The flight recorder runs through every chaos workload; if the run
	// wedges or fails validation the dump is the post-mortem.
	rec := trace.NewRecorder(trace.Config{EventsPerRing: 1024})
	p := rqprov.New(rqprov.Config{
		MaxThreads:     n,
		Mode:           mode,
		LimboSorted:    limboSorted,
		MaxAnnounce:    64,
		Recorder:       checker,
		Trace:          rec,
		CombineUpdates: cfg.Combine,
	})
	s := build(p)

	stats := ChaosStats{
		Hits:  map[string]uint64{},
		Fired: map[string]uint64{},
	}
	// dumpPath is written at most once, but possibly from the watchdog
	// goroutine; the mutex pairs that write with the read at return.
	var dumpOnce sync.Once
	var dumpMu sync.Mutex
	var dumpPath string
	dump := func(reason string) {
		dumpOnce.Do(func() {
			p := WriteTraceDump(t, rec, TraceDumpDir(t), reason)
			dumpMu.Lock()
			dumpPath = p
			dumpMu.Unlock()
		})
	}
	// A watchdog rides along: if any thread wedges long enough to pin the
	// epoch, the recorder state is captured right at the stall edge (the
	// injected faults themselves only delay for microseconds, so a flag
	// here is a real hang).
	wd := p.Domain().StartWatchdog(epoch.WatchdogConfig{
		OnStall: func([]epoch.Stall) { dump("stall") },
	})
	defer wd.Stop()

	// Prefill before any fault is armed; the spare slot stays registered
	// (quiescent) so the workers plus the spare fill the provider exactly.
	spare := p.Register()
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	for inserted := int64(0); inserted < cfg.KeySpace/2; {
		k := rng.Int63n(cfg.KeySpace)
		if s.Insert(spare, k, k*10) {
			inserted++
		}
	}

	fault.Reset()
	for name, act := range cfg.Faults {
		fault.Arm(name, act)
	}

	var crashes atomic.Int64
	// runOp executes one operation, converting an injected panic into a
	// crash signal; any other panic is a real bug and propagates. With
	// combining on, an injected combiner crash surfaces on the followers as
	// epoch.ErrNeutralized (the release path), so that is a tolerated
	// casualty too — the follower deregisters and revives like any crash.
	runOp := func(th *rqprov.Thread, op func(th *rqprov.Thread)) (crashed bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(fault.PanicError); !ok && r != epoch.ErrNeutralized {
					panic(r)
				}
				th.Deregister()
				crashed = true
			}
		}()
		op(th)
		return false
	}
	// reviveLoop runs a worker until stop, replacing its thread after every
	// crash. Re-registration can only succeed by reusing a released slot.
	revive := func(stop *atomic.Bool, op func(th *rqprov.Thread)) {
		th := p.Register()
		for !stop.Load() {
			if runOp(th, op) {
				crashes.Add(1)
				for {
					nt, err := p.TryRegister()
					if err == nil {
						th = nt
						break
					}
					runtime.Gosched()
				}
			}
		}
		th.Deregister() // orphan our limbo so the drain below reclaims it
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			revive(&stop, func(th *rqprov.Thread) {
				k := r.Int63n(cfg.KeySpace)
				if r.Intn(2) == 0 {
					s.Insert(th, k, r.Int63n(1<<30))
				} else {
					s.Delete(th, k)
				}
			})
		}(cfg.Seed + int64(w))
	}
	for w := 0; w < cfg.RQThreads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			revive(&stop, func(th *rqprov.Thread) {
				width := cfg.RQRange
				lo := int64(0)
				if width >= cfg.KeySpace {
					width = cfg.KeySpace
				} else {
					lo = r.Int63n(cfg.KeySpace - width)
				}
				res := s.RangeQuery(th, lo, lo+width-1)
				checker.AddRQ(th.ID(), th.LastRQTS(), lo, lo+width-1, res)
			})
		}(cfg.Seed + 1000 + int64(w))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()

	stats.Crashes = int(crashes.Load())
	for name := range cfg.Faults {
		stats.Hits[name] = fault.Hits(name)
		stats.Fired[name] = fault.Fired(name)
		if stats.Hits[name] == 0 {
			t.Errorf("chaos: failpoint %q was never reached — the fault tested nothing", name)
		}
	}
	fault.Reset()

	// Degraded is fine; broken is not: every range query must replay.
	if cfg.RQThreads > 0 && checker.RQs() == 0 {
		dump("norqs")
		t.Fatal("chaos: no range queries completed")
	}
	if err := checker.Check(); err != nil {
		dump("validation")
		t.Fatalf("chaos validation failed after %d events / %d rqs (%d crashes): %v",
			checker.Events(), checker.RQs(), stats.Crashes, err)
	}

	// Recovery: with every worker deregistered, the spare thread alone must
	// be able to advance the epoch and the orphan sweeps must reclaim every
	// abandoned limbo node.
	advances := p.Domain().Advances()
	for i := 0; i < 20*32; i++ {
		spare.StartOp()
		spare.EndOp()
	}
	if p.Domain().Advances() == advances {
		dump("wedged")
		t.Fatal("chaos: epoch wedged after the run — a dead thread still pins it")
	}
	if limbo := p.Domain().LimboSize(); limbo != 0 {
		dump("limbo-leak")
		t.Fatalf("chaos: %d nodes stuck in limbo after drain (crashed threads leaked)", limbo)
	}
	wd.Stop() // join the watchdog before reading what it may have dumped
	dumpMu.Lock()
	stats.TraceDump = dumpPath
	dumpMu.Unlock()
	return stats
}
