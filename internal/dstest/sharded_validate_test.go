package dstest_test

// Cross-shard linearizability validation for ebrrq.Sharded. This harness
// lives in the external test package (not dstest proper): package dstest is
// imported by every data structure's tests, and the sharded router lives in
// the root ebrrq package which imports those structures, so the import must
// stay on the test side of the boundary.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/dstest"
	"ebrrq/internal/validate"
)

// runShardedValidated is the cross-shard counterpart of dstest.RunValidated:
// it runs a concurrent mixed workload against an ebrrq.Sharded set and
// validates every range query — single-shard and cross-shard alike — with
// the timestamp-replay checker.
//
// The checker is shared by all shards through the router's per-shard
// recorder offsetting: shard i's provider records update events at
// tid' = i*n + tid, so one checker sized shards*n sees a globally consistent
// event log keyed by the shared clock. Range queries are attributed to the
// querying goroutine's shard-0 provider thread ID, which is unique per
// goroutine and therefore preserves the checker's single-writer-per-tid
// contract.
//
// RQ threads cycle through three width classes so every run exercises all
// router paths: cfg.RQRange (typically inside one shard), KeySpace/2 (spans
// shards), and a periodic full iteration over [0, KeySpace).
func runShardedValidated(t *testing.T, ds ebrrq.DataStructure, tech ebrrq.Mode, tq ebrrq.Technique, shards int, cfg dstest.StressCfg) {
	t.Helper()
	if tech == ebrrq.Unsafe {
		t.Fatal("runShardedValidated requires a linearizable technique")
	}
	if cfg.Updaters == 0 {
		cfg.Updaters = 4
	}
	if cfg.RQThreads == 0 {
		cfg.RQThreads = 2
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 256
	}
	if cfg.RQRange == 0 {
		cfg.RQRange = 32
	}
	if cfg.Duration == 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	n := cfg.Updaters + cfg.RQThreads + 1 // +1: the prefill thread stays registered
	checker := validate.NewChecker(shards * n)
	s, err := ebrrq.NewShardedWithOptions(ds, tech, n, shards, ebrrq.ShardedOptions{
		Technique: tq,
		Recorder:  checker,
		KeyMin:    0,
		KeyMax:    cfg.KeySpace - 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Prefill to ~KeySpace/2 so deletes find victims from the start.
	pre := s.NewThread()
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	for inserted := int64(0); inserted < cfg.KeySpace/2; {
		k := rng.Int63n(cfg.KeySpace)
		if pre.Insert(k, k*10) {
			inserted++
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := s.NewThread()
			defer th.Close()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := r.Int63n(cfg.KeySpace)
				if r.Intn(2) == 0 {
					th.Insert(k, r.Int63n(1<<30))
				} else {
					th.Delete(k)
				}
			}
		}(cfg.Seed + int64(w))
	}
	for w := 0; w < cfg.RQThreads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := s.NewThread()
			defer th.Close()
			tid := th.ShardThread(0).ID()
			r := rand.New(rand.NewSource(seed))
			for i := 0; !stop.Load(); i++ {
				var width int64
				switch {
				case i%8 == 7:
					width = cfg.KeySpace // full iteration
				case i%2 == 1:
					width = cfg.KeySpace / 2 // spans shards
				default:
					width = cfg.RQRange
				}
				lo := int64(0)
				if width >= cfg.KeySpace {
					width = cfg.KeySpace
				} else {
					lo = r.Int63n(cfg.KeySpace - width)
				}
				res := th.RangeQuery(lo, lo+width-1)
				checker.AddRQ(tid, th.LastRQTimestamp(), lo, lo+width-1, res)
			}
		}(cfg.Seed + 1000 + int64(w))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	pre.Close()

	if checker.RQs() == 0 {
		t.Fatal("no range queries executed")
	}
	if err := checker.Check(); err != nil {
		t.Fatalf("sharded validation failed after %d events / %d rqs: %v",
			checker.Events(), checker.RQs(), err)
	}
}
