// Bundled-references counterparts of the RunSequential / RunValidated
// harness: same workloads, same reference-map and timestamp-replay
// checking, driven through bundle.Provider threads instead of rqprov ones.
package dstest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq/internal/bundle"
	"ebrrq/internal/epoch"
	"ebrrq/internal/validate"
)

// BundleSet is the interface both bundled structures (bundle.List,
// bundle.SkipList) implement.
type BundleSet interface {
	Insert(t *bundle.Thread, key, value int64) bool
	Delete(t *bundle.Thread, key int64) bool
	Contains(t *bundle.Thread, key int64) (int64, bool)
	RangeQuery(t *bundle.Thread, low, high int64) []epoch.KV
}

// BundleBuilder constructs a bundled set attached to a provider.
type BundleBuilder func(p *bundle.Provider) BundleSet

// RunBundleSequential is RunSequential for a bundled structure.
func RunBundleSequential(t *testing.T, build BundleBuilder, cfg SequentialCfg) {
	t.Helper()
	if cfg.Ops == 0 {
		cfg.Ops = 20000
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 200
	}
	p := bundle.New(bundle.Config{MaxThreads: 2})
	s := build(p)
	th := p.Register()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	for i := 0; i < cfg.Ops; i++ {
		k := rng.Int63n(cfg.KeySpace)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := rng.Int63n(1 << 30)
			want := false
			if _, ok := model[k]; !ok {
				model[k] = v
				want = true
			}
			if got := s.Insert(th, k, v); got != want {
				t.Fatalf("op %d: Insert(%d)=%v, want %v", i, k, got, want)
			}
		case 4, 5, 6:
			_, want := model[k]
			delete(model, k)
			if got := s.Delete(th, k); got != want {
				t.Fatalf("op %d: Delete(%d)=%v, want %v", i, k, got, want)
			}
		case 7, 8:
			wantV, want := model[k]
			gotV, got := s.Contains(th, k)
			if got != want || (want && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d)=(%d,%v), want (%d,%v)", i, k, gotV, got, wantV, want)
			}
		default:
			lo := rng.Int63n(cfg.KeySpace)
			hi := lo + rng.Int63n(cfg.KeySpace/4+1)
			got := s.RangeQuery(th, lo, hi)
			checkRangeAgainstModel(t, i, model, lo, hi, got)
		}
	}
	got := s.RangeQuery(th, 0, cfg.KeySpace)
	checkRangeAgainstModel(t, cfg.Ops, model, 0, cfg.KeySpace, got)

	// The single-thread run quiesces here: one clock advance (the final
	// range query's) plus a full sweep must collapse every bundle to its
	// boundary entry.
	p.Clock().AdvanceOrAdopt()
	p.CollectGarbage()
}

// RunBundleValidated is RunValidated for a bundled structure: concurrent
// mixed workload, every range query checked by timestamp replay.
func RunBundleValidated(t *testing.T, build BundleBuilder, cfg StressCfg) {
	t.Helper()
	if cfg.Updaters == 0 {
		cfg.Updaters = 4
	}
	if cfg.RQThreads == 0 {
		cfg.RQThreads = 2
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 256
	}
	if cfg.RQRange == 0 {
		cfg.RQRange = 32
	}
	if cfg.Duration == 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	n := cfg.Updaters + cfg.RQThreads + 1
	checker := validate.NewChecker(n)
	p := bundle.New(bundle.Config{MaxThreads: n, Recorder: checker})
	s := build(p)

	pre := p.Register()
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	for inserted := int64(0); inserted < cfg.KeySpace/2; {
		k := rng.Int63n(cfg.KeySpace)
		if s.Insert(pre, k, k*10) {
			inserted++
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := p.Register()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := r.Int63n(cfg.KeySpace)
				if r.Intn(2) == 0 {
					s.Insert(th, k, r.Int63n(1<<30))
				} else {
					s.Delete(th, k)
				}
			}
		}(cfg.Seed + int64(w))
	}
	for w := 0; w < cfg.RQThreads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := p.Register()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				width := cfg.RQRange
				lo := int64(0)
				if width >= cfg.KeySpace {
					width = cfg.KeySpace
				} else {
					lo = r.Int63n(cfg.KeySpace - width)
				}
				res := s.RangeQuery(th, lo, lo+width-1)
				checker.AddRQ(th.ID(), th.LastRQTS(), lo, lo+width-1, res)
			}
		}(cfg.Seed + 1000 + int64(w))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()

	if checker.RQs() == 0 {
		t.Fatal("dstest: no range queries executed")
	}
	if err := checker.Check(); err != nil {
		t.Fatalf("validation failed after %d events / %d rqs: %v", checker.Events(), checker.RQs(), err)
	}
}
