package dstest_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq/internal/bundle"
	"ebrrq/internal/dstest"
	"ebrrq/internal/epoch"
	"ebrrq/internal/validate"
)

func TestBundleListSequential(t *testing.T) {
	dstest.RunBundleSequential(t, func(p *bundle.Provider) dstest.BundleSet {
		return bundle.NewList(p)
	}, dstest.SequentialCfg{Seed: 1})
}

func TestBundleSkipListSequential(t *testing.T) {
	dstest.RunBundleSequential(t, func(p *bundle.Provider) dstest.BundleSet {
		return bundle.NewSkipList(p)
	}, dstest.SequentialCfg{Seed: 2, KeySpace: 1000})
}

func TestBundleListValidated(t *testing.T) {
	dstest.RunBundleValidated(t, func(p *bundle.Provider) dstest.BundleSet {
		return bundle.NewList(p)
	}, dstest.StressCfg{Seed: 3})
}

func TestBundleSkipListValidated(t *testing.T) {
	dstest.RunBundleValidated(t, func(p *bundle.Provider) dstest.BundleSet {
		return bundle.NewSkipList(p)
	}, dstest.StressCfg{Seed: 4, KeySpace: 1024, RQRange: 128})
}

// bundleLenSet adds the bundle-length probe both structures export.
type bundleLenSet interface {
	dstest.BundleSet
	MaxBundleLen() int
}

// TestChaosBundleGCPinnedTS is the bundle technique's stall column: one
// thread pins an old timestamp (cross-shard style: epoch pin, then a
// private clock advance it replays on every query) while updaters hammer
// the structure. While the pin holds, bundles must retain every version
// the pinned queries dereference — all queries at the pinned timestamp
// must return the identical snapshot, and the replay checker must accept
// them. After the pin is dropped, one clock advance plus one full GC
// sweep must collapse every bundle back to its boundary entry.
func TestChaosBundleGCPinnedTS(t *testing.T) {
	cases := []struct {
		name  string
		build func(p *bundle.Provider) bundleLenSet
	}{
		{"lazylist", func(p *bundle.Provider) bundleLenSet { return bundle.NewList(p) }},
		{"skiplist", func(p *bundle.Provider) bundleLenSet { return bundle.NewSkipList(p) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const (
				updaters = 4
				keySpace = 128
			)
			n := updaters + 2
			checker := validate.NewChecker(n)
			p := bundle.New(bundle.Config{MaxThreads: n, Recorder: checker})
			s := tc.build(p)

			pre := p.Register()
			rng := rand.New(rand.NewSource(42))
			for inserted := 0; inserted < keySpace/2; {
				if s.Insert(pre, rng.Int63n(keySpace), 7) {
					inserted++
				}
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < updaters; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					th := p.Register()
					r := rand.New(rand.NewSource(seed))
					for !stop.Load() {
						k := r.Int63n(keySpace)
						if r.Intn(2) == 0 {
							s.Insert(th, k, r.Int63n(1<<30))
						} else {
							s.Delete(th, k)
						}
					}
				}(int64(100 + w))
			}

			// Pin: epoch first (publishes the version floor), then the
			// timestamp — the shard router's ordering.
			th := p.Register()
			th.PinEpoch()
			ts, _ := p.Clock().AdvanceOrAdopt()

			var first []epoch.KV
			deadline := time.Now().Add(150 * time.Millisecond)
			for rqs := 0; time.Now().Before(deadline) || rqs == 0; rqs++ {
				th.PinTimestamp(ts)
				res := s.RangeQuery(th, 0, keySpace)
				checker.AddRQ(th.ID(), ts, 0, keySpace, res)
				if first == nil {
					first = append([]epoch.KV(nil), res...)
					continue
				}
				if len(res) != len(first) {
					t.Fatalf("pinned RQ drifted: %d keys, first saw %d", len(res), len(first))
				}
				for i := range res {
					if res[i] != first[i] {
						t.Fatalf("pinned RQ drifted at %d: %v != %v", i, res[i], first[i])
					}
				}
			}

			stop.Store(true)
			wg.Wait()

			grown := s.MaxBundleLen()
			th.UnpinEpoch()
			// One advance moves the clock past every stamp issued during the
			// run, so the sweep's floor strictly dominates them.
			p.Clock().AdvanceOrAdopt()
			pruned := p.CollectGarbage()
			after := s.MaxBundleLen()
			t.Logf("max bundle length: %d pinned, %d after unpin+GC (%d entries pruned, %d live)",
				grown, after, pruned, p.EntriesLive())
			if after > 2 {
				t.Fatalf("bundle length not bounded after unpin+GC: %d", after)
			}

			if err := checker.Check(); err != nil {
				t.Fatalf("validation failed after %d events / %d rqs: %v",
					checker.Events(), checker.RQs(), err)
			}
		})
	}
}
