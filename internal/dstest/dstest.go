// Package dstest provides the shared correctness harness used by the tests
// of every data structure: sequential model checking against a reference
// map, and concurrent stress runs validated with the paper's
// timestamp-replay technique (package validate).
package dstest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/validate"
)

// Set is the common interface implemented by every data structure in
// internal/ds.
type Set interface {
	Insert(t *rqprov.Thread, key, value int64) bool
	Delete(t *rqprov.Thread, key int64) bool
	Contains(t *rqprov.Thread, key int64) (int64, bool)
	RangeQuery(t *rqprov.Thread, low, high int64) []epoch.KV
}

// Builder constructs a set attached to a provider.
type Builder func(p *rqprov.Provider) Set

// SequentialCfg parameterizes RunSequential.
type SequentialCfg struct {
	Ops      int   // number of random operations (default 20000)
	KeySpace int64 // keys drawn from [0, KeySpace) (default 200)
	Seed     int64
}

// RunSequential drives a single thread of random operations, checking every
// result against a reference map and periodically cross-checking range
// queries.
func RunSequential(t *testing.T, mode rqprov.Mode, limboSorted bool, build Builder, cfg SequentialCfg) {
	t.Helper()
	if cfg.Ops == 0 {
		cfg.Ops = 20000
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 200
	}
	p := rqprov.New(rqprov.Config{MaxThreads: 2, Mode: mode, LimboSorted: limboSorted, MaxAnnounce: 64})
	s := build(p)
	th := p.Register()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	for i := 0; i < cfg.Ops; i++ {
		k := rng.Int63n(cfg.KeySpace)
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			v := rng.Int63n(1 << 30)
			want := false
			if _, ok := model[k]; !ok {
				model[k] = v
				want = true
			}
			if got := s.Insert(th, k, v); got != want {
				t.Fatalf("op %d: Insert(%d)=%v, want %v", i, k, got, want)
			}
		case 4, 5, 6:
			_, want := model[k]
			delete(model, k)
			if got := s.Delete(th, k); got != want {
				t.Fatalf("op %d: Delete(%d)=%v, want %v", i, k, got, want)
			}
		case 7, 8:
			wantV, want := model[k]
			gotV, got := s.Contains(th, k)
			if got != want || (want && gotV != wantV) {
				t.Fatalf("op %d: Contains(%d)=(%d,%v), want (%d,%v)", i, k, gotV, got, wantV, want)
			}
		default:
			lo := rng.Int63n(cfg.KeySpace)
			hi := lo + rng.Int63n(cfg.KeySpace/4+1)
			got := s.RangeQuery(th, lo, hi)
			checkRangeAgainstModel(t, i, model, lo, hi, got)
		}
	}
	// Full iteration at the end.
	got := s.RangeQuery(th, 0, cfg.KeySpace)
	checkRangeAgainstModel(t, cfg.Ops, model, 0, cfg.KeySpace, got)
}

func checkRangeAgainstModel(t *testing.T, op int, model map[int64]int64, lo, hi int64, got []epoch.KV) {
	t.Helper()
	want := 0
	for k := range model {
		if lo <= k && k <= hi {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("op %d: RangeQuery(%d,%d) returned %d keys, want %d (got %v)", op, lo, hi, len(got), want, got)
	}
	for i, kv := range got {
		if i > 0 && kv.Key <= got[i-1].Key {
			t.Fatalf("op %d: RangeQuery(%d,%d) unsorted at index %d", op, lo, hi, i)
		}
		v, ok := model[kv.Key]
		if !ok || kv.Key < lo || kv.Key > hi {
			t.Fatalf("op %d: RangeQuery(%d,%d) returned spurious key %d", op, lo, hi, kv.Key)
		}
		if v != kv.Value {
			t.Fatalf("op %d: RangeQuery(%d,%d) key %d value %d, want %d", op, lo, hi, kv.Key, kv.Value, v)
		}
	}
}

// StressCfg parameterizes RunValidated.
type StressCfg struct {
	Updaters  int           // threads doing 50% insert / 50% delete (default 4)
	RQThreads int           // threads doing 100% range queries (default 2)
	KeySpace  int64         // default 256
	RQRange   int64         // range width (default 32; 0 ⇒ full key space)
	Duration  time.Duration // default 300ms
	Seed      int64
	Prefill   bool // prefill to ~KeySpace/2 before the run (default via PrefillOn)
}

// RunValidated runs a concurrent mixed workload and validates every range
// query with the timestamp-replay checker. Not applicable to ModeUnsafe
// (whose queries are deliberately non-linearizable).
func RunValidated(t *testing.T, mode rqprov.Mode, limboSorted bool, build Builder, cfg StressCfg) {
	t.Helper()
	if mode == rqprov.ModeUnsafe {
		t.Fatal("dstest: RunValidated requires a linearizable mode")
	}
	if cfg.Updaters == 0 {
		cfg.Updaters = 4
	}
	if cfg.RQThreads == 0 {
		cfg.RQThreads = 2
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 256
	}
	if cfg.RQRange == 0 {
		cfg.RQRange = 32
	}
	if cfg.Duration == 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	n := cfg.Updaters + cfg.RQThreads + 1
	checker := validate.NewChecker(n)
	p := rqprov.New(rqprov.Config{
		MaxThreads:  n,
		Mode:        mode,
		LimboSorted: limboSorted,
		MaxAnnounce: 64, // room for B-slack group compressions
		Recorder:    checker,
	})
	s := build(p)

	// Prefill.
	pre := p.Register()
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	for inserted := int64(0); inserted < cfg.KeySpace/2; {
		k := rng.Int63n(cfg.KeySpace)
		if s.Insert(pre, k, k*10) {
			inserted++
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := p.Register()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				k := r.Int63n(cfg.KeySpace)
				if r.Intn(2) == 0 {
					s.Insert(th, k, r.Int63n(1<<30))
				} else {
					s.Delete(th, k)
				}
			}
		}(cfg.Seed + int64(w))
	}
	for w := 0; w < cfg.RQThreads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th := p.Register()
			r := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				width := cfg.RQRange
				lo := int64(0)
				if width >= cfg.KeySpace {
					width = cfg.KeySpace
				} else {
					lo = r.Int63n(cfg.KeySpace - width)
				}
				res := s.RangeQuery(th, lo, lo+width-1)
				checker.AddRQ(th.ID(), th.LastRQTS(), lo, lo+width-1, res)
			}
		}(cfg.Seed + 1000 + int64(w))
	}
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()

	if checker.RQs() == 0 {
		t.Fatal("dstest: no range queries executed")
	}
	if err := checker.Check(); err != nil {
		t.Fatalf("validation failed after %d events / %d rqs: %v", checker.Events(), checker.RQs(), err)
	}
}

// Modes lists the three linearizable provider modes for table-driven tests.
var Modes = []rqprov.Mode{rqprov.ModeLock, rqprov.ModeHTM, rqprov.ModeLockFree}

// AllModes additionally includes ModeUnsafe (sequential tests only).
var AllModes = []rqprov.Mode{rqprov.ModeUnsafe, rqprov.ModeLock, rqprov.ModeHTM, rqprov.ModeLockFree}
