package dstest_test

import (
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/dstest"
	"ebrrq/internal/fault"
	"ebrrq/internal/validate"
)

func shardedDuration() time.Duration {
	if testing.Short() {
		return 100 * time.Millisecond
	}
	return 300 * time.Millisecond
}

// TestShardedValidated runs the timestamp-replay validated stress workload
// against the sharded router for every linearizable technique, on both a
// skiplist and a lock-free list, at 2 and 4 shards.
func TestShardedValidated(t *testing.T) {
	type cell struct {
		ds     ebrrq.DataStructure
		tech   ebrrq.Mode
		tq     ebrrq.Technique // nil = EBR
		shards int
	}
	cells := []cell{
		{ebrrq.SkipList, ebrrq.Lock, nil, 2},
		{ebrrq.SkipList, ebrrq.HTM, nil, 2},
		{ebrrq.SkipList, ebrrq.LockFree, nil, 2},
		{ebrrq.SkipList, ebrrq.LockFree, nil, 4},
		{ebrrq.LFList, ebrrq.Lock, nil, 2},
		{ebrrq.LFList, ebrrq.LockFree, nil, 2},
		{ebrrq.LazyList, ebrrq.Lock, ebrrq.Bundle, 2},
		{ebrrq.SkipList, ebrrq.Lock, ebrrq.Bundle, 2},
		{ebrrq.SkipList, ebrrq.Lock, ebrrq.Bundle, 4},
	}
	for _, c := range cells {
		c := c
		name := c.ds.String() + "/" + c.tech.String() + "/s" + string(rune('0'+c.shards))
		if c.tq != nil {
			name += "/" + c.tq.String()
		}
		t.Run(name, func(t *testing.T) {
			runShardedValidated(t, c.ds, c.tech, c.tq, c.shards, dstest.StressCfg{
				Duration: shardedDuration(),
				Seed:     int64(c.shards) * 7919,
			})
		})
	}
}

// TestShardedStallCrossShardRQ wedges an update on shard 0 after it has
// announced itself but before it linearizes (failpoint
// "rqprov.update.announced"), then issues a range query spanning both shards.
// In ModeLock the query's announcement sweep on shard 0 must block until the
// update resolves — so the RQ must NOT complete while the update is wedged —
// and once released, the whole history must replay-validate at the shared
// clock's timestamps.
func TestShardedStallCrossShardRQ(t *testing.T) {
	if !fault.Enabled {
		t.Skip("stall tests require -tags failpoints")
	}
	const n = 3 // prefill/main + updater + RQ thread
	checker := validate.NewChecker(2 * n)
	s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.Lock, n, 2,
		ebrrq.ShardedOptions{Recorder: checker, KeyMin: 0, KeyMax: 99})
	if err != nil {
		t.Fatal(err)
	}
	main := s.NewThread()
	for k := int64(0); k < 100; k += 10 {
		main.Insert(k, k*10)
	}

	fault.Reset()
	defer fault.Reset()
	act, release := fault.Stall()
	released := false
	defer func() {
		if !released {
			release()
		}
	}()
	fault.Arm("rqprov.update.announced", act.Once())

	// Wedge a delete on shard 0 ([0, 49]) mid-announce.
	upd := s.NewThread()
	updDone := make(chan bool, 1)
	go func() { updDone <- upd.Delete(20) }()
	deadline := time.Now().Add(5 * time.Second)
	for fault.Fired("rqprov.update.announced") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("updater never reached the announced failpoint")
		}
		time.Sleep(time.Millisecond)
	}

	// A cross-shard RQ must block on shard 0's unresolved announcement.
	rq := s.NewThread()
	rqDone := make(chan []ebrrq.KV, 1)
	go func() { rqDone <- rq.RangeQuery(0, 99) }()
	select {
	case <-rqDone:
		t.Fatal("cross-shard RQ completed while a shard-0 update was wedged mid-announce")
	case <-time.After(50 * time.Millisecond):
	}

	release()
	released = true
	var res []ebrrq.KV
	select {
	case res = <-rqDone:
	case <-time.After(5 * time.Second):
		t.Fatal("cross-shard RQ did not complete after release")
	}
	if ok := <-updDone; !ok {
		t.Fatal("wedged Delete(20) reported failure on a present key")
	}
	checker.AddRQ(rq.ShardThread(0).ID(), rq.LastRQTimestamp(), 0, 99, res)
	upd.Close()
	rq.Close()
	main.Close()
	if err := checker.Check(); err != nil {
		t.Fatalf("replay validation after stall: %v", err)
	}
}

// TestShardedStallLockFreeBoundedWaitRQ is the lock-free twin: the update is
// wedged after publishing its DCSS descriptor ("rqprov.update.desc"). A
// cross-shard RQ first advances the shared clock, which dooms the wedged
// descriptor (its expected timestamp is stale, so helping cannot linearize
// it — only the updater's retry can), so with the default infinite wait
// budget the RQ would block exactly like the lock-mode test. With a positive
// WaitBudget the RQ must instead resolve the announcement conservatively —
// include the announced key and complete WITHOUT the updater ever resuming —
// and the combined history must still replay-validate: the delete retries
// after release at a timestamp >= the RQ's, so including the key is the
// linearizable outcome.
func TestShardedStallLockFreeBoundedWaitRQ(t *testing.T) {
	if !fault.Enabled {
		t.Skip("stall tests require -tags failpoints")
	}
	const n = 3
	checker := validate.NewChecker(2 * n)
	s, err := ebrrq.NewShardedWithOptions(ebrrq.SkipList, ebrrq.LockFree, n, 2,
		ebrrq.ShardedOptions{Recorder: checker, KeyMin: 0, KeyMax: 99, WaitBudget: 200})
	if err != nil {
		t.Fatal(err)
	}
	main := s.NewThread()
	for k := int64(0); k < 100; k += 10 {
		main.Insert(k, k*10)
	}

	fault.Reset()
	defer fault.Reset()
	act, release := fault.Stall()
	released := false
	defer func() {
		if !released {
			release()
		}
	}()
	fault.Arm("rqprov.update.desc", act.Once())

	upd := s.NewThread()
	updDone := make(chan bool, 1)
	go func() { updDone <- upd.Delete(20) }()
	deadline := time.Now().Add(5 * time.Second)
	for fault.Fired("rqprov.update.desc") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("updater never reached the descriptor failpoint")
		}
		time.Sleep(time.Millisecond)
	}

	// The RQ must complete WITHOUT release: the wait budget resolves the
	// wedged announcement conservatively.
	rq := s.NewThread()
	rqDone := make(chan []ebrrq.KV, 1)
	go func() { rqDone <- rq.RangeQuery(0, 99) }()
	var res []ebrrq.KV
	select {
	case res = <-rqDone:
	case <-time.After(5 * time.Second):
		t.Fatal("lock-free cross-shard RQ did not complete within its wait budget")
	}
	found := false
	for _, kv := range res {
		found = found || kv.Key == 20
	}
	if !found {
		t.Fatal("bounded-wait RQ dropped the announced key 20; conservative resolution must include it")
	}

	release()
	released = true
	if ok := <-updDone; !ok {
		t.Fatal("wedged Delete(20) reported failure on a present key")
	}
	if _, still := main.Contains(20); still {
		t.Fatal("key 20 still present after its delete completed")
	}
	checker.AddRQ(rq.ShardThread(0).ID(), rq.LastRQTimestamp(), 0, 99, res)
	upd.Close()
	rq.Close()
	main.Close()
	if err := checker.Check(); err != nil {
		t.Fatalf("replay validation after bounded-wait stall: %v", err)
	}
}
