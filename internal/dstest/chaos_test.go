package dstest_test

import (
	"testing"
	"time"

	"bytes"
	"os"
	"strings"

	"ebrrq"
	"ebrrq/internal/ds/abtree"
	"ebrrq/internal/ds/citrus"
	"ebrrq/internal/ds/lazylist"
	"ebrrq/internal/ds/lfbst"
	"ebrrq/internal/ds/lflist"
	"ebrrq/internal/ds/skiplist"
	"ebrrq/internal/dstest"
	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/obs"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
	"ebrrq/internal/validate"
)

// chaosDS describes one structure in the chaos matrices.
type chaosDS struct {
	name        string
	limboSorted bool
	build       dstest.Builder
	// lockFreeUpdates: updates take no locks, so a panic injected before the
	// linearizing CAS cannot strand a held lock and wedge other threads.
	lockFreeUpdates bool
	// rqHoldsRCU: range queries run inside an RCU read-side section
	// (Citrus); a panic mid-RQ would strand the read lock and block every
	// writer's synchronize, so RQ-panic chaos must skip it.
	rqHoldsRCU bool
}

var chaosStructures = []chaosDS{
	{name: "lflist", limboSorted: false, lockFreeUpdates: true,
		build: func(p *rqprov.Provider) dstest.Set { return lflist.New(p) }},
	{name: "lazylist", limboSorted: true,
		build: func(p *rqprov.Provider) dstest.Set { return lazylist.New(p) }},
	{name: "skiplist", limboSorted: true,
		build: func(p *rqprov.Provider) dstest.Set { return skiplist.New(p) }},
	{name: "lfbst", limboSorted: true, lockFreeUpdates: true,
		build: func(p *rqprov.Provider) dstest.Set { return lfbst.New(p) }},
	{name: "citrus", limboSorted: true, rqHoldsRCU: true,
		build: func(p *rqprov.Provider) dstest.Set { return citrus.New(p) }},
	{name: "abtree", limboSorted: true,
		build: func(p *rqprov.Provider) dstest.Set { return abtree.New(p) }},
}

func chaosModes() []rqprov.Mode {
	if testing.Short() {
		return []rqprov.Mode{rqprov.ModeLock, rqprov.ModeLockFree}
	}
	return dstest.Modes
}

func chaosDuration() time.Duration {
	if testing.Short() {
		return 150 * time.Millisecond
	}
	return 300 * time.Millisecond
}

// TestChaosDelay stretches the critical windows of every structure × mode:
// operations pause inside the EBR announcement, the limbo-bag rotation, and
// the RQ limbo sweep. Delays hold no extra state, so every structure —
// lock-based ones included — must come through with validation clean.
func TestChaosDelay(t *testing.T) {
	for _, ds := range chaosStructures {
		for _, mode := range chaosModes() {
			t.Run(ds.name+"/"+mode.String(), func(t *testing.T) {
				dstest.RunChaos(t, mode, ds.limboSorted, ds.build, dstest.ChaosCfg{
					Duration: chaosDuration(),
					Seed:     42,
					Faults: map[string]fault.Action{
						"epoch.startop.announced": fault.Delay(100 * time.Microsecond).After(50).Times(40),
						"epoch.rotate.mid":        fault.Delay(200 * time.Microsecond).Times(20),
						"rqprov.rq.limbosweep":    fault.Delay(100 * time.Microsecond).After(5).Times(40),
					},
				})
			})
		}
	}
}

// TestChaosPanicUpdate crashes updaters mid-update. Panics are injected only
// at points where no lock is held and the linearizing CAS has not happened —
// inside StartOp (after the epoch announcement) and after the deletion
// announcements — so they model a thread dying with provider state dangling
// but the structure untouched. Restricted to the structures with lock-free
// update paths; a lock-based structure would strand a held lock.
func TestChaosPanicUpdate(t *testing.T) {
	for _, ds := range chaosStructures {
		if !ds.lockFreeUpdates {
			continue
		}
		for _, mode := range chaosModes() {
			t.Run(ds.name+"/"+mode.String(), func(t *testing.T) {
				stats := dstest.RunChaos(t, mode, ds.limboSorted, ds.build, dstest.ChaosCfg{
					Duration: chaosDuration(),
					Seed:     43,
					Faults: map[string]fault.Action{
						"epoch.startop.announced": fault.Panic("crash at op start").After(400).Times(3),
						"rqprov.update.announced": fault.Panic("crash before CAS").After(150).Times(3),
					},
				})
				if stats.Crashes == 0 {
					t.Fatal("no injected crash was recovered")
				}
			})
		}
	}
}

// TestChaosPanicRQ crashes range-query threads at the RQ failpoints (after
// linearization, and mid-sweep). RQ paths hold no locks in these structures;
// Citrus is excluded because its queries run inside an RCU read-side
// section (see chaosDS.rqHoldsRCU).
func TestChaosPanicRQ(t *testing.T) {
	for _, ds := range chaosStructures {
		if ds.rqHoldsRCU {
			continue
		}
		for _, mode := range chaosModes() {
			t.Run(ds.name+"/"+mode.String(), func(t *testing.T) {
				stats := dstest.RunChaos(t, mode, ds.limboSorted, ds.build, dstest.ChaosCfg{
					Duration: chaosDuration(),
					Seed:     44,
					Faults: map[string]fault.Action{
						"rqprov.rq.started":  fault.Panic("crash after RQ linearized").After(30).Times(2),
						"rqprov.rq.annsweep": fault.Panic("crash mid announcement sweep").After(60).Times(2),
					},
				})
				if stats.Crashes == 0 {
					t.Fatal("no injected crash was recovered")
				}
			})
		}
	}
}

// TestChaosCombineDelay is the combiner-enabled column of the chaos matrix:
// the same mixed workload with every update routed through the aggregating
// funnel, and delays stretching both funnel windows — the Pending gap after
// publication (so real multi-op batches form and follower withdrawals race
// claims) and the per-op application step inside the shared-clock window (so
// RQ drains collide with long combiner holds). Delays strand no state, so
// every structure must validate clean.
func TestChaosCombineDelay(t *testing.T) {
	for _, ds := range chaosStructures {
		for _, mode := range chaosModes() {
			t.Run(ds.name+"/"+mode.String(), func(t *testing.T) {
				dstest.RunChaos(t, mode, ds.limboSorted, ds.build, dstest.ChaosCfg{
					Duration: chaosDuration(),
					Seed:     45,
					Combine:  true,
					Faults: map[string]fault.Action{
						"rqprov.combine.published": fault.Delay(50 * time.Microsecond).After(20).Times(60),
						"rqprov.combine.op":        fault.Delay(100 * time.Microsecond).After(20).Times(40),
					},
				})
			})
		}
	}
}

// TestChaosCombineLeaderCrash crashes combiners mid-batch under the full
// mixed workload: the leader dies at the per-op failpoint inside the window,
// claimed followers surface epoch.ErrNeutralized and revive as crashes, and
// afterwards the run must still validate, un-wedge, and drain limbo — the
// funnel's crash contract holding under load, not just in the deterministic
// unit test. Restricted to structures with lock-free update paths: a panic
// unwinding a follower blocked inside UpdateCAS would strand any
// structure-level locks it holds (same restriction as TestChaosPanicUpdate).
func TestChaosCombineLeaderCrash(t *testing.T) {
	for _, ds := range chaosStructures {
		if !ds.lockFreeUpdates {
			continue
		}
		for _, mode := range chaosModes() {
			t.Run(ds.name+"/"+mode.String(), func(t *testing.T) {
				stats := dstest.RunChaos(t, mode, ds.limboSorted, ds.build, dstest.ChaosCfg{
					Duration: chaosDuration(),
					Seed:     46,
					Combine:  true,
					Faults: map[string]fault.Action{
						"rqprov.combine.op": fault.Panic("combiner crash mid-batch").After(200).Times(3),
					},
				})
				if stats.Crashes == 0 {
					t.Fatal("no injected combiner crash was recovered")
				}
			})
		}
	}
}

// TestChaosStallMidUpdate is the acceptance scenario for the stall-tolerant
// stack: a thread is force-stalled mid-update (inside the provider, after
// the epoch announcement), long enough for the watchdog to flag it and for
// limbo to grow visibly above baseline; a supervisor then deregisters the
// stalled thread, after which the epoch resumes advancing, reclamation
// drains limbo back to baseline (asserted through the observability
// snapshot), the slot is reused, and every range query validates.
func TestChaosStallMidUpdate(t *testing.T) {
	if !fault.Enabled {
		t.Skip("chaos runs require -tags failpoints")
	}
	const nThreads = 3
	checker := validate.NewChecker(nThreads)
	p := rqprov.New(rqprov.Config{
		MaxThreads: nThreads, Mode: rqprov.ModeLockFree, Recorder: checker,
	})
	s := lflist.New(p)
	reg := obs.NewRegistry(nThreads)
	p.EnableMetrics(reg)
	wd := p.Domain().StartWatchdog(epoch.WatchdogConfig{
		Interval:   time.Millisecond,
		StallAfter: 30 * time.Millisecond,
	})
	defer wd.Stop()
	hc := p.Health()

	main := p.Register()
	for k := int64(0); k < 64; k++ {
		s.Insert(main, k, k*10)
	}
	baseline := reg.Snapshot().Gauge("ebrrq_limbo_len")

	// Arm the stall and wedge a thread inside its next update, after the
	// epoch announcement — the classic DEBRA stalled-reclaimer scenario.
	act, release := fault.Stall()
	fault.Reset()
	defer fault.Reset()
	fault.Arm("rqprov.update.announced", act.Once())
	stallerDone := make(chan struct{})
	staller := p.Register()
	go func() {
		defer close(stallerDone)
		// The supervisor deregisters this thread while it is wedged, so on
		// resume its first EBR interaction panics; that is the documented
		// contract for a force-deregistered thread.
		defer func() { _ = recover() }()
		s.Insert(staller, 1000, 1)
	}()

	// The watchdog must flag the wedged thread.
	deadline := time.Now().Add(5 * time.Second)
	for len(wd.Stalls()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never flagged the stalled thread")
		}
		time.Sleep(time.Millisecond)
	}
	if err := hc.Warn(); err == nil {
		t.Fatal("health check reported no warning with a flagged stall")
	}

	// While the thread is wedged the epoch is pinned: churn hard, observe
	// at most the single advance its announcement permits, and watch limbo
	// grow past baseline.
	churn := func(n int) {
		for i := int64(0); i < int64(n); i++ {
			s.Delete(main, 2000+i)
			s.Insert(main, 2000+i, i)
			s.Delete(main, 2000+i)
		}
	}
	churn(256)
	adv := p.Domain().Advances()
	churn(512)
	if got := p.Domain().Advances() - adv; got > 1 {
		t.Fatalf("epoch advanced %d times under a stalled thread, want <= 1", got)
	}
	grown := reg.Snapshot().Gauge("ebrrq_limbo_len")
	if grown <= baseline {
		t.Fatalf("limbo did not grow under the stall: baseline %d, now %d", baseline, grown)
	}

	// Total stall >= 100ms (the acceptance bar), then recover: deregister
	// the wedged thread, then release it. Deregister-then-release on the
	// same goroutine gives the resumed thread a happens-before view of its
	// own death.
	time.Sleep(100 * time.Millisecond)
	staller.Deregister()
	release()
	<-stallerDone

	// Epoch advance resumes and reclamation returns limbo to baseline.
	adv = p.Domain().Advances()
	churn(512)
	if p.Domain().Advances() == adv {
		t.Fatal("epoch did not resume advancing after deregistration")
	}
	for i := 0; i < 64*32; i++ {
		main.StartOp()
		main.EndOp()
	}
	if got := reg.Snapshot().Gauge("ebrrq_limbo_len"); got > baseline {
		t.Fatalf("limbo did not return to baseline after recovery: baseline %d, now %d", baseline, got)
	}
	for len(wd.Stalls()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog still reports a stall after recovery")
		}
		time.Sleep(time.Millisecond)
	}
	if err := hc.Warn(); err != nil {
		t.Fatalf("health check still warning after recovery: %v", err)
	}
	if err := hc.Check(); err != nil {
		t.Fatalf("health check still failing after recovery: %v", err)
	}

	// The slot is reusable, and the whole history validates.
	reborn, err := p.TryRegister()
	if err != nil {
		t.Fatalf("TryRegister after recovery: %v", err)
	}
	if !s.Insert(reborn, 1001, 1) {
		t.Fatal("insert through the reused slot failed")
	}
	rq := s.RangeQuery(main, 0, 4000)
	checker.AddRQ(main.ID(), main.LastRQTS(), 0, 4000, rq)
	if err := checker.Check(); err != nil {
		t.Fatalf("validation failed after stall recovery: %v", err)
	}
}

// TestChaosStallTraceDump is the flight-recorder acceptance scenario: a
// thread is force-stalled mid-insert through the public ebrrq API with the
// recorder attached; the watchdog flags the stall and the harness writes a
// dump, which the rqtrace analyzer must render into a report naming the
// stalled thread and the operation it is wedged inside.
func TestChaosStallTraceDump(t *testing.T) {
	if !fault.Enabled {
		t.Skip("chaos runs require -tags failpoints")
	}
	rec := trace.NewRecorder(trace.Config{EventsPerRing: 256})
	set, err := ebrrq.NewWithOptions(ebrrq.LFList, ebrrq.LockFree, 3,
		ebrrq.Options{Trace: rec})
	if err != nil {
		t.Fatal(err)
	}
	main := set.NewThread()
	defer main.Close()
	for k := int64(0); k < 64; k++ {
		main.Insert(k, k*10)
	}

	dir := dstest.TraceDumpDir(t)
	dumped := make(chan string, 1)
	wd := set.Domain().StartWatchdog(epoch.WatchdogConfig{
		Interval:   time.Millisecond,
		StallAfter: 20 * time.Millisecond,
		OnStall: func([]epoch.Stall) {
			dumped <- dstest.WriteTraceDump(t, rec, dir, "stall")
		},
	})
	defer wd.Stop()

	// Wedge a thread inside its next insert, after the epoch announcement.
	act, release := fault.Stall()
	fault.Reset()
	defer fault.Reset()
	fault.Arm("rqprov.update.announced", act.Once())
	staller := set.NewThread()
	stallerDone := make(chan struct{})
	go func() {
		defer close(stallerDone)
		staller.Insert(1000, 1)
	}()

	var path string
	select {
	case path = <-dumped:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never flagged the stalled thread")
	}
	release()
	<-stallerDone
	staller.Close()
	if path == "" {
		t.Fatal("stall dump was not written")
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := trace.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("stall dump does not parse: %v", err)
	}
	rep := trace.BuildReport(snap)
	// main registered first (slot 0), the staller second (slot 1).
	if len(rep.Stalls) == 0 || rep.Stalls[0].ThreadID != 1 {
		t.Fatalf("report stalls = %+v, want thread 1 flagged", rep.Stalls)
	}
	found := false
	for _, op := range rep.InFlight {
		if op.Op == "insert" && op.Ring == "t1" && op.Arg == 1000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("report in-flight ops = %+v, want the wedged insert of key 1000 on t1",
			rep.InFlight)
	}
	// The rendered report (what cmd/rqtrace prints) must name the culprit.
	var buf bytes.Buffer
	rep.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"STALL: thread 1", "IN-FLIGHT: insert on t1 (arg 1000)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}
