package dstest

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/trace"
	"ebrrq/internal/validate"
)

// MemBoundCfg parameterizes RunChaosMemBound.
type MemBoundCfg struct {
	Updaters  int           // threads doing 50% insert / 50% delete (default 8)
	RQThreads int           // threads doing 100% range queries (default 2)
	KeySpace  int64         // default 256
	RQRange   int64         // default 32
	Duration  time.Duration // length of the stalled phase (default 10s)
	Seed      int64
	// SoftLimit/HardLimit are the domain limbo budgets (defaults 512/2048
	// nodes). The monitor asserts BoundedNodes never exceeds HardLimit plus
	// the admission overshoot: Updaters concurrently admitted operations may
	// each retire up to MaxOpRetires nodes after passing the gate.
	SoftLimit, HardLimit int64
	// MaxOpRetires bounds how many nodes one update of the structure under
	// test can retire (default 4; lists and BSTs retire at most 2).
	MaxOpRetires int64
	// StallSite is the failpoint the victim wedges at (default
	// "rqprov.update.announced": epoch announced, deletion announced, the
	// linearizing CAS not yet run — the worst case for limbo visibility).
	StallSite string
	// StallAfter is the fault's .After() hit count, so the stall lands after
	// the workload has warmed up (default 64).
	StallAfter int
}

// MemBoundStats reports what a memory-bound chaos run observed.
type MemBoundStats struct {
	VictimID        int   // thread the watchdog neutralized first
	Neutralizations int   // total, including collateral ones
	Backpressured   int64 // updates refused by AdmitUpdate
	Admitted        int64 // updates that passed the gate
	PeakBounded     int64 // max BoundedNodes the monitor sampled
	QuarantinePeak  int64 // max QuarantinedNodes the monitor sampled
	TraceDump       string
}

// RunChaosMemBound is the adversarial-stall memory proof: one updater wedges
// permanently at StallSite mid-operation while the remaining updaters hammer
// the structure through the AdmitUpdate backpressure gate. The run asserts,
// on every monitor sample, that the domain's unreclaimed footprint
// (limbo + quarantine) never exceeds the hard limit plus the bounded
// admission overshoot — i.e. that a single dead thread cannot make memory
// grow without bound. It further asserts the watchdog ladder escalates to
// neutralizing the staller, that the quarantine holds (nothing is handed to
// the free function) until the victim resumes and acknowledges, that updates
// are admitted again after the acknowledgement, and that the usual chaos
// postconditions hold: range queries replay against the recorded history,
// the epoch advances, and draining reclaims everything.
//
// Runs are skipped in production builds (no failpoints compiled in).
func RunChaosMemBound(t *testing.T, mode rqprov.Mode, limboSorted bool, build Builder, cfg MemBoundCfg) MemBoundStats {
	t.Helper()
	if !fault.Enabled {
		t.Skip("chaos runs require -tags failpoints")
	}
	if mode == rqprov.ModeUnsafe {
		t.Fatal("dstest: RunChaosMemBound requires a linearizable mode")
	}
	if cfg.Updaters == 0 {
		cfg.Updaters = 8
	}
	if cfg.RQThreads == 0 {
		cfg.RQThreads = 2
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 256
	}
	if cfg.RQRange == 0 {
		cfg.RQRange = 32
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SoftLimit == 0 {
		cfg.SoftLimit = 512
	}
	if cfg.HardLimit == 0 {
		cfg.HardLimit = 2048
	}
	if cfg.MaxOpRetires == 0 {
		cfg.MaxOpRetires = 4
	}
	if cfg.StallSite == "" {
		cfg.StallSite = "rqprov.update.announced"
	}
	if cfg.StallAfter == 0 {
		cfg.StallAfter = 64
	}

	n := cfg.Updaters + cfg.RQThreads + 1
	checker := validate.NewChecker(n)
	rec := trace.NewRecorder(trace.Config{EventsPerRing: 1024})
	p := rqprov.New(rqprov.Config{
		MaxThreads:  n,
		Mode:        mode,
		LimboSorted: limboSorted,
		MaxAnnounce: 64,
		Recorder:    checker,
		Trace:       rec,
		// The wedged victim keeps its deletion announcement up for the whole
		// stalled phase; without wait budgets every overlapping range query
		// would block on its unpublished dtime until the release.
		SpinBudget: 64,
		WaitBudget: 2048,
		// Backpressure config under test: fail fast at the hard limit.
		LimboSoftLimit: cfg.SoftLimit,
		LimboHardLimit: cfg.HardLimit,
	})
	s := build(p)
	dom := p.Domain()

	stats := MemBoundStats{VictimID: -1}
	var dumpOnce sync.Once
	var dumpMu sync.Mutex
	var dumpPath string
	dump := func(reason string) {
		dumpOnce.Do(func() {
			pth := WriteTraceDump(t, rec, TraceDumpDir(t), reason)
			dumpMu.Lock()
			dumpPath = pth
			dumpMu.Unlock()
		})
	}

	// Prefill before any fault is armed.
	spare := p.Register()
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	for inserted := int64(0); inserted < cfg.KeySpace/2; {
		k := rng.Int63n(cfg.KeySpace)
		if s.Insert(spare, k, k*10) {
			inserted++
		}
	}

	fault.Reset()
	act, release := fault.Stall()
	fault.Arm(cfg.StallSite, act.After(cfg.StallAfter).Once())
	released := false
	defer func() {
		if !released {
			release() // never leave the victim goroutine parked on failure
		}
		fault.Reset()
	}()

	// The full escalation ladder, aggressively tuned: a stall is the point of
	// this run, so OnStall does not dump; neutralization is recorded.
	var neutralizations atomic.Int64
	var victimID atomic.Int64
	victimID.Store(-1)
	wd := dom.StartWatchdog(epoch.WatchdogConfig{
		Interval:      2 * time.Millisecond,
		StallAfter:    10 * time.Millisecond,
		EscalateAfter: 20 * time.Millisecond,
		Neutralize:    true,
		OnNeutralize: func(st epoch.Stall) {
			neutralizations.Add(1)
			victimID.CompareAndSwap(-1, int64(st.ThreadID))
		},
	})
	defer wd.Stop()

	// The hard bound under test. Admission is checked before the operation,
	// so the instantaneous footprint can overshoot by at most one operation's
	// retires per concurrently admitted updater.
	bound := cfg.HardLimit + int64(cfg.Updaters+1)*cfg.MaxOpRetires
	var peak, quarPeak, violation atomic.Int64
	monitorStop := make(chan struct{})
	var monitorWG sync.WaitGroup
	monitorWG.Add(1)
	defer func() {
		close(monitorStop)
		monitorWG.Wait()
	}()
	go func() {
		defer monitorWG.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-monitorStop:
				return
			case <-tick.C:
			}
			b := dom.BoundedNodes()
			if b > peak.Load() {
				peak.Store(b)
			}
			if q := dom.QuarantinedNodes(); q > quarPeak.Load() {
				quarPeak.Store(q)
			}
			if b > bound && violation.CompareAndSwap(0, b) {
				dump("membound")
			}
		}
	}()

	var backpressured, admitted atomic.Int64
	// runOp executes one operation; injected panics and neutralization aborts
	// both count as crashes the revive loop recovers from.
	runOp := func(th *rqprov.Thread, op func(th *rqprov.Thread)) (crashed bool) {
		defer func() {
			if r := recover(); r != nil {
				err, isErr := r.(error)
				if _, isFault := r.(fault.PanicError); !isFault &&
					!(isErr && errors.Is(err, epoch.ErrNeutralized)) {
					panic(r)
				}
				th.Deregister()
				crashed = true
			}
		}()
		op(th)
		return false
	}
	revive := func(stop *atomic.Bool, op func(th *rqprov.Thread)) {
		th := p.Register()
		for !stop.Load() {
			if runOp(th, op) {
				for {
					nt, err := p.TryRegister()
					if err == nil {
						th = nt
						break
					}
					runtime.Gosched()
				}
			}
		}
		th.Deregister()
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Updaters; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			revive(&stop, func(th *rqprov.Thread) {
				if err := th.AdmitUpdate(); err != nil {
					if !errors.Is(err, rqprov.ErrMemoryPressure) {
						t.Error(err)
					}
					backpressured.Add(1)
					runtime.Gosched()
					return
				}
				admitted.Add(1)
				k := r.Int63n(cfg.KeySpace)
				if r.Intn(2) == 0 {
					s.Insert(th, k, r.Int63n(1<<30))
				} else {
					s.Delete(th, k)
				}
			})
		}(cfg.Seed + int64(w))
	}
	for w := 0; w < cfg.RQThreads; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			revive(&stop, func(th *rqprov.Thread) {
				width := cfg.RQRange
				lo := int64(0)
				if width >= cfg.KeySpace {
					width = cfg.KeySpace
				} else {
					lo = r.Int63n(cfg.KeySpace - width)
				}
				res := s.RangeQuery(th, lo, lo+width-1)
				checker.AddRQ(th.ID(), th.LastRQTS(), lo, lo+width-1, res)
			})
		}(cfg.Seed + 1000 + int64(w))
	}

	start := time.Now()
	// Phase 1: wait for the ladder to escalate all the way to neutralizing
	// the parked victim. Collateral neutralizations of busy threads are
	// possible with a watchdog tuned this hot, but they acknowledge at their
	// next checkpoint within moments — only the victim's stays unacked, so
	// "unacknowledged continuously for 100ms" identifies it.
	phase1 := time.Now().Add(15 * time.Second)
	for sticky := 0; sticky < 100; {
		if time.Now().After(phase1) {
			dump("no-neutralize")
			stop.Store(true)
			release()
			released = true
			wg.Wait()
			t.Fatal("chaos-mem: watchdog never escalated to neutralizing the staller")
		}
		time.Sleep(time.Millisecond)
		if dom.UnackedNeutralizations() >= 1 {
			sticky++
		} else {
			sticky = 0
		}
	}

	// Phase 2: hold the stall for the rest of the window; the monitor keeps
	// asserting the bound the whole time.
	if remain := cfg.Duration - time.Since(start); remain > 0 {
		time.Sleep(remain)
	}

	// While the victim is parked its neutralization must stay unacknowledged
	// and the quarantine must hold: reclamation is diverted, never freed.
	if got := dom.UnackedNeutralizations(); got < 1 {
		t.Errorf("chaos-mem: unacked neutralizations = %d before release, want >= 1", got)
	}
	preReleaseQuar := dom.QuarantinedNodes()
	if preReleaseQuar == 0 {
		t.Error("chaos-mem: nothing quarantined while the neutralized victim was parked")
	}

	// Phase 3: release the victim. It resumes mid-operation, hits a poison
	// checkpoint before it can linearize, aborts, acknowledges on unwind, and
	// is replaced through the usual revive path; the acknowledgement drains
	// the quarantine to the free function.
	release()
	released = true
	ackDeadline := time.Now().Add(5 * time.Second)
	for dom.UnackedNeutralizations() != 0 {
		if time.Now().After(ackDeadline) {
			dump("no-ack")
			stop.Store(true)
			wg.Wait()
			t.Fatal("chaos-mem: victim never acknowledged its neutralization after release")
		}
		time.Sleep(time.Millisecond)
	}
	for dom.QuarantinedNodes() != 0 {
		if time.Now().After(ackDeadline) {
			dump("quarantine-stuck")
			stop.Store(true)
			wg.Wait()
			t.Fatal("chaos-mem: quarantine did not drain after the acknowledgement")
		}
		time.Sleep(time.Millisecond)
	}
	// Recovery: with the garbage reclaimed the gate must open again.
	admittedAtRelease := admitted.Load()
	for admitted.Load() == admittedAtRelease {
		if time.Now().After(ackDeadline) {
			dump("gate-stuck")
			stop.Store(true)
			wg.Wait()
			t.Fatal("chaos-mem: no update was admitted after the quarantine drained")
		}
		time.Sleep(time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()

	stats.Neutralizations = int(neutralizations.Load())
	stats.VictimID = int(victimID.Load())
	stats.Backpressured = backpressured.Load()
	stats.Admitted = admitted.Load()
	stats.PeakBounded = peak.Load()
	stats.QuarantinePeak = quarPeak.Load()

	if v := violation.Load(); v != 0 {
		t.Errorf("chaos-mem: BoundedNodes hit %d, above the hard limit %d + overshoot allowance %d",
			v, cfg.HardLimit, bound-cfg.HardLimit)
	}
	if stats.Backpressured == 0 {
		t.Error("chaos-mem: the gate never refused an update — the run built no pressure")
	}
	if hits := fault.Hits(cfg.StallSite); hits == 0 {
		t.Errorf("chaos-mem: failpoint %q was never reached", cfg.StallSite)
	}

	// The usual chaos postconditions: queries replay, the epoch advances,
	// draining reclaims everything.
	if cfg.RQThreads > 0 && checker.RQs() == 0 {
		dump("norqs")
		t.Fatal("chaos-mem: no range queries completed")
	}
	if err := checker.Check(); err != nil {
		dump("validation")
		t.Fatalf("chaos-mem validation failed after %d events / %d rqs: %v",
			checker.Events(), checker.RQs(), err)
	}
	advances := dom.Advances()
	for i := 0; i < 20*32; i++ {
		spare.StartOp()
		spare.EndOp()
	}
	if dom.Advances() == advances {
		dump("wedged")
		t.Fatal("chaos-mem: epoch wedged after the run")
	}
	if limbo := dom.LimboSize(); limbo != 0 {
		dump("limbo-leak")
		t.Fatalf("chaos-mem: %d nodes stuck in limbo after drain", limbo)
	}
	if quar := dom.QuarantinedNodes(); quar != 0 {
		dump("quarantine-leak")
		t.Fatalf("chaos-mem: %d nodes stuck in quarantine after drain", quar)
	}
	wd.Stop()
	dumpMu.Lock()
	stats.TraceDump = dumpPath
	dumpMu.Unlock()
	return stats
}
