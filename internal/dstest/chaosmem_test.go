package dstest_test

import (
	"testing"
	"time"

	"ebrrq/internal/dstest"
	"ebrrq/internal/rqprov"
)

// TestChaosMemBound is the bounded-memory acceptance proof: one updater
// permanently stalled mid-update (epoch announced, deletion announced, CAS
// pending) while the rest hammer the structure through the backpressure
// gate. The harness asserts limbo + quarantine never exceed the hard limit
// (plus the bounded admission overshoot), that the watchdog escalates to
// neutralizing the staller, that quarantined nodes are handed to the free
// function only after the victim resumes and acknowledges, and that
// validation replays clean afterwards.
//
// Restricted to structures with lock-free update paths: the released victim
// aborts with a panic out of UpdateCAS, and a lock-based structure would
// strand its own node locks on that unwind.
func TestChaosMemBound(t *testing.T) {
	long := 10 * time.Second
	if testing.Short() {
		long = 2 * time.Second
	}
	for _, ds := range chaosStructures {
		if !ds.lockFreeUpdates {
			continue
		}
		for _, mode := range chaosModes() {
			t.Run(ds.name+"/"+mode.String(), func(t *testing.T) {
				// The canonical long proof runs once; the other structure ×
				// mode combinations re-check the protocol on a shorter window.
				d := 3 * time.Second
				if testing.Short() {
					d = long
				} else if ds.name == "lflist" && mode == rqprov.ModeLockFree {
					d = long
				}
				stats := dstest.RunChaosMemBound(t, mode, ds.limboSorted, ds.build, dstest.MemBoundCfg{
					Duration: d,
					Seed:     47,
				})
				t.Logf("chaos-mem: victim=%d neutralizations=%d admitted=%d backpressured=%d peak=%d quarantine-peak=%d",
					stats.VictimID, stats.Neutralizations, stats.Admitted,
					stats.Backpressured, stats.PeakBounded, stats.QuarantinePeak)
			})
		}
	}
}
