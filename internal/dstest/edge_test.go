package dstest_test

import (
	"testing"

	"ebrrq"
)

// Edge-case behaviour that every structure × technique pair must share.

func pairs() [][2]any {
	var out [][2]any
	for _, d := range []ebrrq.DataStructure{ebrrq.LFList, ebrrq.LazyList,
		ebrrq.SkipList, ebrrq.LFBST, ebrrq.Citrus, ebrrq.ABTree, ebrrq.BSlack} {
		for _, t := range []ebrrq.Mode{ebrrq.Unsafe, ebrrq.Lock,
			ebrrq.HTM, ebrrq.LockFree, ebrrq.Snap, ebrrq.RLU} {
			if ebrrq.Supported(d, t) {
				out = append(out, [2]any{d, t})
			}
		}
	}
	return out
}

func TestEmptySetBehaviour(t *testing.T) {
	for _, p := range pairs() {
		d, tech := p[0].(ebrrq.DataStructure), p[1].(ebrrq.Mode)
		t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
			s, err := ebrrq.New(d, tech, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			if _, ok := th.Contains(5); ok {
				t.Fatal("empty set contains 5")
			}
			if th.Delete(5) {
				t.Fatal("delete from empty set succeeded")
			}
			if res := th.RangeQuery(0, 1000); len(res) != 0 {
				t.Fatalf("empty set RQ returned %v", res)
			}
			if res := th.RangeQuery(ebrrq.MinKey, ebrrq.MaxKey); len(res) != 0 {
				t.Fatalf("empty full-range RQ returned %v", res)
			}
		})
	}
}

func TestSingletonRanges(t *testing.T) {
	for _, p := range pairs() {
		d, tech := p[0].(ebrrq.DataStructure), p[1].(ebrrq.Mode)
		t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
			s, err := ebrrq.New(d, tech, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			th.Insert(10, 100)
			// Exact-point range.
			if res := th.RangeQuery(10, 10); len(res) != 1 || res[0].Key != 10 || res[0].Value != 100 {
				t.Fatalf("point RQ = %v", res)
			}
			// Adjacent empty ranges.
			if res := th.RangeQuery(11, 11); len(res) != 0 {
				t.Fatalf("RQ(11,11) = %v", res)
			}
			if res := th.RangeQuery(9, 9); len(res) != 0 {
				t.Fatalf("RQ(9,9) = %v", res)
			}
			// Inverted range is empty.
			if res := th.RangeQuery(20, 10); len(res) != 0 {
				t.Fatalf("inverted RQ = %v", res)
			}
		})
	}
}

func TestBoundaryKeys(t *testing.T) {
	for _, p := range pairs() {
		d, tech := p[0].(ebrrq.DataStructure), p[1].(ebrrq.Mode)
		t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
			s, err := ebrrq.New(d, tech, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			for _, k := range []int64{ebrrq.MinKey, 0, -1, ebrrq.MaxKey} {
				if !th.Insert(k, k) {
					t.Fatalf("insert boundary key %d failed", k)
				}
				if v, ok := th.Contains(k); !ok || v != k {
					t.Fatalf("contains boundary key %d = (%d,%v)", k, v, ok)
				}
			}
			res := th.RangeQuery(ebrrq.MinKey, ebrrq.MaxKey)
			if len(res) != 4 {
				t.Fatalf("full RQ over boundary keys = %v", res)
			}
			for _, k := range []int64{ebrrq.MinKey, 0, -1, ebrrq.MaxKey} {
				if !th.Delete(k) {
					t.Fatalf("delete boundary key %d failed", k)
				}
			}
		})
	}
}

// TestReinsertionCycles exercises recycling: the same key churns through
// enough insert/delete cycles to flow nodes through the limbo lists and
// back out of the per-thread pools.
func TestReinsertionCycles(t *testing.T) {
	for _, p := range pairs() {
		d, tech := p[0].(ebrrq.DataStructure), p[1].(ebrrq.Mode)
		t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
			s, err := ebrrq.New(d, tech, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			for cycle := int64(0); cycle < 2000; cycle++ {
				k := cycle % 8
				if !th.Insert(k, cycle) {
					t.Fatalf("cycle %d: insert failed", cycle)
				}
				if v, ok := th.Contains(k); !ok || v != cycle {
					t.Fatalf("cycle %d: contains = (%d,%v)", cycle, v, ok)
				}
				if !th.Delete(k) {
					t.Fatalf("cycle %d: delete failed", cycle)
				}
			}
			if res := th.RangeQuery(0, 100); len(res) != 0 {
				t.Fatalf("leftover keys after churn: %v", res)
			}
		})
	}
}

// TestInsertDoesNotOverwrite pins down the no-overwrite contract.
func TestInsertDoesNotOverwrite(t *testing.T) {
	for _, p := range pairs() {
		d, tech := p[0].(ebrrq.DataStructure), p[1].(ebrrq.Mode)
		t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
			s, err := ebrrq.New(d, tech, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			th.Insert(1, 111)
			if th.Insert(1, 222) {
				t.Fatal("second insert succeeded")
			}
			if v, _ := th.Contains(1); v != 111 {
				t.Fatalf("value overwritten: %d", v)
			}
			res := th.RangeQuery(1, 1)
			if len(res) != 1 || res[0].Value != 111 {
				t.Fatalf("RQ sees overwritten value: %v", res)
			}
		})
	}
}

// TestMonotonicInsertThenReverseDelete builds an adversarial (sorted)
// insertion order — the worst case for the unbalanced BSTs — and drains in
// reverse, checking full-range queries along the way.
func TestMonotonicInsertThenReverseDelete(t *testing.T) {
	const n = 800
	for _, p := range pairs() {
		d, tech := p[0].(ebrrq.DataStructure), p[1].(ebrrq.Mode)
		t.Run(d.String()+"/"+tech.String(), func(t *testing.T) {
			s, err := ebrrq.New(d, tech, 1)
			if err != nil {
				t.Fatal(err)
			}
			th := s.NewThread()
			for i := int64(0); i < n; i++ {
				if !th.Insert(i, i) {
					t.Fatalf("insert %d", i)
				}
			}
			res := th.RangeQuery(0, n)
			if len(res) != n {
				t.Fatalf("full RQ = %d keys, want %d", len(res), n)
			}
			for i := 0; i < n; i++ {
				if res[i].Key != int64(i) {
					t.Fatalf("order broken at %d: %d", i, res[i].Key)
				}
			}
			for i := int64(n - 1); i >= 0; i-- {
				if !th.Delete(i) {
					t.Fatalf("delete %d", i)
				}
				if i%97 == 0 {
					if got := len(th.RangeQuery(0, n)); got != int(i) {
						t.Fatalf("after deleting down to %d: %d keys", i, got)
					}
				}
			}
		})
	}
}
