package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ebrrq/internal/trace"
)

// TestShardedConcurrency hammers one counter and one histogram from
// maxThreads writer goroutines while a reader loops Snapshot() the whole
// time, then asserts the final totals are exact. Run under -race this also
// proves the hot path is data-race-free.
func TestShardedConcurrency(t *testing.T) {
	const (
		writers = 16
		perG    = 50000
	)
	r := NewRegistry(writers)
	c := r.Counter("test_ops_total", "ops")
	h := r.Histogram("test_lat", "lat")

	var stop atomic.Bool
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var last uint64
		for !stop.Load() {
			s := r.Snapshot()
			v := s.Counter("test_ops_total")
			if v < last {
				t.Errorf("counter went backwards: %d -> %d", last, v)
				return
			}
			last = v
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc(tid)
				c.Add(tid, 2)
				h.Observe(uint64(i))
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	<-readerDone

	if got, want := c.Value(), uint64(writers*perG*3); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	s := r.Snapshot()
	hs, ok := s.Hist("test_lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if got, want := hs.Count, uint64(writers*perG); got != want {
		t.Errorf("hist count = %d, want %d", got, want)
	}
	// sum of 0..perG-1 per goroutine
	wantSum := uint64(writers) * uint64(perG) * uint64(perG-1) / 2
	if hs.Sum != wantSum {
		t.Errorf("hist sum = %d, want %d", hs.Sum, wantSum)
	}
}

// TestCounterOutOfRangeTid verifies that tids beyond the shard count fold
// onto existing shards without losing adds.
func TestCounterOutOfRangeTid(t *testing.T) {
	r := NewRegistry(2)
	c := r.Counter("fold", "")
	c.Inc(0)
	c.Inc(5)  // folds to shard 1
	c.Inc(-3) // folds via unsigned modulo
	c.Add(99, 4)
	if got := c.Value(); got != 7 {
		t.Errorf("Value = %d, want 7", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var h *Histogram
	c.Inc(0)
	c.Add(3, 10)
	h.Observe(42)
	if c.Value() != 0 {
		t.Error("nil counter value != 0")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v uint64
		b int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 30, 31}, {1 << 40, NumBuckets - 1}, {^uint64(0), NumBuckets - 1},
	}
	for _, tc := range cases {
		if got := BucketOf(tc.v); got != tc.b {
			t.Errorf("BucketOf(%d) = %d, want %d", tc.v, got, tc.b)
		}
	}
}

func TestSnapshotSubAdd(t *testing.T) {
	r := NewRegistry(2)
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "")
	r.GaugeFunc("g", "", func() int64 { return 7 })

	c.Add(0, 10)
	h.Observe(3)
	before := r.Snapshot()

	c.Add(1, 5)
	h.Observe(3)
	h.Observe(100)
	after := r.Snapshot()

	d := after.Sub(before)
	if got := d.Counter("c_total"); got != 5 {
		t.Errorf("delta counter = %d, want 5", got)
	}
	hs, _ := d.Hist("h")
	if hs.Count != 2 || hs.Sum != 103 {
		t.Errorf("delta hist count=%d sum=%d, want 2/103", hs.Count, hs.Sum)
	}
	if d.Gauge("g") != 7 {
		t.Errorf("gauge = %d, want 7 (instantaneous)", d.Gauge("g"))
	}

	m := d.Add(d)
	if got := m.Counter("c_total"); got != 10 {
		t.Errorf("merged counter = %d, want 10", got)
	}
	mh, _ := m.Hist("h")
	if mh.Count != 4 || mh.Sum != 206 {
		t.Errorf("merged hist count=%d sum=%d, want 4/206", mh.Count, mh.Sum)
	}
}

func TestGaugeReplace(t *testing.T) {
	r := NewRegistry(1)
	r.GaugeFunc("live", "", func() int64 { return 1 })
	r.GaugeFunc("live", "", func() int64 { return 2 })
	if got := r.Snapshot().Gauge("live"); got != 2 {
		t.Errorf("gauge = %d, want 2 (latest registration wins)", got)
	}
}

// TestWritePromGolden locks the exposition format: a registry with one
// labeled counter pair, a gauge and a histogram must encode to exactly the
// expected Prometheus text.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry(1)
	r.CounterL("aborts_total", `cause="x"`, "abort count").Add(0, 3)
	r.CounterL("aborts_total", `cause="y"`, "abort count").Add(0, 4)
	r.GaugeFunc("limbo_len", "limbo length", func() int64 { return 9 })
	h := r.Histogram("lat_ns", "latency")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5) // bucket 3: [4,7]

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := `# HELP aborts_total abort count
# TYPE aborts_total counter
aborts_total{cause="x"} 3
aborts_total{cause="y"} 4
# HELP limbo_len limbo length
# TYPE limbo_len gauge
limbo_len 9
# HELP lat_ns latency
# TYPE lat_ns histogram
lat_ns_bucket{le="0"} 1
lat_ns_bucket{le="1"} 2
lat_ns_bucket{le="3"} 2
lat_ns_bucket{le="7"} 3
`
	if !strings.HasPrefix(got, want) {
		t.Errorf("prom text mismatch:\ngot:\n%s\nwant prefix:\n%s", got, want)
	}
	for _, line := range []string{
		`lat_ns_bucket{le="+Inf"} 3`,
		"lat_ns_sum 6",
		"lat_ns_count 3",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("prom text missing line %q:\n%s", line, got)
		}
	}
	// Cumulative buckets must be monotone and end at the count.
	if strings.Count(got, "lat_ns_bucket{") != NumBuckets {
		t.Errorf("want %d bucket lines, got %d", NumBuckets,
			strings.Count(got, "lat_ns_bucket{"))
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("hits_total", "hits").Inc(0)
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "hits_total 1") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/vars"); code != http.StatusOK {
		t.Errorf("/debug/vars: code=%d", code)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: code=%d", code)
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: code=%d, want 404", code)
	}
	// No checks configured: /healthz is unconditionally healthy.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: code=%d body=%q", code, body)
	}
	// The root page lists every mounted route; with no recorder configured
	// there is no /debug/trace route to list.
	code, body = get("/")
	if code != http.StatusOK {
		t.Errorf("/: code=%d", code)
	}
	for _, route := range []string{"/metrics", "/healthz", "/debug/vars", "/debug/pprof/"} {
		if !strings.Contains(body, route) {
			t.Errorf("root listing missing %q:\n%s", route, body)
		}
	}
	if strings.Contains(body, "/debug/trace") {
		t.Errorf("root listing advertises /debug/trace without a recorder:\n%s", body)
	}
	if code, _ := get("/debug/trace"); code != http.StatusNotFound {
		t.Errorf("/debug/trace without recorder: code=%d, want 404", code)
	}
}

// TestHandlerTrace wires a live flight recorder into the handler and checks
// /debug/trace serves a parseable binary dump (and JSON on request), and
// that the root listing advertises the route.
func TestHandlerTrace(t *testing.T) {
	r := NewRegistry(1)
	rec := trace.NewRecorder(trace.Config{EventsPerRing: 64})
	ring := rec.Ring("t0")
	ring.OpBegin(trace.OpInsert, 42)
	ring.OpEnd(trace.OpInsert)
	ts := httptest.NewServer(NewHandler(r, HandlerOpts{Trace: rec}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/trace: code=%d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q, want octet-stream", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "ebrrq.trace") {
		t.Errorf("Content-Disposition = %q, want attachment filename", cd)
	}
	snap, err := trace.ReadSnapshot(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("dump does not parse: %v", err)
	}
	if len(snap.Rings) != 1 || snap.Rings[0].Label != "t0" || len(snap.Rings[0].Events) != 2 {
		t.Fatalf("round-tripped snapshot = %+v, want ring t0 with 2 events", snap.Rings)
	}

	resp, err = http.Get(ts.URL + "/debug/trace?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json Content-Type = %q", ct)
	}
	var js struct {
		Rings []struct {
			Label  string `json:"label"`
			Events []struct {
				Type string `json:"type"`
			} `json:"events"`
		} `json:"rings"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if len(js.Rings) != 1 || js.Rings[0].Label != "t0" {
		t.Fatalf("json rings = %+v", js.Rings)
	}
	if len(js.Rings[0].Events) != 2 || js.Rings[0].Events[0].Type != "op_begin" {
		t.Fatalf("json events = %+v", js.Rings[0].Events)
	}

	rootResp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer rootResp.Body.Close()
	rootBody, _ := io.ReadAll(rootResp.Body)
	if !strings.Contains(string(rootBody), "/debug/trace") {
		t.Errorf("root listing missing /debug/trace:\n%s", rootBody)
	}
}

func TestHealthz(t *testing.T) {
	r := NewRegistry(1)
	var failing error
	ts := httptest.NewServer(Handler(r,
		HealthCheck{Name: "always-ok", Check: func() error { return nil }},
		HealthCheck{Name: "toggled", Check: func() error { return failing }},
	))
	defer ts.Close()

	get := func() (int, string) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get(); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthy: code=%d body=%q", code, body)
	}
	failing = errors.New("2 thread(s) stalled")
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Errorf("unhealthy: code=%d, want 503", code)
	}
	if !strings.Contains(body, "fail toggled: 2 thread(s) stalled") {
		t.Errorf("unhealthy body = %q, want the failing check listed", body)
	}
	if strings.Contains(body, "always-ok") {
		t.Errorf("unhealthy body names a passing check: %q", body)
	}
	failing = nil
	if code, _ := get(); code != http.StatusOK {
		t.Errorf("recovered: code=%d", code)
	}
}

// TestServeCloseJoins: Close must not return until the serving goroutine has
// exited, and a clean shutdown reports no error.
func TestServeCloseJoins(t *testing.T) {
	r := NewRegistry(1)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("Err() while serving = %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After Close the goroutine is done; ErrServerClosed is filtered.
	if err := srv.Err(); err != nil {
		t.Fatalf("Err() after clean Close = %v", err)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("served_total", "").Add(0, 5)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want prometheus 0.0.4", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "served_total 5") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}
}
