// Package obs is the repo's low-overhead observability core: sharded
// counters, log-scale histograms and function-backed gauges collected by a
// Registry that snapshots everything into a stable, ordered Snapshot.
//
// Design constraints, in order:
//
//   - The hot path must stay cheap enough to leave always-on. Counters are
//     sharded one cache-line-padded slot per thread id, so an increment
//     touches only the owner's line (an uncontended atomic add on an
//     M-state cache line — no cross-core traffic); the shards are summed
//     only on read. Histograms use atomic adds on power-of-two buckets and
//     are reserved for events that are orders of magnitude rarer than the
//     per-key hot path (range queries, reclamation, aborts).
//
//   - Metric handles are nil-safe: every method on a nil *Counter,
//     *Histogram or *Gauge is a no-op, so instrumented packages hold plain
//     struct fields and pay a single predictable branch when observability
//     is disabled.
//
//   - Stdlib only, like the rest of the repo.
//
// Registration is get-or-create by (name, labels): successive benchmark
// trials re-wire the same registry and the counters simply keep
// accumulating; per-trial figures are taken as Snapshot deltas (Sub).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// pad64 is an atomic uint64 padded to a full cache line so that adjacent
// slots in a slice never share one.
type pad64 struct {
	atomic.Uint64
	_ [56]byte
}

// NumBuckets is the number of power-of-two histogram buckets. Bucket 0
// holds observations equal to 0; bucket b (b >= 1) holds observations v
// with bits.Len64(v) == b, i.e. v in [2^(b-1), 2^b - 1]; the last bucket
// also absorbs everything larger.
const NumBuckets = 32

// BucketOf maps an observation to its bucket index.
func BucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the largest value bucket b holds (inclusive), as a
// float64 for Prometheus le= rendering; the last bucket is unbounded.
func BucketUpper(b int) float64 {
	if b >= NumBuckets-1 {
		return 0 // caller renders +Inf
	}
	return float64(uint64(1)<<uint(b) - 1)
}

// Counter is a monotonically increasing counter sharded by thread id.
// Writers pass their registered tid; ids beyond the shard count fold onto
// existing shards (still exact — the adds are atomic — merely sharing a
// line). A nil *Counter ignores all writes.
type Counter struct {
	name, labels, help string
	shards             []pad64
}

// Add increments the counter by delta on the caller's shard.
func (c *Counter) Add(tid int, delta uint64) {
	if c == nil || delta == 0 {
		return
	}
	if tid >= len(c.shards) || tid < 0 {
		tid = int(uint(tid) % uint(len(c.shards)))
	}
	c.shards[tid].Add(delta)
}

// Inc increments the counter by one on the caller's shard.
func (c *Counter) Inc(tid int) { c.Add(tid, 1) }

// Value sums all shards. It is safe to call concurrently with writers; the
// result is a consistent lower bound of the true total at return time.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].Load()
	}
	return total
}

// Name returns the counter's metric name (without labels).
func (c *Counter) Name() string { return c.name }

// Histogram is a log-scale (power-of-two bucket) histogram. Observations
// are uint64 (counts, nanoseconds, ...). A nil *Histogram ignores writes.
type Histogram struct {
	name, labels, help string
	buckets            [NumBuckets]pad64
	sum                pad64
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[BucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Gauge is a function-backed instantaneous value, read only at snapshot
// time. Re-registering a gauge series (same name and labels) replaces its
// function (the most recent live system wins), so successive trials do not
// accumulate dead sources. Two live systems sharing one registry must
// register under distinct label sets (see Registry.WithLabels), or the later
// registration silently takes over the series.
type Gauge struct {
	name, labels, help string
	mu                 sync.Mutex
	f                  func() int64
}

func (g *Gauge) read() int64 {
	g.mu.Lock()
	f := g.f
	g.mu.Unlock()
	if f == nil {
		return 0
	}
	return f()
}

func (g *Gauge) set(f func() int64) {
	g.mu.Lock()
	g.f = f
	g.mu.Unlock()
}

// Registry owns a set of metrics and produces ordered Snapshots of them. A
// Registry value is a view onto a shared core: WithLabels derives views that
// stamp a constant label set onto every metric registered through them, so
// several live systems (the shards of a sharded set, say) can share one
// exposition endpoint without colliding on series.
type Registry struct {
	core   *regCore
	labels string // constant labels stamped on every metric of this view
}

// regCore is the state shared by every view of one registry.
type regCore struct {
	mu        sync.Mutex
	maxShards int
	counters  map[string]*Counter
	hists     map[string]*Histogram
	gauges    map[string]*Gauge
}

// NewRegistry creates a registry whose counters carry maxThreads shards.
func NewRegistry(maxThreads int) *Registry {
	if maxThreads < 1 {
		maxThreads = 1
	}
	return &Registry{core: &regCore{
		maxShards: maxThreads,
		counters:  make(map[string]*Counter),
		hists:     make(map[string]*Histogram),
		gauges:    make(map[string]*Gauge),
	}}
}

// WithLabels returns a view of the registry that adds the given constant
// label set (e.g. `shard="3"`) to every metric registered through it. Views
// share the underlying core: one Snapshot/WriteProm over the base registry
// sees every view's series. Registering the same metric name through views
// with different labels yields distinct series — the fix for the collision
// that otherwise occurs when two Sets report into one registry (most acutely
// for gauges, where the later registration would silently re-point the
// earlier Set's series).
func (r *Registry) WithLabels(labels string) *Registry {
	if labels == "" {
		return r
	}
	return &Registry{core: r.core, labels: joinLabels(r.labels, labels)}
}

// joinLabels merges two comma-separated constant label lists.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

// seriesKey builds the registration key for a (name, labels) pair.
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, "", help)
}

// CounterL is Counter with a constant label set, rendered verbatim inside
// braces in the Prometheus exposition (e.g. `cause="lock_held"`). The view's
// constant labels, if any, are prepended.
func (r *Registry) CounterL(name, labels, help string) *Counter {
	labels = joinLabels(r.labels, labels)
	key := seriesKey(name, labels)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if ct, ok := c.counters[key]; ok {
		return ct
	}
	ct := &Counter{name: name, labels: labels, help: help,
		shards: make([]pad64, c.maxShards)}
	c.counters[key] = ct
	return ct
}

// Histogram returns the histogram registered under name (with the view's
// constant labels), creating it if needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	key := seriesKey(name, r.labels)
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.hists[key]; ok {
		return h
	}
	h := &Histogram{name: name, labels: r.labels, help: help}
	c.hists[key] = h
	return h
}

// GaugeFunc registers (or re-points) the gauge series (name + the view's
// constant labels) at f.
func (r *Registry) GaugeFunc(name, help string, f func() int64) *Gauge {
	key := seriesKey(name, r.labels)
	c := r.core
	c.mu.Lock()
	g, ok := c.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: r.labels, help: help}
		c.gauges[key] = g
	}
	c.mu.Unlock()
	g.set(f)
	return g
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

// CounterSnap is one counter's value at snapshot time.
type CounterSnap struct {
	Name   string
	Labels string
	Help   string
	Value  uint64
}

// GaugeSnap is one gauge's value at snapshot time.
type GaugeSnap struct {
	Name   string
	Labels string
	Help   string
	Value  int64
}

// HistSnap is one histogram's state at snapshot time.
type HistSnap struct {
	Name    string
	Labels  string
	Help    string
	Count   uint64
	Sum     uint64
	Buckets [NumBuckets]uint64
}

// Mean returns the histogram's average observation, or 0 when empty.
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a stable, ordered capture of every registered metric.
// Counters and histograms within a snapshot are sorted by name (then
// labels), so two snapshots of the same registry align index by index.
type Snapshot struct {
	Counters []CounterSnap
	Gauges   []GaugeSnap
	Hists    []HistSnap
}

// Snapshot captures every metric. Counter and histogram values are sums of
// concurrently written shards: each individual value is exact at its read
// point, the set is not a single atomic cut (standard for metrics).
func (r *Registry) Snapshot() Snapshot {
	core := r.core
	core.mu.Lock()
	counters := make([]*Counter, 0, len(core.counters))
	for _, c := range core.counters {
		counters = append(counters, c)
	}
	hists := make([]*Histogram, 0, len(core.hists))
	for _, h := range core.hists {
		hists = append(hists, h)
	}
	gauges := make([]*Gauge, 0, len(core.gauges))
	for _, g := range core.gauges {
		gauges = append(gauges, g)
	}
	core.mu.Unlock()

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnap{
			Name: c.name, Labels: c.labels, Help: c.help, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		a, b := s.Counters[i], s.Counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	for _, h := range hists {
		hs := HistSnap{Name: h.name, Labels: h.labels, Help: h.help, Sum: h.sum.Load()}
		for b := range hs.Buckets {
			v := h.buckets[b].Load()
			hs.Buckets[b] = v
			hs.Count += v
		}
		s.Hists = append(s.Hists, hs)
	}
	sort.Slice(s.Hists, func(i, j int) bool {
		a, b := s.Hists[i], s.Hists[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{
			Name: g.name, Labels: g.labels, Help: g.help, Value: g.read()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool {
		a, b := s.Gauges[i], s.Gauges[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return s
}

// Sub returns the delta snapshot s - prev: counters and histogram buckets
// subtract by (name, labels); gauges keep their current (instantaneous)
// values. Metrics absent from prev pass through unchanged.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{Gauges: append([]GaugeSnap(nil), s.Gauges...)}
	prevC := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevC[c.Name+"\x00"+c.Labels] = c.Value
	}
	for _, c := range s.Counters {
		c.Value -= prevC[c.Name+"\x00"+c.Labels]
		out.Counters = append(out.Counters, c)
	}
	prevH := make(map[string]HistSnap, len(prev.Hists))
	for _, h := range prev.Hists {
		prevH[h.Name+"\x00"+h.Labels] = h
	}
	for _, h := range s.Hists {
		if p, ok := prevH[h.Name+"\x00"+h.Labels]; ok {
			h.Count -= p.Count
			h.Sum -= p.Sum
			for b := range h.Buckets {
				h.Buckets[b] -= p.Buckets[b]
			}
		}
		out.Hists = append(out.Hists, h)
	}
	return out
}

// Add returns the merged snapshot s + o (counters and histogram buckets
// add; gauges keep s's values, falling back to o's for gauges s lacks).
// Used to aggregate per-trial deltas across trials.
func (s Snapshot) Add(o Snapshot) Snapshot {
	var out Snapshot
	idx := make(map[string]int)
	for _, c := range s.Counters {
		idx[c.Name+"\x00"+c.Labels] = len(out.Counters)
		out.Counters = append(out.Counters, c)
	}
	for _, c := range o.Counters {
		if i, ok := idx[c.Name+"\x00"+c.Labels]; ok {
			out.Counters[i].Value += c.Value
		} else {
			out.Counters = append(out.Counters, c)
		}
	}
	sort.Slice(out.Counters, func(i, j int) bool {
		a, b := out.Counters[i], out.Counters[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	hidx := make(map[string]int)
	for _, h := range s.Hists {
		hidx[h.Name+"\x00"+h.Labels] = len(out.Hists)
		out.Hists = append(out.Hists, h)
	}
	for _, h := range o.Hists {
		if i, ok := hidx[h.Name+"\x00"+h.Labels]; ok {
			out.Hists[i].Count += h.Count
			out.Hists[i].Sum += h.Sum
			for b := range h.Buckets {
				out.Hists[i].Buckets[b] += h.Buckets[b]
			}
		} else {
			out.Hists = append(out.Hists, h)
		}
	}
	sort.Slice(out.Hists, func(i, j int) bool {
		a, b := out.Hists[i], out.Hists[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	gidx := make(map[string]bool)
	for _, g := range s.Gauges {
		gidx[g.Name+"\x00"+g.Labels] = true
		out.Gauges = append(out.Gauges, g)
	}
	for _, g := range o.Gauges {
		if !gidx[g.Name+"\x00"+g.Labels] {
			out.Gauges = append(out.Gauges, g)
		}
	}
	sort.Slice(out.Gauges, func(i, j int) bool {
		a, b := out.Gauges[i], out.Gauges[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Labels < b.Labels
	})
	return out
}

// Counter returns the summed value of every counter series with the given
// name (all label sets), or 0 if none exists.
func (s Snapshot) Counter(name string) uint64 {
	var total uint64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}

// Gauge returns the summed value of every gauge series with the given name
// (all label sets — the aggregate view across shards), or 0 if none exists.
func (s Snapshot) Gauge(name string) int64 {
	var total int64
	for _, g := range s.Gauges {
		if g.Name == name {
			total += g.Value
		}
	}
	return total
}

// Hist returns the named histogram merged across every label set carrying
// the name (buckets, counts and sums add), so per-shard series aggregate
// into the same view an unsharded set reports.
func (s Snapshot) Hist(name string) (HistSnap, bool) {
	var out HistSnap
	found := false
	for _, h := range s.Hists {
		if h.Name != name {
			continue
		}
		if !found {
			out = h
			out.Labels = ""
			found = true
			continue
		}
		out.Count += h.Count
		out.Sum += h.Sum
		for b := range out.Buckets {
			out.Buckets[b] += h.Buckets[b]
		}
	}
	return out, found
}

// String renders the snapshot as a human-readable summary block: one line
// per non-zero metric, stable order — the headless-run counterpart of the
// /metrics endpoint.
func (s Snapshot) String() string {
	out := ""
	for _, c := range s.Counters {
		if c.Value == 0 {
			continue
		}
		name := c.Name
		if c.Labels != "" {
			name += "{" + c.Labels + "}"
		}
		out += fmt.Sprintf("%-36s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := g.Name
		if g.Labels != "" {
			name += "{" + g.Labels + "}"
		}
		out += fmt.Sprintf("%-36s %d\n", name, g.Value)
	}
	for _, h := range s.Hists {
		if h.Count == 0 {
			continue
		}
		name := h.Name
		if h.Labels != "" {
			name += "{" + h.Labels + "}"
		}
		out += fmt.Sprintf("%-36s count=%d mean=%.1f\n", name, h.Count, h.Mean())
		for b := 0; b < NumBuckets; b++ {
			if h.Buckets[b] == 0 {
				continue
			}
			out += fmt.Sprintf("  %-34s %d\n", bucketLabel(b), h.Buckets[b])
		}
	}
	if out == "" {
		out = "(no metrics recorded)\n"
	}
	return out
}

// bucketLabel renders bucket b's value range.
func bucketLabel(b int) string {
	if b == 0 {
		return "[0]"
	}
	if b == NumBuckets-1 {
		return fmt.Sprintf("[%d,+Inf)", uint64(1)<<uint(b-1))
	}
	return fmt.Sprintf("[%d,%d]", uint64(1)<<uint(b-1), uint64(1)<<uint(b)-1)
}
