package obs

import (
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HealthCheck is a named liveness probe exposed at /healthz. Check returns
// nil when healthy; the error message is reported verbatim in the response
// body. Checks must be safe for concurrent use.
type HealthCheck struct {
	Name  string
	Check func() error
}

// Handler returns the observability HTTP handler: /metrics (Prometheus
// text), /debug/vars (expvar JSON, including this registry once published),
// the net/http/pprof profile endpoints under /debug/pprof/, and /healthz,
// which answers 200 while every supplied check passes and 503 (listing the
// failing checks) otherwise. With no checks /healthz always answers 200.
func Handler(r *Registry, checks ...HealthCheck) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		failed := false
		for _, c := range checks {
			if err := c.Check(); err != nil {
				if !failed {
					failed = true
					w.WriteHeader(http.StatusServiceUnavailable)
				}
				fmt.Fprintf(w, "fail %s: %v\n", c.Name, err)
			}
		}
		if !failed {
			fmt.Fprintln(w, "ok")
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "ebrrq observability: /metrics /healthz /debug/vars /debug/pprof/\n")
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
	err  error
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down and waits for the serving goroutine to
// exit, so no goroutine outlives the Server.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Err reports why the serving goroutine exited, once it has (nil before
// Close and while serving normally; http.ErrServerClosed is filtered out).
func (s *Server) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") in a background goroutine and publishes the registry to
// expvar. It returns once the listener is bound, so a subsequent
// `curl <Addr()>/metrics` cannot race the bind. Optional health checks are
// exposed at /healthz.
func Serve(addr string, r *Registry, checks ...HealthCheck) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.PublishExpvar("ebrrq")
	srv := &http.Server{Handler: Handler(r, checks...), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{srv: srv, ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}
