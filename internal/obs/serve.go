package obs

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"ebrrq/internal/trace"
)

// HealthCheck is a named liveness probe exposed at /healthz. Check returns
// nil when healthy; the error message is reported verbatim in the response
// body. Checks must be safe for concurrent use.
//
// Warn is the optional degraded level: a non-nil Warn error marks the
// endpoint degraded (still 200 — load balancers keep routing) while a
// non-nil Check error marks it critical (503). Boolean checks that predate
// the split simply leave Warn nil.
type HealthCheck struct {
	Name  string
	Check func() error
	Warn  func() error
}

// HandlerOpts configures the observability handler beyond the metrics
// registry itself.
type HandlerOpts struct {
	// Checks are exposed at /healthz: 503 while any Check fails, 200 with a
	// "degraded" body while only Warn levels fail, 200 "ok" otherwise.
	Checks []HealthCheck
	// Trace, when non-nil, exposes the flight recorder at /debug/trace:
	// GET returns a binary dump (feed it to cmd/rqtrace); ?format=json
	// returns the snapshot as JSON.
	Trace *trace.Recorder
}

// Handler returns the observability HTTP handler: /metrics (Prometheus
// text), /debug/vars (expvar JSON, including this registry once published),
// the net/http/pprof profile endpoints under /debug/pprof/, and /healthz,
// which answers 503 (listing the failures) while any check's critical level
// fails, 200 with a "degraded" body while only warn levels fail, and 200
// "ok" otherwise. With no checks /healthz always answers 200. The root path
// lists every mounted route.
func Handler(r *Registry, checks ...HealthCheck) http.Handler {
	return NewHandler(r, HandlerOpts{Checks: checks})
}

// NewHandler is Handler with the full option set; see HandlerOpts.
func NewHandler(r *Registry, opts HandlerOpts) http.Handler {
	mux := http.NewServeMux()
	var routes []string
	handle := func(pattern string, h http.HandlerFunc) {
		routes = append(routes, pattern)
		mux.HandleFunc(pattern, h)
	}
	handle("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
	handle("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Evaluate everything before writing: the status line must precede
		// the body, and a critical failure outranks any number of warnings.
		var fails, warns []string
		for _, c := range opts.Checks {
			if c.Check != nil {
				if err := c.Check(); err != nil {
					fails = append(fails, fmt.Sprintf("fail %s: %v", c.Name, err))
				}
			}
			if c.Warn != nil {
				if err := c.Warn(); err != nil {
					warns = append(warns, fmt.Sprintf("warn %s: %v", c.Name, err))
				}
			}
		}
		switch {
		case len(fails) > 0:
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, l := range fails {
				fmt.Fprintln(w, l)
			}
			for _, l := range warns {
				fmt.Fprintln(w, l)
			}
		case len(warns) > 0:
			fmt.Fprintln(w, "degraded")
			for _, l := range warns {
				fmt.Fprintln(w, l)
			}
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	routes = append(routes, "/debug/vars")
	mux.Handle("/debug/vars", expvar.Handler())
	handle("/debug/pprof/", pprof.Index)
	handle("/debug/pprof/cmdline", pprof.Cmdline)
	handle("/debug/pprof/profile", pprof.Profile)
	handle("/debug/pprof/symbol", pprof.Symbol)
	handle("/debug/pprof/trace", pprof.Trace)
	if opts.Trace != nil {
		rec := opts.Trace
		handle("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
			snap := rec.Snapshot()
			if req.URL.Query().Get("format") == "json" {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(snap)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="ebrrq.trace"`)
			_, _ = snap.WriteTo(w)
		})
	}
	sort.Strings(routes)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ebrrq observability endpoints:")
		for _, rt := range routes {
			fmt.Fprintf(w, "  %s\n", rt)
		}
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
	err  error
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down and waits for the serving goroutine to
// exit, so no goroutine outlives the Server.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// Err reports why the serving goroutine exited, once it has (nil before
// Close and while serving normally; http.ErrServerClosed is filtered out).
func (s *Server) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") in a background goroutine and publishes the registry to
// expvar. It returns once the listener is bound, so a subsequent
// `curl <Addr()>/metrics` cannot race the bind. Optional health checks are
// exposed at /healthz.
func Serve(addr string, r *Registry, checks ...HealthCheck) (*Server, error) {
	return ServeWith(addr, r, HandlerOpts{Checks: checks})
}

// ServeWith is Serve with the full option set; see HandlerOpts.
func ServeWith(addr string, r *Registry, opts HandlerOpts) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.PublishExpvar("ebrrq")
	srv := &http.Server{Handler: NewHandler(r, opts), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{srv: srv, ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}
