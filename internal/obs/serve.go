package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the observability HTTP handler: /metrics (Prometheus
// text), /debug/vars (expvar JSON, including this registry once published)
// and the net/http/pprof profile endpoints under /debug/pprof/.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintf(w, "ebrrq observability: /metrics /debug/vars /debug/pprof/\n")
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") in a background goroutine and publishes the registry to
// expvar. It returns once the listener is bound, so a subsequent
// `curl <Addr()>/metrics` cannot race the bind.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.PublishExpvar("ebrrq")
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{srv: srv, ln: ln}, nil
}
