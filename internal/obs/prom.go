package obs

import (
	"expvar"
	"fmt"
	"io"
	"strconv"
)

// WriteProm encodes a snapshot in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, counters as <name>_total-style series
// with optional constant labels, gauges as plain series, histograms as
// cumulative <name>_bucket{le=...} series plus _sum and _count.
func (s Snapshot) WriteProm(w io.Writer) error {
	var lastName string
	for _, c := range s.Counters {
		if c.Name != lastName {
			if c.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", c.Name, c.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", c.Name); err != nil {
				return err
			}
			lastName = c.Name
		}
		series := c.Name
		if c.Labels != "" {
			series += "{" + c.Labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series, c.Value); err != nil {
			return err
		}
	}
	lastName = ""
	for _, g := range s.Gauges {
		if g.Name != lastName {
			if g.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", g.Name, g.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name); err != nil {
				return err
			}
			lastName = g.Name
		}
		series := g.Name
		if g.Labels != "" {
			series += "{" + g.Labels + "}"
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", series, g.Value); err != nil {
			return err
		}
	}
	lastName = ""
	for _, h := range s.Hists {
		if h.Name != lastName {
			if h.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", h.Name, h.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.Name); err != nil {
				return err
			}
			lastName = h.Name
		}
		suffix := "" // rendered inside braces after le (or alone for sum/count)
		if h.Labels != "" {
			suffix = "{" + h.Labels + "}"
		}
		cum := uint64(0)
		for b := 0; b < NumBuckets; b++ {
			cum += h.Buckets[b]
			le := "+Inf"
			if b < NumBuckets-1 {
				le = strconv.FormatFloat(BucketUpper(b), 'g', -1, 64)
			}
			bucketLabels := `le="` + le + `"`
			if h.Labels != "" {
				bucketLabels = h.Labels + "," + bucketLabels
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", h.Name, bucketLabels, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n%s_count%s %d\n",
			h.Name, suffix, h.Sum, h.Name, suffix, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteProm snapshots the registry and encodes it in the Prometheus text
// exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	return r.Snapshot().WriteProm(w)
}

// PublishExpvar publishes the registry under the given expvar variable
// name, so /debug/vars (and any expvar scraper) reports live snapshots.
// Publishing the same name twice is a no-op (expvar panics on duplicates;
// registries may be created per benchmark trial).
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
