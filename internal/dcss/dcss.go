// Package dcss implements Harris, Fraser and Pratt's double-compare
// single-swap (DCSS) primitive (DISC '02), specialised for the lock-free
// range-query provider of Arbel-Raviv and Brown (PPoPP '18).
//
// DCSS atomically: reads two locations, checks both against expected values,
// and if they match writes a new value to the second. The lock-free provider
// uses it to perform a data structure's linearizing CAS only if the global
// range-query timestamp TS still holds the value the updater read — so the
// timestamp recorded in inserted/deleted nodes is exactly TS at the moment
// the update linearizes.
//
// Slots hold machine-word values that are either data-structure pointers
// (optionally carrying data-structure flags in bits 1-2, e.g. the Harris
// list's mark bit) or a DCSS descriptor pointer tagged with bit 0. All
// reads of a slot go through Load, which helps any installed descriptor to
// completion before returning, so data-structure code never observes a
// descriptor.
//
// Descriptors carry a payload — the timestamp plus the nodes the update
// inserts and deletes — so that a range query encountering a node whose
// itime/dtime is not yet set can find the responsible descriptor in the
// provider's announcement array, help the DCSS complete, and learn the
// timestamp without waiting (the paper's wait-free TryAdd).
//
// Descriptors are allocated per operation; Go's garbage collector prevents
// descriptor-pointer ABA for free (a descriptor's address cannot be reused
// while any helper still references it), which replaces the manual
// sequence-number validation the C++ implementation needs.
package dcss

import (
	"sync/atomic"
	"unsafe"

	"ebrrq/internal/epoch"
	"ebrrq/internal/fault"
)

const (
	descTag  = uintptr(1) // bit 0: slot holds a DCSS descriptor
	flagMask = uintptr(6) // bits 1-2: reserved for data-structure flags
	ptrMask  = ^uintptr(7)
)

// Pack combines a data pointer with data-structure flag bits (a subset of
// bits 1-2). The result is stored in slots as a single word. Tagging uses
// unsafe.Add so the result remains an interior pointer of the same
// allocation (GC-safe).
func Pack(p unsafe.Pointer, flags uintptr) unsafe.Pointer {
	// The zero-offset case must bypass unsafe.Add: the compiler assumes
	// unsafe.Add results are non-nil, which breaks nil comparisons after
	// a round-trip. Flags must never be applied to a nil pointer.
	if flags&flagMask == 0 {
		return p
	}
	return unsafe.Add(p, int(flags&flagMask))
}

// Ptr strips tag and flag bits from a slot value.
func Ptr(v unsafe.Pointer) unsafe.Pointer {
	off := uintptr(v) &^ ptrMask
	if off == 0 {
		return v // untagged (possibly nil): see Pack for why this bypass
	}
	return unsafe.Add(v, -int(off))
}

// Flags extracts the data-structure flag bits from a slot value.
func Flags(v unsafe.Pointer) uintptr {
	return uintptr(v) & flagMask
}

func isDesc(v unsafe.Pointer) bool { return uintptr(v)&descTag != 0 }

func packDesc(d *Descriptor) unsafe.Pointer {
	return unsafe.Add(unsafe.Pointer(d), int(descTag))
}

func unpackDesc(v unsafe.Pointer) *Descriptor {
	return (*Descriptor)(unsafe.Add(v, -int(uintptr(v)&descTag)))
}

// Slot is a word-sized shared location that supports plain CAS and DCSS.
// The zero value holds nil.
type Slot struct {
	p unsafe.Pointer
}

// Store unconditionally stores a data value. Intended for initialisation of
// nodes before they are published.
func (s *Slot) Store(v unsafe.Pointer) {
	atomic.StorePointer(&s.p, v)
}

// Load returns the slot's current data value, helping any installed DCSS
// descriptor to completion first.
func (s *Slot) Load() unsafe.Pointer {
	for {
		v := atomic.LoadPointer(&s.p)
		if !isDesc(v) {
			return v
		}
		unpackDesc(v).complete()
	}
}

// CAS performs a compare-and-swap between data values, helping and retrying
// if a DCSS descriptor occupies the slot. It returns false only if the
// slot's (resolved) value differs from old.
func (s *Slot) CAS(old, new unsafe.Pointer) bool {
	for {
		if atomic.CompareAndSwapPointer(&s.p, old, new) {
			return true
		}
		v := atomic.LoadPointer(&s.p)
		if isDesc(v) {
			unpackDesc(v).complete()
			continue
		}
		if v != old {
			return false
		}
		// v == old: the failed CAS raced with a helper removing a
		// descriptor; retry.
	}
}

// Status of a DCSS operation.
type Status uint32

const (
	// Undecided: the operation's outcome is not yet determined.
	Undecided Status = iota
	// Succeeded: both comparisons matched; the new value was installed.
	Succeeded
	// FailedA1: the first location (TS) did not match; slot unchanged.
	FailedA1
	// FailedValue: the slot did not contain the expected old value.
	FailedValue
)

// Descriptor holds the arguments and payload of one DCSS operation. Create
// a fresh Descriptor for every attempt.
type Descriptor struct {
	// A1 and Exp1 are the first (compare-only) location and its expected
	// value; in the provider this is the global timestamp TS, and Exp1 is
	// also the timestamp recorded for the update.
	A1   *atomic.Uint64
	Exp1 uint64
	// S, Old, New are the second location and the CAS arguments.
	S        *Slot
	Old, New unsafe.Pointer

	// Payload for range-query helping.
	INodes []*epoch.Node
	DNodes []*epoch.Node

	status atomic.Uint32
}

// Exec runs the DCSS operation to completion and returns its status (never
// Undecided). FailedValue means the slot's value differed from Old; FailedA1
// means TS changed — the caller typically re-reads TS and retries with a
// fresh descriptor.
func (d *Descriptor) Exec() Status {
	for {
		if atomic.CompareAndSwapPointer(&d.S.p, d.Old, packDesc(d)) {
			return d.complete()
		}
		v := atomic.LoadPointer(&d.S.p)
		if isDesc(v) {
			unpackDesc(v).complete()
			continue
		}
		if v != d.Old {
			return FailedValue
		}
	}
}

// Help completes the operation if it has been installed; any thread may call
// it. It is used by range queries that find the descriptor in the provider's
// announcement array — which the owner publishes BEFORE installing the
// descriptor in the slot — so unlike complete (whose callers found the
// descriptor in the slot), Help must tolerate an uninstalled descriptor: it
// returns Undecided without deciding. Deciding an uninstalled DCSS would
// linearize the update while the slot still shows the old value to plain
// readers; concretely, a helper could publish a deletion's dtime from a
// pre-advance timestamp while the node is still unmarked in the structure,
// and a later range query at a newer timestamp would observe the "deleted"
// key — the spurious-key validation failures reproduced by the skiplist
// schedule-stress harness.
//
// The check is race-free: once installed, a descriptor leaves the slot only
// after its status is decided, and every attempt uses a fresh descriptor
// (no reinstallation), so observing status == Undecided and the descriptor
// in the slot guarantees it is still installed when complete decides.
func (d *Descriptor) Help() Status {
	if Status(d.status.Load()) != Undecided {
		return d.complete() // decided; finalisation is idempotent
	}
	if atomic.LoadPointer(&d.S.p) != packDesc(d) {
		return Undecided // announced but not yet installed: cannot decide
	}
	return d.complete()
}

// StatusNow returns the operation's current status without helping.
func (d *Descriptor) StatusNow() Status { return Status(d.status.Load()) }

// complete decides and finalises an installed descriptor. Multiple threads
// may run it concurrently; the first status CAS decides the outcome and the
// finalising slot CAS is idempotent.
func (d *Descriptor) complete() Status {
	fault.Inject("dcss.help")
	if Status(d.status.Load()) == Undecided {
		dec := Succeeded
		if d.A1.Load() != d.Exp1 {
			dec = FailedA1
		}
		d.status.CompareAndSwap(uint32(Undecided), uint32(dec))
	}
	st := Status(d.status.Load())
	if st == Succeeded {
		atomic.CompareAndSwapPointer(&d.S.p, packDesc(d), d.New)
	} else {
		atomic.CompareAndSwapPointer(&d.S.p, packDesc(d), d.Old)
	}
	return st
}
