package dcss

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"unsafe"
)

func TestPackPtrFlagsRoundtrip(t *testing.T) {
	if Ptr(nil) != nil {
		t.Fatal("Ptr(nil) must be nil")
	}
	if Pack(nil, 0) != nil {
		t.Fatal("Pack(nil, 0) must be nil")
	}
	x := new(int64)
	for _, flags := range []uintptr{0, 2, 4, 6} {
		v := Pack(unsafe.Pointer(x), flags)
		if Ptr(v) != unsafe.Pointer(x) {
			t.Fatalf("flags %d: pointer mangled", flags)
		}
		if Flags(v) != flags {
			t.Fatalf("flags %d: got %d", flags, Flags(v))
		}
	}
	// Flag bits outside 1-2 are masked off.
	if Flags(Pack(unsafe.Pointer(x), 0xff)) != 6 {
		t.Fatal("flag mask not applied")
	}
}

func TestTypedNilAfterRoundtrip(t *testing.T) {
	// Regression: converting the result of Ptr through a typed pointer must
	// preserve nil-ness (the compiler assumes unsafe.Add results are
	// non-nil, so the zero-offset path must bypass it).
	type nodeT struct{ a, b int64 }
	var s Slot
	n := (*nodeT)(Ptr(s.Load()))
	if n != nil {
		t.Fatal("typed nil lost through Ptr round-trip")
	}
}

func TestSlotLoadStoreCAS(t *testing.T) {
	var s Slot
	a, b := new(int64), new(int64)
	s.Store(unsafe.Pointer(a))
	if s.Load() != unsafe.Pointer(a) {
		t.Fatal("store/load")
	}
	if s.CAS(unsafe.Pointer(b), unsafe.Pointer(a)) {
		t.Fatal("CAS with wrong expected succeeded")
	}
	if !s.CAS(unsafe.Pointer(a), unsafe.Pointer(b)) {
		t.Fatal("CAS failed")
	}
	if s.Load() != unsafe.Pointer(b) {
		t.Fatal("CAS did not install")
	}
}

func TestDCSSSemantics(t *testing.T) {
	var ts atomic.Uint64
	ts.Store(5)
	var s Slot
	a, b := new(int64), new(int64)
	s.Store(unsafe.Pointer(a))

	// Wrong TS: must fail and leave the slot unchanged.
	d := &Descriptor{A1: &ts, Exp1: 4, S: &s, Old: unsafe.Pointer(a), New: unsafe.Pointer(b)}
	if st := d.Exec(); st != FailedA1 {
		t.Fatalf("status = %v, want FailedA1", st)
	}
	if s.Load() != unsafe.Pointer(a) {
		t.Fatal("slot changed on FailedA1")
	}

	// Wrong old value: FailedValue.
	d = &Descriptor{A1: &ts, Exp1: 5, S: &s, Old: unsafe.Pointer(b), New: unsafe.Pointer(a)}
	if st := d.Exec(); st != FailedValue {
		t.Fatalf("status = %v, want FailedValue", st)
	}

	// Both match: Succeeded.
	d = &Descriptor{A1: &ts, Exp1: 5, S: &s, Old: unsafe.Pointer(a), New: unsafe.Pointer(b)}
	if st := d.Exec(); st != Succeeded {
		t.Fatalf("status = %v, want Succeeded", st)
	}
	if s.Load() != unsafe.Pointer(b) {
		t.Fatal("slot not updated on success")
	}
}

// TestDCSSAtomicityUnderContention: concurrent DCSS increments guarded by a
// timestamp check must never commit against a stale timestamp, and the slot
// must reflect exactly the successful operations.
func TestDCSSAtomicityUnderContention(t *testing.T) {
	var ts atomic.Uint64
	ts.Store(1)
	var s Slot
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i)
	}
	s.Store(unsafe.Pointer(&vals[0]))

	const workers = 6
	const iters = 3000
	var successes atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if r.Intn(10) == 0 {
					ts.Add(1) // simulate an RQ linearizing
					continue
				}
				for {
					cur := ts.Load()
					old := s.Load()
					idx := (*int64)(old)
					next := unsafe.Pointer(&vals[(*idx+1)%int64(len(vals))])
					d := &Descriptor{A1: &ts, Exp1: cur, S: &s, Old: old, New: next}
					st := d.Exec()
					if st == Succeeded {
						successes.Add(1)
						break
					}
					if st == FailedValue {
						continue // raced with another success; re-read
					}
					// FailedA1: retry with fresh timestamp.
				}
			}
		}(int64(w))
	}
	wg.Wait()
	got := *(*int64)(s.Load())
	want := successes.Load() % int64(len(vals))
	if got != want {
		t.Fatalf("slot shows %d increments (mod), want %d", got, want)
	}
}

func TestQuickFlagMaskIdempotent(t *testing.T) {
	x := new(int64)
	f := func(raw uint8) bool {
		fl := uintptr(raw)
		v := Pack(unsafe.Pointer(x), fl)
		return Ptr(v) == unsafe.Pointer(x) && Flags(v) == (fl&6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
