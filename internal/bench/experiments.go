package bench

import (
	"fmt"
	"io"
	"time"

	"ebrrq"
	"ebrrq/internal/obs"
)

// ExpCfg parameterizes the experiment drivers. The defaults reproduce the
// paper's workloads scaled to the host (the paper used a 48-thread Xeon;
// Threads and Scale shrink the sweep for smaller machines).
type ExpCfg struct {
	Threads  int           // maximum worker count (paper: 48)
	Scale    int64         // key-range divisor (1 = paper sizes)
	Duration time.Duration // per trial (paper: 3s × 5 trials)
	Trials   int           // trials per point; the mean is reported
	Seed     int64
	Out      io.Writer
	// CSV, if non-nil, additionally receives one machine-readable row per
	// data point: experiment,structure,technique,param,metric,value
	// (mirroring the artifact's results.db/dbx.csv outputs).
	CSV io.Writer
	// Registry, if non-nil, is shared by every trial (live /metrics).
	Registry *obs.Registry
	// NoMetrics disables the observability layer in every trial (overhead
	// A/B baseline).
	NoMetrics bool
}

// csvRow emits one CSV data point if a CSV sink is configured.
func (c *ExpCfg) csvRow(exp string, ds, tech fmt.Stringer, param string, metric string, value float64) {
	if c.CSV == nil {
		return
	}
	fmt.Fprintf(c.CSV, "%s,%s,%s,%s,%s,%g\n", exp, ds, tech, param, metric, value)
}

func (c *ExpCfg) defaults() {
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.Trials <= 0 {
		c.Trials = 1
	}
}

func (c *ExpCfg) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// threadCounts returns the x-axis of Experiments 1 and 2: powers of two up
// to the configured maximum.
func (c *ExpCfg) threadCounts() []int {
	var out []int
	for n := 1; n <= c.Threads; n *= 2 {
		out = append(out, n)
	}
	if len(out) == 0 || out[len(out)-1] != c.Threads {
		out = append(out, c.Threads)
	}
	return out
}

// run aggregates Trials runs of cfg via Result.Merge, so throughputs
// average over total elapsed time and latency percentiles weigh every
// trial's samples.
func (c *ExpCfg) run(t TrialCfg) Result {
	t.Duration = c.Duration
	t.Metrics = c.Registry
	t.NoMetrics = c.NoMetrics
	var agg Result
	for i := 0; i < c.Trials; i++ {
		t.Seed = c.Seed + int64(i)*104729
		r, err := RunTrial(t)
		if err != nil {
			panic(err)
		}
		if i == 0 {
			agg = r
		} else {
			agg.Merge(&r)
		}
	}
	return agg
}

// csvObsRows emits the observability metrics of one data point (limbo
// traffic, aborts, pool behaviour) alongside its throughput row.
func (c *ExpCfg) csvObsRows(exp string, ds, tech fmt.Stringer, param string, r Result) {
	if c.CSV == nil {
		return
	}
	c.csvRow(exp, ds, tech, param, "limbo_visited", float64(r.LimboVisit))
	c.csvRow(exp, ds, tech, param, "limbo_visited_per_rq", float64(r.LimboVisit)/float64(max64(r.RQs, 1)))
	c.csvRow(exp, ds, tech, param, "limbo_size_end", float64(r.LimboSize))
	c.csvRow(exp, ds, tech, param, "htm_aborts", float64(r.HTMAborts))
	hits := r.Obs.Counter("ebrrq_pool_hits_total")
	misses := r.Obs.Counter("ebrrq_pool_misses_total")
	if hits+misses > 0 {
		c.csvRow(exp, ds, tech, param, "pool_hit_rate", float64(hits)/float64(hits+misses))
	}
	c.csvRow(exp, ds, tech, param, "epoch_advances", float64(r.Obs.Counter("ebrrq_epoch_advances_total")))
	c.csvRow(exp, ds, tech, param, "epoch_reclaimed", float64(r.Obs.Counter("ebrrq_epoch_reclaimed_total")))
}

// AllStructures lists the benchmarked structures in the paper's order.
var AllStructures = []ebrrq.DataStructure{
	ebrrq.ABTree, ebrrq.LFBST, ebrrq.Citrus,
	ebrrq.SkipList, ebrrq.LazyList, ebrrq.LFList,
}

// Exp1 reproduces Figure 5: n update threads (50% insert / 50% delete) plus
// one thread performing range queries of size 100; total operations per
// microsecond versus n, one series per technique.
func (c ExpCfg) Exp1() {
	c.defaults()
	c.printf("# Experiment 1 (Figure 5): one thread performs RQs (range 100),\n")
	c.printf("# n threads perform 50%% inserts / 50%% deletes. Total ops/us.\n")
	for _, ds := range AllStructures {
		k := DefaultKeyRange(ds, c.Scale)
		c.printf("\n[%s] key range %d, prefill %d\n", ds, k, k/2)
		header := Row{Label: "technique"}
		for _, n := range c.threadCounts() {
			header.Cells = append(header.Cells, fmt.Sprintf("n=%d", n))
		}
		var rows []Row
		for _, tech := range ModesFor(ds) {
			row := Row{Label: tech.String()}
			for _, n := range c.threadCounts() {
				threads := make([]Mix, 0, n+1)
				for i := 0; i < n; i++ {
					threads = append(threads, Updates5050)
				}
				threads = append(threads, RQOnly(100))
				r := c.run(TrialCfg{DS: ds, Tech: tech, KeyRange: k, Threads: threads})
				row.Cells = append(row.Cells, fmt.Sprintf("%.3f", r.TotalOpsPerUs()))
				c.csvRow("exp1", ds, tech, fmt.Sprintf("n=%d", n), "ops_per_us", r.TotalOpsPerUs())
				c.csvObsRows("exp1", ds, tech, fmt.Sprintf("n=%d", n), r)
			}
			rows = append(rows, row)
		}
		c.printf("%s", Table(header, rows))
	}
}

// Exp1b reproduces the limbo-list statistics reported in the text of
// Experiment 1: the distribution of limbo-list nodes visited per RQ, and
// the total limbo size at the end of the trial.
func (c ExpCfg) Exp1b() {
	c.defaults()
	c.printf("# Experiment 1b: limbo-list nodes visited per RQ (distribution)\n")
	c.printf("# and total limbo size, workload as in Experiment 1.\n")
	for _, ds := range AllStructures {
		k := DefaultKeyRange(ds, c.Scale)
		for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree} {
			n := c.Threads
			threads := make([]Mix, 0, n+1)
			for i := 0; i < n; i++ {
				threads = append(threads, Updates5050)
			}
			threads = append(threads, RQOnly(100))
			r := c.run(TrialCfg{DS: ds, Tech: tech, KeyRange: k, Threads: threads, Seed: c.Seed})
			c.printf("\n[%s/%s] rqs=%d avg visited=%.1f final limbo size=%d\n",
				ds, tech, r.RQs, float64(r.LimboVisit)/float64(max64(r.RQs, 1)), r.LimboSize)
			for _, b := range SortedBuckets(r.LimboHist) {
				c.printf("  visited %-12s : %d rqs\n", BucketLabel(b), r.LimboHist[b])
			}
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Exp2 reproduces Figure 6: a fixed population of threads performs 100%
// updates while the number of threads performing 100% RQs varies; total
// operations per microsecond versus RQ-thread count.
func (c ExpCfg) Exp2() {
	c.defaults()
	upd := c.Threads // the paper fixes 42 update threads on 48 hw threads
	rqCounts := []int{0, 1, 2, 4}
	c.printf("# Experiment 2 (Figure 6): %d threads perform 100%% updates;\n", upd)
	c.printf("# the number of RQ threads varies (ranges of 100). Total ops/us.\n")
	for _, ds := range AllStructures {
		k := DefaultKeyRange(ds, c.Scale)
		c.printf("\n[%s] key range %d\n", ds, k)
		header := Row{Label: "technique"}
		for _, rq := range rqCounts {
			header.Cells = append(header.Cells, fmt.Sprintf("rq=%d", rq))
		}
		var rows []Row
		for _, tech := range ModesFor(ds) {
			row := Row{Label: tech.String()}
			for _, rq := range rqCounts {
				threads := make([]Mix, 0, upd+rq)
				for i := 0; i < upd; i++ {
					threads = append(threads, Updates5050)
				}
				for i := 0; i < rq; i++ {
					threads = append(threads, RQOnly(100))
				}
				r := c.run(TrialCfg{DS: ds, Tech: tech, KeyRange: k, Threads: threads})
				row.Cells = append(row.Cells, fmt.Sprintf("%.3f", r.TotalOpsPerUs()))
				c.csvRow("exp2", ds, tech, fmt.Sprintf("rq=%d", rq), "ops_per_us", r.TotalOpsPerUs())
				c.csvObsRows("exp2", ds, tech, fmt.Sprintf("rq=%d", rq), r)
			}
			rows = append(rows, row)
		}
		c.printf("%s", Table(header, rows))
	}
}

// Exp3 reproduces Figure 7: threads perform 20% updates / 80% searches
// while one thread performs 100% RQs of varying size; reported are RQ
// throughput (left graphs) and update throughput (right graphs) for
// SkipList and Citrus.
func (c ExpCfg) Exp3() {
	c.defaults()
	c.printf("# Experiment 3 (Figure 7): %d threads perform 20%% updates /\n", c.Threads)
	c.printf("# 80%% searches, one thread performs RQs of varying size.\n")
	for _, ds := range []ebrrq.DataStructure{ebrrq.SkipList, ebrrq.Citrus} {
		k := DefaultKeyRange(ds, c.Scale)
		sizes := []int64{10, 100, 1000}
		for s := int64(10000); s <= k; s *= 10 {
			sizes = append(sizes, s)
		}
		if sizes[len(sizes)-1] != k {
			sizes = append(sizes, k)
		}
		c.printf("\n[%s] key range %d\n", ds, k)
		header := Row{Label: "technique"}
		for _, s := range sizes {
			header.Cells = append(header.Cells, fmt.Sprintf("rq=%d", s))
		}
		var rqRows, updRows []Row
		for _, tech := range ModesFor(ds) {
			rqRow := Row{Label: tech.String()}
			updRow := Row{Label: tech.String()}
			for _, s := range sizes {
				threads := make([]Mix, 0, c.Threads+1)
				for i := 0; i < c.Threads; i++ {
					threads = append(threads, Mix{InsertPct: 10, DeletePct: 10, SearchPct: 80})
				}
				threads = append(threads, RQOnly(s))
				r := c.run(TrialCfg{DS: ds, Tech: tech, KeyRange: k, Threads: threads})
				rqRow.Cells = append(rqRow.Cells, fmt.Sprintf("%.5f", r.RQsPerUs()))
				updRow.Cells = append(updRow.Cells, fmt.Sprintf("%.3f", r.UpdatesPerUs()))
				c.csvRow("exp3", ds, tech, fmt.Sprintf("rqsize=%d", s), "rqs_per_us", r.RQsPerUs())
				c.csvRow("exp3", ds, tech, fmt.Sprintf("rqsize=%d", s), "updates_per_us", r.UpdatesPerUs())
			}
			rqRows = append(rqRows, rqRow)
			updRows = append(updRows, updRow)
		}
		c.printf("RQ throughput (RQs/us):\n%s", Table(header, rqRows))
		c.printf("Update throughput (updates/us):\n%s", Table(header, updRows))
	}
}

// Exp4 reproduces Figure 8: every thread performs the mixed workload
// 10% inserts / 10% deletes / 78% searches / 2% RQs over ranges of 100;
// the table reports total operations per microsecond.
func (c ExpCfg) Exp4() {
	c.defaults()
	mix := Mix{InsertPct: 10, DeletePct: 10, SearchPct: 78, RQPct: 2, RQSize: 100}
	c.printf("# Experiment 4 (Figure 8): %d threads, each 10%% ins / 10%% del /\n", c.Threads)
	c.printf("# 78%% search / 2%% RQ(100). Total ops/us.\n\n")
	header := Row{Label: "structure"}
	for _, t := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree, ebrrq.RLU, ebrrq.Snap, ebrrq.Unsafe} {
		header.Cells = append(header.Cells, t.String())
	}
	var rows []Row
	for _, ds := range AllStructures {
		k := DefaultKeyRange(ds, c.Scale)
		row := Row{Label: ds.String()}
		for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree, ebrrq.RLU, ebrrq.Snap, ebrrq.Unsafe} {
			if !ebrrq.Supported(ds, tech) {
				row.Cells = append(row.Cells, "-")
				continue
			}
			threads := make([]Mix, c.Threads)
			for i := range threads {
				threads[i] = mix
			}
			r := c.run(TrialCfg{DS: ds, Tech: tech, KeyRange: k, Threads: threads})
			row.Cells = append(row.Cells, fmt.Sprintf("%.3f", r.TotalOpsPerUs()))
			c.csvRow("exp4", ds, tech, "mixed", "ops_per_us", r.TotalOpsPerUs())
		}
		rows = append(rows, row)
	}
	c.printf("%s", Table(header, rows))
}

// ExpLatency is an additional experiment (beyond the paper's figures, in
// support of its §5 discussion): per-technique range-query latency
// percentiles under the Experiment 1 workload — the latency view of why
// full-snapshot techniques hurt even when throughput looks tolerable.
func (c ExpCfg) ExpLatency() {
	c.defaults()
	c.printf("# RQ latency: p50/p99 of range-100 queries, %d updaters (50/50).\n\n", c.Threads)
	for _, ds := range []ebrrq.DataStructure{ebrrq.SkipList, ebrrq.ABTree} {
		k := DefaultKeyRange(ds, c.Scale)
		c.printf("[%s] key range %d\n", ds, k)
		header := Row{Label: "technique", Cells: []string{"p50", "p99"}}
		var rows []Row
		for _, tech := range ModesFor(ds) {
			threads := make([]Mix, 0, c.Threads+1)
			for i := 0; i < c.Threads; i++ {
				threads = append(threads, Updates5050)
			}
			threads = append(threads, RQOnly(100))
			// c.run merges latency samples across trials (Result.Merge),
			// so Trials > 1 yields percentiles over every sample instead
			// of the last trial's.
			r := c.run(TrialCfg{DS: ds, Tech: tech, KeyRange: k, Threads: threads})
			p50, p99 := r.RQLatencyPercentile(50), r.RQLatencyPercentile(99)
			rows = append(rows, Row{Label: tech.String(),
				Cells: []string{p50.String(), p99.String()}})
			c.csvRow("latency", ds, tech, "rq=100", "p50_ns", float64(p50.Nanoseconds()))
			c.csvRow("latency", ds, tech, "rq=100", "p99_ns", float64(p99.Nanoseconds()))
		}
		c.printf("%s\n", Table(header, rows))
	}
}
