package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/trace"
)

func TestRunTrialCountsOps(t *testing.T) {
	r, err := RunTrial(TrialCfg{
		DS: ebrrq.SkipList, Tech: ebrrq.LockFree, KeyRange: 1024,
		Threads:  []Mix{Updates5050, RQOnly(64), {SearchPct: 100}},
		Duration: 100 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.Updates == 0 || r.RQs == 0 || r.Searches == 0 {
		t.Fatalf("zero counts: %+v", r)
	}
	if r.Ops != r.Updates+r.RQs+r.Searches {
		t.Fatalf("op classes don't sum: %+v", r)
	}
	if r.TotalOpsPerUs() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunTrialUnsupported(t *testing.T) {
	_, err := RunTrial(TrialCfg{DS: ebrrq.ABTree, Tech: ebrrq.Snap,
		Threads: []Mix{Updates5050}, Duration: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("expected error for unsupported pair")
	}
}

func TestPrefillReachesTarget(t *testing.T) {
	set, err := ebrrq.New(ebrrq.LFBST, ebrrq.Lock, 2)
	if err != nil {
		t.Fatal(err)
	}
	Prefill(set, 2048, 5)
	th := set.NewThread()
	res := th.RangeQuery(0, 2047)
	if len(res) != 1024 {
		t.Fatalf("prefill produced %d keys, want 1024", len(res))
	}
}

func TestDefaultKeyRange(t *testing.T) {
	if DefaultKeyRange(ebrrq.ABTree, 1) != 1_000_000 {
		t.Fatal("ABTree key range")
	}
	if DefaultKeyRange(ebrrq.LFList, 1) != 10_000 {
		t.Fatal("list key range")
	}
	if DefaultKeyRange(ebrrq.SkipList, 10) != 10_000 {
		t.Fatal("scaling")
	}
	if DefaultKeyRange(ebrrq.LFList, 1<<30) != 128 {
		t.Fatal("floor")
	}
}

func TestHistBucket(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for v, want := range cases {
		if got := histBucket(v); got != want {
			t.Fatalf("histBucket(%d) = %d, want %d", v, got, want)
		}
	}
	if BucketLabel(0) != "0" || BucketLabel(3) != "4-7" {
		t.Fatal("bucket labels")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table(Row{Label: "h", Cells: []string{"a", "bb"}},
		[]Row{{Label: "long-label", Cells: []string{"1", "2"}}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

// TestRQBenchTraceSplits runs one tiny traced cell and checks the report
// point carries the flight-recorder phase splits and that the binary dump
// sink receives a parseable dump.
func TestRQBenchTraceSplits(t *testing.T) {
	var dump bytes.Buffer
	rep, err := RunRQBench(RQBenchCfg{
		DSs:   []ebrrq.DataStructure{ebrrq.SkipList},
		Techs: []ebrrq.Mode{ebrrq.LockFree}, Threads: []int{2},
		Trials: 1, Duration: 30 * time.Millisecond, Scale: 100,
		RQPcts: []int{50}, Combine: []bool{false},
		TraceDump: &dump,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.RQTraverseNs == 0 || pt.RQLimboNs == 0 || pt.RQAnnounceNs == 0 {
		t.Fatalf("phase splits missing: %+v", pt)
	}
	if split := pt.PhaseSplit(); !strings.Contains(split, "traverse") {
		t.Fatalf("PhaseSplit = %q", split)
	}
	snap, err := trace.ReadSnapshot(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatalf("trace dump does not parse: %v", err)
	}
	if len(snap.Rings) == 0 {
		t.Fatal("trace dump has no rings")
	}
}

// TestRQBenchNoTrace checks the disabled path leaves the splits zero (and
// therefore omitted from JSON).
func TestRQBenchNoTrace(t *testing.T) {
	rep, err := RunRQBench(RQBenchCfg{
		DSs:   []ebrrq.DataStructure{ebrrq.SkipList},
		Techs: []ebrrq.Mode{ebrrq.LockFree}, Threads: []int{1},
		Trials: 1, Duration: 20 * time.Millisecond, Scale: 100,
		RQPcts: []int{50}, Combine: []bool{false},
		NoTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt := rep.Points[0]; pt.PhaseSplit() != "" {
		t.Fatalf("NoTrace run still has phase data: %+v", pt)
	}
}

// TestRQBenchCombineCell checks that a combine-enabled cell runs, carries
// the /comb key suffix (so it never gates against a solo baseline), and
// that an update-heavy mix with more workers than procs actually exercises
// the funnel when the scheduler allows overlap. The counter assertion is
// overlap-dependent, so it only requires the cell to complete cleanly; the
// deterministic funnel coverage lives in internal/rqprov's failpoint tests.
func TestRQBenchCombineCell(t *testing.T) {
	rep, err := RunRQBench(RQBenchCfg{
		DSs:   []ebrrq.DataStructure{ebrrq.SkipList},
		Techs: []ebrrq.Mode{ebrrq.Lock}, Threads: []int{4},
		Trials: 1, Duration: 30 * time.Millisecond, Scale: 100,
		RQPcts: []int{0}, Combine: []bool{true},
		NoTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if !pt.Combine {
		t.Fatalf("point not marked combined: %+v", pt)
	}
	if !strings.HasSuffix(pt.Key(), "/comb") {
		t.Fatalf("combined key missing /comb suffix: %q", pt.Key())
	}
	if pt.RQPct != 0 || pt.RQsPerUs != 0 {
		t.Fatalf("rq_pct 0 cell still ran range queries: %+v", pt)
	}
	if pt.UpdatesPerUs <= 0 {
		t.Fatalf("no update throughput: %+v", pt)
	}
}

// TestRQBenchTechniqueCells: listing [EBR, Bundle] emits an interleaved
// A/B pair per cell; the bundle point collapses the mode dimension (one
// cell anchored at the first supported mode, even with two modes listed),
// carries the technique key suffix, and skips combined variants.
func TestRQBenchTechniqueCells(t *testing.T) {
	rep, err := RunRQBench(RQBenchCfg{
		DSs:   []ebrrq.DataStructure{ebrrq.LazyList},
		Techs: []ebrrq.Mode{ebrrq.Lock, ebrrq.LockFree}, Threads: []int{2},
		Trials: 1, Duration: 30 * time.Millisecond, Scale: 100,
		RQPcts: []int{10}, Combine: []bool{false, true},
		Techniques: []ebrrq.Technique{ebrrq.EBR, ebrrq.Bundle},
		NoTrace:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 modes × (EBR solo + EBR combined) + 1 anchored bundle solo cell.
	var ebrPts, bundlePts, bundleComb int
	for _, pt := range rep.Points {
		switch pt.Technique {
		case "ebr":
			ebrPts++
			if strings.Contains(pt.Key(), "/bundle") {
				t.Fatalf("EBR point has bundle key: %q", pt.Key())
			}
		case "bundle":
			bundlePts++
			if pt.Combine {
				bundleComb++
			}
			if !strings.HasSuffix(pt.Key(), "/bundle") {
				t.Fatalf("bundle key missing suffix: %q", pt.Key())
			}
			if pt.Tech != ebrrq.Lock.String() {
				t.Fatalf("bundle cell anchored at %q, want first supported mode %q",
					pt.Tech, ebrrq.Lock.String())
			}
		default:
			t.Fatalf("unexpected technique %q", pt.Technique)
		}
		if pt.Ops == 0 {
			t.Fatalf("cell %s ran no ops", pt.Key())
		}
	}
	if ebrPts != 4 || bundlePts != 1 || bundleComb != 0 {
		t.Fatalf("got %d EBR / %d bundle (%d combined) points, want 4 / 1 / 0",
			ebrPts, bundlePts, bundleComb)
	}
}

// TestTechniqueAnchor pins the mode-collapse rule.
func TestTechniqueAnchor(t *testing.T) {
	modes := []ebrrq.Mode{ebrrq.Unsafe, ebrrq.LockFree, ebrrq.Lock}
	if m, ok := techniqueAnchor(modes, ebrrq.SkipList, ebrrq.Bundle); !ok || m != ebrrq.LockFree {
		t.Fatalf("anchor = %v/%v, want LockFree (first supported)", m, ok)
	}
	if _, ok := techniqueAnchor(modes, ebrrq.LFBST, ebrrq.Bundle); ok {
		t.Fatal("anchor found for an unsupported structure")
	}
}

func TestRQEnvMismatch(t *testing.T) {
	a := RQReport{GOMAXPROCS: 1, NumCPU: 1, GoVersion: "go1.24.0"}
	if msgs := RQEnvMismatch(a, a); len(msgs) != 0 {
		t.Fatalf("identical envs mismatch: %v", msgs)
	}
	b := RQReport{GOMAXPROCS: 8, NumCPU: 16, GoVersion: "go1.25.0"}
	msgs := RQEnvMismatch(a, b)
	if len(msgs) != 3 {
		t.Fatalf("mismatch messages = %v, want 3", msgs)
	}
	for _, want := range []string{"gomaxprocs", "num_cpu", "go_version"} {
		found := false
		for _, m := range msgs {
			if strings.HasPrefix(m, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no %s message in %v", want, msgs)
		}
	}
}

func TestCompareRQReportsDrift(t *testing.T) {
	mk := func(scale float64, dips map[int]float64) RQReport {
		var r RQReport
		for i := 0; i < 8; i++ {
			v := scale
			if d, ok := dips[i]; ok {
				v = d
			}
			r.Points = append(r.Points, RQPoint{
				DS: "SkipList", Tech: "Lock", Threads: 8, RQPct: i,
				OpsPerUs: v, BestOpsPerUs: v,
			})
		}
		return r
	}
	base := mk(1.0, nil)

	if msgs := CompareRQReports(base, mk(1.0, nil), 0.20); len(msgs) != 0 {
		t.Fatalf("identical reports regressed: %v", msgs)
	}
	// Uniform 22% slowdown: outside the plain per-cell budget, but pure
	// host drift — the median correction absorbs it.
	if msgs := CompareRQReports(base, mk(0.78, nil), 0.20); len(msgs) != 0 {
		t.Fatalf("uniform 22%% drift tripped the gate: %v", msgs)
	}
	// One cell 40% down while its peers hold: a real regression; drift
	// (median ~1.0) must not mask it.
	if msgs := CompareRQReports(base, mk(1.0, map[int]float64{3: 0.60}), 0.20); len(msgs) != 1 {
		t.Fatalf("single-cell regression messages = %v, want 1", msgs)
	}
	// Uniform 40% slowdown: beyond the 25% drift clamp, so every cell
	// still trips — a genuine across-the-board regression is not excused.
	if msgs := CompareRQReports(base, mk(0.60, nil), 0.20); len(msgs) != 8 {
		t.Fatalf("uniform 40%% regression messages = %d, want 8", len(msgs))
	}
	// A faster host never tightens the gate: cells at baseline speed pass
	// even when the median ratio is above 1.
	if msgs := CompareRQReports(base, mk(1.5, map[int]float64{2: 0.95}), 0.20); len(msgs) != 0 {
		t.Fatalf("upward drift tightened the gate: %v", msgs)
	}
	// Combined-funnel cells are A/B instrumentation, not gated.
	combBase := base
	combBase.Points = append([]RQPoint(nil), base.Points...)
	combBase.Points = append(combBase.Points, RQPoint{
		DS: "SkipList", Tech: "Lock", Threads: 8, RQPct: 0, Combine: true,
		OpsPerUs: 1.0, BestOpsPerUs: 1.0,
	})
	combCur := mk(1.0, nil)
	combCur.Points = append(combCur.Points, RQPoint{
		DS: "SkipList", Tech: "Lock", Threads: 8, RQPct: 0, Combine: true,
		OpsPerUs: 0.4, BestOpsPerUs: 0.4,
	})
	if msgs := CompareRQReports(combBase, combCur, 0.20); len(msgs) != 0 {
		t.Fatalf("combined cell was gated: %v", msgs)
	}
}

func TestMinRQReports(t *testing.T) {
	pt := func(rq int, ops, best float64) RQPoint {
		return RQPoint{DS: "SkipList", Tech: "Lock", Threads: 8, RQPct: rq,
			OpsPerUs: ops, BestOpsPerUs: best}
	}
	cur := RQReport{Points: []RQPoint{pt(0, 1.0, 1.2), pt(10, 0.5, 0.6)}}
	prev := RQReport{Points: []RQPoint{pt(0, 0.8, 1.4), pt(50, 0.3, 0.4)}}
	got := MinRQReports(cur, prev)
	if len(got.Points) != 2 {
		t.Fatalf("points = %d, want 2 (prev-only cells dropped)", len(got.Points))
	}
	// rq0: ops takes prev's lower 0.8, best keeps cur's lower 1.2.
	if got.Points[0].OpsPerUs != 0.8 || got.Points[0].BestOpsPerUs != 1.2 {
		t.Fatalf("rq0 = %+v, want ops 0.8 / best 1.2", got.Points[0])
	}
	// rq10: absent from prev, unchanged.
	if got.Points[1].OpsPerUs != 0.5 || got.Points[1].BestOpsPerUs != 0.6 {
		t.Fatalf("rq10 = %+v, want unchanged", got.Points[1])
	}
}

// TestExperimentsSmoke runs each experiment driver at a tiny scale to make
// sure every figure/table can be regenerated end to end.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke is slow")
	}
	var buf bytes.Buffer
	cfg := ExpCfg{Threads: 2, Scale: 1 << 8, Duration: 20 * time.Millisecond, Out: &buf, Seed: 1}
	cfg.Exp1()
	if !strings.Contains(buf.String(), "[ABTree]") || !strings.Contains(buf.String(), "Lock-free") {
		t.Fatalf("Exp1 output incomplete:\n%s", buf.String())
	}
	buf.Reset()
	cfg.Exp2()
	if !strings.Contains(buf.String(), "rq=4") {
		t.Fatal("Exp2 output incomplete")
	}
	buf.Reset()
	cfg.Exp3()
	if !strings.Contains(buf.String(), "RQ throughput") || !strings.Contains(buf.String(), "Update throughput") {
		t.Fatal("Exp3 output incomplete")
	}
	buf.Reset()
	cfg.Exp4()
	if !strings.Contains(buf.String(), "SkipList") {
		t.Fatal("Exp4 output incomplete")
	}
	buf.Reset()
	cfg.Exp1b()
	if !strings.Contains(buf.String(), "limbo") {
		t.Fatal("Exp1b output incomplete")
	}
}
