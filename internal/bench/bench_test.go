package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ebrrq"
	"ebrrq/internal/trace"
)

func TestRunTrialCountsOps(t *testing.T) {
	r, err := RunTrial(TrialCfg{
		DS: ebrrq.SkipList, Tech: ebrrq.LockFree, KeyRange: 1024,
		Threads:  []Mix{Updates5050, RQOnly(64), {SearchPct: 100}},
		Duration: 100 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.Updates == 0 || r.RQs == 0 || r.Searches == 0 {
		t.Fatalf("zero counts: %+v", r)
	}
	if r.Ops != r.Updates+r.RQs+r.Searches {
		t.Fatalf("op classes don't sum: %+v", r)
	}
	if r.TotalOpsPerUs() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestRunTrialUnsupported(t *testing.T) {
	_, err := RunTrial(TrialCfg{DS: ebrrq.ABTree, Tech: ebrrq.Snap,
		Threads: []Mix{Updates5050}, Duration: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("expected error for unsupported pair")
	}
}

func TestPrefillReachesTarget(t *testing.T) {
	set, err := ebrrq.New(ebrrq.LFBST, ebrrq.Lock, 2)
	if err != nil {
		t.Fatal(err)
	}
	Prefill(set, 2048, 5)
	th := set.NewThread()
	res := th.RangeQuery(0, 2047)
	if len(res) != 1024 {
		t.Fatalf("prefill produced %d keys, want 1024", len(res))
	}
}

func TestDefaultKeyRange(t *testing.T) {
	if DefaultKeyRange(ebrrq.ABTree, 1) != 1_000_000 {
		t.Fatal("ABTree key range")
	}
	if DefaultKeyRange(ebrrq.LFList, 1) != 10_000 {
		t.Fatal("list key range")
	}
	if DefaultKeyRange(ebrrq.SkipList, 10) != 10_000 {
		t.Fatal("scaling")
	}
	if DefaultKeyRange(ebrrq.LFList, 1<<30) != 128 {
		t.Fatal("floor")
	}
}

func TestHistBucket(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for v, want := range cases {
		if got := histBucket(v); got != want {
			t.Fatalf("histBucket(%d) = %d, want %d", v, got, want)
		}
	}
	if BucketLabel(0) != "0" || BucketLabel(3) != "4-7" {
		t.Fatal("bucket labels")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table(Row{Label: "h", Cells: []string{"a", "bb"}},
		[]Row{{Label: "long-label", Cells: []string{"1", "2"}}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

// TestRQBenchTraceSplits runs one tiny traced cell and checks the report
// point carries the flight-recorder phase splits and that the binary dump
// sink receives a parseable dump.
func TestRQBenchTraceSplits(t *testing.T) {
	var dump bytes.Buffer
	rep, err := RunRQBench(RQBenchCfg{
		DSs:   []ebrrq.DataStructure{ebrrq.SkipList},
		Techs: []ebrrq.Technique{ebrrq.LockFree}, Threads: []int{2},
		Trials: 1, Duration: 30 * time.Millisecond, Scale: 100,
		TraceDump: &dump,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.RQTraverseNs == 0 || pt.RQLimboNs == 0 || pt.RQAnnounceNs == 0 {
		t.Fatalf("phase splits missing: %+v", pt)
	}
	if split := pt.PhaseSplit(); !strings.Contains(split, "traverse") {
		t.Fatalf("PhaseSplit = %q", split)
	}
	snap, err := trace.ReadSnapshot(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatalf("trace dump does not parse: %v", err)
	}
	if len(snap.Rings) == 0 {
		t.Fatal("trace dump has no rings")
	}
}

// TestRQBenchNoTrace checks the disabled path leaves the splits zero (and
// therefore omitted from JSON).
func TestRQBenchNoTrace(t *testing.T) {
	rep, err := RunRQBench(RQBenchCfg{
		DSs:   []ebrrq.DataStructure{ebrrq.SkipList},
		Techs: []ebrrq.Technique{ebrrq.LockFree}, Threads: []int{1},
		Trials: 1, Duration: 20 * time.Millisecond, Scale: 100,
		NoTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt := rep.Points[0]; pt.PhaseSplit() != "" {
		t.Fatalf("NoTrace run still has phase data: %+v", pt)
	}
}

func TestRQEnvMismatch(t *testing.T) {
	a := RQReport{GOMAXPROCS: 1, NumCPU: 1, GoVersion: "go1.24.0"}
	if msgs := RQEnvMismatch(a, a); len(msgs) != 0 {
		t.Fatalf("identical envs mismatch: %v", msgs)
	}
	b := RQReport{GOMAXPROCS: 8, NumCPU: 16, GoVersion: "go1.25.0"}
	msgs := RQEnvMismatch(a, b)
	if len(msgs) != 3 {
		t.Fatalf("mismatch messages = %v, want 3", msgs)
	}
	for _, want := range []string{"gomaxprocs", "num_cpu", "go_version"} {
		found := false
		for _, m := range msgs {
			if strings.HasPrefix(m, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no %s message in %v", want, msgs)
		}
	}
}

// TestExperimentsSmoke runs each experiment driver at a tiny scale to make
// sure every figure/table can be regenerated end to end.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke is slow")
	}
	var buf bytes.Buffer
	cfg := ExpCfg{Threads: 2, Scale: 1 << 8, Duration: 20 * time.Millisecond, Out: &buf, Seed: 1}
	cfg.Exp1()
	if !strings.Contains(buf.String(), "[ABTree]") || !strings.Contains(buf.String(), "Lock-free") {
		t.Fatalf("Exp1 output incomplete:\n%s", buf.String())
	}
	buf.Reset()
	cfg.Exp2()
	if !strings.Contains(buf.String(), "rq=4") {
		t.Fatal("Exp2 output incomplete")
	}
	buf.Reset()
	cfg.Exp3()
	if !strings.Contains(buf.String(), "RQ throughput") || !strings.Contains(buf.String(), "Update throughput") {
		t.Fatal("Exp3 output incomplete")
	}
	buf.Reset()
	cfg.Exp4()
	if !strings.Contains(buf.String(), "SkipList") {
		t.Fatal("Exp4 output incomplete")
	}
	buf.Reset()
	cfg.Exp1b()
	if !strings.Contains(buf.String(), "limbo") {
		t.Fatal("Exp1b output incomplete")
	}
}
