// Package bench is the microbenchmark harness reproducing the paper's
// experiments (§5): timed trials of mixed insert/delete/search/range-query
// workloads over every data structure × technique pair, with throughput
// accounting split by operation class and the limbo-list statistics of
// Experiment 1b.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ebrrq"
	"ebrrq/internal/obs"
	"ebrrq/internal/trace"
)

// Mix is one worker thread's operation mix, in percent. RQPct queries span
// RQSize consecutive keys at a uniform offset.
type Mix struct {
	InsertPct, DeletePct, SearchPct, RQPct int
	RQSize                                 int64
}

// Updates5050 is the canonical 50% insert / 50% delete updater.
var Updates5050 = Mix{InsertPct: 50, DeletePct: 50}

// RQOnly performs 100% range queries of the given size.
func RQOnly(size int64) Mix { return Mix{RQPct: 100, RQSize: size} }

// TrialCfg configures one timed trial.
type TrialCfg struct {
	DS       ebrrq.DataStructure
	Tech     ebrrq.Mode
	KeyRange int64 // keys drawn uniformly from [0, KeyRange)
	Threads  []Mix // one worker per entry
	Duration time.Duration
	Seed     int64

	// Technique selects the range-query algorithm family (nil = EBR, the
	// paper's provider; ebrrq.Bundle = bundled references). With Bundle
	// the Tech mode only names the benchmark cell — the bundled structures
	// use their own locking.
	Technique ebrrq.Technique

	// Shards > 1 runs the trial against an ebrrq.Sharded set partitioning
	// [0, KeyRange) across that many shards on one shared clock; 0 or 1
	// selects the plain single-provider Set.
	Shards int

	// Metrics, if non-nil, is the observability registry the trial's set
	// reports to — typically shared with a live obs.Serve endpoint. When
	// nil, RunTrial creates a private registry so Result accounting always
	// reads from the same instrumentation the endpoint would.
	Metrics *obs.Registry

	// NoMetrics runs the trial with observability disabled entirely (the
	// zero-cost default path of ebrrq.Options). Used for the metrics-on
	// vs. metrics-off overhead comparison; registry-derived Result fields
	// (LimboVisit, LimboHist, HTMAborts, Obs) stay zero.
	NoMetrics bool

	// Trace, if non-nil, attaches the flight recorder to the trial's set:
	// every worker gets a per-thread ring and the registry collects the
	// per-phase RQ time counters (ebrrq_rq_{ts_wait,traverse,announce,
	// limbo}_ns_total). Nil runs the zero-cost disabled path.
	Trace *trace.Recorder

	// Combine enables the aggregating update funnel on the trial's set
	// (ebrrq.Options.CombineUpdates / per shard when sharded); CombineBatch
	// caps the batch (0 = maxThreads).
	Combine      bool
	CombineBatch int
}

// Result aggregates a trial's measurements. Throughput counters come from
// the worker loops; limbo, abort and histogram statistics are read from
// the trial's observability registry (the same series a live /metrics
// endpoint serves), so benchmark output and monitoring can never disagree.
type Result struct {
	Elapsed    time.Duration
	Ops        uint64 // all completed operations
	Updates    uint64 // completed inserts + deletes (successful or not)
	Searches   uint64
	RQs        uint64
	RQKeys     uint64 // total keys returned by range queries
	LimboVisit uint64 // limbo-list nodes visited by RQs (provider techniques)
	LimboHist  [24]uint64
	LimboSize  int // EBR limbo size at the end of the trial
	HTMAborts  uint64

	// PeakLimboNodes/PeakLimboBytes are the highest unreclaimed-garbage
	// gauges (nodes and approximate bytes, limbo plus quarantine, summed
	// across shards) a 1ms sampler observed during the measured window —
	// the memory-bound figure BENCH_rq.json reports next to throughput.
	PeakLimboNodes int64
	PeakLimboBytes int64

	// Obs is the trial's observability delta: every metric the registry
	// collected between the start and the end of the measured window.
	Obs obs.Snapshot

	// rqLat is a sample of range-query latencies in nanoseconds.
	rqLat []int64
}

// RQLatencies returns the sampled range-query latencies (nanoseconds), in
// collection order. The caller may sort or mutate the returned slice.
func (r *Result) RQLatencies() []int64 {
	return append([]int64(nil), r.rqLat...)
}

// Merge folds another trial's result into r: counters, histograms and the
// observability snapshot add; latency samples are concatenated (so
// cross-trial percentiles weigh every sample, not just the last trial's);
// LimboSize keeps the most recent trial's end-of-run value.
func (r *Result) Merge(o *Result) {
	r.Elapsed += o.Elapsed
	r.Ops += o.Ops
	r.Updates += o.Updates
	r.Searches += o.Searches
	r.RQs += o.RQs
	r.RQKeys += o.RQKeys
	r.LimboVisit += o.LimboVisit
	for b := range r.LimboHist {
		r.LimboHist[b] += o.LimboHist[b]
	}
	r.LimboSize = o.LimboSize
	r.HTMAborts += o.HTMAborts
	if o.PeakLimboNodes > r.PeakLimboNodes {
		r.PeakLimboNodes = o.PeakLimboNodes
	}
	if o.PeakLimboBytes > r.PeakLimboBytes {
		r.PeakLimboBytes = o.PeakLimboBytes
	}
	r.Obs = r.Obs.Add(o.Obs)
	r.rqLat = append(r.rqLat, o.rqLat...)
}

// RQLatencyPercentile returns the p-th percentile (0 < p <= 100) of sampled
// range-query latencies, or 0 if no RQs were sampled.
func (r *Result) RQLatencyPercentile(p float64) time.Duration {
	if len(r.rqLat) == 0 {
		return 0
	}
	sort.Slice(r.rqLat, func(i, j int) bool { return r.rqLat[i] < r.rqLat[j] })
	idx := int(p/100*float64(len(r.rqLat))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.rqLat) {
		idx = len(r.rqLat) - 1
	}
	return time.Duration(r.rqLat[idx])
}

// TotalOpsPerUs returns total operations per microsecond (the paper's
// headline metric).
func (r Result) TotalOpsPerUs() float64 {
	return float64(r.Ops) / float64(r.Elapsed.Microseconds())
}

// UpdatesPerUs returns updates per microsecond.
func (r Result) UpdatesPerUs() float64 {
	return float64(r.Updates) / float64(r.Elapsed.Microseconds())
}

// RQsPerUs returns range queries per microsecond.
func (r Result) RQsPerUs() float64 {
	return float64(r.RQs) / float64(r.Elapsed.Microseconds())
}

// opHandle is the per-goroutine operation surface the workers drive; both
// *ebrrq.Thread and *ebrrq.ShardedThread satisfy it, so one worker loop
// benchmarks plain and sharded sets alike.
type opHandle interface {
	Insert(key, value int64) bool
	Delete(key int64) bool
	Contains(key int64) (int64, bool)
	RangeQuery(low, high int64) []ebrrq.KV
	Close()
}

// RunTrial prefills the structure to half the key range and runs the
// configured worker threads for the configured duration.
func RunTrial(cfg TrialCfg) (Result, error) {
	if cfg.KeyRange <= 0 {
		cfg.KeyRange = 1 << 14
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	reg := cfg.Metrics
	if !cfg.NoMetrics && reg == nil {
		reg = obs.NewRegistry(len(cfg.Threads) + 1)
	}
	if cfg.NoMetrics {
		reg = nil
	}
	// newHandle registers a worker; limboSize and htmAborts read the
	// end-of-trial provider stats (summed across shards when sharded).
	var newHandle func() opHandle
	var limboSize func() int
	var limboGauges func() (nodes, bytes int64)
	var htmAborts func() uint64
	if cfg.Shards > 1 {
		sh, err := ebrrq.NewShardedWithOptions(cfg.DS, cfg.Tech, len(cfg.Threads)+1,
			cfg.Shards, ebrrq.ShardedOptions{
				Technique: cfg.Technique,
				Metrics:   reg, Trace: cfg.Trace,
				KeyMin: 0, KeyMax: cfg.KeyRange - 1,
				CombineUpdates: cfg.Combine, CombineBatch: cfg.CombineBatch})
		if err != nil {
			return Result{}, err
		}
		newHandle = func() opHandle { return sh.NewThread() }
		limboSize = func() (n int) {
			for i := 0; i < sh.Shards(); i++ {
				n += sh.Shard(i).LimboSize()
			}
			return n
		}
		limboGauges = func() (nodes, bytes int64) {
			for i := 0; i < sh.Shards(); i++ {
				n, b := sh.Shard(i).UnreclaimedNodes(), sh.Shard(i).UnreclaimedBytes()
				nodes += n
				bytes += b
			}
			return nodes, bytes
		}
		htmAborts = func() (n uint64) {
			for i := 0; i < sh.Shards(); i++ {
				n += sh.Shard(i).HTMAborts()
			}
			return n
		}
	} else {
		set, err := ebrrq.NewWithOptions(cfg.DS, cfg.Tech, len(cfg.Threads)+1,
			ebrrq.Options{Technique: cfg.Technique,
				Metrics: reg, Trace: cfg.Trace,
				CombineUpdates: cfg.Combine, CombineBatch: cfg.CombineBatch})
		if err != nil {
			return Result{}, err
		}
		newHandle = func() opHandle { return set.NewThread() }
		if set.Domain() != nil {
			limboSize = set.LimboSize
			limboGauges = func() (nodes, bytes int64) {
				return set.UnreclaimedNodes(), set.UnreclaimedBytes()
			}
			htmAborts = set.HTMAborts
		}
	}
	prefill(newHandle(), cfg.KeyRange, cfg.Seed)

	type counters struct {
		ops, upd, srch, rqs, rqKeys uint64
		lat                         []int64
		_                           [40]byte
	}
	counts := make([]counters, len(cfg.Threads))
	const maxLatSamples = 4096

	var start, stop sync.WaitGroup
	var halt atomic.Bool
	start.Add(1)
	for w, mix := range cfg.Threads {
		stop.Add(1)
		go func(w int, mix Mix) {
			defer stop.Done()
			th := newHandle()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			c := &counts[w]
			start.Wait()
			for !halt.Load() {
				p := r.Intn(100)
				k := r.Int63n(cfg.KeyRange)
				switch {
				case p < mix.InsertPct:
					th.Insert(k, k)
					c.upd++
				case p < mix.InsertPct+mix.DeletePct:
					th.Delete(k)
					c.upd++
				case p < mix.InsertPct+mix.DeletePct+mix.SearchPct:
					th.Contains(k)
					c.srch++
				default:
					width := mix.RQSize
					lo := int64(0)
					if width <= 0 || width >= cfg.KeyRange {
						width = cfg.KeyRange
					} else {
						lo = r.Int63n(cfg.KeyRange - width)
					}
					sample := len(c.lat) < maxLatSamples && c.rqs%8 == 0
					var t0 time.Time
					if sample {
						t0 = time.Now()
					}
					res := th.RangeQuery(lo, lo+width-1)
					if sample {
						c.lat = append(c.lat, time.Since(t0).Nanoseconds())
					}
					c.rqs++
					c.rqKeys += uint64(len(res))
				}
				c.ops++
			}
		}(w, mix)
	}

	var before obs.Snapshot
	if reg != nil {
		before = reg.Snapshot()
	}
	// Peak-limbo sampler: the O(1) gauges make a 1ms poll free, and the peak
	// is the number the memory-bound story is judged by — the end-of-trial
	// LimboSize only shows what was left, not how high the water rose.
	var peakNodes, peakBytes int64
	peakDone := make(chan struct{})
	if limboGauges != nil {
		go func() {
			defer close(peakDone)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for !halt.Load() {
				<-tick.C
				n, b := limboGauges()
				if n > peakNodes {
					peakNodes = n
				}
				if b > peakBytes {
					peakBytes = b
				}
			}
		}()
	} else {
		close(peakDone)
	}
	t0 := time.Now()
	start.Done()
	time.Sleep(cfg.Duration)
	halt.Store(true)
	stop.Wait()
	<-peakDone
	elapsed := time.Since(t0)

	res := Result{Elapsed: elapsed}
	for i := range counts {
		res.Ops += counts[i].ops
		res.Updates += counts[i].upd
		res.Searches += counts[i].srch
		res.RQs += counts[i].rqs
		res.RQKeys += counts[i].rqKeys
		res.rqLat = append(res.rqLat, counts[i].lat...)
	}
	if reg != nil {
		// Limbo, abort and histogram statistics come from the registry —
		// the same series a live /metrics endpoint serves.
		res.Obs = reg.Snapshot().Sub(before)
		res.LimboVisit = res.Obs.Counter("ebrrq_limbo_visited_total")
		res.HTMAborts = res.Obs.Counter("ebrrq_htm_aborts_total")
		if h, ok := res.Obs.Hist("ebrrq_limbo_visited_per_rq"); ok {
			for b, v := range h.Buckets {
				dst := b
				if dst >= len(res.LimboHist) {
					dst = len(res.LimboHist) - 1
				}
				res.LimboHist[dst] += v
			}
		}
	}
	if limboSize != nil {
		res.LimboSize = limboSize()
	}
	res.PeakLimboNodes = peakNodes
	res.PeakLimboBytes = peakBytes
	if reg == nil && htmAborts != nil {
		// Observability disabled: fall back to the lock's raw abort
		// count so the overhead A/B still reports aborts.
		res.HTMAborts = htmAborts()
	}
	return res, nil
}

// histBucket maps a limbo-visit count to a power-of-two bucket index.
func histBucket(v uint64) int {
	b := 0
	for v > 0 && b < 23 {
		v >>= 1
		b++
	}
	return b
}

// BucketLabel renders a histogram bucket's range.
func BucketLabel(b int) string {
	if b == 0 {
		return "0"
	}
	return fmt.Sprintf("%d-%d", 1<<(b-1), (1<<b)-1)
}

// Prefill inserts random keys until the set holds KeyRange/2 of them
// (paper §5: "data structures are prefilled with approximately K/2 keys").
func Prefill(set *ebrrq.Set, keyRange int64, seed int64) {
	prefill(set.NewThread(), keyRange, seed)
}

// prefill is Prefill over any operation handle (plain or sharded). The
// handle is left open: callers budget one extra thread slot for it.
func prefill(th opHandle, keyRange int64, seed int64) {
	r := rand.New(rand.NewSource(seed + 424243))
	for inserted := int64(0); inserted < keyRange/2; {
		k := r.Int63n(keyRange)
		if th.Insert(k, k) {
			inserted++
		}
	}
}

// DefaultKeyRange returns the paper's key range for a structure (§5
// Experiment 1), divided by scale (>= 1) to fit smaller machines.
func DefaultKeyRange(d ebrrq.DataStructure, scale int64) int64 {
	if scale < 1 {
		scale = 1
	}
	var k int64
	switch d {
	case ebrrq.ABTree:
		k = 1_000_000
	case ebrrq.LFBST, ebrrq.Citrus, ebrrq.SkipList:
		k = 100_000
	default: // lists: linear operations
		k = 10_000
	}
	k /= scale
	if k < 128 {
		k = 128
	}
	return k
}

// Row is one line of an experiment table.
type Row struct {
	Label string
	Cells []string
}

// Table renders rows with aligned columns.
func Table(header Row, rows []Row) string {
	widths := make([]int, len(header.Cells)+1)
	widths[0] = len(header.Label)
	for i, c := range header.Cells {
		widths[i+1] = len(c)
	}
	for _, r := range rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, c := range r.Cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}
	line := func(r Row) string {
		s := fmt.Sprintf("%-*s", widths[0], r.Label)
		for i, c := range r.Cells {
			w := 0
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			s += fmt.Sprintf("  %*s", w, c)
		}
		return s + "\n"
	}
	out := line(header)
	for _, r := range rows {
		out += line(r)
	}
	return out
}

// ModesFor lists the techniques applicable to a structure in the
// paper's presentation order.
func ModesFor(d ebrrq.DataStructure) []ebrrq.Mode {
	all := []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree,
		ebrrq.RLU, ebrrq.Snap, ebrrq.Unsafe}
	var out []ebrrq.Mode
	for _, t := range all {
		if ebrrq.Supported(d, t) {
			out = append(out, t)
		}
	}
	return out
}

// SortedBuckets returns the non-empty histogram buckets in order.
func SortedBuckets(h [24]uint64) []int {
	var out []int
	for b, c := range h {
		if c > 0 {
			out = append(out, b)
		}
	}
	sort.Ints(out)
	return out
}
