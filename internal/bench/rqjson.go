package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"ebrrq"
	"ebrrq/internal/trace"
)

// RQPoint is one machine-readable data point of the RQ-mix benchmark: a
// (structure, technique, thread-count) cell of the mixed update/range-query
// workload, with throughput split by class, RQ latency percentiles and the
// provider's hot-path counters (timestamp sharing and bag-fence skips).
type RQPoint struct {
	DS       string `json:"ds"`
	Tech     string `json:"tech"`
	Threads  int    `json:"threads"`
	RQPct    int    `json:"rq_pct"`
	RQSize   int64  `json:"rq_size"`
	KeyRange int64  `json:"key_range"`
	Trials   int    `json:"trials"`
	// Shards is the shard count of the sharded-set cell; 0 or 1 means the
	// plain single-provider Set (omitted from JSON for compatibility with
	// pre-sharding baselines).
	Shards int `json:"shards,omitempty"`

	ElapsedMs    int64   `json:"elapsed_ms"`
	Ops          uint64  `json:"ops"`
	OpsPerUs     float64 `json:"ops_per_us"`
	UpdatesPerUs float64 `json:"updates_per_us"`
	RQsPerUs     float64 `json:"rqs_per_us"`

	RQP50ns int64 `json:"rq_p50_ns"`
	RQP90ns int64 `json:"rq_p90_ns"`
	RQP99ns int64 `json:"rq_p99_ns"`

	LimboVisited uint64 `json:"limbo_visited"`
	// Peak unreclaimed garbage (nodes / approximate bytes, limbo plus
	// quarantine, max across trials) sampled every 1ms during the measured
	// window. Omitted when zero for compatibility with older baselines.
	PeakLimboNodes int64  `json:"peak_limbo_nodes,omitempty"`
	PeakLimboBytes int64  `json:"peak_limbo_bytes,omitempty"`
	TSShared       uint64 `json:"ts_shared"`
	TSAdvanced     uint64 `json:"ts_advanced"`
	FenceShared    uint64 `json:"fence_shared"`
	BagsSkipped    uint64 `json:"bags_skipped"`
	BagsSwept      uint64 `json:"bags_swept"`

	// Per-phase RQ time splits (total ns across all trials), collected by
	// the flight recorder; zero (and omitted) when tracing was off. Only
	// meaningful relative to each other — they overlap wall time across
	// workers.
	RQTSWaitNs   uint64 `json:"rq_ts_wait_ns,omitempty"`
	RQTraverseNs uint64 `json:"rq_traverse_ns,omitempty"`
	RQAnnounceNs uint64 `json:"rq_announce_ns,omitempty"`
	RQLimboNs    uint64 `json:"rq_limbo_ns,omitempty"`
}

// Key identifies the point's workload cell for baseline comparison. Plain
// (unsharded) cells keep their historical key, so refactored single-shard
// runs gate against pre-sharding baselines; sharded cells get a distinct
// suffix and are ignored by baselines that predate them.
func (p RQPoint) Key() string {
	k := fmt.Sprintf("%s/%s/t%d/rq%d", p.DS, p.Tech, p.Threads, p.RQPct)
	if p.Shards > 1 {
		k += fmt.Sprintf("/s%d", p.Shards)
	}
	return k
}

// RQReport is the BENCH_rq.json document: the host fingerprint plus one
// point per workload cell.
type RQReport struct {
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	GoVersion  string    `json:"go_version"`
	Points     []RQPoint `json:"points"`
}

// RQBenchCfg parameterizes RunRQBench. Zero values select the quick
// configuration used by `make bench-quick` and the CI bench-smoke job.
type RQBenchCfg struct {
	DSs      []ebrrq.DataStructure
	Techs    []ebrrq.Technique
	Threads  []int
	RQPct    int   // percent of operations that are range queries
	RQSize   int64 // keys spanned per range query
	Scale    int64 // key-range divisor (see DefaultKeyRange)
	Trials   int
	Duration time.Duration
	Seed     int64
	Out      io.Writer // progress lines; nil silences
	// Shards lists the shard counts to run each cell at; values <= 1 mean
	// the plain Set. Default [1].
	Shards []int

	// NoTrace disables the flight recorder (tracing is on by default: the
	// recorder is how the per-phase RQ splits are collected, and its
	// overhead is within noise — see EXPERIMENTS.md "Flight recorder
	// overhead").
	NoTrace bool
	// TraceDump, if non-nil, receives the binary flight-recorder dump of
	// the final trial (feed it to cmd/rqtrace). Ignored with NoTrace.
	TraceDump io.Writer
}

func (c *RQBenchCfg) defaults() {
	if len(c.DSs) == 0 {
		c.DSs = []ebrrq.DataStructure{ebrrq.SkipList, ebrrq.LFList}
	}
	if len(c.Techs) == 0 {
		c.Techs = []ebrrq.Technique{ebrrq.Lock, ebrrq.LockFree}
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{8}
	}
	if c.RQPct <= 0 {
		c.RQPct = 50
	}
	if c.RQSize <= 0 {
		c.RQSize = 64
	}
	if c.Scale <= 0 {
		c.Scale = 10
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Duration <= 0 {
		c.Duration = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1}
	}
}

// RunRQBench runs the RQ-heavy mixed workload across every configured
// (structure, technique, thread-count) cell: each worker thread performs
// RQPct% range queries of RQSize keys and splits the remainder evenly
// between inserts and deletes.
func RunRQBench(cfg RQBenchCfg) (RQReport, error) {
	cfg.defaults()
	rep := RQReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	var lastRec *trace.Recorder
	upd := (100 - cfg.RQPct) / 2
	for _, ds := range cfg.DSs {
		for _, tech := range cfg.Techs {
			if !ebrrq.Supported(ds, tech) {
				continue
			}
			for _, nt := range cfg.Threads {
				for _, shards := range cfg.Shards {
					mix := Mix{InsertPct: upd, DeletePct: upd,
						RQPct: 100 - 2*upd, RQSize: cfg.RQSize}
					threads := make([]Mix, nt)
					for i := range threads {
						threads[i] = mix
					}
					keyRange := DefaultKeyRange(ds, cfg.Scale)
					var total Result
					for trial := 0; trial < cfg.Trials; trial++ {
						// One recorder per trial: each trial builds a fresh
						// set, so sharing a recorder would pile up rings with
						// duplicate labels. The last trial's recorder feeds
						// TraceDump.
						var rec *trace.Recorder
						if !cfg.NoTrace {
							rec = trace.NewRecorder(trace.Config{EventsPerRing: 1024})
							lastRec = rec
						}
						res, err := RunTrial(TrialCfg{
							DS: ds, Tech: tech, KeyRange: keyRange,
							Threads: threads, Duration: cfg.Duration,
							Seed:   cfg.Seed + int64(trial)*31337,
							Shards: shards,
							Trace:  rec,
						})
						if err != nil {
							return rep, err
						}
						total.Merge(&res)
					}
					ptShards := 0
					if shards > 1 {
						ptShards = shards
					}
					pt := RQPoint{
						DS: ds.String(), Tech: tech.String(), Threads: nt,
						RQPct: mix.RQPct, RQSize: cfg.RQSize, KeyRange: keyRange,
						Trials:         cfg.Trials,
						Shards:         ptShards,
						ElapsedMs:      total.Elapsed.Milliseconds(),
						Ops:            total.Ops,
						OpsPerUs:       total.TotalOpsPerUs(),
						UpdatesPerUs:   total.UpdatesPerUs(),
						RQsPerUs:       total.RQsPerUs(),
						RQP50ns:        int64(total.RQLatencyPercentile(50)),
						RQP90ns:        int64(total.RQLatencyPercentile(90)),
						RQP99ns:        int64(total.RQLatencyPercentile(99)),
						LimboVisited:   total.LimboVisit,
						PeakLimboNodes: total.PeakLimboNodes,
						PeakLimboBytes: total.PeakLimboBytes,
						TSShared:       total.Obs.Counter("ebrrq_rq_ts_shared"),
						TSAdvanced:     total.Obs.Counter("ebrrq_rq_ts_advanced"),
						FenceShared:    total.Obs.Counter("ebrrq_rq_fence_shared"),
						BagsSkipped:    total.Obs.Counter("ebrrq_rq_bags_skipped"),
						BagsSwept:      total.Obs.Counter("ebrrq_rq_bags_swept"),
						RQTSWaitNs:     total.Obs.Counter("ebrrq_rq_ts_wait_ns_total"),
						RQTraverseNs:   total.Obs.Counter("ebrrq_rq_traverse_ns_total"),
						RQAnnounceNs:   total.Obs.Counter("ebrrq_rq_announce_ns_total"),
						RQLimboNs:      total.Obs.Counter("ebrrq_rq_limbo_ns_total"),
					}
					rep.Points = append(rep.Points, pt)
					if cfg.Out != nil {
						fmt.Fprintf(cfg.Out,
							"%-20s %6.3f ops/us  %6.3f rq/us  p50 %s  p99 %s  ts_shared %d  bags_skipped %d\n",
							pt.Key(), pt.OpsPerUs, pt.RQsPerUs,
							time.Duration(pt.RQP50ns), time.Duration(pt.RQP99ns),
							pt.TSShared, pt.BagsSkipped)
						if split := pt.PhaseSplit(); split != "" {
							fmt.Fprintf(cfg.Out, "%-20s   rq phases: %s\n", "", split)
						}
					}
				}
			}
		}
	}
	if cfg.TraceDump != nil && lastRec != nil {
		if _, err := lastRec.Snapshot().WriteTo(cfg.TraceDump); err != nil {
			return rep, fmt.Errorf("writing trace dump: %w", err)
		}
	}
	return rep, nil
}

// PhaseSplit renders the point's per-phase RQ time attribution as
// "ts_wait 12% / traverse 70% / announce 8% / limbo 10%", or "" when the
// point carries no phase data (tracing off, or no RQs ran).
func (p RQPoint) PhaseSplit() string {
	tot := p.RQTSWaitNs + p.RQTraverseNs + p.RQAnnounceNs + p.RQLimboNs
	if tot == 0 {
		return ""
	}
	pct := func(v uint64) float64 { return 100 * float64(v) / float64(tot) }
	return fmt.Sprintf("ts_wait %.1f%% / traverse %.1f%% / announce %.1f%% / limbo %.1f%%",
		pct(p.RQTSWaitNs), pct(p.RQTraverseNs), pct(p.RQAnnounceNs), pct(p.RQLimboNs))
}

// RQEnvMismatch compares the host fingerprints of a baseline and a current
// report. A non-empty result means the two were measured on differently
// shaped hosts and throughput comparison is meaningless — callers must
// refuse to gate rather than report bogus regressions.
func RQEnvMismatch(baseline, current RQReport) []string {
	var msgs []string
	if baseline.GOMAXPROCS != current.GOMAXPROCS {
		msgs = append(msgs, fmt.Sprintf("gomaxprocs: baseline %d vs current %d",
			baseline.GOMAXPROCS, current.GOMAXPROCS))
	}
	if baseline.NumCPU != current.NumCPU {
		msgs = append(msgs, fmt.Sprintf("num_cpu: baseline %d vs current %d",
			baseline.NumCPU, current.NumCPU))
	}
	if baseline.GoVersion != current.GoVersion {
		msgs = append(msgs, fmt.Sprintf("go_version: baseline %s vs current %s",
			baseline.GoVersion, current.GoVersion))
	}
	return msgs
}

// WriteJSON renders the report as indented JSON.
func (r RQReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRQReport parses a BENCH_rq.json document.
func ReadRQReport(rd io.Reader) (RQReport, error) {
	var r RQReport
	err := json.NewDecoder(rd).Decode(&r)
	return r, err
}

// CompareRQReports checks current against baseline: for every workload cell
// present in both, total throughput must not fall more than maxRegress
// (a fraction, e.g. 0.20) below the baseline. It returns one message per
// regressed cell; an empty slice means the gate passes. Cells only present
// on one side are ignored (the benchmark matrix may grow).
func CompareRQReports(baseline, current RQReport, maxRegress float64) []string {
	base := make(map[string]RQPoint, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.Key()] = p
	}
	var msgs []string
	for _, p := range current.Points {
		b, ok := base[p.Key()]
		if !ok || b.OpsPerUs <= 0 {
			continue
		}
		if p.OpsPerUs < b.OpsPerUs*(1-maxRegress) {
			msgs = append(msgs, fmt.Sprintf(
				"%s: %.3f ops/us is %.1f%% below baseline %.3f ops/us (gate: %.0f%%)",
				p.Key(), p.OpsPerUs, 100*(1-p.OpsPerUs/b.OpsPerUs),
				b.OpsPerUs, 100*maxRegress))
		}
	}
	return msgs
}
