package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"ebrrq"
	"ebrrq/internal/trace"
)

// RQPoint is one machine-readable data point of the RQ-mix benchmark: a
// (structure, technique, thread-count) cell of the mixed update/range-query
// workload, with throughput split by class, RQ latency percentiles and the
// provider's hot-path counters (timestamp sharing and bag-fence skips).
type RQPoint struct {
	DS       string `json:"ds"`
	Tech     string `json:"tech"`
	Threads  int    `json:"threads"`
	RQPct    int    `json:"rq_pct"`
	RQSize   int64  `json:"rq_size"`
	KeyRange int64  `json:"key_range"`
	Trials   int    `json:"trials"`
	// Shards is the shard count of the sharded-set cell; 0 or 1 means the
	// plain single-provider Set (omitted from JSON for compatibility with
	// pre-sharding baselines).
	Shards int `json:"shards,omitempty"`
	// Combine marks a cell run with the aggregating update funnel enabled
	// (ebrrq.Options.CombineUpdates). Combined cells carry a distinct key
	// suffix so they never gate against solo baselines.
	Combine bool `json:"combine,omitempty"`
	// Technique is the range-query technique the cell ran: "ebr" (the
	// paper's provider) or "bundle" (bundled references). Empty in
	// baselines predating the technique dimension, which means "ebr" —
	// EBR cells keep their historical key, bundle cells get a "/bundle"
	// suffix and gate only against bundle baseline cells.
	Technique string `json:"technique,omitempty"`

	ElapsedMs    int64   `json:"elapsed_ms"`
	Ops          uint64  `json:"ops"`
	OpsPerUs     float64 `json:"ops_per_us"`
	UpdatesPerUs float64 `json:"updates_per_us"`
	RQsPerUs     float64 `json:"rqs_per_us"`
	// BestOpsPerUs is the highest single-trial throughput — the
	// low-noise estimator the regression gate prefers: on a timeshared
	// host the mean absorbs every scheduling hiccup of every trial,
	// while the best trial approximates what the code can do when the
	// host cooperates.
	BestOpsPerUs float64 `json:"best_ops_per_us,omitempty"`

	RQP50ns int64 `json:"rq_p50_ns"`
	RQP90ns int64 `json:"rq_p90_ns"`
	RQP99ns int64 `json:"rq_p99_ns"`

	LimboVisited uint64 `json:"limbo_visited"`
	// Peak unreclaimed garbage (nodes / approximate bytes, limbo plus
	// quarantine, max across trials) sampled every 1ms during the measured
	// window. Omitted when zero for compatibility with older baselines.
	PeakLimboNodes int64  `json:"peak_limbo_nodes,omitempty"`
	PeakLimboBytes int64  `json:"peak_limbo_bytes,omitempty"`
	TSShared       uint64 `json:"ts_shared"`
	TSAdvanced     uint64 `json:"ts_advanced"`
	FenceShared    uint64 `json:"fence_shared"`
	BagsSkipped    uint64 `json:"bags_skipped"`
	BagsSwept      uint64 `json:"bags_swept"`

	// Aggregating-funnel counters (zero and omitted on solo cells):
	// CombineOps/CombineBatches is the realized amortization factor.
	CombineBatches   uint64 `json:"combine_batches,omitempty"`
	CombineOps       uint64 `json:"combine_ops,omitempty"`
	CombineFallbacks uint64 `json:"combine_solo_fallbacks,omitempty"`

	// Per-phase RQ time splits (total ns across all trials), collected by
	// the flight recorder; zero (and omitted) when tracing was off. Only
	// meaningful relative to each other — they overlap wall time across
	// workers.
	RQTSWaitNs   uint64 `json:"rq_ts_wait_ns,omitempty"`
	RQTraverseNs uint64 `json:"rq_traverse_ns,omitempty"`
	RQAnnounceNs uint64 `json:"rq_announce_ns,omitempty"`
	RQLimboNs    uint64 `json:"rq_limbo_ns,omitempty"`
}

// Key identifies the point's workload cell for baseline comparison. Plain
// (unsharded) cells keep their historical key, so refactored single-shard
// runs gate against pre-sharding baselines; sharded cells get a distinct
// suffix and are ignored by baselines that predate them.
func (p RQPoint) Key() string {
	k := fmt.Sprintf("%s/%s/t%d/rq%d", p.DS, p.Tech, p.Threads, p.RQPct)
	if p.Shards > 1 {
		k += fmt.Sprintf("/s%d", p.Shards)
	}
	if p.Combine {
		// Combined cells are a different configuration, not a new build of
		// the same one: they gate only against combined baseline cells.
		k += "/comb"
	}
	if p.Technique != "" && p.Technique != "ebr" {
		k += "/" + p.Technique
	}
	return k
}

// RQReport is the BENCH_rq.json document: the host fingerprint plus one
// point per workload cell.
type RQReport struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	// Note flags fingerprints under which parts of the report are known to
	// be meaningless — currently gomaxprocs=1, where the contention-path
	// counters (ts_shared, fence_shared, combine_*) are structurally ~zero
	// because goroutines never overlap inside the provider.
	Note   string    `json:"note,omitempty"`
	Points []RQPoint `json:"points"`
}

// SingleProcNote is the RQReport.Note stamped on (and the warning printed
// for) reports measured at GOMAXPROCS=1.
const SingleProcNote = "gomaxprocs=1: contention-path counters (ts_shared, fence_shared, combine_*) never trigger without goroutine overlap; do not read them as a contention measurement"

// RQBenchCfg parameterizes RunRQBench. Zero values select the quick
// configuration used by `make bench-quick` and the CI bench-smoke job.
type RQBenchCfg struct {
	DSs     []ebrrq.DataStructure
	Techs   []ebrrq.Mode
	Threads []int
	// RQPcts lists the range-query percentages to sweep; the remainder of
	// each mix splits evenly between inserts and deletes. Default
	// [0, 10, 50]: the update-heavy points (0, 10) are where the combining
	// funnel moves, the rq50 point is the historical RQ-heavy cell.
	RQPcts   []int
	RQSize   int64 // keys spanned per range query
	Scale    int64 // key-range divisor (see DefaultKeyRange)
	Trials   int
	Duration time.Duration
	Seed     int64
	Out      io.Writer // progress lines; nil silences
	// Shards lists the shard counts to run each cell at; values <= 1 mean
	// the plain Set. Default [1].
	Shards []int
	// Combine lists the funnel settings to run each cell at (false = solo,
	// true = CombineUpdates). Default [false, true], so one invocation
	// emits the combined-vs-solo A/B and the regression gate covers both.
	Combine []bool
	// Techniques lists the range-query techniques to run each cell at
	// (nil entry = EBR). Default [EBR]. Bundle entries run only for the
	// structures the technique supports, collapse the mode dimension (the
	// bundled structures use their own locking — each bundle cell runs
	// once, anchored at the first supported mode in Techs, labeled with
	// it), and skip combined-funnel variants (an EBR-provider feature).
	// Listing [EBR, Bundle] interleaves the A/B per cell, so both
	// techniques of a cell see the same host conditions.
	Techniques []ebrrq.Technique

	// NoTrace disables the flight recorder (tracing is on by default: the
	// recorder is how the per-phase RQ splits are collected, and its
	// overhead is within noise — see EXPERIMENTS.md "Flight recorder
	// overhead").
	NoTrace bool
	// TraceDump, if non-nil, receives the binary flight-recorder dump of
	// the final trial (feed it to cmd/rqtrace). Ignored with NoTrace.
	TraceDump io.Writer
}

func (c *RQBenchCfg) defaults() {
	if len(c.DSs) == 0 {
		c.DSs = []ebrrq.DataStructure{ebrrq.SkipList, ebrrq.LFList}
	}
	if len(c.Techs) == 0 {
		c.Techs = []ebrrq.Mode{ebrrq.Lock, ebrrq.LockFree}
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{8}
	}
	if len(c.RQPcts) == 0 {
		c.RQPcts = []int{0, 10, 50}
	}
	if c.RQSize <= 0 {
		c.RQSize = 64
	}
	if c.Scale <= 0 {
		c.Scale = 10
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Duration <= 0 {
		c.Duration = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1}
	}
	if len(c.Combine) == 0 {
		c.Combine = []bool{false, true}
	}
	if len(c.Techniques) == 0 {
		c.Techniques = []ebrrq.Technique{ebrrq.EBR}
	}
}

// RunRQBench runs the RQ-heavy mixed workload across every configured
// (structure, technique, thread-count) cell: each worker thread performs
// RQPct% range queries of RQSize keys and splits the remainder evenly
// between inserts and deletes.
func RunRQBench(cfg RQBenchCfg) (RQReport, error) {
	cfg.defaults()
	rep := RQReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
	if rep.GOMAXPROCS == 1 {
		rep.Note = SingleProcNote
	}
	var lastRec *trace.Recorder
	// Discarded warmup trials before the measured matrix, repeated until at
	// least warmupFloor of wall clock has burned. A cold process's first
	// cell otherwise absorbs page-ins, heap growth, and GC ramp-up, and on
	// a quota-throttled host the first seconds of load additionally spend
	// whatever CPU burst credit accumulated while the machine idled —
	// either way the cells that run first measure a machine state no later
	// cell sees (observed as 25%+ deficits on the matrix's leading cells,
	// tripping the regression gate on pure process-lifecycle noise). A
	// fixed burn-in long enough to reach steady state makes the first
	// measured cell see the same host as the last. Scaled with the trial
	// duration so short-duration test runs stay fast.
	warmupFloor := 25 * cfg.Duration
	if warmupFloor > 5*time.Second {
		warmupFloor = 5 * time.Second
	}
warmup:
	for warmStart := time.Now(); time.Since(warmStart) < warmupFloor; {
		for _, ds := range cfg.DSs {
			for _, tech := range cfg.Techs {
				if !ebrrq.Supported(ds, tech) {
					continue
				}
				mix := Mix{InsertPct: 45, DeletePct: 45, RQPct: 10, RQSize: cfg.RQSize}
				threads := make([]Mix, cfg.Threads[0])
				for i := range threads {
					threads[i] = mix
				}
				if _, err := RunTrial(TrialCfg{
					DS: ds, Tech: tech, KeyRange: DefaultKeyRange(ds, cfg.Scale),
					Threads: threads, Duration: cfg.Duration, Seed: cfg.Seed,
				}); err != nil {
					return rep, err
				}
				continue warmup
			}
		}
		break
	}
	for _, ds := range cfg.DSs {
		for _, tech := range cfg.Techs {
			if !ebrrq.Supported(ds, tech) {
				continue
			}
			for _, nt := range cfg.Threads {
				for _, shards := range cfg.Shards {
					for _, rqPct := range cfg.RQPcts {
						for _, tq := range cfg.Techniques {
							if tq == nil {
								tq = ebrrq.EBR
							}
							if tq != ebrrq.EBR {
								// Non-EBR cells collapse the mode dimension: run once,
								// anchored at (and labeled with) the first mode in
								// Techs the technique supports for this structure.
								anchor, ok := techniqueAnchor(cfg.Techs, ds, tq)
								if !ok || tech != anchor {
									continue
								}
							}
							for _, combine := range cfg.Combine {
								if combine && tq != ebrrq.EBR {
									// The aggregating funnel is an EBR-provider feature;
									// skip the variant rather than fail the matrix.
									continue
								}
								upd := (100 - rqPct) / 2
								mix := Mix{InsertPct: upd, DeletePct: upd,
									RQPct: 100 - 2*upd, RQSize: cfg.RQSize}
								threads := make([]Mix, nt)
								for i := range threads {
									threads[i] = mix
								}
								keyRange := DefaultKeyRange(ds, cfg.Scale)
								var total Result
								var best float64
								for trial := 0; trial < cfg.Trials; trial++ {
									// One recorder per trial: each trial builds a fresh
									// set, so sharing a recorder would pile up rings with
									// duplicate labels. The last trial's recorder feeds
									// TraceDump.
									var rec *trace.Recorder
									if !cfg.NoTrace {
										rec = trace.NewRecorder(trace.Config{EventsPerRing: 1024})
										lastRec = rec
									}
									res, err := RunTrial(TrialCfg{
										DS: ds, Tech: tech, KeyRange: keyRange,
										Threads: threads, Duration: cfg.Duration,
										Seed:      cfg.Seed + int64(trial)*31337,
										Shards:    shards,
										Trace:     rec,
										Combine:   combine,
										Technique: tq,
									})
									if err != nil {
										return rep, err
									}
									if t := res.TotalOpsPerUs(); t > best {
										best = t
									}
									total.Merge(&res)
								}
								ptShards := 0
								if shards > 1 {
									ptShards = shards
								}
								pt := RQPoint{
									DS: ds.String(), Tech: tech.String(), Threads: nt,
									RQPct: mix.RQPct, RQSize: cfg.RQSize, KeyRange: keyRange,
									Trials:           cfg.Trials,
									Shards:           ptShards,
									Combine:          combine,
									Technique:        tq.String(),
									ElapsedMs:        total.Elapsed.Milliseconds(),
									Ops:              total.Ops,
									OpsPerUs:         total.TotalOpsPerUs(),
									BestOpsPerUs:     best,
									UpdatesPerUs:     total.UpdatesPerUs(),
									RQsPerUs:         total.RQsPerUs(),
									RQP50ns:          int64(total.RQLatencyPercentile(50)),
									RQP90ns:          int64(total.RQLatencyPercentile(90)),
									RQP99ns:          int64(total.RQLatencyPercentile(99)),
									LimboVisited:     total.LimboVisit,
									PeakLimboNodes:   total.PeakLimboNodes,
									PeakLimboBytes:   total.PeakLimboBytes,
									TSShared:         total.Obs.Counter("ebrrq_rq_ts_shared"),
									TSAdvanced:       total.Obs.Counter("ebrrq_rq_ts_advanced"),
									FenceShared:      total.Obs.Counter("ebrrq_rq_fence_shared"),
									BagsSkipped:      total.Obs.Counter("ebrrq_rq_bags_skipped"),
									BagsSwept:        total.Obs.Counter("ebrrq_rq_bags_swept"),
									CombineBatches:   total.Obs.Counter("ebrrq_combine_batches_total"),
									CombineOps:       total.Obs.Counter("ebrrq_combine_ops_total"),
									CombineFallbacks: total.Obs.Counter("ebrrq_combine_solo_fallbacks_total"),
									RQTSWaitNs:       total.Obs.Counter("ebrrq_rq_ts_wait_ns_total"),
									RQTraverseNs:     total.Obs.Counter("ebrrq_rq_traverse_ns_total"),
									RQAnnounceNs:     total.Obs.Counter("ebrrq_rq_announce_ns_total"),
									RQLimboNs:        total.Obs.Counter("ebrrq_rq_limbo_ns_total"),
								}
								rep.Points = append(rep.Points, pt)
								if cfg.Out != nil {
									fmt.Fprintf(cfg.Out,
										"%-24s %6.3f ops/us  %6.3f rq/us  p50 %s  p99 %s  ts_shared %d  bags_skipped %d\n",
										pt.Key(), pt.OpsPerUs, pt.RQsPerUs,
										time.Duration(pt.RQP50ns), time.Duration(pt.RQP99ns),
										pt.TSShared, pt.BagsSkipped)
									if split := pt.PhaseSplit(); split != "" {
										fmt.Fprintf(cfg.Out, "%-24s   rq phases: %s\n", "", split)
									}
									if combine && pt.CombineBatches > 0 {
										fmt.Fprintf(cfg.Out,
											"%-24s   combining: %d windows / %d ops (%.2f ops/window), %d solo fallbacks\n",
											"", pt.CombineBatches, pt.CombineOps,
											float64(pt.CombineOps)/float64(pt.CombineBatches),
											pt.CombineFallbacks)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if cfg.TraceDump != nil && lastRec != nil {
		if _, err := lastRec.Snapshot().WriteTo(cfg.TraceDump); err != nil {
			return rep, fmt.Errorf("writing trace dump: %w", err)
		}
	}
	return rep, nil
}

// PhaseSplit renders the point's per-phase RQ time attribution as
// "ts_wait 12% / traverse 70% / announce 8% / limbo 10%", or "" when the
// point carries no phase data (tracing off, or no RQs ran).
func (p RQPoint) PhaseSplit() string {
	tot := p.RQTSWaitNs + p.RQTraverseNs + p.RQAnnounceNs + p.RQLimboNs
	if tot == 0 {
		return ""
	}
	pct := func(v uint64) float64 { return 100 * float64(v) / float64(tot) }
	return fmt.Sprintf("ts_wait %.1f%% / traverse %.1f%% / announce %.1f%% / limbo %.1f%%",
		pct(p.RQTSWaitNs), pct(p.RQTraverseNs), pct(p.RQAnnounceNs), pct(p.RQLimboNs))
}

// RQEnvMismatch compares the host fingerprints of a baseline and a current
// report. A non-empty result means the two were measured on differently
// shaped hosts and throughput comparison is meaningless — callers must
// refuse to gate rather than report bogus regressions.
func RQEnvMismatch(baseline, current RQReport) []string {
	var msgs []string
	if baseline.GOMAXPROCS != current.GOMAXPROCS {
		msgs = append(msgs, fmt.Sprintf("gomaxprocs: baseline %d vs current %d",
			baseline.GOMAXPROCS, current.GOMAXPROCS))
	}
	if baseline.NumCPU != current.NumCPU {
		msgs = append(msgs, fmt.Sprintf("num_cpu: baseline %d vs current %d",
			baseline.NumCPU, current.NumCPU))
	}
	if baseline.GoVersion != current.GoVersion {
		msgs = append(msgs, fmt.Sprintf("go_version: baseline %s vs current %s",
			baseline.GoVersion, current.GoVersion))
	}
	return msgs
}

// WriteJSON renders the report as indented JSON.
func (r RQReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRQReport parses a BENCH_rq.json document.
func ReadRQReport(rd io.Reader) (RQReport, error) {
	var r RQReport
	err := json.NewDecoder(rd).Decode(&r)
	return r, err
}

// CompareRQReports checks current against baseline: for every workload cell
// present in both, total throughput must not fall more than maxRegress
// (a fraction, e.g. 0.20) below the baseline. When both sides carry
// BestOpsPerUs the gate compares best single trials — on a timeshared host
// the trial mean swings far more than the 20% budget (one descheduled
// quantum in a 200ms trial is a 5%+ dent, and every trial rolls that die),
// while best-of-N converges on the hardware's actual capability.
//
// Before applying the per-cell budget the gate corrects for uniform host
// drift: the reference host's effective speed wanders over minutes
// (thermal/cgroup/neighbor load), and that shift hits every cell of the
// matrix alike, while a code regression hits the specific cells whose path
// changed. The correction is the median current/baseline ratio across all
// comparable cells, applied only when below 1 (the gate never gets
// stricter than the plain comparison) and floored at 0.75 so a genuine
// across-the-board regression beyond 25% still trips.
//
// Combined-funnel cells (Combine set) are excluded from the gate: they are
// A/B instrumentation for EXPERIMENTS.md, and on an oversubscribed host
// their throughput is dominated by which batching regime the scheduler
// happens to settle into for the whole process — a coin flip worth 40%+
// that no within-run estimator can average away. The solo cells, the paths
// every default configuration exercises, are what the gate protects.
//
// It returns one message per regressed cell; an empty slice means the gate
// passes. Cells only present on one side are ignored (the benchmark matrix
// may grow).
func CompareRQReports(baseline, current RQReport, maxRegress float64) []string {
	base := make(map[string]RQPoint, len(baseline.Points))
	for _, p := range baseline.Points {
		base[p.Key()] = p
	}
	type cell struct {
		key      string
		cur, ref float64
		metric   string
	}
	var cells []cell
	for _, p := range current.Points {
		if p.Combine {
			continue
		}
		b, ok := base[p.Key()]
		if !ok || b.OpsPerUs <= 0 {
			continue
		}
		cur, ref, metric := p.OpsPerUs, b.OpsPerUs, "ops/us"
		if p.BestOpsPerUs > 0 && b.BestOpsPerUs > 0 {
			cur, ref, metric = p.BestOpsPerUs, b.BestOpsPerUs, "best ops/us"
		}
		cells = append(cells, cell{p.Key(), cur, ref, metric})
	}
	ratios := make([]float64, 0, len(cells))
	for _, c := range cells {
		ratios = append(ratios, c.cur/c.ref)
	}
	drift := hostDrift(ratios)
	var msgs []string
	for _, c := range cells {
		ref := c.ref * drift
		if c.cur < ref*(1-maxRegress) {
			msgs = append(msgs, fmt.Sprintf(
				"%s: %.3f %s is %.1f%% below baseline %.3f %s (gate: %.0f%%, host drift ×%.2f)",
				c.key, c.cur, c.metric, 100*(1-c.cur/ref),
				ref, c.metric, 100*maxRegress, drift))
		}
	}
	return msgs
}

// MinRQReports folds an earlier report into the current one, keeping the
// per-cell minimum of the gated throughput figures (OpsPerUs and
// BestOpsPerUs). `make rebaseline` measures the matrix twice and merges
// with this, so the committed baseline is a conservative floor: on a
// timeshared host individual cells flip between scheduler regimes worth
// 25-40%, and a baseline that happened to capture a cell's fast regime
// would gate every later slow-regime run. Against the floor, only a run
// that falls 20%+ below the cell's slow regime — a real regression —
// trips. Cells absent from prev pass through unchanged; prev's extra
// cells are dropped (the matrix is defined by the current run).
func MinRQReports(cur, prev RQReport) RQReport {
	old := make(map[string]RQPoint, len(prev.Points))
	for _, p := range prev.Points {
		old[p.Key()] = p
	}
	for i, p := range cur.Points {
		b, ok := old[p.Key()]
		if !ok {
			continue
		}
		if b.OpsPerUs > 0 && b.OpsPerUs < p.OpsPerUs {
			cur.Points[i].OpsPerUs = b.OpsPerUs
		}
		if b.BestOpsPerUs > 0 && b.BestOpsPerUs < p.BestOpsPerUs {
			cur.Points[i].BestOpsPerUs = b.BestOpsPerUs
		}
	}
	return cur
}

// hostDrift estimates the uniform host-speed shift between the baseline and
// current runs as the median per-cell throughput ratio, clamped to
// [0.75, 1]: relaxation only, bounded at 25%. See CompareRQReports.
func hostDrift(ratios []float64) float64 {
	if len(ratios) == 0 {
		return 1
	}
	ratios = append([]float64(nil), ratios...)
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		med = (med + ratios[len(ratios)/2-1]) / 2
	}
	switch {
	case med >= 1:
		return 1
	case med < 0.75:
		return 0.75
	}
	return med
}

// techniqueAnchor picks the mode a non-EBR technique cell is anchored at:
// the first mode in techs the technique supports for ds. Bundle structures
// bring their own synchronization, so the mode dimension collapses to a
// single labeled cell instead of multiplying the matrix.
func techniqueAnchor(techs []ebrrq.Mode, ds ebrrq.DataStructure, tq ebrrq.Technique) (ebrrq.Mode, bool) {
	for _, m := range techs {
		if tq.Supports(ds, m) {
			return m, true
		}
	}
	return 0, false
}
