// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at test scale, plus per-operation microbenchmarks and ablations.
// Figure/table reproduction benches run one fixed-duration workload trial
// per iteration and report the paper's metric (operations per microsecond)
// via ReportMetric; full-scale runs use cmd/microbench and cmd/macrobench.
package ebrrq_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"ebrrq"
	"ebrrq/internal/bench"
	"ebrrq/internal/dcss"
	"ebrrq/internal/ds/skiplist"
	"ebrrq/internal/kcas"
	"ebrrq/internal/rqprov"
	"ebrrq/internal/tpcc"
)

const benchDuration = 100 * time.Millisecond

func reportTrial(b *testing.B, cfg bench.TrialCfg) {
	b.Helper()
	cfg.Duration = benchDuration
	var ops, upd, rqs float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := bench.RunTrial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ops += r.TotalOpsPerUs()
		upd += r.UpdatesPerUs()
		rqs += r.RQsPerUs()
	}
	b.ReportMetric(ops/float64(b.N), "ops/us")
	b.ReportMetric(upd/float64(b.N), "updates/us")
	b.ReportMetric(rqs/float64(b.N), "rqs/us")
}

// BenchmarkExp1_Fig5: n update threads (50/50) + 1 RQ thread (range 100).
func BenchmarkExp1_Fig5(b *testing.B) {
	for _, ds := range bench.AllStructures {
		for _, tech := range bench.ModesFor(ds) {
			b.Run(fmt.Sprintf("%s/%s", ds, tech), func(b *testing.B) {
				k := bench.DefaultKeyRange(ds, 100)
				reportTrial(b, bench.TrialCfg{
					DS: ds, Tech: tech, KeyRange: k,
					Threads: []bench.Mix{bench.Updates5050, bench.Updates5050, bench.RQOnly(100)},
				})
			})
		}
	}
}

// BenchmarkExp2_Fig6: fixed updaters, varying RQ-thread count.
func BenchmarkExp2_Fig6(b *testing.B) {
	for _, ds := range []ebrrq.DataStructure{ebrrq.ABTree, ebrrq.LFList} {
		for _, rqn := range []int{0, 1, 2} {
			b.Run(fmt.Sprintf("%s/rq=%d", ds, rqn), func(b *testing.B) {
				threads := []bench.Mix{bench.Updates5050, bench.Updates5050}
				for i := 0; i < rqn; i++ {
					threads = append(threads, bench.RQOnly(100))
				}
				reportTrial(b, bench.TrialCfg{
					DS: ds, Tech: ebrrq.LockFree,
					KeyRange: bench.DefaultKeyRange(ds, 100), Threads: threads,
				})
			})
		}
	}
}

// BenchmarkExp3_Fig7: 20% updates / 80% searches + 1 RQ thread of varying
// range size, for SkipList and Citrus.
func BenchmarkExp3_Fig7(b *testing.B) {
	for _, ds := range []ebrrq.DataStructure{ebrrq.SkipList, ebrrq.Citrus} {
		for _, tech := range bench.ModesFor(ds) {
			for _, size := range []int64{10, 100, 1000} {
				b.Run(fmt.Sprintf("%s/%s/rq=%d", ds, tech, size), func(b *testing.B) {
					mix := bench.Mix{InsertPct: 10, DeletePct: 10, SearchPct: 80}
					reportTrial(b, bench.TrialCfg{
						DS: ds, Tech: tech, KeyRange: bench.DefaultKeyRange(ds, 100),
						Threads: []bench.Mix{mix, mix, bench.RQOnly(size)},
					})
				})
			}
		}
	}
}

// BenchmarkExp4_Fig8: every thread runs the mixed workload
// (10i/10d/78s/2rq over ranges of 100).
func BenchmarkExp4_Fig8(b *testing.B) {
	mix := bench.Mix{InsertPct: 10, DeletePct: 10, SearchPct: 78, RQPct: 2, RQSize: 100}
	for _, ds := range bench.AllStructures {
		for _, tech := range bench.ModesFor(ds) {
			b.Run(fmt.Sprintf("%s/%s", ds, tech), func(b *testing.B) {
				reportTrial(b, bench.TrialCfg{
					DS: ds, Tech: tech, KeyRange: bench.DefaultKeyRange(ds, 100),
					Threads: []bench.Mix{mix, mix, mix},
				})
			})
		}
	}
}

// BenchmarkTPCC_Fig9: the TPC-C macrobenchmark at test scale.
func BenchmarkTPCC_Fig9(b *testing.B) {
	for _, ds := range []ebrrq.DataStructure{ebrrq.ABTree, ebrrq.LFBST, ebrrq.Citrus, ebrrq.SkipList} {
		for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree, ebrrq.RLU, ebrrq.Unsafe} {
			if !ebrrq.Supported(ds, tech) {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", ds, tech), func(b *testing.B) {
				var txns float64
				for i := 0; i < b.N; i++ {
					res, err := tpcc.RunBench(tpcc.Config{
						Warehouses: 1, Scale: 100, DS: ds, Tech: tech,
						MaxThreads: 4, Seed: int64(i + 1),
					}, 2, benchDuration)
					if err != nil {
						b.Fatal(err)
					}
					txns += res.TxnsPerUs()
				}
				b.ReportMetric(txns/float64(b.N), "txns/us")
			})
		}
	}
}

// BenchmarkOps measures single-threaded per-operation latency on a
// prefilled structure (ns/op, allocations).
func BenchmarkOps(b *testing.B) {
	for _, ds := range []ebrrq.DataStructure{ebrrq.SkipList, ebrrq.ABTree, ebrrq.LFBST} {
		for _, tech := range []ebrrq.Mode{ebrrq.Unsafe, ebrrq.Lock, ebrrq.LockFree} {
			set, err := ebrrq.New(ds, tech, 2)
			if err != nil {
				b.Fatal(err)
			}
			th := set.NewThread()
			const k = 1 << 14
			for i := int64(0); i < k; i += 2 {
				th.Insert(i, i)
			}
			r := rand.New(rand.NewSource(1))
			b.Run(fmt.Sprintf("%s/%s/insert+delete", ds, tech), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					key := r.Int63n(k)
					if !th.Insert(key, key) {
						th.Delete(key)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/%s/contains", ds, tech), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					th.Contains(r.Int63n(k))
				}
			})
			b.Run(fmt.Sprintf("%s/%s/rq100", ds, tech), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					lo := r.Int63n(k - 100)
					th.RangeQuery(lo, lo+100)
				}
			})
		}
	}
}

// BenchmarkAblationLimboSorted quantifies §4.3's first optimization: the
// early exit when limbo lists are sorted by dtime. The same skip-list
// workload runs with the optimization enabled (LimboSorted, as shipped) and
// disabled (full limbo sweeps).
func BenchmarkAblationLimboSorted(b *testing.B) {
	run := func(b *testing.B, sorted bool) {
		var visited float64
		for i := 0; i < b.N; i++ {
			p := rqprov.New(rqprov.Config{MaxThreads: 4, Mode: rqprov.ModeLockFree, LimboSorted: sorted})
			r, err := benchSkiplistTrial(p, int64(i+1))
			if err != nil {
				b.Fatal(err)
			}
			visited += r
		}
		b.ReportMetric(visited/float64(b.N), "limbo-visits/rq")
	}
	b.Run("early-exit", func(b *testing.B) { run(b, true) })
	b.Run("full-sweep", func(b *testing.B) { run(b, false) })
}

// benchSkiplistTrial runs 3 updaters + 1 RQ thread on a raw skip list with
// the given provider and returns the mean limbo-list nodes visited per RQ.
func benchSkiplistTrial(p *rqprov.Provider, seed int64) (float64, error) {
	l := skiplist.New(p)
	pre := p.Register()
	rng := rand.New(rand.NewSource(seed))
	const k = 1 << 10
	for i := 0; i < k/2; {
		if l.Insert(pre, rng.Int63n(k), 0) {
			i++
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(s int64) {
			defer wg.Done()
			th := p.Register()
			r := rand.New(rand.NewSource(s))
			for !stop.Load() {
				key := r.Int63n(k)
				if r.Intn(2) == 0 {
					l.Insert(th, key, key)
				} else {
					l.Delete(th, key)
				}
			}
		}(seed + int64(w) + 1)
	}
	rq := p.Register()
	r := rand.New(rand.NewSource(seed + 77))
	deadline := time.Now().Add(benchDuration)
	for time.Now().Before(deadline) {
		lo := r.Int63n(k - 64)
		l.RangeQuery(rq, lo, lo+63)
	}
	stop.Store(true)
	wg.Wait()
	if rq.RQCount() == 0 {
		return 0, fmt.Errorf("no rqs completed")
	}
	return float64(rq.LimboVisitedTotal()) / float64(rq.RQCount()), nil
}

// BenchmarkAblationKCASvsDCSS reproduces the claim of §4.5 that building
// the lock-free provider from k-CAS — one atomic operation covering the
// update CAS, the itime/dtime stamps and a TS check — "would be slow in
// practice" compared to the recipe the paper uses: a 2-word DCSS for the
// guarded CAS plus plain stores for the timestamps.
func BenchmarkAblationKCASvsDCSS(b *testing.B) {
	b.Run("dcss+stores", func(b *testing.B) {
		var ts atomic.Uint64
		ts.Store(1)
		var slot dcss.Slot
		vals := [2]int64{}
		slot.Store(unsafe.Pointer(&vals[0]))
		var itime, dtime atomic.Uint64
		cur := 0
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exp := ts.Load()
			next := 1 - cur
			d := &dcss.Descriptor{A1: &ts, Exp1: exp,
				S: &slot, Old: unsafe.Pointer(&vals[cur]), New: unsafe.Pointer(&vals[next])}
			if d.Exec() != dcss.Succeeded {
				b.Fatal("dcss failed")
			}
			itime.Store(exp)
			dtime.Store(exp)
			cur = next
		}
	})
	b.Run("kcas4", func(b *testing.B) {
		tsW := &kcas.Word{}
		tsBox := kcas.NewBox(1)
		tsW.Store(tsBox)
		slotW := &kcas.Word{}
		slotW.Store(kcas.NewBox(0))
		itimeW, dtimeW := &kcas.Word{}, &kcas.Word{}
		zero := kcas.NewBox(0)
		itimeW.Store(zero)
		dtimeW.Store(zero)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oldSlot := slotW.Read()
			oldI, oldD := itimeW.Read(), dtimeW.Read()
			exp := kcas.NewBox(tsBox.V)
			ok := kcas.KCAS([]kcas.Entry{
				{W: tsW, Old: tsBox, New: tsBox}, // verify TS unchanged
				{W: slotW, Old: oldSlot, New: kcas.NewBox(oldSlot.V + 1)},
				{W: itimeW, Old: oldI, New: exp},
				{W: dtimeW, Old: oldD, New: exp},
			})
			if !ok {
				b.Fatal("kcas failed")
			}
		}
	})
}

// BenchmarkAblationHTMvsLock isolates the provider's update critical
// section cost: the distributed reader-indicator (HTM emulation) versus the
// centralized fetch-add lock, under update-heavy load.
func BenchmarkAblationHTMvsLock(b *testing.B) {
	for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.HTM, ebrrq.LockFree} {
		b.Run(tech.String(), func(b *testing.B) {
			reportTrial(b, bench.TrialCfg{
				DS: ebrrq.SkipList, Tech: tech, KeyRange: 1 << 10,
				Threads: []bench.Mix{bench.Updates5050, bench.Updates5050,
					bench.Updates5050, bench.RQOnly(64)},
			})
		})
	}
}
