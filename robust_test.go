package ebrrq_test

import (
	"errors"
	"testing"

	"ebrrq"
	"ebrrq/internal/epoch"
	"ebrrq/internal/rqprov"
)

// TestTryNewThreadAndClose: thread slots are reusable through the public
// API — Close releases a slot, TryNewThread reports exhaustion as an error,
// and NewThread keeps its panicking contract.
func TestTryNewThreadAndClose(t *testing.T) {
	s, err := ebrrq.New(ebrrq.SkipList, ebrrq.LockFree, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := s.NewThread()
	b, err := s.TryNewThread()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TryNewThread(); !errors.Is(err, rqprov.ErrTooManyThreads) {
		t.Fatalf("full set returned %v, want ErrTooManyThreads", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewThread on a full set did not panic")
			}
		}()
		s.NewThread()
	}()

	a.Insert(1, 10)
	a.Close()
	a.Close() // idempotent
	c, err := s.TryNewThread()
	if err != nil {
		t.Fatalf("TryNewThread after Close: %v", err)
	}
	c.Insert(2, 20)
	if got := b.RangeQuery(0, 100); len(got) != 2 {
		t.Fatalf("RangeQuery after slot reuse = %v, want two keys", got)
	}
}

// panickyRecorder fires on the Nth recorded update. The Recorder runs on
// the updater's goroutine inside the operation, after the timestamps were
// published — so a panic here models a crash at the latest point of an
// update, and recovery must leave the set fully consistent.
type panickyRecorder struct {
	n     int
	count int
}

func (r *panickyRecorder) RecordUpdate(tid int, ts uint64, inodes, dnodes []*epoch.Node) {
	r.count++
	if r.count == r.n {
		panic("recorder exploded")
	}
}

// TestPanicInRecorderLeavesSetUsable: a panic escaping a Thread operation
// must not wedge the epoch domain (blocking reclamation and, in lock-free
// mode, future range queries). The guard aborts the provider state, the
// panic propagates, and both the panicked thread and its peers keep working.
func TestPanicInRecorderLeavesSetUsable(t *testing.T) {
	for _, tech := range []ebrrq.Mode{ebrrq.Lock, ebrrq.LockFree} {
		s, err := ebrrq.NewWithOptions(ebrrq.LFList, tech, 2,
			ebrrq.Options{Recorder: &panickyRecorder{n: 3}})
		if err != nil {
			t.Fatal(err)
		}
		th := s.NewThread()
		peer := s.NewThread()
		th.Insert(1, 10)
		th.Insert(2, 20)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: recorder panic did not propagate", tech)
				}
			}()
			th.Insert(3, 30)
		}()

		// The third insert's CAS succeeded and its timestamps were
		// published before the recorder ran, so the key is in the set; the
		// guard's Abort must have unpinned the epoch and cleared the
		// announcements, so updates and RQs proceed on both threads.
		if got := peer.RangeQuery(0, 100); len(got) != 3 {
			t.Fatalf("%v: peer RQ after panic = %v, want 3 keys", tech, got)
		}
		if !th.Delete(2) {
			t.Fatalf("%v: panicked thread cannot update afterwards", tech)
		}
		if got := th.RangeQuery(0, 100); len(got) != 2 {
			t.Fatalf("%v: RQ on panicked thread = %v, want 2 keys", tech, got)
		}

		// Reclamation still works: churn and check the epoch advances.
		base := s.Domain().Advances()
		for i := int64(0); i < 2048; i++ {
			th.Insert(100+i%64, i)
			th.Delete(100 + i%64)
		}
		if s.Domain().Advances() == base {
			t.Fatalf("%v: epoch wedged after recorder panic", tech)
		}
	}
}
